#!/usr/bin/env python
"""CI ratchet: the committed lint baseline may only shrink.

``repro lint --baseline`` keeps day-to-day runs green while legacy
findings are paid down; this script is the enforcement half. It runs
the full check registry over the source tree against the committed
baseline and exits 1 when any ratchet rule is violated:

* a *new* finding appeared (not baselined, not suppressed);
* the baseline carries *stale* entries — the finding was fixed but
  its entry was not deleted, so the debt ledger overstates reality;
* a *stale suppression* pragma survives in the tree (the check it
  silenced no longer fires there);
* the baseline grew relative to a git base revision (``--git-base``,
  default ``origin/main``; skipped when that revision or file is
  unavailable, e.g. on a shallow clone).

Run from the repository root::

    python scripts/lint_ratchet.py [--git-base origin/main]
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.analysis.baseline import DEFAULT_BASELINE  # noqa: E402
from repro.analysis.runner import run_paths  # noqa: E402


def baseline_count_at(git_base: str, baseline: str) -> int | None:
    """Entry count of the baseline file at ``git_base``, or None."""
    try:
        blob = subprocess.run(
            ["git", "show", f"{git_base}:{baseline}"],
            cwd=REPO_ROOT, capture_output=True, text=True, timeout=30,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    if blob.returncode != 0:
        return None
    try:
        return int(json.loads(blob.stdout)["count"])
    except (ValueError, KeyError, TypeError):
        return None


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="trees to lint (default: src)")
    parser.add_argument("--baseline", default=DEFAULT_BASELINE,
                        help="committed baseline file")
    parser.add_argument("--git-base", default="origin/main", metavar="REF",
                        help="revision whose baseline bounds this one "
                             "(growth check; skipped if unavailable)")
    args = parser.parse_args(argv)

    try:
        result = run_paths(args.paths or ["src"],
                           baseline_path=args.baseline)
    except (FileNotFoundError, ValueError) as exc:
        print(f"lint-ratchet: {exc}", file=sys.stderr)
        return 2

    failures = []
    if result.errors:
        for report in result.errors:
            print(f"lint-ratchet: parse error: {report.path}: "
                  f"{report.error}", file=sys.stderr)
        return 2

    if result.new_findings:
        failures.append(f"{len(result.new_findings)} new finding(s) not "
                        f"in {args.baseline}")
        for finding in result.new_findings:
            print(f"  NEW {finding.path}:{finding.line} "
                  f"[{finding.check}] {finding.message}")

    stale_entries = (result.baseline.stale_entries
                     if result.baseline is not None else [])
    if stale_entries:
        failures.append(f"{len(stale_entries)} stale baseline entry(ies): "
                        f"the finding was fixed, delete the entry")
        for entry in stale_entries:
            print(f"  STALE-ENTRY {entry.path} [{entry.check}] "
                  f"{entry.message}")

    if result.stale_suppressions:
        failures.append(f"{len(result.stale_suppressions)} stale "
                        f"suppression pragma(s): remove the dead comment")
        for stale in result.stale_suppressions:
            print(f"  STALE-PRAGMA {stale.path}:{stale.line} "
                  f"# lint: {stale.tag} {stale.reason}".rstrip())

    current = len(result.baseline.entries) if result.baseline else 0
    base_count = baseline_count_at(args.git_base, args.baseline)
    if base_count is None:
        print(f"lint-ratchet: no baseline at {args.git_base}, "
              f"skipping growth check")
    elif current > base_count:
        failures.append(f"baseline grew: {base_count} -> {current} "
                        f"entries (fix the findings instead)")

    if failures:
        print("lint-ratchet: FAIL")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print(f"lint-ratchet: OK ({current} baselined, "
          f"{len(result.unsuppressed)} findings, "
          f"{len(result.suppressed)} suppressed)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
