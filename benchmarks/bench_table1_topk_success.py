"""Table 1 — success rate of verifying a token with the SSM's top-k tokens.

Paper: LLaMA-7B / LLaMA-68M; greedy success (k=1..5) 62-89%, stochastic
52-97%, with ordering WebQA < PIQA < Alpaca < CP < CIP.  Here the model pair
is the benchmark LLM plus a per-dataset coupled SSM; a verification is
successful when the token the LLM selects is among the SSM's top-k.
"""

import numpy as np
import pytest

from benchmarks.harness import (
    all_dataset_names,
    bench_llm,
    dataset_prompts,
    dataset_ssm,
    save_report,
)
from repro.model.sampling import sample_from_probs, top_k_tokens
from repro.model.layers import stable_softmax
from repro.reporting.tables import AsciiTable

N_CONTEXTS = 60
K_VALUES = (1, 2, 3, 4, 5)


def _success_rates(dataset: str, stochastic: bool, seed: int = 0):
    """P(LLM-selected token in SSM top-k) over sampled contexts."""
    llm = bench_llm()
    ssm = dataset_ssm(dataset)
    rng = np.random.default_rng(seed)
    prompts = dataset_prompts(dataset, n=N_CONTEXTS, max_len=12)
    hits = {k: 0 for k in K_VALUES}
    for prompt in prompts:
        lc, sc = llm.new_cache(), ssm.new_cache()
        llm.prefill(prompt[:-1], lc)
        ssm.prefill(prompt[:-1], sc)
        llm_logits = llm.decode(int(prompt[-1]), lc)
        ssm_logits = ssm.decode(int(prompt[-1]), sc)
        if stochastic:
            llm_token = sample_from_probs(stable_softmax(llm_logits), rng)
        else:
            llm_token = int(np.argmax(llm_logits))
        ssm_probs = stable_softmax(ssm_logits)
        ranked = top_k_tokens(ssm_probs, max(K_VALUES))
        for k in K_VALUES:
            hits[k] += int(llm_token in ranked[:k])
    return {k: hits[k] / len(prompts) for k in K_VALUES}


def _build_table(stochastic: bool) -> AsciiTable:
    mode = "Stochastic" if stochastic else "Greedy"
    table = AsciiTable(
        ["dataset"] + [f"k={k}" for k in K_VALUES],
        title=f"Table 1 ({mode} decoding): top-k verification success rate",
    )
    for dataset in all_dataset_names():
        rates = _success_rates(dataset, stochastic)
        table.add_row(dataset, *(f"{rates[k]:.0%}" for k in K_VALUES))
    return table


@pytest.mark.benchmark(group="table1")
def test_table1_greedy(benchmark):
    table = benchmark.pedantic(_build_table, args=(False,), rounds=1,
                               iterations=1)
    save_report("table1_greedy", table.render())
    rates = _success_rates("Alpaca", stochastic=False)
    # Shape assertions: success grows with k and lands in a plausible band.
    assert rates[5] >= rates[1]
    assert 0.3 < rates[1] < 0.95


@pytest.mark.benchmark(group="table1")
def test_table1_stochastic(benchmark):
    table = benchmark.pedantic(_build_table, args=(True,), rounds=1,
                               iterations=1)
    save_report("table1_stochastic", table.render())
    rates = _success_rates("CIP", stochastic=True)
    assert rates[5] >= rates[1]
