"""Table 3 — multi-step speculative sampling vs naive sampling.

Paper: width 5, depth 8 trees, stochastic decoding; MSS verifies 2.21-2.38
tokens/step vs naive sampling's 1.73-1.87, a uniform 1.26-1.28x improvement
across datasets, with identical output distribution (Theorems 4.2/4.3).
"""

import pytest

from benchmarks.harness import (
    all_dataset_names,
    dataset_prompts,
    run_traces,
    save_report,
    spec_engine,
)
from repro.cluster.simulator import mean_tokens_per_step
from repro.reporting.tables import AsciiTable
from repro.speculate.expansion import ExpansionConfig

#: Width-5 at the first step, depth 8 (the Table 3 tree shape).
TREE_CONFIG = ExpansionConfig.width_sweep(5, depth=8, expand_step=0)


def _tokens_per_step(dataset: str, naive: bool) -> float:
    engine = spec_engine(dataset, TREE_CONFIG, use_naive_sampling=naive)
    traces = run_traces(engine, dataset_prompts(dataset), greedy=False)
    return mean_tokens_per_step(traces)


def _build_table() -> AsciiTable:
    table = AsciiTable(
        ["dataset", "naive sampling", "multi-step spec. sampling",
         "improvement"],
        title=(
            "Table 3: average verified tokens per stochastic decoding step "
            "(width 5, depth 8)"
        ),
    )
    for dataset in all_dataset_names():
        naive = _tokens_per_step(dataset, naive=True)
        mss = _tokens_per_step(dataset, naive=False)
        table.add_row(dataset, f"{naive:.2f}", f"{mss:.2f}",
                      f"{mss / naive:.2f}x")
    return table


@pytest.mark.benchmark(group="table3")
def test_table3_mss_vs_naive(benchmark):
    table = benchmark.pedantic(_build_table, rounds=1, iterations=1)
    save_report("table3_mss_vs_naive", table.render())
    naive = _tokens_per_step("Alpaca", naive=True)
    mss = _tokens_per_step("Alpaca", naive=False)
    # Paper shape: MSS verifies more tokens per step than naive sampling.
    assert mss > naive
    assert mss / naive > 1.05
