"""Ablation — SSM/LLM alignment vs end-to-end speedup.

The paper's section 3 argues speculation quality is bounded by the model
capacity gap between SSM and LLM.  This ablation sweeps the coupled SSM's
alignment knob through that gap and measures (a) verified tokens per step
and (b) simulated end-to-end speedup on LLaMA-7B hardware — quantifying
how much SSM quality the tree construction can compensate for.
"""

import numpy as np
import pytest

from benchmarks.harness import (
    bench_llm,
    dataset_prompts,
    distributed_simulator,
    incremental_traces,
    run_traces,
    save_report,
)
from repro.cluster.simulator import mean_tokens_per_step
from repro.engine.tree_spec import SpecInferEngine
from repro.metrics.acceptance import estimate_alpha
from repro.model.coupled import CoupledSSM
from repro.reporting.tables import AsciiTable
from repro.speculate.expansion import ExpansionConfig
from repro.speculate.speculator import Speculator

ALIGNMENTS = (0.3, 0.6, 0.8, 0.9, 1.0)
DATASET = "Alpaca"


def _engine(alignment: float) -> SpecInferEngine:
    ssm = CoupledSSM(bench_llm(), alignment=alignment, seed=77,
                     noise_scale=2.5, uniform_mix=2.5)
    return SpecInferEngine(
        bench_llm(),
        Speculator([ssm], ExpansionConfig.paper_default()),
    )


def _build_report():
    prompts = dataset_prompts(DATASET, n=3)
    sim = distributed_simulator("llama-7b")
    incremental_ms = sim.replay_many(
        incremental_traces(prompts), batch_size=1
    ).per_token_ms
    table = AsciiTable(
        ["alignment", "alpha (est.)", "tokens/step", "per-token ms",
         "speedup"],
        title="Ablation: SSM alignment vs speculative speedup (llama-7b, BS=1)",
    )
    speedups = {}
    for alignment in ALIGNMENTS:
        traces = run_traces(_engine(alignment), prompts)
        rate = mean_tokens_per_step(traces)
        alpha = estimate_alpha(traces)
        latency = sim.replay_many(traces, batch_size=1).per_token_ms
        speedups[alignment] = incremental_ms / latency
        table.add_row(
            f"{alignment:.1f}", f"{alpha:.2f}", f"{rate:.2f}",
            f"{latency:.1f}", f"{speedups[alignment]:.2f}x",
        )
    return table.render(), speedups


@pytest.mark.benchmark(group="ablation-alignment")
def test_alignment_sweep(benchmark):
    report, speedups = benchmark.pedantic(_build_report, rounds=1,
                                          iterations=1)
    save_report("ablation_alignment", report)
    # Speedup is monotone (up to noise) in SSM quality...
    assert speedups[1.0] > speedups[0.3]
    # ...an oracle SSM approaches depth+1 tokens per step...
    assert speedups[1.0] > 3.0
    # ...and even a poor SSM never makes the system slower than ~baseline
    # (verification is nearly free at BS=1).
    assert speedups[0.3] > 0.7
