"""Table 2 — average tokens verified per decoding step vs token tree width.

Paper: LLaMA-7B / LLaMA-68M, speculation length 8, expansion
⟨1,1,k,1,1,1,1,1⟩ for widths k = 1..5.  Greedy: 2.18-3.91 tokens/step,
growing with width; stochastic: 1.64-2.38.  Width 1 is the sequence-based
speculation baseline.
"""

import numpy as np
import pytest

from benchmarks.harness import (
    all_dataset_names,
    dataset_prompts,
    run_traces,
    save_report,
    spec_engine,
)
from repro.cluster.simulator import mean_tokens_per_step
from repro.reporting.tables import AsciiTable
from repro.speculate.expansion import ExpansionConfig

WIDTHS = (1, 2, 3, 4, 5)


def _tokens_per_step(dataset: str, width: int, greedy: bool) -> float:
    config = ExpansionConfig.width_sweep(width, depth=8, expand_step=2)
    engine = spec_engine(dataset, config)
    # Stochastic acceptance is noisy; average over more prompts there.
    prompts = dataset_prompts(dataset, n=3 if greedy else 8)
    traces = run_traces(engine, prompts, greedy=greedy)
    return mean_tokens_per_step(traces)


def _build_table(greedy: bool) -> AsciiTable:
    mode = "Greedy" if greedy else "Stochastic"
    table = AsciiTable(
        ["dataset"] + [f"width={w}" for w in WIDTHS],
        title=(
            f"Table 2 ({mode} decoding): average verified tokens per "
            f"decoding step, expansion <1,1,k,1,1,1,1,1>"
        ),
    )
    for dataset in all_dataset_names():
        rates = [_tokens_per_step(dataset, w, greedy) for w in WIDTHS]
        table.add_row(dataset, *(f"{r:.2f}" for r in rates))
    return table


@pytest.mark.benchmark(group="table2")
def test_table2_greedy(benchmark):
    table = benchmark.pedantic(_build_table, args=(True,), rounds=1,
                               iterations=1)
    save_report("table2_greedy", table.render())
    narrow = _tokens_per_step("Alpaca", 1, greedy=True)
    wide = _tokens_per_step("Alpaca", 5, greedy=True)
    # Paper shape: more width -> more verified tokens; > 1.5 tokens/step.
    assert wide >= narrow
    assert narrow > 1.5


@pytest.mark.benchmark(group="table2")
def test_table2_stochastic(benchmark):
    table = benchmark.pedantic(_build_table, args=(False,), rounds=1,
                               iterations=1)
    save_report("table2_stochastic", table.render())
    narrow = _tokens_per_step("CIP", 1, greedy=False)
    wide = _tokens_per_step("CIP", 5, greedy=False)
    assert wide >= narrow * 0.95  # monotone up to sampling noise
    assert narrow > 1.0
