"""Figure 8 — offloading-based inference latency: FlexGen vs SpecInfer.

Paper: OPT-13B and OPT-30B served from a single 24GB A10 with all weights
in CPU DRAM; SpecInfer reduces per-token latency 2.6-3.5x (largest at BS=1,
shrinking to ~2.6-2.7x at BS=16) because each verification step streams the
weights once but commits several tokens.

FlexGen is modeled as incremental decoding over the same offloading cost
model (weight streaming dominates both systems identically).
"""

import pytest

from benchmarks.harness import (
    dataset_prompts,
    incremental_traces,
    offload_simulator,
    run_traces,
    save_report,
    spec_engine,
)
from repro.reporting.tables import AsciiTable
from repro.speculate.expansion import ExpansionConfig

LLMS = ("opt-13b", "opt-30b")
BATCH_SIZES = (1, 2, 4, 8, 16)
DATASET = "CP"


def _build_report():
    prompts = dataset_prompts(DATASET)
    flexgen_traces = incremental_traces(prompts)
    spec_traces = run_traces(
        spec_engine(DATASET, ExpansionConfig.paper_default()), prompts
    )
    sections = []
    speedups = {}
    for llm_name in LLMS:
        sim = offload_simulator(llm_name)
        table = AsciiTable(
            ["system"] + [f"BS={b}" for b in BATCH_SIZES],
            title=f"Figure 8 ({llm_name}): offloaded per-token latency (s)",
        )
        flexgen = [
            sim.replay_many(flexgen_traces, batch_size=b).per_token_seconds
            for b in BATCH_SIZES
        ]
        specinfer = [
            sim.replay_many(spec_traces, batch_size=b).per_token_seconds
            for b in BATCH_SIZES
        ]
        table.add_row("FlexGen", *(f"{v:.2f}" for v in flexgen))
        table.add_row("SpecInfer", *(f"{v:.2f}" for v in specinfer))
        speedups[llm_name] = [f / s for f, s in zip(flexgen, specinfer)]
        table.add_row(
            "speedup", *(f"{s:.1f}x" for s in speedups[llm_name])
        )
        sections.append(table.render())
    return "\n\n".join(sections), speedups


@pytest.mark.benchmark(group="fig8")
def test_fig8_offloading(benchmark):
    report, speedups = benchmark.pedantic(_build_report, rounds=1,
                                          iterations=1)
    save_report("fig8_offloading", report)
    for llm_name in LLMS:
        series = speedups[llm_name]
        # Paper shape: 2.6-3.5x, largest at BS=1, monotonically narrowing.
        assert series[0] > 2.0, (llm_name, series)
        assert series[-1] >= 1.5, (llm_name, series)
        assert series[-1] <= series[0] + 0.2, (llm_name, series)
