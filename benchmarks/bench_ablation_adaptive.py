"""Ablation — dynamic (best-first) vs static token tree expansion.

The paper fixes tree shape with a static expansion configuration and calls
dynamic expansion future work.  This ablation quantifies the opportunity:
at a *matched speculated-token budget*, the adaptive policy (spend tokens
where the SSM is confident, per-node width from covered probability mass)
is compared against the paper's static ⟨1,1,k,…⟩ shapes on verified
tokens per step and on tokens-per-step per speculated token (budget
efficiency).
"""

import numpy as np
import pytest

from benchmarks.harness import (
    bench_llm,
    dataset_prompts,
    dataset_ssm,
    run_traces,
    save_report,
)
from repro.cluster.simulator import mean_tokens_per_step
from repro.engine.tree_spec import SpecInferEngine
from repro.reporting.tables import AsciiTable
from repro.speculate.adaptive import AdaptiveConfig
from repro.speculate.expansion import ExpansionConfig
from repro.speculate.speculator import Speculator

DATASET = "CIP"


def _static_engine(width: int) -> SpecInferEngine:
    return SpecInferEngine(
        bench_llm(),
        Speculator(
            [dataset_ssm(DATASET)],
            ExpansionConfig.width_sweep(width, depth=8, expand_step=2),
        ),
    )


def _adaptive_engine(budget: int) -> SpecInferEngine:
    return SpecInferEngine(
        bench_llm(),
        Speculator(
            [dataset_ssm(DATASET)],
            adaptive=AdaptiveConfig(
                max_tokens=budget, max_depth=8, max_width=4,
                coverage=0.85, min_path_prob=0.01,
            ),
        ),
    )


def _measure(engine):
    prompts = dataset_prompts(DATASET, n=4)
    traces = run_traces(engine, prompts)
    rate = mean_tokens_per_step(traces)
    mean_size = float(np.mean([
        s.tree_size for t in traces for s in t.steps
    ]))
    return rate, mean_size


def _build_report():
    table = AsciiTable(
        ["speculator", "tokens/step", "avg tree tokens",
         "tokens/step per tree token"],
        title="Ablation: dynamic (best-first) vs static tree expansion",
    )
    results = {}
    rows = [
        ("static <1,1,1,...> (width 1)", _static_engine(1)),
        ("static <1,1,3,1,...> (paper)", _static_engine(3)),
        ("adaptive, budget 10", _adaptive_engine(10)),
        ("adaptive, budget 16", _adaptive_engine(16)),
    ]
    for label, engine in rows:
        rate, size = _measure(engine)
        results[label] = (rate, size)
        table.add_row(label, f"{rate:.2f}", f"{size:.1f}",
                      f"{rate / size:.3f}")
    return table.render(), results


@pytest.mark.benchmark(group="ablation-adaptive")
def test_adaptive_vs_static(benchmark):
    report, results = benchmark.pedantic(_build_report, rounds=1,
                                         iterations=1)
    save_report("ablation_adaptive", report)
    static_rate, static_size = results["static <1,1,3,1,...> (paper)"]
    adaptive_rate, adaptive_size = results["adaptive, budget 10"]
    # The dynamic policy should match the static tree's acceptance with a
    # smaller (or comparable) speculated-token budget.
    assert adaptive_rate > 0.85 * static_rate
    assert adaptive_size <= static_size * 1.1


def test_adaptive_budget_efficiency():
    """Per speculated token, the adaptive tree verifies at least as many
    tokens as the static shape (it spends budget where it pays off)."""
    static_rate, static_size = _measure(_static_engine(3))
    adaptive_rate, adaptive_size = _measure(_adaptive_engine(10))
    assert adaptive_rate / adaptive_size >= 0.9 * (static_rate / static_size)
