"""Shared benchmark harness: model setup, trace generation, reporting.

Every benchmark follows the same two-layer methodology (see DESIGN.md):

1. **Algorithm layer** — run the real NumPy models (LLM + coupled SSMs) on
   synthetic dataset prompts and record per-step traces: tree sizes,
   accepted tokens, SSM steps.  These numbers are *measured*, not modeled.
2. **Hardware layer** — replay the traces through the roofline cost models
   parameterized with the paper's testbed (A10 GPUs, g5.12xlarge nodes) to
   obtain per-token latencies at paper scale.

Results are printed as ASCII tables mirroring the paper's rows/series and
appended to ``benchmarks/results/`` so EXPERIMENTS.md can quote them.
"""

from __future__ import annotations

import os
from functools import lru_cache
from typing import Dict, List, Sequence

import numpy as np

from repro.cluster.cost_model import LatencyModel
from repro.cluster.hardware import single_node_cluster, two_node_cluster
from repro.cluster.models import paper_model
from repro.cluster.offload import OffloadLatencyModel, OffloadSpec
from repro.cluster.parallel import ParallelPlan
from repro.cluster.simulator import ServingSimulator
from repro.engine.generation import GenerationConfig, GenerationResult
from repro.engine.incremental import IncrementalEngine
from repro.engine.tree_spec import SpecInferEngine
from repro.model.config import ModelConfig
from repro.model.coupled import CoupledSSM
from repro.model.sampling import SamplingConfig
from repro.model.transformer import TransformerLM
from repro.speculate.expansion import ExpansionConfig
from repro.speculate.speculator import Speculator
from repro.workloads.datasets import DATASET_NAMES, dataset_specs, make_dataset

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

#: The toy substrate every benchmark shares.
BENCH_MODEL_CONFIG = ModelConfig(
    vocab_size=96,
    d_model=48,
    n_layers=3,
    n_heads=4,
    max_seq_len=160,
    name="bench-llm",
)

#: Generation length per request; the paper uses 128 but the algorithmic
#: statistics (tokens/step) converge long before that at toy scale.
BENCH_NEW_TOKENS = 24
BENCH_PROMPTS_PER_DATASET = 3

#: Training budget for the benchmark LLM.  Real LLMs have low-entropy
#: next-token distributions; an untrained random transformer does not, and
#: every acceptance-rate statistic in the paper depends on that peakedness.
#: The benchmark LLM is therefore *trained* on a Markov corpus (conditional
#: entropy ~1.2 nats, comparable to English text's per-token entropy) before
#: any measurement.  Weights are cached on disk across invocations.
BENCH_TRAIN_STEPS = 400
_WEIGHTS_CACHE = os.path.join(
    os.path.dirname(__file__), "results", "bench_llm_weights.npz"
)


@lru_cache(maxsize=1)
def bench_corpus():
    """The Markov training/prompt corpus shared by all benchmarks."""
    from repro.workloads.corpus import MarkovCorpus

    return MarkovCorpus(
        vocab_size=BENCH_MODEL_CONFIG.vocab_size,
        branching=4,
        exponent=0.8,
        seed=99,
    )


@lru_cache(maxsize=1)
def bench_llm() -> TransformerLM:
    """The shared benchmark LLM: trained on the Markov corpus, cached."""
    from repro.model.parameters import ParameterStore
    from repro.model.trainer import Trainer, TrainingConfig

    if os.path.exists(_WEIGHTS_CACHE):
        params = ParameterStore.load(_WEIGHTS_CACHE)
        return TransformerLM(BENCH_MODEL_CONFIG, params=params)
    model = TransformerLM(BENCH_MODEL_CONFIG, seed=1234)
    corpus = bench_corpus()
    trainer = Trainer(
        model,
        TrainingConfig(max_steps=BENCH_TRAIN_STEPS, learning_rate=3e-3),
    )
    trainer.train_lm(corpus.sample_many(64, 48))
    os.makedirs(os.path.dirname(_WEIGHTS_CACHE), exist_ok=True)
    model.params.save(_WEIGHTS_CACHE)
    return model


def dataset_ssm(dataset: str, seed_offset: int = 0) -> CoupledSSM:
    """The per-dataset SSM with Table 1-calibrated alignment."""
    spec = dataset_specs()[dataset]
    return CoupledSSM(
        bench_llm(),
        alignment=spec.alignment,
        seed=spec.seed + seed_offset,
        noise_scale=2.5,
        uniform_mix=2.5,
        name=f"ssm-{dataset}",
    )


def dataset_prompts(dataset: str, n: int = BENCH_PROMPTS_PER_DATASET,
                    max_len: int = 16) -> List[np.ndarray]:
    """Prompts for one synthetic dataset.

    Prompts follow the benchmark Markov chain (so the trained LLM's
    conditionals are meaningful on them) with per-dataset length profiles
    from :func:`repro.workloads.datasets.dataset_specs`.
    """
    spec = dataset_specs()[dataset]
    corpus = bench_corpus()
    rng = np.random.default_rng(spec.seed)
    prompts = []
    for _ in range(n):
        length = max(2, int(rng.normal(spec.mean_prompt_len,
                                       spec.std_prompt_len)))
        if max_len:
            length = min(length, max_len)
        prompts.append(corpus.sample(length, rng=rng))
    return prompts


def spec_engine(dataset: str, config: ExpansionConfig,
                use_naive_sampling: bool = False) -> SpecInferEngine:
    """A SpecInfer engine wired to the shared LLM and a dataset SSM."""
    return SpecInferEngine(
        bench_llm(),
        Speculator([dataset_ssm(dataset)], config),
        use_naive_sampling=use_naive_sampling,
    )


def run_traces(
    engine,
    prompts: Sequence[np.ndarray],
    greedy: bool = True,
    max_new_tokens: int = BENCH_NEW_TOKENS,
    seed: int = 0,
) -> List[GenerationResult]:
    """Generate once per prompt, returning the per-step traces."""
    sampling = (
        SamplingConfig(greedy=True) if greedy
        else SamplingConfig(temperature=1.0)
    )
    config = GenerationConfig(
        max_new_tokens=max_new_tokens,
        sampling=sampling,
        stop_on_eos=False,
        seed=seed,
    )
    return [engine.generate(list(p), config) for p in prompts]


def incremental_traces(prompts: Sequence[np.ndarray],
                       greedy: bool = True) -> List[GenerationResult]:
    """Baseline traces from plain incremental decoding."""
    return run_traces(IncrementalEngine(bench_llm()), prompts, greedy=greedy)


# -- hardware-layer helpers ----------------------------------------------------


def distributed_simulator(llm_name: str) -> ServingSimulator:
    """Simulator for the paper's distributed setups (Figure 7)."""
    if llm_name == "llama-65b":
        cluster = two_node_cluster()
        plan = ParallelPlan(tensor_parallel=4, pipeline_stages=2)
    elif llm_name == "opt-30b":
        cluster = single_node_cluster()
        plan = ParallelPlan(tensor_parallel=4)
    else:
        cluster = single_node_cluster()
        plan = ParallelPlan()
    ssm_name = "opt-125m" if llm_name.startswith("opt") else "llama-68m"
    return ServingSimulator(
        LatencyModel(paper_model(llm_name), plan, cluster),
        LatencyModel(paper_model(ssm_name), ParallelPlan(),
                     single_node_cluster()),
    )


def offload_simulator(llm_name: str) -> ServingSimulator:
    """Simulator for single-GPU offloaded serving (Figure 8)."""
    from repro.cluster.hardware import AWS_G5_NODE

    return ServingSimulator(
        OffloadLatencyModel(paper_model(llm_name), OffloadSpec(AWS_G5_NODE)),
        LatencyModel(paper_model("opt-125m"), ParallelPlan(),
                     single_node_cluster()),
    )


# -- reporting -------------------------------------------------------------------


def save_report(name: str, content: str) -> None:
    """Print a report and persist it under benchmarks/results/."""
    print()
    print(content)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, f"{name}.txt"), "w") as fh:
        fh.write(content + "\n")


def all_dataset_names() -> tuple:
    return DATASET_NAMES
