"""Serving-level benchmark: continuous batching under load.

Beyond per-request latency (Figures 7/8), the serving runtime's aggregate
behaviour matters: tokens per scheduler iteration as the batch limit grows,
speculative vs incremental sessions, and the effect of the admission policy
on completion latency.  These are the Orca-style metrics the paper's
request manager (section 5.1) is built to optimize.
"""

import numpy as np
import pytest

from benchmarks.harness import bench_llm, dataset_ssm, save_report
from repro.engine.generation import GenerationConfig
from repro.reporting.tables import AsciiTable
from repro.serving.manager import RequestManager
from repro.serving.metrics import report_from_manager
from repro.serving.policies import fcfs, shortest_job_first
from repro.serving.session import IncrementalSession, SpeculativeSession
from repro.speculate.expansion import ExpansionConfig
from repro.speculate.speculator import Speculator
from repro.workloads.datasets import make_dataset

N_REQUESTS = 8
TOKENS = 16


def _prompts():
    dataset = make_dataset("Alpaca", vocab_size=96)
    return dataset.sample_prompts(N_REQUESTS, max_len=12)


def _factory(speculative: bool):
    llm = bench_llm()
    if not speculative:
        return lambda req: IncrementalSession(req, llm)
    return lambda req: SpeculativeSession(
        req, llm,
        lambda: Speculator([dataset_ssm("Alpaca")],
                           ExpansionConfig.paper_default()),
    )


def _run(speculative: bool, batch_size: int, policy=fcfs,
         budgets=None):
    manager = RequestManager(_factory(speculative),
                             max_batch_size=batch_size, policy=policy)
    budgets = budgets or [TOKENS] * N_REQUESTS
    for prompt, budget in zip(_prompts(), budgets):
        manager.submit(prompt, GenerationConfig(max_new_tokens=budget,
                                                stop_on_eos=False))
    manager.run_until_complete()
    return report_from_manager(manager)


def _build_throughput_report():
    table = AsciiTable(
        ["sessions", "BS=1", "BS=2", "BS=4", "BS=8"],
        title=(
            "Continuous batching: tokens per scheduler iteration "
            f"({N_REQUESTS} requests x {TOKENS} tokens)"
        ),
    )
    grid = {}
    for label, speculative in (("incremental", False), ("SpecInfer", True)):
        grid[label] = [
            _run(speculative, bs).tokens_per_iteration
            for bs in (1, 2, 4, 8)
        ]
        table.add_row(label, *(f"{v:.2f}" for v in grid[label]))
    return table.render(), grid


@pytest.mark.benchmark(group="serving")
def test_throughput_vs_batch_size(benchmark):
    report, grid = benchmark.pedantic(_build_throughput_report, rounds=1,
                                      iterations=1)
    save_report("serving_throughput", report)
    # Larger batches raise iteration-level throughput for both modes.
    for label in ("incremental", "SpecInfer"):
        assert grid[label][-1] > grid[label][0]
    # Speculative sessions emit more tokens per iteration at every batch.
    for i in range(4):
        assert grid["SpecInfer"][i] > grid["incremental"][i]


@pytest.mark.benchmark(group="serving")
def test_sjf_policy_improves_mean_completion(benchmark):
    def compute():
        budgets = [4, 20, 6, 18, 4, 20, 6, 18]
        fcfs_report = _run(False, batch_size=2, policy=fcfs,
                           budgets=budgets)
        sjf_report = _run(False, batch_size=2, policy=shortest_job_first,
                          budgets=budgets)
        return fcfs_report.mean_completion, sjf_report.mean_completion

    fcfs_mean, sjf_mean = benchmark.pedantic(compute, rounds=1, iterations=1)
    save_report(
        "serving_policies",
        f"mean completion (iterations): FCFS={fcfs_mean:.1f}, "
        f"SJF={sjf_mean:.1f}",
    )
    assert sjf_mean <= fcfs_mean
