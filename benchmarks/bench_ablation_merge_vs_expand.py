"""Ablation — merge-based vs expansion-based token tree construction.

The paper's section 3 introduces both constructions and evaluates their
comparison in the companion technical report: a pool of boost-tuned SSMs
(each contributing a sequence, merged per Definition 3.2) against a single
SSM expanded top-k.  The interesting shape: with comparable token budgets,
merged multi-SSM trees recover most of the expansion win, and diversity
across SSMs covers LLM outputs a single SSM misses.
"""

import numpy as np
import pytest

from benchmarks.harness import (
    bench_llm,
    dataset_prompts,
    dataset_ssm,
    run_traces,
    save_report,
)
from repro.cluster.simulator import mean_tokens_per_step
from repro.engine.tree_spec import SpecInferEngine
from repro.model.coupled import CoupledSSM
from repro.reporting.tables import AsciiTable
from repro.speculate.expansion import ExpansionConfig
from repro.speculate.speculator import Speculator

DATASET = "Alpaca"
DEPTH = 6


def _expansion_engine(width: int) -> SpecInferEngine:
    return SpecInferEngine(
        bench_llm(),
        Speculator(
            [dataset_ssm(DATASET)],
            ExpansionConfig.width_sweep(width, depth=DEPTH, expand_step=0),
        ),
    )


def _merge_engine(n_ssms: int) -> SpecInferEngine:
    ssms = [dataset_ssm(DATASET, seed_offset=100 + i) for i in range(n_ssms)]
    return SpecInferEngine(
        bench_llm(),
        Speculator(ssms, ExpansionConfig.sequence(DEPTH)),
    )


def _build_report():
    prompts = dataset_prompts(DATASET, n=4)
    table = AsciiTable(
        ["construction", "tokens/step", "avg tree size"],
        title=(
            "Ablation: merge-based (k sequence SSMs) vs expansion-based "
            "(1 SSM, width k) tree construction"
        ),
    )
    results = {}
    for label, engine in (
        ("expansion width=1 (sequence baseline)", _expansion_engine(1)),
        ("expansion width=3", _expansion_engine(3)),
        ("merge 3 SSMs", _merge_engine(3)),
    ):
        traces = run_traces(engine, prompts)
        rate = mean_tokens_per_step(traces)
        size = float(np.mean([
            s.tree_size for t in traces for s in t.steps
        ]))
        results[label] = rate
        table.add_row(label, f"{rate:.2f}", f"{size:.1f}")
    return table.render(), results


@pytest.mark.benchmark(group="ablation")
def test_merge_vs_expand(benchmark):
    report, results = benchmark.pedantic(_build_report, rounds=1,
                                         iterations=1)
    save_report("ablation_merge_vs_expand", report)
    baseline = results["expansion width=1 (sequence baseline)"]
    # Both multi-candidate constructions beat single-sequence speculation.
    assert results["expansion width=3"] >= baseline
    assert results["merge 3 SSMs"] >= baseline * 0.95


def test_merged_trees_union_ssm_outputs():
    """Diversity check: the merged tree contains sequences no single SSM
    proposes alone (when the SSMs disagree)."""
    llm = bench_llm()
    ssms = [dataset_ssm(DATASET, seed_offset=200 + i) for i in range(3)]
    prompt = dataset_prompts(DATASET, n=1)[0]
    merged_spec = Speculator(ssms, ExpansionConfig.sequence(4))
    merged_spec.prefill(prompt[:-1])
    merged = merged_spec.speculate(int(prompt[-1]))
    solo_sequences = set()
    for ssm in ssms:
        solo = Speculator([ssm], ExpansionConfig.sequence(4))
        solo.prefill(prompt[:-1])
        solo_sequences |= solo.speculate(int(prompt[-1])).sequences()
    assert merged.sequences() == solo_sequences
