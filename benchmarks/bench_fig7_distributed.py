"""Figure 7 — end-to-end distributed inference latency, six systems.

Paper: per-token latency for LLaMA-7B (1 A10), OPT-30B (4 A10, TP) and
LLaMA-65B (8 A10 over 2 nodes, TP+PP) at batch sizes 1-16, comparing vLLM,
HuggingFace TGI, FasterTransformer, SpecInfer-with-incremental-decoding,
SpecInfer-with-sequence-based-speculation, and SpecInfer (tree-based).
Headline: tree-based SpecInfer wins 1.5-2.5x single-node and 2.4-2.8x
multi-node over incremental systems, 1.2-1.5x over sequence-based
speculation, with the advantage narrowing as batch size grows.

Method here: the comparator systems all decode incrementally with the same
kernels (the paper's own ablation shows they match SpecInfer-incremental),
so they share one trace set; latencies come from replaying measured
algorithm traces through the A10 cluster cost model (see DESIGN.md).
"""

import numpy as np
import pytest

from benchmarks.harness import (
    dataset_prompts,
    distributed_simulator,
    incremental_traces,
    run_traces,
    save_report,
    spec_engine,
)
from repro.reporting.tables import AsciiTable
from repro.speculate.expansion import ExpansionConfig

LLMS = ("llama-7b", "opt-30b", "llama-65b")
BATCH_SIZES = (1, 2, 4, 8, 16)
DATASET = "Alpaca"

SYSTEMS = (
    "vLLM",
    "HuggingFace TGI",
    "FasterTransformer",
    "SpecInfer (incremental)",
    "SpecInfer (sequence-based)",
    "SpecInfer (tree-based)",
)


def _trace_sets():
    """Algorithm-layer traces for each decoding mode (shared across LLMs)."""
    prompts = dataset_prompts(DATASET)
    incremental = incremental_traces(prompts)
    sequence = run_traces(
        spec_engine(DATASET, ExpansionConfig.sequence(8)), prompts
    )
    tree = run_traces(
        spec_engine(DATASET, ExpansionConfig.paper_default()), prompts
    )
    return incremental, sequence, tree


def _latency_ms(sim, traces, batch_size):
    return sim.replay_many(traces, batch_size=batch_size).per_token_ms


def _build_report():
    incremental, sequence, tree = _trace_sets()
    tables = []
    speedups = {}
    for llm_name in LLMS:
        sim = distributed_simulator(llm_name)
        table = AsciiTable(
            ["system"] + [f"BS={b}" for b in BATCH_SIZES],
            title=f"Figure 7 ({llm_name}): per-token latency (ms)",
        )
        rows = {}
        for system in SYSTEMS:
            if system == "SpecInfer (sequence-based)":
                traces = sequence
            elif system == "SpecInfer (tree-based)":
                traces = tree
            else:
                traces = incremental
            rows[system] = [
                _latency_ms(sim, traces, b) for b in BATCH_SIZES
            ]
            table.add_row(system, *(f"{v:.1f}" for v in rows[system]))
        tables.append(table.render())
        speedups[llm_name] = [
            rows["SpecInfer (incremental)"][i]
            / rows["SpecInfer (tree-based)"][i]
            for i in range(len(BATCH_SIZES))
        ]
        tables.append(
            "speedup tree vs incremental: "
            + ", ".join(
                f"BS={b}: {s:.2f}x"
                for b, s in zip(BATCH_SIZES, speedups[llm_name])
            )
        )
    return "\n\n".join(tables), speedups


@pytest.mark.benchmark(group="fig7")
def test_fig7_distributed_latency(benchmark):
    report, speedups = benchmark.pedantic(_build_report, rounds=1,
                                          iterations=1)
    save_report("fig7_distributed", report)
    for llm_name in LLMS:
        series = speedups[llm_name]
        # Paper shape 1: tree-based SpecInfer wins at small batch sizes.
        assert series[0] > 1.3, (llm_name, series)
        # Paper shape 2: the advantage narrows as batch size grows.
        assert series[-1] < series[0], (llm_name, series)


@pytest.mark.benchmark(group="fig7")
def test_fig7_sequence_vs_tree(benchmark):
    """Tree-based beats sequence-based speculation (paper: 1.2-1.5x)."""

    def compute():
        incremental, sequence, tree = _trace_sets()
        sim = distributed_simulator("llama-7b")
        seq_ms = _latency_ms(sim, sequence, 1)
        tree_ms = _latency_ms(sim, tree, 1)
        return seq_ms / tree_ms

    ratio = benchmark.pedantic(compute, rounds=1, iterations=1)
    save_report(
        "fig7_sequence_vs_tree",
        f"llama-7b BS=1: sequence-based / tree-based latency = {ratio:.2f}x",
    )
    assert ratio > 1.02
