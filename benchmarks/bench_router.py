"""Routed speculator pool vs fixed single-SSM baselines (routing ablation).

The pool's claim is *coverage*: a single draft model is only competent on
part of a diverse workload mix, while a routed heterogeneous pool serves
each request with the member that accepts best for requests of its kind.
This benchmark constructs exactly that situation from the five paper
workloads: three pool members whose draft alignment is a function of the
request's prompt-length bucket — a ``short_expert`` (strong below 16
tokens, weak beyond 24), a ``long_expert`` (the mirror image), and a
``broad`` generalist — the same feature space the router's bandit learns
over, standing in for corpus-sliced boost-tuned specialists.

Two epochs over an interleaved mixed stream of all five datasets:

* **epoch 1 (cold)** — the routed variant serves the stream while its UCB
  arms learn from per-request acceptance (reported as ``routed_cold``);
* **epoch 2 (measured)** — the router is frozen (exploit-only) and every
  variant — routed, each fixed member, round-robin — serves the *same*
  fresh stream; these are the gated numbers, sliced per workload and
  aggregated over the mix.

Every variant emits bit-identical greedy tokens (asserted — routing never
changes content, only tokens per second).  Seconds are **modeled** from
the paper-scale hardware cost model exactly as in ``bench_planner.py``.
Results are deterministic, so CI gates on them (``ci_gate.py`` check 6:
routed >= 0.97x the best fixed member per workload, and a strict win over
every fixed member on the mixed aggregate).
"""

import argparse
import json
import os

import numpy as np
import pytest

from benchmarks.harness import save_report
from repro.cluster.cost_model import LatencyModel
from repro.cluster.hardware import single_node_cluster
from repro.cluster.models import paper_model
from repro.cluster.parallel import ParallelPlan
from repro.engine.generation import GenerationConfig
from repro.engine.pipeline import DecodePipeline, DecodeState, FusedBackend
from repro.model.config import ModelConfig
from repro.model.coupled import CoupledSSM
from repro.model.transformer import TransformerLM
from repro.obs import REGISTRY
from repro.reporting.tables import AsciiTable
from repro.speculate.expansion import ExpansionConfig
from repro.speculate.pool import PoolMember, SpeculatorPool
from repro.speculate.router import RouterConfig, SpeculatorRouter
from repro.speculate.speculator import Speculator
from repro.workloads.datasets import DATASET_NAMES, make_dataset

ROUTER_BENCH_CONFIG = ModelConfig(
    vocab_size=96,
    d_model=48,
    n_layers=3,
    n_heads=4,
    max_seq_len=256,
    name="router-bench-llm",
)

#: The router's feature space and the competence boundaries coincide by
#: construction — the ablation measures routing, not feature mismatch.
LENGTH_BUCKETS = (16, 24)
MAX_PROMPT_LEN = 60

POOL_MEMBERS = ("short_expert", "long_expert", "broad")

#: Draft alignment per (member, prompt-length bucket): each expert is
#: strong in one bucket and weak in the opposite one; ``broad`` is flat.
#: No single member is best everywhere, so only routing can win the mix.
MEMBER_ALIGNMENTS = {
    "short_expert": (0.95, 0.75, 0.55),
    "long_expert": (0.55, 0.80, 0.95),
    "broad": (0.84, 0.84, 0.84),
}
MEMBER_SEEDS = {"short_expert": 11, "long_expert": 13, "broad": 17}


def _bucket(length):
    bucket = 0
    for boundary in LENGTH_BUCKETS:
        if length >= boundary:
            bucket += 1
    return bucket


def _cost_models():
    cluster = single_node_cluster()
    plan = ParallelPlan(tensor_parallel=1, pipeline_stages=1)
    return (
        LatencyModel(paper_model("llama-7b"), plan, cluster),
        LatencyModel(paper_model("llama-68m"), plan, cluster),
    )


def _price_tick(llm_cost, ssm_cost, traces):
    """Modeled seconds of one tick (same pricing as ``bench_planner.py``)."""
    scored = sum(t.llm_tokens_scored for t in traces)
    context = sum(t.prefix_len + t.llm_tokens_scored for t in traces)
    seconds = llm_cost.step_latency(scored, context)
    levels = max((t.ssm_steps for t in traces), default=0)
    if levels:
        live = len(traces)
        prefix = sum(t.prefix_len for t in traces)
        seconds += levels * ssm_cost.step_latency(live, prefix + live)
    return seconds


def build_pool(llm):
    """The bench pool; factories draft at each member's mid-bucket
    alignment (the routed serving path below swaps in the length-matched
    alignment per request, mirroring corpus-sliced competence)."""
    members = []
    for name in POOL_MEMBERS:
        def factory(n=name):
            return CoupledSSM(llm, alignment=MEMBER_ALIGNMENTS[n][1],
                              seed=MEMBER_SEEDS[n], noise_scale=2.0)

        members.append(PoolMember(name=name, ssm_factory=factory,
                                  config=ExpansionConfig.paper_default()))
    pool = SpeculatorPool(members)
    pool.llm = llm
    return pool


def _member_speculator(llm, member, prompt_len):
    alignment = MEMBER_ALIGNMENTS[member][_bucket(prompt_len)]
    ssm = CoupledSSM(llm, alignment=alignment, seed=MEMBER_SEEDS[member],
                     noise_scale=2.0)
    return Speculator([ssm], ExpansionConfig.paper_default())


def build_stream(datasets, per_dataset):
    """``per_dataset`` rounds interleaving all five datasets (mixed order,
    so every policy sees the same alternating short/long pressure)."""
    stream = []
    for _ in range(per_dataset):
        for name in DATASET_NAMES:
            stream.append(
                (name, datasets[name].sample_prompt(max_len=MAX_PROMPT_LEN))
            )
    return stream


def serve_request(llm, pipeline, member, prompt, max_new_tokens,
                  llm_cost, ssm_cost, route=None):
    """One request to completion through ``pipeline``; returns
    ``(tokens, modeled_seconds)``."""
    state = DecodeState(
        llm, np.asarray(prompt, dtype=np.intp),
        GenerationConfig(max_new_tokens=max_new_tokens, stop_on_eos=False),
        speculator=_member_speculator(llm, member, len(prompt)),
    )
    state.route = route
    seconds = 0.0
    while not state.finished:
        outcome = pipeline.tick([state])[0]
        if not outcome.advanced:
            break
        seconds += _price_tick(llm_cost, ssm_cost, [state.steps[-1]])
    return list(state.tokens), seconds


def run_policy(llm, stream, max_new_tokens, choose, router=None,
               id_base=0):
    """Serve the stream sequentially under one assignment policy.

    ``choose(index, prompt)`` returns ``(member, route_or_None)``; with a
    ``router`` the pipeline feeds per-request acceptance back after each
    verify (the learning loop the routed variant exercises).
    """
    pipeline = DecodePipeline(llm, FusedBackend(llm), router=router)
    llm_cost, ssm_cost = _cost_models()
    per_request = []
    outputs = []
    for idx, (dataset, prompt) in enumerate(stream):
        member, route = choose(id_base + idx, prompt)
        tokens, seconds = serve_request(
            llm, pipeline, member, prompt, max_new_tokens,
            llm_cost, ssm_cost, route=route,
        )
        per_request.append((dataset, len(tokens), seconds))
        outputs.append(tokens)
    return per_request, outputs


def aggregate(per_request):
    """``(per_dataset_tokens_per_sec, mixed_tokens_per_sec)``."""
    per_ds = {name: [0, 0.0] for name in DATASET_NAMES}
    total_tokens, total_seconds = 0, 0.0
    for dataset, tokens, seconds in per_request:
        per_ds[dataset][0] += tokens
        per_ds[dataset][1] += seconds
        total_tokens += tokens
        total_seconds += seconds
    return (
        {name: t / s for name, (t, s) in per_ds.items()},
        total_tokens / total_seconds,
    )


def run_ablation(per_dataset=3, max_new_tokens=16, learn_per_dataset=None):
    """The full routed-vs-fixed ablation; returns (report, measures).

    ``learn_per_dataset`` sizes the cold learning epoch (defaults to the
    measured epoch's ``per_dataset``); longer runs give it more rounds so
    the frozen router is measured at its converged assignment."""
    llm = TransformerLM(ROUTER_BENCH_CONFIG, seed=7)
    datasets = {
        name: make_dataset(name, vocab_size=ROUTER_BENCH_CONFIG.vocab_size)
        for name in DATASET_NAMES
    }
    epoch1 = build_stream(
        datasets,
        per_dataset if learn_per_dataset is None else learn_per_dataset,
    )
    epoch2 = build_stream(datasets, per_dataset)

    pool = build_pool(llm)
    router = SpeculatorRouter(pool, RouterConfig(
        policy="ucb", length_buckets=LENGTH_BUCKETS, seed=0,
    ))

    # Epoch 1: cold — the bandit learns per-(member, bucket) acceptance.
    def routed_choice(request_id, prompt):
        assignment = router.route(request_id, prompt)
        return assignment.member, assignment

    cold_records, _ = run_policy(llm, epoch1, max_new_tokens,
                                 routed_choice, router=router)
    _, cold_mixed = aggregate(cold_records)

    # Epoch 2: frozen exploit-only router, fresh prompts — the measured
    # steady state every fixed baseline is compared against.
    router.freeze()
    measures = {"policies": {}}
    records, routed_outputs = run_policy(
        llm, epoch2, max_new_tokens, routed_choice, router=router,
        id_base=10_000,
    )
    measures["policies"]["routed"] = aggregate(records)

    for member in POOL_MEMBERS:
        records, outputs = run_policy(
            llm, epoch2, max_new_tokens,
            lambda _i, _p, m=member: (m, None),
        )
        assert outputs == routed_outputs, (
            f"greedy parity violated by fixed member {member}"
        )
        measures["policies"][f"fixed_{member}"] = aggregate(records)

    records, outputs = run_policy(
        llm, epoch2, max_new_tokens,
        lambda i, _p: (POOL_MEMBERS[i % len(POOL_MEMBERS)], None),
    )
    assert outputs == routed_outputs, (
        "greedy parity violated by round-robin"
    )
    measures["policies"]["round_robin"] = aggregate(records)
    measures["cold_mixed"] = cold_mixed
    measures["assignments"] = router.assignment_history

    fixed_names = [f"fixed_{m}" for m in POOL_MEMBERS]
    per_workload = {}
    for name in DATASET_NAMES:
        best_fixed = max(
            measures["policies"][f][0][name] for f in fixed_names
        )
        routed = measures["policies"]["routed"][0][name]
        per_workload[name] = {
            "routed": routed,
            "best_fixed": best_fixed,
            "routed_vs_best_fixed": routed / best_fixed,
        }
    measures["per_workload"] = per_workload
    measures["mixed"] = {
        policy: mixed
        for policy, (_, mixed) in measures["policies"].items()
    }
    measures["mixed"]["routed_cold"] = cold_mixed
    measures["mixed"]["best_fixed"] = max(
        measures["mixed"][f] for f in fixed_names
    )

    table = AsciiTable(
        ["workload", "routed tok/s"]
        + [f"{m} tok/s" for m in POOL_MEMBERS]
        + ["round-robin tok/s", "routed vs best fixed"],
        title="Routed speculator pool vs fixed single-SSM baselines "
              "(modeled tokens/sec, frozen-router epoch)",
    )
    for name in DATASET_NAMES:
        table.add_row(
            name,
            f"{measures['policies']['routed'][0][name]:.1f}",
            *[f"{measures['policies'][f'fixed_{m}'][0][name]:.1f}"
              for m in POOL_MEMBERS],
            f"{measures['policies']['round_robin'][0][name]:.1f}",
            f"{per_workload[name]['routed_vs_best_fixed']:.3f}x",
        )
    table.add_row(
        "mixed",
        f"{measures['mixed']['routed']:.1f}",
        *[f"{measures['mixed'][f'fixed_{m}']:.1f}" for m in POOL_MEMBERS],
        f"{measures['mixed']['round_robin']:.1f}",
        f"{measures['mixed']['routed'] / measures['mixed']['best_fixed']:.3f}x",
    )
    return table.render(), measures


@pytest.mark.benchmark(group="router")
def test_routed_beats_fixed(benchmark):
    # Same operating point as the CI gate (quick stream): this test and
    # ci_gate.gate_router enforce one contract.
    report, measures = benchmark.pedantic(
        lambda: run_ablation(per_dataset=3, max_new_tokens=16),
        rounds=1, iterations=1,
    )
    save_report("router", report)
    for name, m in measures["per_workload"].items():
        assert m["routed_vs_best_fixed"] >= 0.97, name
    for member in POOL_MEMBERS:
        assert (measures["mixed"]["routed"]
                > measures["mixed"][f"fixed_{member}"]), member


def record_registry_metrics(measures):
    """Mirror the measures into ``repro.bench.router.*`` for ``ci_gate``."""
    prefix = "repro.bench.router"
    for name in DATASET_NAMES:
        ds = name.lower()
        for policy, (per_ds, _) in measures["policies"].items():
            REGISTRY.gauge(
                f"{prefix}.workload.{ds}.{policy}.tokens_per_sec"
            ).set(round(per_ds[name], 3))
        m = measures["per_workload"][name]
        REGISTRY.gauge(
            f"{prefix}.workload.{ds}.best_fixed.tokens_per_sec"
        ).set(round(m["best_fixed"], 3))
        REGISTRY.gauge(
            f"{prefix}.workload.{ds}.routed_vs_best_fixed"
        ).set(round(m["routed_vs_best_fixed"], 6))
    for policy, value in measures["mixed"].items():
        REGISTRY.gauge(f"{prefix}.mixed.{policy}.tokens_per_sec").set(
            round(value, 3)
        )
    REGISTRY.gauge(f"{prefix}.mixed.routed_vs_best_fixed").set(
        round(measures["mixed"]["routed"] / measures["mixed"]["best_fixed"],
              6)
    )


def write_json(path):
    """Merge ``repro.bench.router.*`` gauges into ``path`` (the shared
    ``BENCH_ci.json`` merge pattern — see ``bench_planner.write_json``)."""
    merged = {}
    if os.path.exists(path):
        with open(path) as fh:
            merged = json.load(fh)
    snapshot = {
        name: value
        for name, value in REGISTRY.snapshot().items()
        if name.startswith("repro.bench.router.")
    }
    merged.update(snapshot)
    with open(path, "w") as fh:
        fh.write(REGISTRY.to_json(merged) + "\n")
    return len(snapshot)


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Speculator-pool routing ablation benchmark"
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="CI mode: short streams and generations",
    )
    parser.add_argument(
        "--json", metavar="PATH", default=None,
        help="merge the router benchmark gauges into this JSON file",
    )
    args = parser.parse_args(argv)

    if args.quick:
        report, measures = run_ablation(per_dataset=3, max_new_tokens=16)
        print(report)
    else:
        report, measures = run_ablation(per_dataset=10, max_new_tokens=24,
                                        learn_per_dataset=15)
        save_report("router", report)
        print(report)

    if args.json:
        record_registry_metrics(measures)
        count = write_json(args.json)
        print(f"merged {count} router benchmark metrics into {args.json}")


if __name__ == "__main__":
    main()
