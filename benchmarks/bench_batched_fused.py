"""Batched fused verification: per-request loop vs dense-fused vs block-sparse.

The dense-fused batch path scores one combined ``(Σnᵢ, Σkᵢ)`` attention
matrix whose cross-request blocks are all ``-inf`` — per-request cost grows
with the *batch's* total KV footprint, so batching gets slower per request
as the batch grows.  The block-sparse path (shared KV arena + per-request
block attention, batched GEMMs) does ``O(Σ nᵢ·kᵢ)`` score work: per-step
cost grows ~linearly in the sum of tree sizes.

This benchmark measures real wall-clock of the three paths over batch sizes
1–16 on the NumPy substrate, plus the op counters (cross-request score
FLOPs, bytes of KV staged per step) that explain the gap.  Results go to
``benchmarks/results/batched_fused.txt`` and the README perf table.
"""

import argparse
import json
import time

import numpy as np
import pytest

from benchmarks.harness import save_report
from repro.obs import REGISTRY
from repro.engine.batched import BatchedTreeVerifier
from repro.model import perf
from repro.model.arena import BatchArena
from repro.model.config import ModelConfig
from repro.model.coupled import CoupledSSM
from repro.model.sampling import SamplingConfig
from repro.model.transformer import TransformerLM
from repro.speculate.expansion import ExpansionConfig, expand_token_tree
from repro.reporting.tables import AsciiTable
from repro.verify.precision import PRECISIONS, ROWS_FALLBACK, ROWS_QUANTIZED
from repro.verify.verifier import TokenTreeVerifier

BATCH_SIZES = (1, 2, 4, 8, 16)
PREFIX_LEN = 96
EXPANSION = ExpansionConfig((3, 2, 2, 1))  # 34-token trees (incl. root)
REPEATS = 5

#: Attention-heavy decode shape: long-ish prefixes over a mid-sized model,
#: the regime the fused verification kernel targets (paper section 5.1).
FUSED_BENCH_CONFIG = ModelConfig(
    vocab_size=96,
    d_model=64,
    n_layers=4,
    n_heads=4,
    max_seq_len=160,
    name="fused-bench-llm",
)


def _build_batch(llm, ssm, n_requests, arena=None):
    """(trees, caches) with identical content for every path."""
    rng = np.random.default_rng(1000 + n_requests)
    factory = arena.new_sequence if arena is not None else llm.new_cache
    trees, caches = [], []
    for _ in range(n_requests):
        prompt = rng.integers(1, llm.config.vocab_size,
                              size=PREFIX_LEN + 1).astype(np.intp)
        cache = factory()
        llm.prefill(prompt[:-1], cache)
        ssm_cache = ssm.new_cache()
        ssm.prefill(prompt[:-1], ssm_cache)
        trees.append(
            expand_token_tree(ssm, int(prompt[-1]), ssm_cache, EXPANSION)
        )
        caches.append(cache)
    return trees, caches


def _time_batch_step(step, caches, repeats=REPEATS):
    """Best-of-``repeats`` wall-clock of one full batch verification step."""
    snapshots = [c.snapshot() for c in caches]

    def restore():
        for cache, snap in zip(caches, snapshots):
            cache.restore(snap)

    best = float("inf")
    results = None
    for _ in range(repeats):
        restore()
        start = time.perf_counter()
        results = step()
        best = min(best, time.perf_counter() - start)
    restore()
    return best, results


def _accepted(results):
    return [r.accepted_tokens for r in results]


def run_comparison(batch_sizes=BATCH_SIZES, repeats=REPEATS):
    """Time the three paths at every batch size; return (table, measures)."""
    llm = TransformerLM(FUSED_BENCH_CONFIG, seed=7)
    ssm = CoupledSSM(llm, alignment=0.8, seed=11, noise_scale=2.0)
    table = AsciiTable(
        ["batch", "Σ tree tok", "loop ms", "dense ms", "block ms",
         "block vs dense", "dense cross-GFLOP", "dense KV-MB/step"],
        title="Batched fused verification: per-request loop vs dense-fused "
              "vs block-sparse (wall-clock per batch step)",
    )
    measures = {}
    for batch in batch_sizes:
        trees, caches = _build_batch(llm, ssm, batch)
        loop_verifier = TokenTreeVerifier(llm)

        def loop_step():
            return [
                loop_verifier.verify_step(tree, cache)
                for tree, cache in zip(trees, caches)
            ]

        loop_s, loop_results = _time_batch_step(loop_step, caches,
                                                repeats=repeats)

        dense_verifier = BatchedTreeVerifier(llm, mode="dense")
        with perf.track() as dense_counters:
            dense_s, dense_results = _time_batch_step(
                lambda: dense_verifier.verify_batch(trees, caches), caches,
                repeats=repeats,
            )

        arena = BatchArena(FUSED_BENCH_CONFIG, max_requests=batch)
        arena_trees, arena_caches = _build_batch(llm, ssm, batch,
                                                 arena=arena)
        block_verifier = BatchedTreeVerifier(llm, mode="block")
        with perf.track() as block_counters:
            block_s, block_results = _time_batch_step(
                lambda: block_verifier.verify_batch(arena_trees,
                                                    arena_caches),
                arena_caches,
                repeats=repeats,
            )

        assert _accepted(dense_results) == _accepted(loop_results)
        assert _accepted(block_results) == _accepted(loop_results)
        assert block_counters.cross_request_score_flops == 0

        n_tokens = sum(len(t) for t in trees)
        measures[batch] = {
            "tokens": n_tokens,
            "loop_s": loop_s,
            "dense_s": dense_s,
            "block_s": block_s,
            "dense_cross_flops":
                dense_counters.cross_request_score_flops // repeats,
            "dense_kv_bytes": dense_counters.kv_bytes_copied // repeats,
            "block_kv_bytes": block_counters.kv_bytes_copied // repeats,
        }
        table.add_row(
            str(batch), str(n_tokens),
            f"{loop_s * 1e3:.1f}", f"{dense_s * 1e3:.1f}",
            f"{block_s * 1e3:.1f}", f"{dense_s / block_s:.2f}x",
            f"{measures[batch]['dense_cross_flops'] / 1e9:.2f}",
            f"{measures[batch]['dense_kv_bytes'] / 1e6:.2f}",
        )
    return table.render(), measures


ABLATION_BATCH = 8


def run_ablation(batch=ABLATION_BATCH, repeats=REPEATS):
    """Allocation + precision ablation on the block-sparse fused path.

    Two axes, both bit-exact by construction:

    * ``reuse_scratch`` on/off — identical accepted tokens; with reuse the
      steady state (every call after the arena-warming first one) performs
      zero tracked hot-path allocations;
    * ``precision`` fp32/fp16/int8 — identical accepted tokens under
      greedy decoding (argmax-stability guard), with the quantized-vs-
      fallback row split recorded per step.
    """
    llm = TransformerLM(FUSED_BENCH_CONFIG, seed=7)
    ssm = CoupledSSM(llm, alignment=0.8, seed=11, noise_scale=2.0)
    arena = BatchArena(FUSED_BENCH_CONFIG, max_requests=batch)
    trees, caches = _build_batch(llm, ssm, batch, arena=arena)
    sampling = SamplingConfig(greedy=True)
    measures = {"batch": batch, "alloc": {}, "precision": {}}
    baseline = None

    table = AsciiTable(
        ["variant", "ms/step", "steady allocs", "steady alloc MB",
         "rows quantized", "rows fp32-fallback"],
        title=f"Block-sparse fused ablation at batch {batch}: scratch "
              "reuse and reduced-precision scoring (accepted tokens "
              "identical in every variant)",
    )

    for label, reuse in (("scratch_on", True), ("scratch_off", False)):
        verifier = BatchedTreeVerifier(llm, sampling, reuse_scratch=reuse)
        step = lambda: verifier.verify_batch(trees, caches)
        _time_batch_step(step, caches, repeats=1)  # warm the arena
        with perf.track() as counters:
            elapsed, results = _time_batch_step(step, caches,
                                                repeats=repeats)
        if baseline is None:
            baseline = _accepted(results)
        assert _accepted(results) == baseline
        measures["alloc"][label] = {
            "s": elapsed,
            "steady_alloc_events": counters.hot_alloc_events // repeats,
            "steady_alloc_bytes": counters.hot_alloc_bytes // repeats,
        }
        table.add_row(
            label, f"{elapsed * 1e3:.1f}",
            str(measures["alloc"][label]["steady_alloc_events"]),
            f"{measures['alloc'][label]['steady_alloc_bytes'] / 1e6:.2f}",
            "-", "-",
        )
    assert measures["alloc"]["scratch_on"]["steady_alloc_events"] == 0

    for precision in PRECISIONS:
        verifier = BatchedTreeVerifier(llm, sampling, precision=precision)
        step = lambda: verifier.verify_batch(trees, caches)
        _time_batch_step(step, caches, repeats=1)  # warm the arena
        quantized_0, fallback_0 = ROWS_QUANTIZED.value, ROWS_FALLBACK.value
        elapsed, results = _time_batch_step(step, caches, repeats=repeats)
        assert _accepted(results) == baseline
        measures["precision"][precision] = {
            "s": elapsed,
            "rows_quantized":
                (ROWS_QUANTIZED.value - quantized_0) // repeats,
            "rows_fallback": (ROWS_FALLBACK.value - fallback_0) // repeats,
        }
        table.add_row(
            precision, f"{elapsed * 1e3:.1f}", "-", "-",
            str(measures["precision"][precision]["rows_quantized"]),
            str(measures["precision"][precision]["rows_fallback"]),
        )
    return table.render(), measures


@pytest.mark.benchmark(group="batched-fused")
def test_batched_fused_paths(benchmark):
    report, measures = benchmark.pedantic(run_comparison, rounds=1,
                                          iterations=1)
    ablation_report, ablation = run_ablation()
    save_report("batched_fused", report + "\n\n" + ablation_report)

    # Warmed scratch-backed verification steps allocate nothing; reduced
    # precision actually quantizes rows (run_ablation itself asserts the
    # accepted tokens match fp32 in every variant).
    assert ablation["alloc"]["scratch_on"]["steady_alloc_events"] == 0
    assert ablation["alloc"]["scratch_off"]["steady_alloc_events"] > 0
    for precision in ("fp16", "int8"):
        assert ablation["precision"][precision]["rows_quantized"] > 0

    # Block-sparse per-step cost grows ~linearly in Σ tree tokens: per-token
    # time at BS=16 stays within 2.5x of BS=1 (dense-fused blows past that —
    # its per-token cost grows with the batch's total KV footprint).
    per_token = {
        b: m["block_s"] / m["tokens"] for b, m in measures.items()
    }
    assert per_token[16] < 2.5 * per_token[1]

    # Headline: >= 2x over dense-fused at batch size 8.
    assert measures[8]["dense_s"] / measures[8]["block_s"] >= 2.0

    # The dense path stages the whole batch KV every step; block-sparse
    # stages nothing.
    assert measures[8]["dense_kv_bytes"] > 0
    assert measures[8]["block_kv_bytes"] == 0


def record_registry_metrics(measures):
    """Mirror the benchmark measures into the metrics registry.

    CI reads the resulting JSON (``repro.bench.fused.*``) instead of
    parsing the ASCII table; gauges hold per-batch-size seconds and the
    dense/block speedup scaled into integer microseconds / millionths so
    the registry's numeric model stays simple.
    """
    for batch, m in measures.items():
        prefix = f"repro.bench.fused.batch{batch}"
        REGISTRY.gauge(f"{prefix}.tokens").set(m["tokens"])
        for key in ("loop_s", "dense_s", "block_s"):
            REGISTRY.gauge(f"{prefix}.{key}").set(m[key])
        REGISTRY.gauge(f"{prefix}.speedup_block_vs_dense").set(
            m["dense_s"] / m["block_s"]
        )
        REGISTRY.gauge(f"{prefix}.dense_cross_flops").set(
            m["dense_cross_flops"]
        )
        REGISTRY.gauge(f"{prefix}.dense_kv_bytes").set(m["dense_kv_bytes"])
        REGISTRY.gauge(f"{prefix}.block_kv_bytes").set(m["block_kv_bytes"])


def record_ablation_metrics(ablation):
    """Mirror the ablation measures into the registry for ``ci_gate.py``.

    The gate reads ``...ablation.alloc.scratch_on.steady_alloc_events``
    (must be zero) and publishes the precision numbers alongside the
    fused-speedup gauges in ``BENCH_ci.json``.
    """
    prefix = "repro.bench.fused.ablation"
    REGISTRY.gauge(f"{prefix}.batch").set(ablation["batch"])
    for label, m in ablation["alloc"].items():
        for key in ("s", "steady_alloc_events", "steady_alloc_bytes"):
            REGISTRY.gauge(f"{prefix}.alloc.{label}.{key}").set(m[key])
    for precision, m in ablation["precision"].items():
        for key in ("s", "rows_quantized", "rows_fallback"):
            REGISTRY.gauge(f"{prefix}.precision.{precision}.{key}").set(
                m[key]
            )


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Batched fused verification benchmark"
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="CI mode: batch sizes 1 and 8 only, fewer repeats",
    )
    parser.add_argument(
        "--json", metavar="PATH", default=None,
        help="write the registry snapshot of the measures as JSON",
    )
    args = parser.parse_args(argv)

    if args.quick:
        report, measures = run_comparison(batch_sizes=(1, 8), repeats=3)
        ablation_report, ablation = run_ablation(repeats=3)
        print(report)
        print()
        print(ablation_report)
    else:
        report, measures = run_comparison()
        ablation_report, ablation = run_ablation()
        save_report("batched_fused", report + "\n\n" + ablation_report)
        print()

    if args.json:
        record_registry_metrics(measures)
        record_ablation_metrics(ablation)
        snapshot = {
            name: value
            for name, value in REGISTRY.snapshot().items()
            if name.startswith("repro.bench.fused.")
        }
        with open(args.json, "w") as fh:
            fh.write(REGISTRY.to_json(snapshot) + "\n")
        print(f"wrote {len(snapshot)} benchmark metrics to {args.json}")


if __name__ == "__main__":
    main()
