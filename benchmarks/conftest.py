"""Benchmark-suite configuration."""

import sys
import os

# Make `benchmarks.harness` importable when pytest is run from the repo root.
sys.path.insert(0, os.path.dirname(os.path.dirname(__file__)))
