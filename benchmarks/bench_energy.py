"""Energy ablation — the paper's section 2 energy argument, quantified.

"Reduced accesses to GPU device memory ... can also directly translate to
decreased energy consumption."  This benchmark prices the measured traces
with the energy model: joules per generated token for incremental decoding
vs SpecInfer, distributed and offloaded.
"""

import pytest

from benchmarks.harness import (
    dataset_prompts,
    incremental_traces,
    run_traces,
    save_report,
    spec_engine,
)
from repro.cluster.energy import EnergyModel, replay_energy
from repro.cluster.models import paper_model
from repro.cluster.parallel import ParallelPlan
from repro.reporting.tables import AsciiTable
from repro.speculate.expansion import ExpansionConfig

DATASET = "Alpaca"


def _build_report():
    prompts = dataset_prompts(DATASET)
    inc_traces = incremental_traces(prompts)
    spec_traces = run_traces(
        spec_engine(DATASET, ExpansionConfig.paper_default()), prompts
    )
    table = AsciiTable(
        ["configuration", "incremental J/token", "SpecInfer J/token",
         "energy saving"],
        title="Energy per generated token (measured traces x energy model)",
    )
    savings = {}
    configurations = (
        ("llama-7b (1 GPU)", paper_model("llama-7b"), False),
        ("opt-30b (4 GPU TP)", paper_model("opt-30b"), False),
        ("opt-30b (offloaded)", paper_model("opt-30b"), True),
    )
    for label, model, offloaded in configurations:
        plan = ParallelPlan(tensor_parallel=4 if "4 GPU" in label else 1)
        energy = EnergyModel(model, plan, offloaded=offloaded)

        def per_token(traces):
            joules = sum(replay_energy(energy, t) for t in traces)
            tokens = sum(t.num_tokens for t in traces)
            return joules / tokens

        inc = per_token(inc_traces)
        spec = per_token(spec_traces)
        savings[label] = inc / spec
        table.add_row(label, f"{inc:.3f}", f"{spec:.3f}",
                      f"{inc / spec:.2f}x")
    return table.render(), savings


@pytest.mark.benchmark(group="energy")
def test_energy_per_token(benchmark):
    report, savings = benchmark.pedantic(_build_report, rounds=1,
                                         iterations=1)
    save_report("energy_per_token", report)
    # Paper shape: fewer decoding steps -> proportionally fewer weight
    # reads -> substantial energy savings, largest where weight movement
    # dominates most (offloading).
    for label, saving in savings.items():
        assert saving > 1.5, (label, saving)
    assert savings["opt-30b (offloaded)"] >= savings["opt-30b (4 GPU TP)"]
