"""Figure 11 — tree-based parallel decoding vs sequence-based decoding.

Paper: decoding the *same* speculated token trees, SpecInfer's fused tree
kernel matches sequence-based decomposition at small batch sizes (both are
memory-bound) and wins up to 1.8x at BS=16 by (1) eliminating redundant
attention computation for shared prefixes and (2) launching one kernel
instead of one per sequence.

Two measurements here:

* modeled per-token latency through the A10 cost model (paper's metric),
* *real* wall-clock of the two decode paths on the NumPy substrate via
  pytest-benchmark (tree decode touches each node once; sequence decode
  recomputes shared prefixes — the redundancy is real, not modeled).
"""

import numpy as np
import pytest

from benchmarks.harness import (
    bench_llm,
    dataset_prompts,
    distributed_simulator,
    run_traces,
    save_report,
    spec_engine,
)
from repro.reporting.tables import AsciiTable
from repro.speculate.expansion import ExpansionConfig
from repro.verify.decode import sequence_parallel_decode, tree_parallel_decode

BATCH_SIZES = (1, 2, 4, 8, 16)
DATASET = "Alpaca"


def _modeled_report():
    sim = distributed_simulator("llama-7b")
    traces = run_traces(
        spec_engine(DATASET, ExpansionConfig.width_sweep(3, depth=8,
                                                         expand_step=2)),
        dataset_prompts(DATASET),
    )
    table = AsciiTable(
        ["decoding"] + [f"BS={b}" for b in BATCH_SIZES],
        title="Figure 11 (llama-7b): per-token latency (ms)",
    )
    tree = [
        sim.replay_many(traces, batch_size=b).per_token_ms
        for b in BATCH_SIZES
    ]
    seq = [
        sim.replay_many(traces, batch_size=b,
                        sequence_based_decoding=True).per_token_ms
        for b in BATCH_SIZES
    ]
    table.add_row("sequence-based", *(f"{v:.1f}" for v in seq))
    table.add_row("tree-based", *(f"{v:.1f}" for v in tree))
    ratios = [s / t for s, t in zip(seq, tree)]
    table.add_row("ratio", *(f"{r:.2f}x" for r in ratios))
    return table.render(), ratios


@pytest.mark.benchmark(group="fig11")
def test_fig11_modeled_latency(benchmark):
    report, ratios = benchmark.pedantic(_modeled_report, rounds=1,
                                        iterations=1)
    save_report("fig11_tree_vs_sequence", report)
    # Paper shape: on par at BS=1, tree wins more as batch grows.
    assert ratios[0] >= 0.95
    assert ratios[-1] > ratios[0]
    assert ratios[-1] > 1.1


def _sample_tree():
    """A branchy token tree over the benchmark model's vocabulary."""
    llm = bench_llm()
    prompt = dataset_prompts(DATASET, n=1)[0]
    cache = llm.new_cache()
    llm.prefill(prompt[:-1], cache)
    from repro.speculate.expansion import expand_token_tree

    tree = expand_token_tree(
        llm, int(prompt[-1]), cache,
        ExpansionConfig((3, 2, 1, 1)),
    )
    return llm, prompt, tree


@pytest.mark.benchmark(group="fig11-kernel")
def test_fig11_tree_decode_wallclock(benchmark):
    """Real wall-clock of the fused tree decode on the NumPy substrate."""
    llm, prompt, tree = _sample_tree()
    cache = llm.new_cache()
    llm.prefill(prompt, cache)
    base = cache.snapshot()

    def run():
        cache.restore(base)
        return tree_parallel_decode(llm, cache, tree)

    benchmark(run)


@pytest.mark.benchmark(group="fig11-kernel")
def test_fig11_sequence_decode_wallclock(benchmark):
    """Real wall-clock of per-sequence decoding of the same tree."""
    llm, prompt, tree = _sample_tree()
    cache = llm.new_cache()
    llm.prefill(prompt, cache)

    def run():
        return sequence_parallel_decode(llm, cache, tree)

    benchmark(run)


def test_fig11_redundancy_is_real():
    """Sequence decoding provably computes more token positions."""
    llm, prompt, tree = _sample_tree()
    cache = llm.new_cache()
    llm.prefill(prompt, cache)
    _, stats = sequence_parallel_decode(llm, cache, tree)
    assert stats.tokens_computed > stats.unique_tokens
    assert stats.num_kernels > 1
