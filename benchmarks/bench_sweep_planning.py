"""Planning sweeps — the deployment questions behind the paper's choices.

Three what-if curves from the cost model:

* tensor-parallel degree vs per-token latency (why LLaMA-7B runs on 1 GPU
  while OPT-30B takes the whole node),
* speculation depth vs per-token latency at Table-1-like alpha (why the
  paper speculates 8 tokens),
* SSM size vs per-token latency (why the SSMs are 100-1000x smaller).
"""

import pytest

from benchmarks.harness import save_report
from repro.cluster.hardware import single_node_cluster
from repro.cluster.models import paper_model
from repro.cluster.sweep import (
    best_point,
    sweep_speculation_depth,
    sweep_ssm_size,
    sweep_tensor_parallel,
)
from repro.reporting.tables import AsciiTable


def _build_report():
    cluster = single_node_cluster()
    sections = []

    tp_table = AsciiTable(
        ["model"] + [f"tp={t}" for t in (1, 2, 4)],
        title="Sweep: incremental per-token latency (ms) vs TP degree",
    )
    for name in ("llama-7b", "opt-13b", "opt-30b"):
        points = {int(p.x): p.latency * 1e3
                  for p in sweep_tensor_parallel(paper_model(name), cluster)}
        tp_table.add_row(
            name,
            *(f"{points[t]:.1f}" if t in points else "-" for t in (1, 2, 4)),
        )
    sections.append(tp_table.render())

    depth_points = sweep_speculation_depth(
        paper_model("llama-7b"), paper_model("llama-68m"), cluster,
        alpha=0.7,
    )
    depth_best = best_point(depth_points)
    depth_table = AsciiTable(
        ["depth", "per-token ms"],
        title="Sweep: speculation depth (alpha=0.7, llama-7b + llama-68m)",
    )
    for point in depth_points[:12]:
        marker = " <- best" if point.x == depth_best.x else ""
        depth_table.add_row(int(point.x),
                            f"{point.latency * 1e3:.2f}{marker}")
    sections.append(depth_table.render())

    size_points = sweep_ssm_size(
        paper_model("llama-7b"), cluster,
        {0.01: 0.55, 0.05: 0.7, 0.15: 0.8, 0.5: 0.9},
    )
    size_best = best_point(size_points)
    size_table = AsciiTable(
        ["ssm scale", "assumed alpha", "per-token ms"],
        title="Sweep: SSM size vs latency (llama-7b verifier)",
    )
    for point in size_points:
        alpha = point.label.split("alpha=")[1].rstrip(")")
        marker = " <- best" if point.x == size_best.x else ""
        size_table.add_row(point.x, alpha,
                           f"{point.latency * 1e3:.2f}{marker}")
    sections.append(size_table.render())
    return "\n\n".join(sections), depth_best, size_best


@pytest.mark.benchmark(group="sweeps")
def test_planning_sweeps(benchmark):
    report, depth_best, size_best = benchmark.pedantic(
        _build_report, rounds=1, iterations=1
    )
    save_report("sweep_planning", report)
    # The paper's choices fall out of the model: depth near 8, tiny SSM.
    assert 4 <= depth_best.x <= 14
    assert size_best.x <= 0.15
