"""Perf-regression gate for CI.

Six checks, all driven by the metrics registry rather than parsed
benchmark tables:

1. **Fused speedup** — reads the ``BENCH_ci.json`` written by
   ``bench_batched_fused.py --quick --json`` and fails when the
   block-sparse vs dense-fused speedup at batch 8 drops below
   ``MIN_FUSED_SPEEDUP``.
2. **Benchmark steady-state allocations** — from the same JSON, the
   ablation's ``scratch_on`` variant must report zero tracked hot-path
   allocations per warmed verification step (the precision-ablation
   gauges ride along in the artifact for trend tracking).
3. **Pipeline steady-state allocations** — drives a seeded fused-backend
   decode batch end to end and fails if ``repro.engine.tick.allocs``
   grows at all after the warm-up ticks: the whole
   speculate→fit→verify→commit tick must be allocation-free once the
   scratch arenas are warm.
4. **Verified tokens per step** — runs the seeded observability workload
   (deterministic: fixed seeds, cost-model time only) and compares the
   ``repro.engine.tokens_per_step`` histogram mean against the committed
   baseline ``benchmarks/results/baseline_ci.json``.  A drop below
   ``baseline * (1 - TOKENS_PER_STEP_SLACK)`` fails the job.
5. **Planner vs static trees** — from the ``repro.bench.planner.*``
   gauges ``bench_planner.py --quick --json`` merges into the same
   ``BENCH_ci.json``: the dynamic tree planner's modeled tokens/sec must
   reach ``PLANNER_STATIC_SLACK`` of the *best* static expansion config
   at batch 1 and batch 8, and strictly beat every static config on the
   acceptance-drift workload (where no static tree wins both halves).
6. **Routed speculator pool vs fixed SSMs** — from the
   ``repro.bench.router.*`` gauges ``bench_router.py --quick --json``
   merges into the same ``BENCH_ci.json``: the learned router's modeled
   tokens/sec must reach ``ROUTER_FIXED_SLACK`` of the *best* fixed
   single-SSM baseline on every workload, and strictly beat every fixed
   member on the mixed-workload sweep (where no single draft model is
   competent everywhere).

Regenerate the baseline after an intentional algorithmic change with::

    PYTHONPATH=src:. python benchmarks/ci_gate.py --write-baseline

Exit codes: 0 pass, 1 regression, 2 usage/infrastructure error.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

#: Gate: block-sparse must beat dense-fused by at least this much at batch 8.
#: Measured 5.4-5.8x after the zero-allocation work; 4.0 leaves headroom for
#: CI-runner jitter while still catching a return to the pre-scratch floor.
MIN_FUSED_SPEEDUP = 4.0

#: Ticks driven before the allocation gate starts counting: arena growth and
#: first-mask construction all happen here.
ALLOC_WARMUP_TICKS = 5

#: Relative slack on the tokens/step baseline.  The workload is seeded and
#: deterministic on one platform; the slack absorbs BLAS/platform jitter in
#: float reductions across CI runners, not algorithmic drift.
TOKENS_PER_STEP_SLACK = 0.01

#: Gate: planner tokens/sec must be >= this fraction of the best static
#: expansion config at each gated batch size.  The planner pays a few
#: EWMA-warm-up ticks before its estimate converges; 0.95 absorbs that
#: cold-start cost while still catching a planner that picks bad trees.
PLANNER_STATIC_SLACK = 0.95

#: Batch sizes the planner-vs-static gate checks in the quick benchmark.
PLANNER_GATE_BATCHES = (1, 8)

#: Gate: routed tokens/sec must be >= this fraction of the best *fixed*
#: single-SSM baseline on every individual workload.  The frozen router
#: still pays for any exploration misassignments pinned during the cold
#: epoch; 0.97 absorbs that while catching a router that learned the
#: wrong specialist for a workload.
ROUTER_FIXED_SLACK = 0.97

BASELINE_PATH = os.path.join(
    os.path.dirname(__file__), "results", "baseline_ci.json"
)


def measure_tokens_per_step() -> dict:
    """Verified-tokens-per-step stats for the seeded CI workload."""
    from repro.obs import REGISTRY, reset_observability
    from repro.obs.workload import WorkloadSpec, run_observed_workload

    reset_observability()
    run_observed_workload(WorkloadSpec())
    snap = REGISTRY.snapshot()["repro.engine.tokens_per_step"]
    steps = int(snap["count"])
    if steps == 0:
        raise RuntimeError("workload recorded no verification steps")
    return {
        "steps": steps,
        "tokens": snap["sum"],
        "tokens_per_step": snap["sum"] / steps,
    }


def gate_fused_speedup(bench_json: str) -> list:
    """Failure messages from the fused-benchmark metrics file."""
    with open(bench_json) as fh:
        metrics = json.load(fh)
    key = "repro.bench.fused.batch8.speedup_block_vs_dense"
    if key not in metrics:
        raise RuntimeError(f"{bench_json} is missing {key}")
    speedup = float(metrics[key]["value"])
    print(f"fused speedup at batch 8: {speedup:.2f}x "
          f"(gate: >= {MIN_FUSED_SPEEDUP:.1f}x)")
    if speedup < MIN_FUSED_SPEEDUP:
        return [f"fused speedup {speedup:.2f}x is below the "
                f"{MIN_FUSED_SPEEDUP:.1f}x gate"]
    return []


def gate_bench_allocs(bench_json: str) -> list:
    """Failure messages from the benchmark's allocation/precision ablation."""
    with open(bench_json) as fh:
        metrics = json.load(fh)
    key = "repro.bench.fused.ablation.alloc.scratch_on.steady_alloc_events"
    if key not in metrics:
        raise RuntimeError(f"{bench_json} is missing {key}")
    allocs = int(metrics[key]["value"])
    for precision in ("fp16", "int8"):
        prefix = f"repro.bench.fused.ablation.precision.{precision}"
        quantized = int(metrics[f"{prefix}.rows_quantized"]["value"])
        fallback = int(metrics[f"{prefix}.rows_fallback"]["value"])
        print(f"{precision} draft scoring: {quantized} rows quantized, "
              f"{fallback} fp32 fallbacks per step")
    print(f"warmed verification-step allocations: {allocs} (gate: == 0)")
    if allocs:
        return [f"warmed block-sparse verification step performed "
                f"{allocs} tracked allocations (gate: 0)"]
    return []


def measure_steady_state_tick_allocs() -> dict:
    """``repro.engine.tick.allocs`` growth after warm-up on a seeded batch."""
    import numpy as np

    from repro.engine.generation import GenerationConfig
    from repro.engine.pipeline import (
        DecodePipeline,
        DecodeState,
        FusedBackend,
    )
    from repro.model.config import ModelConfig
    from repro.model.coupled import CoupledSSM
    from repro.model.sampling import SamplingConfig
    from repro.model.transformer import TransformerLM
    from repro.obs import REGISTRY, reset_observability
    from repro.speculate.expansion import ExpansionConfig
    from repro.speculate.speculator import Speculator

    reset_observability()
    llm = TransformerLM(
        ModelConfig(vocab_size=64, d_model=32, n_layers=2, n_heads=4,
                    max_seq_len=96, name="ci-alloc-gate"),
        seed=42,
    )
    rng = np.random.default_rng(0)
    states = []
    for r in range(3):
        speculator = Speculator(
            [CoupledSSM(llm, alignment=0.9, seed=7, noise_scale=2.0)],
            ExpansionConfig((1, 2, 1)),
        )
        prompt = rng.integers(1, llm.config.vocab_size,
                              size=5 + r).astype(np.intp)
        states.append(DecodeState(
            llm, prompt,
            GenerationConfig(max_new_tokens=40,
                             sampling=SamplingConfig(greedy=True),
                             seed=r),
            speculator=speculator,
        ))
    pipeline = DecodePipeline(llm, backend=FusedBackend(llm))
    live = lambda: [s for s in states if not s.finished]
    for _ in range(ALLOC_WARMUP_TICKS):
        if live():
            pipeline.tick(live())
    before = REGISTRY.snapshot()["repro.engine.tick.allocs"]["value"]
    steady_ticks = 0
    while live():
        pipeline.tick(live())
        steady_ticks += 1
    if steady_ticks == 0:
        raise RuntimeError("alloc-gate batch finished during warm-up")
    allocs = REGISTRY.snapshot()["repro.engine.tick.allocs"]["value"] - before
    return {"steady_ticks": steady_ticks, "allocs": allocs}


def gate_tick_allocs() -> list:
    """Failure messages from the steady-state pipeline allocation gate."""
    measured = measure_steady_state_tick_allocs()
    print(f"steady-state tick.allocs: {measured['allocs']} over "
          f"{measured['steady_ticks']} post-warm-up ticks (gate: == 0)")
    if measured["allocs"]:
        return [f"steady-state pipeline ticks performed "
                f"{measured['allocs']} tracked allocations (gate: 0)"]
    return []


def gate_planner(bench_json: str) -> list:
    """Failure messages from the planner-vs-static benchmark metrics."""
    with open(bench_json) as fh:
        metrics = json.load(fh)
    failures = []
    for batch in PLANNER_GATE_BATCHES:
        key = f"repro.bench.planner.batch{batch}.planner_vs_best_static"
        if key not in metrics:
            raise RuntimeError(f"{bench_json} is missing {key}")
        ratio = float(metrics[key]["value"])
        print(f"planner vs best static at batch {batch}: {ratio:.3f}x "
              f"(gate: >= {PLANNER_STATIC_SLACK:.2f}x)")
        if ratio < PLANNER_STATIC_SLACK:
            failures.append(
                f"planner tokens/sec at batch {batch} is {ratio:.3f}x the "
                f"best static tree (gate: >= {PLANNER_STATIC_SLACK:.2f}x)"
            )
    planner_key = "repro.bench.planner.drift.planner.tokens_per_sec"
    static_key = "repro.bench.planner.drift.best_static.tokens_per_sec"
    if planner_key not in metrics or static_key not in metrics:
        raise RuntimeError(f"{bench_json} is missing the drift metrics")
    planner_tps = float(metrics[planner_key]["value"])
    static_tps = float(metrics[static_key]["value"])
    print(f"acceptance drift: planner {planner_tps:.1f} tok/s vs best "
          f"static {static_tps:.1f} tok/s (gate: strictly greater)")
    if not planner_tps > static_tps:
        failures.append(
            f"planner {planner_tps:.1f} tok/s does not strictly beat the "
            f"best static tree {static_tps:.1f} tok/s under acceptance drift"
        )
    return failures


def gate_router(bench_json: str) -> list:
    """Failure messages from the routed-pool-vs-fixed benchmark metrics."""
    with open(bench_json) as fh:
        metrics = json.load(fh)
    prefix = "repro.bench.router."
    failures = []
    workloads = sorted({
        name[len(prefix) + len("workload."):].split(".")[0]
        for name in metrics
        if name.startswith(prefix + "workload.")
    })
    if not workloads:
        raise RuntimeError(
            f"{bench_json} is missing the {prefix}workload.* metrics"
        )
    for workload in workloads:
        key = f"{prefix}workload.{workload}.routed_vs_best_fixed"
        if key not in metrics:
            raise RuntimeError(f"{bench_json} is missing {key}")
        ratio = float(metrics[key]["value"])
        print(f"routed vs best fixed SSM on {workload}: {ratio:.3f}x "
              f"(gate: >= {ROUTER_FIXED_SLACK:.2f}x)")
        if ratio < ROUTER_FIXED_SLACK:
            failures.append(
                f"routed tokens/sec on {workload} is {ratio:.3f}x the best "
                f"fixed SSM (gate: >= {ROUTER_FIXED_SLACK:.2f}x)"
            )
    routed_key = f"{prefix}mixed.routed.tokens_per_sec"
    if routed_key not in metrics:
        raise RuntimeError(f"{bench_json} is missing {routed_key}")
    routed_tps = float(metrics[routed_key]["value"])
    fixed = {
        name[len(prefix) + len("mixed."):-len(".tokens_per_sec")]:
            float(value["value"])
        for name, value in metrics.items()
        if name.startswith(prefix + "mixed.fixed_")
        and name.endswith(".tokens_per_sec")
    }
    if not fixed:
        raise RuntimeError(
            f"{bench_json} is missing the {prefix}mixed.fixed_* metrics"
        )
    for member, member_tps in sorted(fixed.items()):
        print(f"mixed sweep: routed {routed_tps:.1f} tok/s vs "
              f"{member} {member_tps:.1f} tok/s (gate: strictly greater)")
        if not routed_tps > member_tps:
            failures.append(
                f"routed {routed_tps:.1f} tok/s does not strictly beat "
                f"{member} {member_tps:.1f} tok/s on the mixed sweep"
            )
    return failures


def gate_tokens_per_step(baseline_path: str) -> list:
    """Failure messages from the tokens/step comparison."""
    with open(baseline_path) as fh:
        baseline = json.load(fh)
    measured = measure_tokens_per_step()
    base = float(baseline["tokens_per_step"])
    now = measured["tokens_per_step"]
    floor = base * (1.0 - TOKENS_PER_STEP_SLACK)
    print(f"verified tokens/step: {now:.4f} over {measured['steps']} steps "
          f"(baseline {base:.4f}, floor {floor:.4f})")
    if now < floor:
        return [f"verified tokens/step {now:.4f} regressed below the "
                f"baseline floor {floor:.4f}"]
    return []


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--bench-json", default=None,
        help="BENCH_ci.json from bench_batched_fused.py --quick --json",
    )
    parser.add_argument(
        "--baseline", default=BASELINE_PATH,
        help="committed tokens/step baseline (default: %(default)s)",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="measure tokens/step and rewrite the baseline file",
    )
    args = parser.parse_args(argv)

    if args.write_baseline:
        stats = measure_tokens_per_step()
        payload = dict(stats, workload="obs-default-seed7")
        with open(args.baseline, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote baseline {payload['tokens_per_step']:.4f} "
              f"tokens/step to {args.baseline}")
        return 0

    failures = []
    if args.bench_json:
        failures += gate_fused_speedup(args.bench_json)
        failures += gate_bench_allocs(args.bench_json)
        failures += gate_planner(args.bench_json)
        failures += gate_router(args.bench_json)
    failures += gate_tick_allocs()
    failures += gate_tokens_per_step(args.baseline)

    if failures:
        for message in failures:
            print(f"PERF REGRESSION: {message}", file=sys.stderr)
        return 1
    print("perf gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
