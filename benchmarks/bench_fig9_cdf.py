"""Figure 9 — CDF of average verified tokens per step vs tree width.

Paper: for Alpaca prompts and expansion ⟨1,1,k,1,1,1,1,1⟩, wider trees
stochastically dominate narrower ones: the per-request average number of
verified tokens per decoding step shifts right as width grows (1.2-1.5x
fewer steps for greedy, 1.3-1.4x for stochastic, width 5 vs 1).
"""

import numpy as np
import pytest

from benchmarks.harness import (
    dataset_prompts,
    run_traces,
    save_report,
    spec_engine,
)
from repro.metrics.stats import empirical_cdf
from repro.reporting.tables import render_series
from repro.speculate.expansion import ExpansionConfig

WIDTHS = (1, 2, 3, 4, 5)
DATASET = "Alpaca"
QUANTILES = (0.25, 0.5, 0.75)
N_PROMPTS = 8


def _per_request_means(width: int, greedy: bool) -> list:
    engine = spec_engine(DATASET, ExpansionConfig.width_sweep(width, depth=8,
                                                              expand_step=2))
    traces = run_traces(engine, dataset_prompts(DATASET, n=N_PROMPTS),
                        greedy=greedy)
    return [t.mean_tokens_per_step for t in traces]


def _build_report(greedy: bool):
    mode = "greedy" if greedy else "stochastic"
    lines = [
        f"Figure 9 ({mode} decoding): quantiles of per-request average "
        f"verified tokens per step"
    ]
    medians = {}
    for width in WIDTHS:
        means = _per_request_means(width, greedy)
        cdf = empirical_cdf(means)
        lines.append(
            render_series(
                f"width={width}",
                [f"p{int(q * 100)}" for q in QUANTILES],
                [cdf.quantile(q) for q in QUANTILES],
            )
        )
        medians[width] = cdf.quantile(0.5)
    return "\n".join(lines), medians


@pytest.mark.benchmark(group="fig9")
def test_fig9_greedy_cdf(benchmark):
    report, medians = benchmark.pedantic(_build_report, args=(True,),
                                         rounds=1, iterations=1)
    save_report("fig9_greedy_cdf", report)
    # Paper shape: width 5 dominates width 1 (tree reduces decoding steps).
    assert medians[5] > medians[1]
    assert medians[5] / medians[1] > 1.05


@pytest.mark.benchmark(group="fig9")
def test_fig9_stochastic_cdf(benchmark):
    report, medians = benchmark.pedantic(_build_report, args=(False,),
                                         rounds=1, iterations=1)
    save_report("fig9_stochastic_cdf", report)
    assert medians[5] > medians[1] * 0.95
