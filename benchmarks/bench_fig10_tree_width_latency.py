"""Figure 10 — end-to-end latency vs tree width across batch sizes.

Paper: LLaMA-7B / LLaMA-68M.  At BS=1-2, wider trees keep reducing
per-token latency (spare GPU resources verify more tokens for free); at
BS>=4 wide trees start *hurting* because verification compute is no longer
free, and width 2-3 is optimal.
"""

import pytest

from benchmarks.harness import (
    dataset_prompts,
    distributed_simulator,
    run_traces,
    save_report,
    spec_engine,
)
from repro.reporting.tables import AsciiTable
from repro.speculate.expansion import ExpansionConfig

WIDTHS = (1, 2, 3, 4, 5)
BATCH_SIZES = (1, 2, 4, 8, 16)
DATASET = "Alpaca"


def _build_report():
    sim = distributed_simulator("llama-7b")
    traces_by_width = {
        w: run_traces(
            spec_engine(
                DATASET, ExpansionConfig.width_sweep(w, depth=8,
                                                     expand_step=2)
            ),
            dataset_prompts(DATASET),
        )
        for w in WIDTHS
    }
    table = AsciiTable(
        ["tree width"] + [f"BS={b}" for b in BATCH_SIZES],
        title="Figure 10 (llama-7b): per-token latency (ms) vs tree width",
    )
    grid = {}
    for width in WIDTHS:
        grid[width] = [
            sim.replay_many(traces_by_width[width],
                            batch_size=b).per_token_ms
            for b in BATCH_SIZES
        ]
        table.add_row(f"width={width}", *(f"{v:.1f}" for v in grid[width]))
    return table.render(), grid


@pytest.mark.benchmark(group="fig10")
def test_fig10_tree_width_latency(benchmark):
    report, grid = benchmark.pedantic(_build_report, rounds=1, iterations=1)
    save_report("fig10_tree_width_latency", report)
    # Paper shape 1: at BS=1 widening the tree does not hurt (more verified
    # tokens for free in the memory-bound regime).
    assert grid[5][0] <= grid[1][0] * 1.1
    # Paper shape 2: at BS=16 the widest tree is no longer the best width —
    # verification compute eats the gains.
    best_width_bs16 = min(WIDTHS, key=lambda w: grid[w][-1])
    assert best_width_bs16 < 5 or grid[5][-1] > grid[best_width_bs16][0]
    # Paper shape 3: latency grows with batch size for every width.
    for width in WIDTHS:
        assert grid[width][-1] > grid[width][0]
