"""Dynamic tree planner vs static expansion configurations.

The planner's claim is *robustness*: at any one operating point a
well-chosen static tree is near-optimal, but no single static tree is
near-optimal across operating points — batch size moves the verify-side
roofline knee, and acceptance drift moves the useful speculation depth.
This benchmark measures both:

* **steady sweep** — batches 1–16, fixed SSM/LLM alignment: the planner
  must stay within a few percent of the *best* static configuration at
  small batches (the CI gate pins >= 0.95x at its gated batch sizes) and
  win outright at large ones, each static config being best somewhere;
* **acceptance drift** — alignment drops mid-run (a boosted SSM leaving
  its competence pocket): deep trees win the first half, shallow trees
  the second, so no static tree wins both; the planner re-solves per tick
  and must strictly beat every static config overall.

Every variant emits bit-identical greedy tokens (asserted); only
*tokens per second* differs.  Seconds are **modeled** seconds from the
paper-scale hardware cost model (LLaMA-7B verify + LLaMA-68M draft on one
A10 node, the same :class:`~repro.cluster.cost_model.LatencyModel` the
planner optimizes against), priced from each tick's realized step traces —
wall-clock of the NumPy toy substrate would only measure the substrate.
Results are deterministic, so CI gates on them (``ci_gate.py``).
"""

import argparse
import json
import os

import numpy as np
import pytest

from benchmarks.harness import save_report
from repro.cluster.cost_model import LatencyModel
from repro.cluster.hardware import single_node_cluster
from repro.cluster.models import paper_model
from repro.cluster.parallel import ParallelPlan
from repro.engine.generation import GenerationConfig
from repro.engine.pipeline import DecodePipeline, DecodeState, FusedBackend
from repro.model.config import ModelConfig
from repro.model.coupled import CoupledSSM
from repro.model.transformer import TransformerLM
from repro.obs import REGISTRY
from repro.reporting.tables import AsciiTable
from repro.speculate.expansion import ExpansionConfig
from repro.speculate.planner import TreePlanner
from repro.speculate.speculator import Speculator

BATCH_SIZES = (1, 2, 4, 8, 16)
QUICK_BATCH_SIZES = (1, 8)
DRIFT_BATCH = 8
PROMPT_LEN = 12
STEADY_ALIGNMENT = 0.9
DRIFT_START_ALIGNMENT = 0.95
DRIFT_END_ALIGNMENT = 0.25

#: Static comparison set: each entry is near-optimal somewhere (shallow
#: chains at low acceptance / large batch, deep or wide trees at high
#: acceptance / small batch), none everywhere.
STATIC_CONFIGS = (
    ("chain2", ExpansionConfig.sequence(2)),
    ("chain4", ExpansionConfig.sequence(4)),
    ("chain8", ExpansionConfig.sequence(8)),
    ("paper", ExpansionConfig.paper_default()),
    ("wide", ExpansionConfig((4, 2, 1, 1))),
)

PLANNER_BENCH_CONFIG = ModelConfig(
    vocab_size=96,
    d_model=48,
    n_layers=3,
    n_heads=4,
    max_seq_len=512,
    name="planner-bench-llm",
)


def _cost_models():
    cluster = single_node_cluster()
    plan = ParallelPlan(tensor_parallel=1, pipeline_stages=1)
    return (
        LatencyModel(paper_model("llama-7b"), plan, cluster),
        LatencyModel(paper_model("llama-68m"), plan, cluster),
    )


def _price_tick(llm_cost, ssm_cost, traces):
    """Modeled seconds of one tick from the advanced states' step traces.

    One fused verification pass over the batch (scored positions and KV
    reads summed across requests) plus the level-synchronous draft phase
    (the deepest request's SSM step count, each level one batched draft
    decode).
    """
    scored = sum(t.llm_tokens_scored for t in traces)
    context = sum(t.prefix_len + t.llm_tokens_scored for t in traces)
    seconds = llm_cost.step_latency(scored, context)
    levels = max((t.ssm_steps for t in traces), default=0)
    if levels:
        live = len(traces)
        prefix = sum(t.prefix_len for t in traces)
        seconds += levels * ssm_cost.step_latency(live, prefix + live)
    return seconds


def run_variant(batch, max_new_tokens, config=None, planner=None,
                drift=False):
    """Serve one batch to completion; return tokens, modeled seconds, halves.

    Exactly one of ``config`` (a static :class:`ExpansionConfig`) and
    ``planner`` (a :class:`TreePlanner`) drives speculation.  With
    ``drift=True`` every SSM's alignment drops from
    ``DRIFT_START_ALIGNMENT`` to ``DRIFT_END_ALIGNMENT`` once half the
    batch's token budget has committed.
    """
    llm = TransformerLM(PLANNER_BENCH_CONFIG, seed=7)
    alignment = DRIFT_START_ALIGNMENT if drift else STEADY_ALIGNMENT
    states, ssms = [], []
    for i in range(batch):
        rng = np.random.default_rng(1000 + i)
        prompt = rng.integers(
            1, PLANNER_BENCH_CONFIG.vocab_size, size=PROMPT_LEN
        ).astype(np.intp)
        ssm = CoupledSSM(llm, alignment=alignment, seed=11, noise_scale=2.0)
        speculator = Speculator(
            [ssm], config or ExpansionConfig.paper_default()
        )
        states.append(DecodeState(
            llm, prompt,
            GenerationConfig(max_new_tokens=max_new_tokens,
                             stop_on_eos=False),
            speculator=speculator,
        ))
        ssms.append(ssm)
    pipeline = DecodePipeline(llm, FusedBackend(llm), planner=planner)
    llm_cost, ssm_cost = _cost_models()
    total_budget = batch * max_new_tokens
    flipped = not drift
    # (tokens, seconds) before and after the drift flip.
    halves = [[0, 0.0], [0, 0.0]]
    ticks = 0
    while not all(s.finished for s in states):
        if not flipped and sum(len(s.tokens) for s in states) >= (
                total_budget // 2):
            for ssm in ssms:
                ssm.alignment = DRIFT_END_ALIGNMENT
            flipped = True
        outcomes = pipeline.tick(states)
        ticks += 1
        traces = [o.state.steps[-1] for o in outcomes if o.advanced]
        seconds = _price_tick(llm_cost, ssm_cost, traces)
        emitted = sum(len(o.emitted) for o in outcomes)
        half = 1 if (drift and flipped) else 0
        halves[half][0] += emitted
        halves[half][1] += seconds
    tokens = sum(len(s.tokens) for s in states)
    seconds = halves[0][1] + halves[1][1]
    return {
        "tokens": tokens,
        "seconds": seconds,
        "tokens_per_sec": tokens / seconds,
        "ticks": ticks,
        "halves": halves,
        "outputs": [list(s.tokens) for s in states],
    }


def run_steady_sweep(batch_sizes=BATCH_SIZES, max_new_tokens=48):
    """Static configs vs planner at a fixed alignment, over batch sizes.

    The horizon must be long enough that a batch-1 run is many ticks:
    short horizons measure the planner's cold start plus tick
    quantization (24 tokens is ~6 ticks), not its steady state.  The
    quick/CI variant keeps a short horizon and compensates with the
    gate's 0.95x slack.
    """
    table = AsciiTable(
        ["batch"]
        + [f"{name} tok/s" for name, _ in STATIC_CONFIGS]
        + ["planner tok/s", "planner vs best static"],
        title="Dynamic tree planner vs static expansion configs "
              "(modeled tokens/sec, steady acceptance)",
    )
    measures = {}
    for batch in batch_sizes:
        row = {}
        outputs = None
        for name, config in STATIC_CONFIGS:
            result = run_variant(batch, max_new_tokens, config=config)
            row[name] = result["tokens_per_sec"]
            if outputs is None:
                outputs = result["outputs"]
            assert result["outputs"] == outputs, (
                f"greedy parity violated by static {name} at batch {batch}"
            )
        planned = run_variant(batch, max_new_tokens,
                              planner=TreePlanner.default())
        assert planned["outputs"] == outputs, (
            f"greedy parity violated by the planner at batch {batch}"
        )
        row["planner"] = planned["tokens_per_sec"]
        best_static = max(row[name] for name, _ in STATIC_CONFIGS)
        measures[batch] = {
            **row,
            "best_static": best_static,
            "planner_vs_best_static": row["planner"] / best_static,
        }
        table.add_row(
            str(batch),
            *[f"{row[name]:.1f}" for name, _ in STATIC_CONFIGS],
            f"{row['planner']:.1f}",
            f"{row['planner'] / best_static:.3f}x",
        )
    return table.render(), measures


def run_drift(batch=DRIFT_BATCH, max_new_tokens=32):
    """Mid-run acceptance drift: deep trees win half 1, shallow half 2."""
    table = AsciiTable(
        ["variant", "tok/s overall", "tok/s half 1", "tok/s half 2"],
        title=f"Acceptance drift (alignment {DRIFT_START_ALIGNMENT} -> "
              f"{DRIFT_END_ALIGNMENT} mid-run) at batch {batch}",
    )
    measures = {}
    outputs = None

    def record(name, result, replans=0):
        h1, h2 = result["halves"]
        measures[name] = {
            "tokens_per_sec": result["tokens_per_sec"],
            "half1_tokens_per_sec": h1[0] / h1[1],
            "half2_tokens_per_sec": h2[0] / h2[1],
            "replans": replans,
        }
        table.add_row(
            name,
            f"{result['tokens_per_sec']:.1f}",
            f"{h1[0] / h1[1]:.1f}",
            f"{h2[0] / h2[1]:.1f}",
        )

    for name, config in STATIC_CONFIGS:
        result = run_variant(batch, max_new_tokens, config=config,
                             drift=True)
        if outputs is None:
            outputs = result["outputs"]
        assert result["outputs"] == outputs, (
            f"greedy parity violated by static {name} under drift"
        )
        record(name, result)
    replans_before = REGISTRY.counter("repro.planner.replans").value
    planned = run_variant(batch, max_new_tokens,
                          planner=TreePlanner.default(), drift=True)
    assert planned["outputs"] == outputs, (
        "greedy parity violated by the planner under drift"
    )
    record("planner", planned,
           replans=REGISTRY.counter("repro.planner.replans").value
           - replans_before)
    measures["best_static"] = max(
        measures[name]["tokens_per_sec"] for name, _ in STATIC_CONFIGS
    )
    return table.render(), measures


@pytest.mark.benchmark(group="planner")
def test_planner_beats_static(benchmark):
    # Same operating points as the CI gate (quick batches, quick horizon):
    # this test and ci_gate.gate_planner enforce one contract.
    report, steady = benchmark.pedantic(
        lambda: run_steady_sweep(batch_sizes=QUICK_BATCH_SIZES,
                                 max_new_tokens=16),
        rounds=1, iterations=1,
    )
    drift_report, drift = run_drift()
    save_report("planner", report + "\n\n" + drift_report)
    for batch, m in steady.items():
        assert m["planner_vs_best_static"] >= 0.95
    assert drift["planner"]["tokens_per_sec"] > drift["best_static"]


def record_registry_metrics(steady, drift):
    """Mirror the measures into ``repro.bench.planner.*`` for ``ci_gate``."""
    for batch, m in steady.items():
        prefix = f"repro.bench.planner.batch{batch}"
        for name, _ in STATIC_CONFIGS:
            REGISTRY.gauge(f"{prefix}.static_{name}.tokens_per_sec").set(
                round(m[name], 3)
            )
        REGISTRY.gauge(f"{prefix}.planner.tokens_per_sec").set(
            round(m["planner"], 3)
        )
        REGISTRY.gauge(f"{prefix}.best_static.tokens_per_sec").set(
            round(m["best_static"], 3)
        )
        REGISTRY.gauge(f"{prefix}.planner_vs_best_static").set(
            round(m["planner_vs_best_static"], 6)
        )
    for name in [n for n, _ in STATIC_CONFIGS] + ["planner"]:
        m = drift[name]
        prefix = f"repro.bench.planner.drift.{name}"
        for key in ("tokens_per_sec", "half1_tokens_per_sec",
                    "half2_tokens_per_sec"):
            REGISTRY.gauge(f"{prefix}.{key}").set(round(m[key], 3))
    REGISTRY.gauge("repro.bench.planner.drift.best_static.tokens_per_sec"
                   ).set(round(drift["best_static"], 3))
    REGISTRY.gauge("repro.bench.planner.drift.planner.replans").set(
        drift["planner"]["replans"]
    )


def write_json(path):
    """Merge ``repro.bench.planner.*`` gauges into ``path``.

    The perf-smoke job runs several benchmarks into one ``BENCH_ci.json``;
    merging (instead of overwriting) lets ``ci_gate.py`` read every gate's
    inputs from a single artifact.
    """
    merged = {}
    if os.path.exists(path):
        with open(path) as fh:
            merged = json.load(fh)
    snapshot = {
        name: value
        for name, value in REGISTRY.snapshot().items()
        if name.startswith("repro.bench.planner.")
    }
    merged.update(snapshot)
    with open(path, "w") as fh:
        fh.write(REGISTRY.to_json(merged) + "\n")
    return len(snapshot)


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Dynamic tree planner benchmark"
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="CI mode: batch sizes 1 and 8, shorter generations",
    )
    parser.add_argument(
        "--json", metavar="PATH", default=None,
        help="merge the planner benchmark gauges into this JSON file",
    )
    args = parser.parse_args(argv)

    if args.quick:
        report, steady = run_steady_sweep(
            batch_sizes=QUICK_BATCH_SIZES, max_new_tokens=16
        )
        drift_report, drift = run_drift(max_new_tokens=24)
        print(report)
        print()
        print(drift_report)
    else:
        report, steady = run_steady_sweep()
        drift_report, drift = run_drift()
        save_report("planner", report + "\n\n" + drift_report)
        print()

    if args.json:
        record_registry_metrics(steady, drift)
        count = write_json(args.json)
        print(f"merged {count} planner benchmark metrics into {args.json}")


if __name__ == "__main__":
    main()
