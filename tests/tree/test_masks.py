"""Tests for linearization, topology-aware masks and tree positions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tree.masks import linearize, topology_causal_mask, tree_positions
from repro.tree.token_tree import TokenTree

NEG_INF = float("-inf")


def chain_tree(tokens):
    tree = TokenTree(tokens[0])
    tree.add_path(tokens[1:])
    return tree


@st.composite
def random_tree(draw):
    tree = TokenTree(draw(st.integers(0, 9)))
    for _ in range(draw(st.integers(0, 14))):
        parent = draw(st.integers(0, len(tree) - 1))
        tree.add_child(parent, draw(st.integers(0, 9)))
    return tree


class TestLinearize:
    def test_chain_preserves_order(self):
        tree = chain_tree([1, 2, 3, 4])
        lin = linearize(tree)
        np.testing.assert_array_equal(lin.tokens, [1, 2, 3, 4])
        np.testing.assert_array_equal(lin.parents, [-1, 0, 1, 2])
        np.testing.assert_array_equal(lin.depths, [0, 1, 2, 3])

    def test_slot_of_inverts_order(self):
        tree = TokenTree(1)
        a = tree.add_child(0, 2)
        tree.add_child(0, 3)
        tree.add_child(a, 4)
        lin = linearize(tree)
        for slot, node in enumerate(lin.order):
            assert lin.slot_of[node] == slot

    @given(random_tree())
    @settings(max_examples=50, deadline=None)
    def test_parents_precede_children(self, tree):
        lin = linearize(tree)
        for slot in range(lin.num_tokens):
            parent_slot = lin.parents[slot]
            if parent_slot != -1:
                assert parent_slot < slot


class TestTopologyMask:
    def test_chain_reduces_to_causal(self):
        """A width-1 tree's topology mask is the ordinary causal mask."""
        from repro.model.attention import cross_mask

        tree = chain_tree([1, 2, 3, 4])
        lin = linearize(tree)
        mask = topology_causal_mask(lin, prefix_len=3)
        np.testing.assert_array_equal(mask, cross_mask(4, 7, 3))

    def test_prefix_always_visible(self):
        tree = TokenTree(1)
        tree.add_child(0, 2)
        tree.add_child(0, 3)
        lin = linearize(tree)
        mask = topology_causal_mask(lin, prefix_len=5)
        assert (mask[:, :5] == 0.0).all()

    def test_siblings_masked(self):
        tree = TokenTree(1)
        a = tree.add_child(0, 2)
        b = tree.add_child(0, 3)
        lin = linearize(tree)
        mask = topology_causal_mask(lin, prefix_len=0)
        sa, sb = lin.slot_of[a], lin.slot_of[b]
        assert mask[sa, sb] == NEG_INF
        assert mask[sb, sa] == NEG_INF

    def test_cousins_masked(self):
        """The paper's t7-vs-t5 example: a node must not see its uncle's
        subtree even though it precedes it in cache order."""
        tree = TokenTree(1)
        a = tree.add_child(0, 2)
        b = tree.add_child(0, 3)
        a1 = tree.add_child(a, 4)
        b1 = tree.add_child(b, 5)
        lin = linearize(tree)
        mask = topology_causal_mask(lin, prefix_len=0)
        assert mask[lin.slot_of[b1], lin.slot_of[a1]] == NEG_INF
        assert mask[lin.slot_of[b1], lin.slot_of[a]] == NEG_INF

    @given(random_tree(), st.integers(0, 4))
    @settings(max_examples=50, deadline=None)
    def test_mask_matches_ancestor_relation(self, tree, prefix_len):
        """Mask entry is 0 exactly for prefix columns and ancestor-or-self."""
        lin = linearize(tree)
        mask = topology_causal_mask(lin, prefix_len)
        anc = tree.ancestor_matrix()
        n = lin.num_tokens
        for j in range(n):
            for k in range(n):
                expected = anc[lin.order[j], lin.order[k]]
                visible = mask[j, prefix_len + k] == 0.0
                assert visible == expected

    @given(random_tree())
    @settings(max_examples=30, deadline=None)
    def test_diagonal_always_visible(self, tree):
        lin = linearize(tree)
        mask = topology_causal_mask(lin, prefix_len=2)
        for j in range(lin.num_tokens):
            assert mask[j, 2 + j] == 0.0


class TestTreePositions:
    def test_positions_are_prefix_plus_depth(self):
        tree = TokenTree(1)
        a = tree.add_child(0, 2)
        tree.add_child(0, 3)
        tree.add_child(a, 4)
        lin = linearize(tree)
        positions = tree_positions(lin, prefix_len=10)
        np.testing.assert_array_equal(positions, 10 + lin.depths)

    def test_same_depth_same_position(self):
        """Alternative candidates for one sequence slot share a position."""
        tree = TokenTree(1)
        tree.add_child(0, 2)
        tree.add_child(0, 3)
        lin = linearize(tree)
        positions = tree_positions(lin, prefix_len=4)
        assert positions[1] == positions[2] == 5


class TestMaskOutBuffers:
    """``out=`` reuse produces identical masks without fresh allocation."""

    def test_topology_mask_out_matches_fresh(self):
        tree = TokenTree(1)
        tree.add_child(0, 2)
        tree.add_child(0, 3)
        tree.add_child(1, 4)
        lin = linearize(tree)
        fresh = topology_causal_mask(lin, prefix_len=5)
        buf = np.full((4, 9), 123.0)
        reused = topology_causal_mask(lin, prefix_len=5, out=buf)
        assert reused is buf
        np.testing.assert_array_equal(reused, fresh)

    def test_topology_mask_out_shape_mismatch_raises(self):
        import pytest

        lin = linearize(chain_tree([1, 2]))
        with pytest.raises(ValueError, match="out buffer"):
            topology_causal_mask(lin, prefix_len=3, out=np.empty((2, 2)))

    def test_causal_and_cross_mask_out(self):
        from repro.model.attention import causal_mask, cross_mask

        buf = np.full((4, 4), -7.0)
        np.testing.assert_array_equal(causal_mask(4, out=buf),
                                      causal_mask(4))
        buf2 = np.full((2, 6), -7.0)
        np.testing.assert_array_equal(cross_mask(2, 6, 4, out=buf2),
                                      cross_mask(2, 6, 4))

    def test_mask_scratch_reuses_buffer(self):
        from repro.model import perf
        from repro.model.attention import MaskScratch

        scratch = MaskScratch("float64")
        first = scratch.take(3, 8)
        with perf.track() as c:
            second = scratch.take(2, 6)
        assert c.mask_cells_allocated == 0
        assert second.base is first.base
