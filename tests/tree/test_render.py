"""Tests for ASCII tree rendering."""

from repro.tree.render import render_tree, tree_stats_line
from repro.tree.token_tree import TokenTree


def sample_tree():
    tree = TokenTree(1)
    a = tree.add_child(0, 2, ssm_id=0)
    tree.add_child(0, 3, ssm_id=1)
    tree.add_child(a, 4, ssm_id=0)
    return tree, a


class TestRenderTree:
    def test_one_line_per_node(self):
        tree, _ = sample_tree()
        out = render_tree(tree)
        assert len(out.splitlines()) == len(tree)

    def test_root_first_unindented(self):
        tree, _ = sample_tree()
        first = render_tree(tree).splitlines()[0]
        assert first == "1"

    def test_accepted_marked(self):
        tree, a = sample_tree()
        out = render_tree(tree, accepted_nodes=[0, a])
        lines = out.splitlines()
        assert lines[0].endswith("*")
        assert any("2" in l and l.endswith("*") for l in lines)
        assert not any("3" in l and l.endswith("*") for l in lines)

    def test_custom_labels(self):
        tree, _ = sample_tree()
        words = {1: "the", 2: "cat", 3: "dog", 4: "sat"}
        out = render_tree(tree, label=lambda t: words[t])
        assert "cat" in out and "dog" in out

    def test_ssm_attribution_shown(self):
        tree, _ = sample_tree()
        out = render_tree(tree, show_ssm_ids=True)
        assert "[ssm 0]" in out
        assert "[ssm 1]" in out

    def test_branch_connectors(self):
        tree, _ = sample_tree()
        out = render_tree(tree)
        assert "|--" in out  # non-last sibling
        assert "`--" in out  # last sibling

    def test_single_node_tree(self):
        out = render_tree(TokenTree(7))
        assert out == "7"


class TestStatsLine:
    def test_contents(self):
        tree, _ = sample_tree()
        line = tree_stats_line(tree)
        assert "4 nodes" in line
        assert "3 speculated" in line
        assert "depth 2" in line
        assert "2 leaves" in line
