"""Tests for the token tree data structure and merge (Defs. 3.1 / 3.2)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tree.token_tree import TokenTree, merge_trees


def build_sample_tree():
    """Root 5 with branches [10,[12->15,13]] and [11,[14]]."""
    tree = TokenTree(5)
    a = tree.add_child(0, 10)
    b = tree.add_child(0, 11)
    c = tree.add_child(a, 12)
    tree.add_child(a, 13)
    tree.add_child(b, 14)
    tree.add_child(c, 15)
    return tree


class TestConstruction:
    def test_root_properties(self):
        tree = TokenTree(9)
        assert len(tree) == 1
        assert tree.root.token == 9
        assert tree.root.parent == -1
        assert tree.root.depth == 0
        assert tree.num_speculated() == 0

    def test_add_child_sets_depth_and_parent(self):
        tree = TokenTree(1)
        a = tree.add_child(0, 2)
        b = tree.add_child(a, 3)
        assert tree.nodes[b].depth == 2
        assert tree.nodes[b].parent == a

    def test_duplicate_child_merges(self):
        tree = TokenTree(1)
        a = tree.add_child(0, 2, ssm_id=0)
        b = tree.add_child(0, 2, ssm_id=1)
        assert a == b
        assert tree.nodes[a].ssm_ids == {0, 1}
        assert len(tree) == 2

    def test_add_path(self):
        tree = TokenTree(1)
        leaf = tree.add_path([2, 3, 4])
        assert tree.sequence_of(leaf) == (1, 2, 3, 4)
        assert len(tree) == 4

    def test_add_path_shares_prefix(self):
        tree = TokenTree(1)
        tree.add_path([2, 3])
        tree.add_path([2, 4])
        assert len(tree) == 4  # root, 2, 3, 4

    def test_invalid_parent_raises(self):
        tree = TokenTree(1)
        with pytest.raises(IndexError):
            tree.add_child(5, 2)

    def test_set_proposal(self):
        tree = TokenTree(1)
        probs = np.full(8, 1 / 8)
        tree.set_proposal(0, 0, probs)
        np.testing.assert_array_equal(tree.nodes[0].proposals[0], probs)


class TestQueries:
    def test_sequences(self):
        tree = build_sample_tree()
        assert tree.sequences() == frozenset(
            {
                (5,),
                (5, 10),
                (5, 11),
                (5, 10, 12),
                (5, 10, 13),
                (5, 11, 14),
                (5, 10, 12, 15),
            }
        )

    def test_leaf_sequences(self):
        tree = build_sample_tree()
        assert tree.leaf_sequences() == frozenset(
            {(5, 10, 13), (5, 11, 14), (5, 10, 12, 15)}
        )

    def test_max_depth(self):
        assert build_sample_tree().max_depth() == 3
        assert TokenTree(1).max_depth() == 0

    def test_path_to(self):
        tree = build_sample_tree()
        leaf = len(tree.nodes) - 1  # token 15
        path = tree.path_to(leaf)
        assert [tree.nodes[i].token for i in path] == [5, 10, 12, 15]

    def test_dfs_order_parents_before_children(self):
        tree = build_sample_tree()
        order = tree.dfs_order()
        position = {node: i for i, node in enumerate(order)}
        for idx, node in enumerate(tree.nodes):
            if node.parent != -1:
                assert position[node.parent] < position[idx]

    def test_dfs_order_visits_all_once(self):
        tree = build_sample_tree()
        order = tree.dfs_order()
        assert sorted(order) == list(range(len(tree)))

    def test_ancestor_matrix(self):
        tree = build_sample_tree()
        anc = tree.ancestor_matrix()
        assert anc[0, 0]
        leaf = len(tree.nodes) - 1
        for v in tree.path_to(leaf):
            assert anc[leaf, v]
        # token 11's node is not an ancestor of token 15's leaf
        assert not anc[leaf, 2]

    def test_validate_accepts_good_tree(self):
        build_sample_tree().validate()

    def test_validate_rejects_corruption(self):
        tree = build_sample_tree()
        tree.nodes[3].depth = 7
        with pytest.raises(ValueError, match="depth"):
            tree.validate()


class TestMerge:
    def test_merge_unions_sequences(self):
        t1 = TokenTree(1)
        t1.add_path([2, 3])
        t2 = TokenTree(1)
        t2.add_path([2, 4])
        t2.add_path([5])
        merged = merge_trees([t1, t2])
        assert merged.sequences() == t1.sequences() | t2.sequences()

    def test_merge_definition_3_2(self):
        """Every S_u of each input exists in the merge, and vice versa."""
        t1 = TokenTree(1)
        t1.add_path([2, 3, 4])
        t2 = TokenTree(1)
        t2.add_path([2, 3, 5])
        merged = merge_trees([t1, t2])
        for tree in (t1, t2):
            assert tree.sequences() <= merged.sequences()
        assert merged.sequences() <= t1.sequences() | t2.sequences()

    def test_merge_requires_same_root(self):
        with pytest.raises(ValueError, match="root token"):
            merge_trees([TokenTree(1), TokenTree(2)])

    def test_merge_empty_raises(self):
        with pytest.raises(ValueError):
            merge_trees([])

    def test_merge_preserves_attribution(self):
        t1 = TokenTree(1)
        t1.add_child(0, 2, ssm_id=0)
        t2 = TokenTree(1)
        t2.add_child(0, 2, ssm_id=1)
        merged = merge_trees([t1, t2])
        child = merged.nodes[merged.nodes[0].children[0]]
        assert child.ssm_ids == {0, 1}

    def test_merge_preserves_proposals(self):
        t1 = TokenTree(1)
        t1.add_child(0, 2, ssm_id=0)
        t1.set_proposal(0, 0, np.full(4, 0.25))
        t2 = TokenTree(1)
        t2.add_child(0, 3, ssm_id=1)
        t2.set_proposal(0, 1, np.array([0.7, 0.1, 0.1, 0.1]))
        merged = merge_trees([t1, t2])
        assert set(merged.nodes[0].proposals) == {0, 1}

    def test_merge_idempotent(self):
        tree = build_sample_tree()
        merged = merge_trees([tree, tree])
        assert merged.sequences() == tree.sequences()
        assert len(merged) == len(tree)


# -- property-based: merge laws over random trees ------------------------------

@st.composite
def random_tree(draw):
    tree = TokenTree(draw(st.integers(0, 7)))
    n_ops = draw(st.integers(0, 12))
    for _ in range(n_ops):
        parent = draw(st.integers(0, len(tree) - 1))
        token = draw(st.integers(0, 7))
        ssm = draw(st.integers(0, 2))
        tree.add_child(parent, token, ssm_id=ssm)
    return tree


@st.composite
def random_tree_pair(draw):
    root = draw(st.integers(0, 7))
    trees = []
    for _ in range(2):
        tree = TokenTree(root)
        for _ in range(draw(st.integers(0, 10))):
            parent = draw(st.integers(0, len(tree) - 1))
            tree.add_child(parent, draw(st.integers(0, 7)))
        trees.append(tree)
    return trees


class TestMergeProperties:
    @given(random_tree_pair())
    @settings(max_examples=60, deadline=None)
    def test_merge_is_sequence_union(self, pair):
        merged = merge_trees(pair)
        merged.validate()
        assert merged.sequences() == pair[0].sequences() | pair[1].sequences()

    @given(random_tree_pair())
    @settings(max_examples=40, deadline=None)
    def test_merge_commutative_on_sequences(self, pair):
        ab = merge_trees(pair)
        ba = merge_trees(pair[::-1])
        assert ab.sequences() == ba.sequences()

    @given(random_tree())
    @settings(max_examples=60, deadline=None)
    def test_random_trees_validate_and_dedup(self, tree):
        tree.validate()
        # No parent has two children with the same token.
        for node in tree.nodes:
            tokens = [tree.nodes[c].token for c in node.children]
            assert len(tokens) == len(set(tokens))

    @given(random_tree())
    @settings(max_examples=60, deadline=None)
    def test_sequences_count_equals_nodes(self, tree):
        """Distinct nodes identify distinct sequences (Def. 3.1)."""
        assert len(tree.sequences()) == len(tree)
