"""Tests for the unified decode pipeline core.

The architecture invariants the refactor promises: one tree-fit/prune home
(:class:`TreeFitter`), one :class:`StepTrace` construction site
(:class:`TraceRecorder`), and incremental decoding as the pipeline's
degenerate one-node-tree case.
"""

import pathlib

import numpy as np

from repro.engine.generation import GenerationConfig
from repro.engine.pipeline import (
    DecodePipeline,
    DecodeState,
    IncrementalBackend,
    PerRequestBackend,
    TreeFitter,
    prune_to_size,
)
from repro.model.coupled import CoupledSSM
from repro.speculate.expansion import ExpansionConfig
from repro.speculate.speculator import Speculator
from repro.tree.token_tree import TokenTree
from tests.conftest import make_prompt

SRC_ROOT = pathlib.Path(__file__).resolve().parents[2] / "src" / "repro"


def make_speculator(llm):
    return Speculator(
        [CoupledSSM(llm, alignment=0.9, seed=7, noise_scale=2.0)],
        ExpansionConfig((1, 2, 1)),
    )


class TestPruneToSize:
    def test_prune_keeps_root_and_limit(self):
        tree = TokenTree(1)
        a = tree.add_child(0, 2)
        tree.add_child(0, 3)
        tree.add_child(a, 4)
        tree.add_child(a, 5)
        pruned = prune_to_size(tree, 3)
        pruned.validate()
        assert len(pruned) == 3
        assert pruned.root.token == 1

    def test_wide_tree_pruned_in_bfs_order(self):
        """Regression for the deque rewrite: a wide tree must keep exactly
        the first ``limit`` nodes in breadth-first order — all of one level
        (in child order) before any of the next."""
        tree = TokenTree(0)
        level_one = [tree.add_child(0, 10 + i) for i in range(6)]
        for j, parent in enumerate(level_one):
            tree.add_child(parent, 100 + j)
        # Root + the first 4 level-one children, no level-two nodes.
        pruned = prune_to_size(tree, 5)
        pruned.validate()
        tokens = sorted(node.token for node in pruned.nodes)
        assert tokens == [0, 10, 11, 12, 13]
        # One more slot admits the next sibling, still not a grandchild.
        pruned = prune_to_size(tree, 7)
        tokens = sorted(node.token for node in pruned.nodes)
        assert tokens == [0, 10, 11, 12, 13, 14, 15]
        # Past the full level, BFS descends to the children's children.
        pruned = prune_to_size(tree, 8)
        assert 100 in [node.token for node in pruned.nodes]

    def test_depth_bound_drops_deep_nodes(self):
        tree = TokenTree(0)
        a = tree.add_child(0, 1)
        b = tree.add_child(a, 2)
        tree.add_child(b, 3)
        pruned = prune_to_size(tree, 10, max_depth=1)
        assert len(pruned) == 2
        assert pruned.max_depth() == 1


class TestTreeFitter:
    def test_passthrough_when_tree_fits(self, llm):
        fitter = TreeFitter(llm.config.max_seq_len)
        cache = llm.new_cache()
        tree = TokenTree(1)
        tree.add_child(0, 2)
        assert fitter.fit(tree, cache) is tree

    def test_prunes_to_available_rows(self, llm, rng):
        fitter = TreeFitter(llm.config.max_seq_len)
        cache = llm.new_cache()
        llm.prefill(make_prompt(rng, length=llm.config.max_seq_len - 2), cache)
        tree = TokenTree(1)
        a = tree.add_child(0, 2)
        tree.add_child(a, 3)
        fitted = fitter.fit(tree, cache)
        assert fitted is not None
        assert len(fitted) <= cache.capacity - cache.length
        assert fitted.max_depth() <= llm.config.max_seq_len - 1 - cache.length

    def test_returns_none_when_cache_full(self, llm, rng):
        fitter = TreeFitter(llm.config.max_seq_len)
        cache = llm.new_cache()
        llm.prefill(make_prompt(rng, length=llm.config.max_seq_len), cache)
        assert fitter.fit(TokenTree(1), cache) is None


class TestSingleTraceSite:
    def test_step_trace_constructed_only_in_recorder(self):
        """The acceptance invariant behind the TraceRecorder: exactly one
        ``StepTrace(`` construction site in the whole source tree."""
        sites = []
        for path in sorted(SRC_ROOT.rglob("*.py")):
            for lineno, line in enumerate(path.read_text().splitlines(), 1):
                if "StepTrace(" in line:
                    sites.append(f"{path.relative_to(SRC_ROOT)}:{lineno}")
        assert len(sites) == 1, sites
        assert sites[0].startswith("engine/pipeline.py"), sites


class TestIncrementalBackend:
    def test_matches_manual_decode(self, llm, rng):
        prompt = make_prompt(rng, length=5)
        state = DecodeState(llm, prompt, GenerationConfig(max_new_tokens=6,
                                                          stop_on_eos=False))
        pipeline = DecodePipeline(llm, IncrementalBackend(llm))
        pipeline.run_to_completion(state)

        cache = llm.new_cache()
        llm.prefill(prompt[:-1], cache)
        token = int(prompt[-1])
        expected = []
        for _ in range(6):
            token = int(np.argmax(llm.decode(token, cache)))
            expected.append(token)
        assert state.tokens == expected

    def test_records_incremental_trace_shape(self, llm, rng):
        state = DecodeState(llm, make_prompt(rng, length=4),
                            GenerationConfig(max_new_tokens=3,
                                             stop_on_eos=False))
        DecodePipeline(llm, IncrementalBackend(llm)).run_to_completion(state)
        assert len(state.steps) == 3
        for step in state.steps:
            assert step.llm_tokens_scored == 1
            assert step.tokens_emitted == 1
            assert step.ssm_steps == 0
            assert step.tree_size == 0

    def test_equals_one_node_tree_through_tree_verifier(self, llm, rng):
        """Algorithm 1 really is the degenerate tree: a speculator-free
        state through IncrementalBackend matches a width-0 'tree' pass
        through the per-request tree verifier, token for token."""
        prompt = make_prompt(rng, length=5)
        config = GenerationConfig(max_new_tokens=8, stop_on_eos=False)
        inc_state = DecodeState(llm, prompt, config)
        DecodePipeline(llm, IncrementalBackend(llm)).run_to_completion(inc_state)

        from repro.verify.verifier import TokenTreeVerifier

        cache = llm.new_cache()
        llm.prefill(prompt[:-1], cache)
        verifier = TokenTreeVerifier(llm)
        pending = int(prompt[-1])
        tokens = []
        while len(tokens) < 8:
            result = verifier.verify_step(TokenTree(pending), cache)
            tokens.extend(int(t) for t in result.accepted_tokens)
            pending = result.bonus_token
        assert inc_state.tokens == tokens[:8]


class TestPipelineTick:
    def test_finished_state_is_skipped(self, llm, rng):
        state = DecodeState(llm, make_prompt(rng),
                            GenerationConfig(max_new_tokens=1,
                                             stop_on_eos=False))
        pipeline = DecodePipeline(llm, IncrementalBackend(llm))
        first = pipeline.tick([state])[0]
        assert first.advanced and len(first.emitted) == 1
        second = pipeline.tick([state])[0]
        assert not second.advanced and second.emitted == []
        assert len(state.steps) == 1

    def test_context_exhaustion_marks_retired(self, llm, rng):
        """When not even a one-node tree fits, the tick retires the state
        instead of looping forever."""
        prompt = make_prompt(rng, length=llm.config.max_seq_len - 1)
        state = DecodeState(
            llm, prompt,
            GenerationConfig(max_new_tokens=500, stop_on_eos=False),
            speculator=make_speculator(llm),
        )
        pipeline = DecodePipeline(llm, PerRequestBackend(llm))
        pipeline.run_to_completion(state)
        assert state.retired
        assert state.finished
        # The cache filled to the model's context limit, no further.
        assert state.cache.length == llm.config.max_seq_len
        assert len(state.tokens) < 500

    def test_mixed_batch_advances_independent_states(self, llm, rng):
        states = [
            DecodeState(llm, make_prompt(rng, length=4 + i),
                        GenerationConfig(max_new_tokens=4, stop_on_eos=False),
                        speculator=make_speculator(llm))
            for i in range(3)
        ]
        pipeline = DecodePipeline(llm, PerRequestBackend(llm))
        outcomes = pipeline.tick(states)
        assert all(o.advanced for o in outcomes)
        assert all(len(s.steps) == 1 for s in states)
