"""Tests for the incremental decoding engine (Algorithm 1)."""

import numpy as np
import pytest

from repro.engine.generation import GenerationConfig
from repro.engine.incremental import IncrementalEngine
from repro.model.sampling import SamplingConfig
from tests.conftest import make_prompt


class TestIncrementalEngine:
    def test_generates_exact_token_budget(self, llm, rng):
        engine = IncrementalEngine(llm)
        result = engine.generate(
            make_prompt(rng), GenerationConfig(max_new_tokens=10,
                                               stop_on_eos=False)
        )
        assert result.num_tokens == 10
        assert result.num_llm_steps == 10

    def test_rejects_empty_prompt(self, llm):
        with pytest.raises(ValueError, match="non-empty"):
            IncrementalEngine(llm).generate([])

    def test_greedy_matches_manual_decode(self, llm, rng):
        prompt = make_prompt(rng, length=5)
        engine = IncrementalEngine(llm)
        result = engine.generate(prompt, GenerationConfig(max_new_tokens=5))
        cache = llm.new_cache()
        llm.prefill(prompt[:-1], cache)
        t = int(prompt[-1])
        expected = []
        for _ in range(5):
            t = int(np.argmax(llm.decode(t, cache)))
            expected.append(t)
        assert result.tokens == expected

    def test_stops_on_eos(self, llm, rng):
        # Find a seed/prompt that hits EOS within budget, by construction:
        # force EOS as the most likely token by hand is hard with a fixed
        # model, so test via stop_on_eos=False equivalence instead.
        prompt = make_prompt(rng)
        engine = IncrementalEngine(llm)
        with_eos = engine.generate(
            prompt, GenerationConfig(max_new_tokens=20, stop_on_eos=True)
        )
        without = engine.generate(
            prompt, GenerationConfig(max_new_tokens=20, stop_on_eos=False)
        )
        if with_eos.finished_by_eos:
            eos = llm.config.eos_token_id
            assert with_eos.tokens[-1] == eos
            assert with_eos.tokens == without.tokens[: len(with_eos.tokens)]
        else:
            assert with_eos.tokens == without.tokens

    def test_steps_trace_one_token_each(self, llm, rng):
        engine = IncrementalEngine(llm)
        result = engine.generate(
            make_prompt(rng), GenerationConfig(max_new_tokens=6)
        )
        for step in result.steps:
            assert step.llm_tokens_scored == 1
            assert step.tokens_emitted == 1
            assert step.ssm_steps == 0
        assert result.mean_tokens_per_step == 1.0

    def test_stochastic_reproducible_by_seed(self, llm, rng):
        prompt = make_prompt(rng)
        config = GenerationConfig(
            max_new_tokens=8,
            sampling=SamplingConfig(temperature=1.0),
            seed=123,
        )
        engine = IncrementalEngine(llm)
        a = engine.generate(prompt, config)
        b = engine.generate(prompt, config)
        assert a.tokens == b.tokens

    def test_stochastic_varies_by_seed(self, llm, rng):
        prompt = make_prompt(rng)
        engine = IncrementalEngine(llm)
        outs = {
            tuple(
                engine.generate(
                    prompt,
                    GenerationConfig(
                        max_new_tokens=8,
                        sampling=SamplingConfig(temperature=1.5),
                        seed=s,
                    ),
                ).tokens
            )
            for s in range(5)
        }
        assert len(outs) > 1

    def test_prefix_len_trace_grows(self, llm, rng):
        engine = IncrementalEngine(llm)
        result = engine.generate(
            make_prompt(rng, length=4), GenerationConfig(max_new_tokens=5)
        )
        prefixes = [s.prefix_len for s in result.steps]
        assert prefixes == sorted(prefixes)
        assert prefixes[0] == 3  # prompt minus pending token
