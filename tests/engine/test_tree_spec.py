"""Tests for the SpecInfer engine — headed by the losslessness property."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.generation import GenerationConfig
from repro.engine.incremental import IncrementalEngine
from repro.engine.tree_spec import SpecInferEngine, _prune_to_size
from repro.model.coupled import CoupledSSM
from repro.model.sampling import SamplingConfig
from repro.speculate.expansion import ExpansionConfig
from repro.speculate.speculator import Speculator
from repro.tree.token_tree import TokenTree
from tests.conftest import make_prompt


def make_engine(llm, alignment=0.9, config=None, seed=7):
    ssm = CoupledSSM(llm, alignment=alignment, seed=seed, noise_scale=2.0)
    speculator = Speculator([ssm], config or ExpansionConfig.paper_default())
    return SpecInferEngine(llm, speculator)


class TestGreedyLosslessness:
    """SpecInfer must emit *exactly* the incremental greedy sequence."""

    def test_matches_incremental(self, llm, rng):
        prompt = make_prompt(rng, length=5)
        config = GenerationConfig(max_new_tokens=24)
        incremental = IncrementalEngine(llm).generate(prompt, config)
        speculative = make_engine(llm).generate(prompt, config)
        assert speculative.tokens == incremental.tokens

    @given(
        prompt_seed=st.integers(0, 10_000),
        alignment=st.sampled_from([0.2, 0.6, 0.9, 1.0]),
        width=st.integers(1, 4),
    )
    @settings(max_examples=15, deadline=None)
    def test_lossless_for_any_speculator(self, llm, prompt_seed, alignment,
                                         width):
        """Losslessness holds regardless of speculation quality or shape."""
        rng = np.random.default_rng(prompt_seed)
        prompt = make_prompt(rng, length=4)
        config = GenerationConfig(max_new_tokens=12)
        incremental = IncrementalEngine(llm).generate(prompt, config)
        engine = make_engine(
            llm, alignment=alignment,
            config=ExpansionConfig.width_sweep(width, depth=4, expand_step=1),
            seed=prompt_seed,
        )
        speculative = engine.generate(prompt, config)
        assert speculative.tokens == incremental.tokens

    def test_fewer_llm_steps_with_aligned_ssm(self, llm, rng):
        prompt = make_prompt(rng, length=5)
        config = GenerationConfig(max_new_tokens=24)
        incremental = IncrementalEngine(llm).generate(prompt, config)
        speculative = make_engine(llm, alignment=0.92).generate(prompt, config)
        assert speculative.num_llm_steps < incremental.num_llm_steps
        assert speculative.mean_tokens_per_step > 1.3

    def test_weak_ssm_still_correct_but_slow(self, llm, rng):
        prompt = make_prompt(rng, length=5)
        config = GenerationConfig(max_new_tokens=16)
        incremental = IncrementalEngine(llm).generate(prompt, config)
        speculative = make_engine(llm, alignment=0.1).generate(prompt, config)
        assert speculative.tokens == incremental.tokens


class TestStochasticMode:
    def test_reproducible_by_seed(self, llm, rng):
        prompt = make_prompt(rng)
        config = GenerationConfig(
            max_new_tokens=10, sampling=SamplingConfig(temperature=1.0),
            seed=5,
        )
        engine = make_engine(llm)
        assert engine.generate(prompt, config).tokens == engine.generate(
            prompt, config
        ).tokens

    def test_runs_with_naive_sampling(self, llm, rng):
        prompt = make_prompt(rng)
        ssm = CoupledSSM(llm, alignment=0.9, seed=7, noise_scale=2.0)
        engine = SpecInferEngine(
            llm, Speculator([ssm], ExpansionConfig((2, 1))),
            use_naive_sampling=True,
        )
        result = engine.generate(
            prompt,
            GenerationConfig(max_new_tokens=8,
                             sampling=SamplingConfig(temperature=1.0)),
        )
        assert result.num_tokens == 8 or result.finished_by_eos

    def test_mss_accepts_more_than_naive(self, llm):
        """Table 3's claim at engine level: MSS verifies more tokens/step."""
        rng = np.random.default_rng(0)
        prompts = [make_prompt(rng, length=5) for _ in range(6)]
        config = GenerationConfig(
            max_new_tokens=16, sampling=SamplingConfig(temperature=1.0),
            seed=3,
        )
        ssm_args = dict(alignment=0.92, seed=7, noise_scale=2.0)
        spec_cfg = ExpansionConfig.width_sweep(5, depth=6, expand_step=0)

        def tokens_per_step(naive):
            ssm = CoupledSSM(llm, **ssm_args)
            engine = SpecInferEngine(
                llm, Speculator([ssm], spec_cfg), use_naive_sampling=naive
            )
            rates = [
                engine.generate(p, config).mean_tokens_per_step
                for p in prompts
            ]
            return float(np.mean(rates))

        assert tokens_per_step(naive=False) > tokens_per_step(naive=True)


class TestTraces:
    def test_step_traces_populated(self, llm, rng):
        result = make_engine(llm).generate(
            make_prompt(rng), GenerationConfig(max_new_tokens=12)
        )
        for step in result.steps:
            assert step.tree_size >= 1
            assert step.tree_depth >= 0
            assert step.tree_leaves >= 1
            assert step.tree_path_tokens >= step.tree_size
            assert step.ssm_steps == 8  # paper-default depth
            assert 1 <= step.tokens_emitted <= step.tree_depth + 1

    def test_emitted_tokens_match_sum_of_steps(self, llm, rng):
        result = make_engine(llm).generate(
            make_prompt(rng),
            GenerationConfig(max_new_tokens=13, stop_on_eos=False),
        )
        total = sum(s.tokens_emitted for s in result.steps)
        # The last step may overshoot max_new_tokens before truncation.
        assert total >= result.num_tokens
        assert result.num_tokens == 13


class TestPruning:
    def test_prune_keeps_root_and_limit(self):
        tree = TokenTree(1)
        a = tree.add_child(0, 2)
        tree.add_child(0, 3)
        tree.add_child(a, 4)
        tree.add_child(a, 5)
        pruned = _prune_to_size(tree, 3)
        pruned.validate()
        assert len(pruned) == 3
        assert pruned.root.token == 1

    def test_prune_preserves_proposals(self):
        tree = TokenTree(1)
        tree.add_child(0, 2, ssm_id=1)
        tree.set_proposal(0, 1, np.full(4, 0.25))
        pruned = _prune_to_size(tree, 2)
        assert 1 in pruned.nodes[0].proposals
        assert pruned.nodes[1].ssm_ids == {1}

    def test_generation_near_capacity_terminates(self, llm, rng):
        """Requests that hit the context limit end gracefully."""
        prompt = make_prompt(rng, length=5)
        engine = make_engine(llm)
        result = engine.generate(
            prompt, GenerationConfig(max_new_tokens=500, stop_on_eos=False)
        )
        # capacity is 96; generation must stop without raising.
        assert result.num_tokens <= 96
