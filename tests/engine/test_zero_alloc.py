"""The zero-allocation decode hot path is an *optimization*, not a fork.

Three families of guarantees:

* scratch on/off bit-equivalence — committed tokens are identical with
  scratch-arena buffer reuse enabled and disabled, across all three
  verification backends, greedy and stochastic, multiple seeds (the
  ``out=`` rewrites of the forward pass provably compute the same bits);
* packed speculation equivalence — scoring every request's draft tree
  through one batched GEMM per level produces the same trees and the same
  committed tokens as the per-session SSM loop, with automatic fallback
  for configurations the packer does not cover;
* steady-state allocation freedom (``perf_smoke``) — after warm-up ticks,
  ``DecodePipeline.tick`` performs zero tracked hot-path allocations, the
  property ``benchmarks/ci_gate.py`` gates in CI.
"""

import numpy as np
import pytest

from repro.engine.generation import GenerationConfig
from repro.engine.pipeline import (
    DecodePipeline,
    DecodeState,
    FusedBackend,
    PerRequestBackend,
)
from repro.model import perf
from repro.model.config import ModelConfig
from repro.model.coupled import CoupledSSM
from repro.model.sampling import SamplingConfig
from repro.model.transformer import TransformerLM
from repro.obs import REGISTRY, reset_observability
from repro.speculate.expansion import ExpansionConfig
from repro.speculate.speculator import Speculator
from tests.conftest import make_prompt


def _make_states(llm, ssm_factory, greedy, seed, n_requests=3,
                 max_new_tokens=14):
    rng = np.random.default_rng(seed)
    sampling = (SamplingConfig(greedy=True) if greedy
                else SamplingConfig(temperature=1.0))
    states = []
    for r in range(n_requests):
        config = GenerationConfig(
            max_new_tokens=max_new_tokens, sampling=sampling, seed=seed + r,
        )
        spec = Speculator([ssm_factory()], ExpansionConfig((1, 2, 1)))
        states.append(DecodeState(
            llm, make_prompt(rng, length=4 + r), config, speculator=spec,
        ))
    return states


def _run(llm, ssm_factory, backend_factory, greedy, seed, **pipeline_kwargs):
    """Token lists after driving a batch of requests to completion."""
    states = _make_states(llm, ssm_factory, greedy, seed)
    pipeline = DecodePipeline(llm, backend=backend_factory(llm),
                              **pipeline_kwargs)
    while any(not s.finished for s in states):
        pipeline.tick([s for s in states if not s.finished])
    return [s.tokens for s in states]


BACKENDS = [
    ("per_request", lambda llm, **kw: PerRequestBackend(llm, **kw)),
    ("fused_block", lambda llm, **kw: FusedBackend(llm, mode="block", **kw)),
    ("fused_dense", lambda llm, **kw: FusedBackend(llm, mode="dense", **kw)),
]


class TestScratchOnOffEquivalence:
    """Buffer reuse changes allocation counts, never committed tokens."""

    @pytest.mark.parametrize("name,backend", BACKENDS,
                             ids=[n for n, _ in BACKENDS])
    @pytest.mark.parametrize("greedy", [True, False],
                             ids=["greedy", "stochastic"])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_committed_tokens_identical(self, llm, name, backend, greedy,
                                        seed):
        ssm_factory = lambda: CoupledSSM(llm, alignment=0.9, seed=7,
                                         noise_scale=2.0)
        with_scratch = _run(
            llm, ssm_factory,
            lambda m: backend(m, reuse_scratch=True), greedy, seed,
        )
        without_scratch = _run(
            llm, ssm_factory,
            lambda m: backend(m, reuse_scratch=False), greedy, seed,
        )
        assert with_scratch == without_scratch
        assert any(tokens for tokens in with_scratch)


class TestPackedSpeculationEquivalence:
    """One batched GEMM per tree level == the per-session SSM loop."""

    @pytest.mark.parametrize("ssm_kind", ["transformer", "coupled"])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_greedy_tokens_identical(self, llm, ssm_kind, seed):
        if ssm_kind == "transformer":
            small = TransformerLM(
                ModelConfig(vocab_size=64, d_model=16, n_layers=1,
                            n_heads=2, max_seq_len=96), seed=9,
            )
            ssm_factory = lambda: small
        else:
            ssm_factory = lambda: CoupledSSM(llm, alignment=0.9, seed=7,
                                             noise_scale=2.0)
        packed = _run(llm, ssm_factory, FusedBackend, True, seed,
                      packed_speculation=True)
        sequential = _run(llm, ssm_factory, FusedBackend, True, seed,
                          packed_speculation=False)
        assert packed == sequential

    def test_packed_path_actually_runs_greedy(self, llm):
        reset_observability()
        ssm_factory = lambda: CoupledSSM(llm, alignment=0.9, seed=7,
                                         noise_scale=2.0)
        _run(llm, ssm_factory, FusedBackend, True, 0,
             packed_speculation=True)
        snap = REGISTRY.snapshot()
        assert snap["repro.speculate.packed.requests"]["value"] > 0
        assert snap["repro.speculate.packed.levels"]["value"] > 0
        assert snap["repro.speculate.packed.fallbacks"]["value"] == 0

    def test_stochastic_falls_back_to_per_session_loop(self, llm):
        reset_observability()
        ssm_factory = lambda: CoupledSSM(llm, alignment=0.9, seed=7,
                                         noise_scale=2.0)
        _run(llm, ssm_factory, FusedBackend, False, 0,
             packed_speculation=True)
        snap = REGISTRY.snapshot()
        assert snap["repro.speculate.packed.requests"]["value"] == 0
        assert snap["repro.speculate.packed.fallbacks"]["value"] > 0

    def test_merge_based_speculator_falls_back(self, llm):
        """Multi-SSM (merge-based) speculators keep the per-session loop."""
        reset_observability()
        states = []
        for r in range(2):
            spec = Speculator(
                [CoupledSSM(llm, alignment=0.9, seed=s, noise_scale=2.0)
                 for s in (7, 8)],
                ExpansionConfig((1, 2)),
            )
            states.append(DecodeState(
                llm, make_prompt(np.random.default_rng(r), length=5),
                GenerationConfig(max_new_tokens=6,
                                 sampling=SamplingConfig(greedy=True)),
                speculator=spec,
            ))
        pipeline = DecodePipeline(llm, backend=FusedBackend(llm))
        while any(not s.finished for s in states):
            pipeline.tick([s for s in states if not s.finished])
        snap = REGISTRY.snapshot()
        assert snap["repro.speculate.packed.requests"]["value"] == 0
        assert snap["repro.speculate.packed.fallbacks"]["value"] > 0


@pytest.mark.perf_smoke
class TestSteadyStateAllocationFree:
    """After warm-up, pipeline ticks perform zero tracked allocations."""

    WARMUP_TICKS = 5

    def _drive(self, llm, packed):
        reset_observability()
        states = _make_states(
            llm, lambda: CoupledSSM(llm, alignment=0.9, seed=7,
                                    noise_scale=2.0),
            greedy=True, seed=0, max_new_tokens=40,
        )
        pipeline = DecodePipeline(llm, backend=FusedBackend(llm),
                                  packed_speculation=packed)
        live = lambda: [s for s in states if not s.finished]
        for _ in range(self.WARMUP_TICKS):
            if live():
                pipeline.tick(live())
        steady_ticks = 0
        with perf.track() as counters:
            while live():
                pipeline.tick(live())
                steady_ticks += 1
        assert steady_ticks >= 3, "batch finished before steady state"
        return counters

    @pytest.mark.parametrize("packed", [True, False],
                             ids=["packed", "per_session"])
    def test_fused_steady_state_has_zero_tracked_allocs(self, llm, packed):
        counters = self._drive(llm, packed)
        assert counters.hot_alloc_events == 0
        assert counters.hot_alloc_bytes == 0
        assert counters.mask_cells_allocated == 0

    def test_tick_allocs_counter_matches_perf_delta(self, llm):
        reset_observability()
        states = _make_states(
            llm, lambda: CoupledSSM(llm, alignment=0.9, seed=7,
                                    noise_scale=2.0),
            greedy=True, seed=1, max_new_tokens=30,
        )
        pipeline = DecodePipeline(llm, backend=FusedBackend(llm))
        # Request-construction prefills allocate outside any tick; only
        # in-tick allocations must land in the tick.allocs counter.
        before = perf.COUNTERS.hot_alloc_events
        while any(not s.finished for s in states):
            pipeline.tick([s for s in states if not s.finished])
        snap = REGISTRY.snapshot()
        assert (snap["repro.engine.tick.allocs"]["value"]
                == perf.COUNTERS.hot_alloc_events - before)
