"""Tests for the sequence-based speculative decoding baseline."""

import numpy as np

from repro.engine.generation import GenerationConfig
from repro.engine.incremental import IncrementalEngine
from repro.engine.sequence_spec import make_sequence_spec_engine
from repro.model.coupled import CoupledSSM
from tests.conftest import make_prompt


class TestSequenceSpecEngine:
    def test_trees_are_chains(self, llm, ssm, rng):
        engine = make_sequence_spec_engine(llm, ssm, depth=6)
        result = engine.generate(
            make_prompt(rng), GenerationConfig(max_new_tokens=12)
        )
        for step in result.steps:
            assert step.tree_leaves == 1
            assert step.tree_path_tokens == step.tree_size

    def test_lossless_greedy(self, llm, ssm, rng):
        prompt = make_prompt(rng, length=5)
        config = GenerationConfig(max_new_tokens=16)
        incremental = IncrementalEngine(llm).generate(prompt, config)
        sequence = make_sequence_spec_engine(llm, ssm).generate(prompt, config)
        assert sequence.tokens == incremental.tokens

    def test_tree_beats_sequence_in_tokens_per_step(self, llm, rng):
        """Width > 1 improves acceptance vs a single sequence (Figure 9)."""
        from repro.engine.tree_spec import SpecInferEngine
        from repro.speculate.expansion import ExpansionConfig
        from repro.speculate.speculator import Speculator

        prompts = [make_prompt(rng, length=5) for _ in range(5)]
        config = GenerationConfig(max_new_tokens=20)

        def rate(width):
            rates = []
            for p in prompts:
                ssm = CoupledSSM(llm, alignment=0.85, seed=9, noise_scale=2.0)
                engine = SpecInferEngine(
                    llm,
                    Speculator(
                        [ssm],
                        ExpansionConfig.width_sweep(width, depth=6,
                                                    expand_step=0),
                    ),
                )
                rates.append(engine.generate(p, config).mean_tokens_per_step)
            return float(np.mean(rates))

        assert rate(3) > rate(1)
