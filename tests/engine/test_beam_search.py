"""Tests for beam search decoding."""

import numpy as np
import pytest

from repro.engine.beam_search import BeamHypothesis, BeamSearchEngine
from repro.engine.generation import GenerationConfig
from repro.engine.incremental import IncrementalEngine
from repro.model.layers import stable_softmax
from tests.conftest import make_prompt


def sequence_log_prob(llm, prompt, tokens):
    """Log probability of generating ``tokens`` after ``prompt``."""
    cache = llm.new_cache()
    if len(prompt) > 1:
        llm.prefill(np.asarray(prompt[:-1]), cache)
    pending = int(prompt[-1])
    total = 0.0
    for token in tokens:
        probs = stable_softmax(llm.decode(pending, cache))
        total += float(np.log(max(probs[token], 1e-30)))
        pending = int(token)
    return total


class TestBeamHypothesis:
    def test_score_normalizes_by_length(self):
        short = BeamHypothesis(tokens=[1], log_prob=-1.0)
        long = BeamHypothesis(tokens=[1, 2, 3, 4], log_prob=-2.0)
        assert long.score(1.0) > short.score(1.0)

    def test_zero_penalty_is_raw_log_prob(self):
        h = BeamHypothesis(tokens=[1, 2], log_prob=-3.0)
        assert h.score(0.0) == -3.0


class TestBeamSearch:
    def test_rejects_bad_args(self, llm):
        with pytest.raises(ValueError):
            BeamSearchEngine(llm, beam_width=0)
        with pytest.raises(ValueError):
            BeamSearchEngine(llm).generate([])
        with pytest.raises(ValueError):
            BeamSearchEngine(llm).generate([1], max_new_tokens=0)

    def test_width_one_matches_greedy(self, llm, rng):
        prompt = list(make_prompt(rng, length=5))
        beam = BeamSearchEngine(llm, beam_width=1, length_penalty=0.0)
        result = beam.generate(prompt, max_new_tokens=10)
        greedy = IncrementalEngine(llm).generate(
            prompt, GenerationConfig(max_new_tokens=10)
        )
        assert result.tokens == greedy.tokens

    def test_full_width_beam_finds_global_optimum(self, llm, rng):
        """With beam width = vocab size, a depth-2 search must return the
        globally most likely 2-token continuation (exhaustive check)."""
        prompt = list(make_prompt(rng, length=4))
        vocab = llm.config.vocab_size
        # Brute force: logp(t1) + logp(t2 | t1) over all t1.
        cache = llm.new_cache()
        llm.prefill(np.asarray(prompt[:-1]), cache)
        base = cache.snapshot()
        first_logp = np.log(np.clip(
            stable_softmax(llm.decode(prompt[-1], cache)), 1e-30, None))
        cache.restore(base)
        best_brute = -np.inf
        for t1 in range(vocab):
            cache.restore(base)
            llm.decode(prompt[-1], cache)
            second = np.log(np.clip(
                stable_softmax(llm.decode(t1, cache)), 1e-30, None))
            total = float(first_logp[t1] + second.max())
            best_brute = max(best_brute, total)
        engine = BeamSearchEngine(llm, beam_width=vocab, length_penalty=0.0)
        result = engine.generate(prompt, max_new_tokens=2)
        best_len2 = max(
            h.log_prob for h in result.hypotheses if len(h.tokens) == 2
        )
        assert best_len2 == pytest.approx(best_brute, abs=1e-9)

    def test_greedy_path_always_among_width1_hypotheses(self, llm, rng):
        """Width-1 beam IS greedy decoding; sanity-check the equivalence on
        several prompts."""
        for _ in range(3):
            prompt = list(make_prompt(rng, length=4))
            beam = BeamSearchEngine(llm, beam_width=1, length_penalty=0.0)
            greedy = IncrementalEngine(llm).generate(
                prompt, GenerationConfig(max_new_tokens=6)
            )
            assert beam.generate(prompt, max_new_tokens=6).tokens == \
                greedy.tokens

    def test_log_probs_are_correct(self, llm, rng):
        """Reported hypothesis log-probs match independent rescoring."""
        prompt = list(make_prompt(rng, length=4))
        result = BeamSearchEngine(llm, beam_width=3).generate(
            prompt, max_new_tokens=5
        )
        for hypothesis in result.hypotheses[:3]:
            tokens = hypothesis.tokens
            if not tokens:
                continue
            expected = sequence_log_prob(llm, prompt, tokens)
            assert hypothesis.log_prob == pytest.approx(expected, abs=1e-8)

    def test_hypotheses_sorted_by_score(self, llm, rng):
        prompt = list(make_prompt(rng, length=4))
        engine = BeamSearchEngine(llm, beam_width=3, length_penalty=0.7)
        result = engine.generate(prompt, max_new_tokens=6)
        scores = [h.score(0.7) for h in result.hypotheses]
        assert scores == sorted(scores, reverse=True)

    def test_returns_at_most_width_live_beams(self, llm, rng):
        prompt = list(make_prompt(rng, length=4))
        result = BeamSearchEngine(llm, beam_width=2).generate(
            prompt, max_new_tokens=4
        )
        unfinished = [h for h in result.hypotheses if not h.finished]
        assert len(unfinished) <= 2

    def test_deterministic(self, llm, rng):
        prompt = list(make_prompt(rng, length=4))
        engine = BeamSearchEngine(llm, beam_width=3)
        a = engine.generate(prompt, max_new_tokens=6)
        b = engine.generate(prompt, max_new_tokens=6)
        assert a.tokens == b.tokens
