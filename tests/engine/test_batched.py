"""Tests for batched cross-request tree verification.

Headline property: one fused pass over the whole batch produces exactly the
same per-request verification results (and cache states) as verifying each
request separately.
"""

import numpy as np
import pytest

from repro.engine.batched import BatchedTreeVerifier
from repro.model.coupled import CoupledSSM
from repro.model.paged_cache import PagedKVPool
from repro.model.sampling import SamplingConfig
from repro.speculate.expansion import ExpansionConfig, expand_token_tree
from repro.verify.verifier import TokenTreeVerifier
from tests.conftest import SMALL_CONFIG, make_prompt


def build_batch(llm, ssm, rng, n_requests=3, cache_factory=None):
    """Per-request (tree, cache) pairs with distinct prefix lengths."""
    factory = cache_factory or llm.new_cache
    trees, caches = [], []
    for i in range(n_requests):
        prompt = make_prompt(rng, length=4 + 2 * i)
        cache = factory()
        llm.prefill(prompt[:-1], cache)
        ssm_cache = ssm.new_cache()
        ssm.prefill(prompt[:-1], ssm_cache)
        tree = expand_token_tree(
            ssm, int(prompt[-1]), ssm_cache, ExpansionConfig((2, 2, 1)),
        )
        trees.append(tree)
        caches.append(cache)
    return trees, caches


class TestBatchedEqualsSequential:
    def test_greedy_results_identical(self, llm, ssm, rng):
        trees_a, caches_a = build_batch(llm, ssm, np.random.default_rng(1))
        trees_b, caches_b = build_batch(llm, ssm, np.random.default_rng(1))
        batched = BatchedTreeVerifier(llm, SamplingConfig(greedy=True))
        batch_results = batched.verify_batch(trees_a, caches_a)
        sequential = TokenTreeVerifier(llm, SamplingConfig(greedy=True))
        for tree, cache, batch_result in zip(trees_b, caches_b,
                                             batch_results):
            result = sequential.verify_step(tree, cache)
            assert result.accepted_tokens == batch_result.accepted_tokens
            assert result.accepted_nodes == batch_result.accepted_nodes

    def test_cache_states_identical_after_compaction(self, llm, ssm, rng):
        trees_a, caches_a = build_batch(llm, ssm, np.random.default_rng(2))
        trees_b, caches_b = build_batch(llm, ssm, np.random.default_rng(2))
        BatchedTreeVerifier(llm).verify_batch(trees_a, caches_a)
        sequential = TokenTreeVerifier(llm)
        for tree, cache in zip(trees_b, caches_b):
            sequential.verify_step(tree, cache)
        for batch_cache, seq_cache in zip(caches_a, caches_b):
            assert batch_cache.length == seq_cache.length
            for lb, ls in zip(batch_cache.layers, seq_cache.layers):
                kb, vb = lb.view()
                ks, vs = ls.view()
                np.testing.assert_allclose(kb, ks, atol=1e-12)
                np.testing.assert_allclose(vb, vs, atol=1e-12)

    def test_stochastic_results_identical_with_shared_rng(self, llm, ssm):
        """With the same RNG stream, batched and sequential stochastic
        verification make identical decisions."""
        trees_a, caches_a = build_batch(llm, ssm, np.random.default_rng(3))
        trees_b, caches_b = build_batch(llm, ssm, np.random.default_rng(3))
        sampling = SamplingConfig(temperature=1.0)
        batched = BatchedTreeVerifier(
            llm, sampling, rng=np.random.default_rng(42)
        )
        batch_results = batched.verify_batch(trees_a, caches_a)
        sequential = TokenTreeVerifier(
            llm, sampling, rng=np.random.default_rng(42)
        )
        for tree, cache, batch_result in zip(trees_b, caches_b,
                                             batch_results):
            result = sequential.verify_step(tree, cache)
            assert result.accepted_tokens == batch_result.accepted_tokens

    def test_continued_decoding_matches(self, llm, ssm):
        """After batched verification, each request decodes identically to
        a request verified alone."""
        trees_a, caches_a = build_batch(llm, ssm, np.random.default_rng(4))
        trees_b, caches_b = build_batch(llm, ssm, np.random.default_rng(4))
        batch_results = BatchedTreeVerifier(llm).verify_batch(
            trees_a, caches_a
        )
        sequential = TokenTreeVerifier(llm)
        for tree, cache_a, cache_b, batch_result in zip(
            trees_b, caches_a, caches_b, batch_results
        ):
            seq_result = sequential.verify_step(tree, cache_b)
            np.testing.assert_allclose(
                llm.decode(batch_result.bonus_token, cache_a),
                llm.decode(seq_result.bonus_token, cache_b),
                atol=1e-12,
            )


class TestBatchedMechanics:
    def test_empty_batch(self, llm):
        assert BatchedTreeVerifier(llm).verify_batch([], []) == []

    def test_mismatched_lengths_raise(self, llm, ssm, rng):
        trees, caches = build_batch(llm, ssm, rng, n_requests=2)
        with pytest.raises(ValueError, match="caches"):
            BatchedTreeVerifier(llm).verify_batch(trees, caches[:1])

    def test_single_request_batch_equals_plain_verifier(self, llm, ssm):
        trees_a, caches_a = build_batch(llm, ssm, np.random.default_rng(5),
                                        n_requests=1)
        trees_b, caches_b = build_batch(llm, ssm, np.random.default_rng(5),
                                        n_requests=1)
        batch_result = BatchedTreeVerifier(llm).verify_batch(
            trees_a, caches_a
        )[0]
        plain = TokenTreeVerifier(llm).verify_step(trees_b[0], caches_b[0])
        assert batch_result.accepted_tokens == plain.accepted_tokens

    def test_works_on_paged_caches(self, llm, ssm):
        """Batched verification over a shared paged pool."""
        pool = PagedKVPool(SMALL_CONFIG, num_blocks=64, block_size=8)
        trees_a, caches_a = build_batch(
            llm, ssm, np.random.default_rng(6),
            cache_factory=pool.new_sequence,
        )
        trees_b, caches_b = build_batch(llm, ssm, np.random.default_rng(6))
        batch_results = BatchedTreeVerifier(llm).verify_batch(
            trees_a, caches_a
        )
        sequential = TokenTreeVerifier(llm)
        for tree, cache, batch_result in zip(trees_b, caches_b,
                                             batch_results):
            result = sequential.verify_step(tree, cache)
            assert result.accepted_tokens == batch_result.accepted_tokens
