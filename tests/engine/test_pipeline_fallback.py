"""Pipeline fault fallback: degraded ticks decode incrementally, losslessly.

A speculation or verification fault must not crash a tick — the pipeline
degrades to Algorithm 1 (one-node tree through the incremental backend) and
re-enables speculation after ``fallback_cooldown`` clean ticks.  Under
greedy verification the degraded ticks emit exactly the tokens the
speculative path would have, so a faulted run's output is bit-identical to
a fault-free run.
"""

import pytest

from repro.engine.generation import GenerationConfig
from repro.engine.incremental import IncrementalEngine
from repro.engine.pipeline import DecodePipeline, DecodeState
from repro.faults import FaultInjector, FaultKind
from repro.speculate.expansion import ExpansionConfig
from repro.speculate.speculator import Speculator
from tests.conftest import make_prompt


class ScriptedInjector(FaultInjector):
    """Deterministic test double: fires per-kind scripted decisions."""

    def __init__(self, script):
        super().__init__(rate=0.0)
        self._script = {kind: list(flags) for kind, flags in script.items()}

    def _decide(self, kind):
        flags = self._script.get(kind)
        return bool(flags.pop(0)) if flags else False


def make_state(llm, ssm, prompt, max_new_tokens=12):
    return DecodeState(
        llm, prompt,
        GenerationConfig(max_new_tokens=max_new_tokens, stop_on_eos=False),
        speculator=Speculator([ssm], ExpansionConfig((1, 2, 1))),
    )


class TestFallbackEntry:
    def test_speculation_fault_degrades_tick(self, llm, ssm, rng):
        state = make_state(llm, ssm, make_prompt(rng))
        pipeline = DecodePipeline(
            llm,
            injector=ScriptedInjector({FaultKind.SPECULATION: [1]}),
            fallback_cooldown=2,
        )
        outcome = pipeline.tick([state])[0]
        assert pipeline.speculation_suppressed
        assert outcome.advanced
        assert len(outcome.emitted) == 1
        # Degraded steps record the Algorithm-1 trace shape: no tree, no
        # SSM time, one token scored.
        trace = state.steps[-1]
        assert trace.tree_size == 0
        assert trace.ssm_steps == 0
        assert trace.llm_tokens_scored == 1

    def test_verification_fault_degrades_tick(self, llm, ssm, rng):
        state = make_state(llm, ssm, make_prompt(rng))
        pipeline = DecodePipeline(
            llm,
            injector=ScriptedInjector({FaultKind.VERIFICATION: [1]}),
            fallback_cooldown=1,
        )
        outcome = pipeline.tick([state])[0]
        assert pipeline.speculation_suppressed
        assert len(outcome.emitted) == 1
        assert state.steps[-1].tree_size == 0

    def test_no_injector_never_degrades(self, llm, ssm, rng):
        state = make_state(llm, ssm, make_prompt(rng))
        pipeline = DecodePipeline(llm)
        pipeline.tick([state])
        assert not pipeline.speculation_suppressed
        assert state.steps[-1].tree_size > 0


class TestCooldown:
    def test_speculation_resumes_after_cooldown(self, llm, ssm, rng):
        """Entry tick + N cooldown ticks degrade; then speculation resumes."""
        state = make_state(llm, ssm, make_prompt(rng), max_new_tokens=20)
        pipeline = DecodePipeline(
            llm,
            injector=ScriptedInjector({FaultKind.SPECULATION: [1]}),
            fallback_cooldown=2,
        )
        for i in range(3):  # entry + 2 cooldown ticks
            pipeline.tick([state])
            assert state.steps[-1].tree_size == 0
            if i < 2:  # suppression drains exactly at the last cooldown tick
                assert pipeline.speculation_suppressed
        pipeline.tick([state])  # cooldown drained: speculation resumes
        assert not pipeline.speculation_suppressed
        assert state.steps[-1].tree_size > 0

    def test_zero_cooldown_degrades_single_tick(self, llm, ssm, rng):
        state = make_state(llm, ssm, make_prompt(rng))
        pipeline = DecodePipeline(
            llm,
            injector=ScriptedInjector({FaultKind.SPECULATION: [1]}),
            fallback_cooldown=0,
        )
        pipeline.tick([state])
        assert state.steps[-1].tree_size == 0
        assert not pipeline.speculation_suppressed
        pipeline.tick([state])
        assert state.steps[-1].tree_size > 0

    def test_negative_cooldown_rejected(self, llm):
        with pytest.raises(ValueError):
            DecodePipeline(llm, fallback_cooldown=-1)


class TestLosslessness:
    def test_faulted_run_is_bit_identical_under_greedy(self, llm, ssm, rng):
        """Faults change the path, never the tokens (greedy verification)."""
        prompt = make_prompt(rng)
        config = GenerationConfig(max_new_tokens=14, stop_on_eos=False)
        reference = IncrementalEngine(llm).generate(prompt, config).tokens

        state = make_state(llm, ssm, prompt, max_new_tokens=14)
        pipeline = DecodePipeline(
            llm,
            injector=ScriptedInjector({
                FaultKind.SPECULATION: [0, 1, 0, 0, 0, 1],
                FaultKind.VERIFICATION: [1],
            }),
            fallback_cooldown=2,
        )
        pipeline.run_to_completion(state)
        assert state.tokens == reference

    def test_incremental_states_unaffected_by_speculation_faults(
            self, llm, rng):
        """A batch with no speculators draws no speculation decisions."""
        prompt = make_prompt(rng)
        config = GenerationConfig(max_new_tokens=6, stop_on_eos=False)
        injector = ScriptedInjector({})
        state = DecodeState(llm, prompt, config)
        pipeline = DecodePipeline(llm, injector=injector)
        pipeline.run_to_completion(state)
        assert injector.checks[FaultKind.SPECULATION] == 0
        reference = IncrementalEngine(llm).generate(prompt, config).tokens
        assert state.tokens == reference
