"""Planner-driven pipeline: parity, per-tick re-budgeting, degradation."""

import numpy as np
import pytest

from repro.engine.generation import GenerationConfig
from repro.engine.pipeline import (
    DecodePipeline,
    DecodeState,
    FusedBackend,
    IncrementalBackend,
    PerRequestBackend,
)
from repro.model.coupled import CoupledSSM
from repro.speculate.expansion import ExpansionConfig
from repro.speculate.planner import TreePlan, TreePlanner, tree_tokens
from repro.speculate.speculator import Speculator
from tests.conftest import make_prompt


def make_states(llm, n=3, max_new_tokens=12, alignment=0.9):
    states = []
    for i in range(n):
        rng = np.random.default_rng(100 + i)
        speculator = Speculator(
            [CoupledSSM(llm, alignment=alignment, seed=7, noise_scale=2.0)],
            ExpansionConfig.paper_default(),
        )
        states.append(DecodeState(
            llm, make_prompt(rng, length=5),
            GenerationConfig(max_new_tokens=max_new_tokens, seed=i),
            speculator=speculator,
        ))
    return states


def drain(pipeline, states):
    while not all(s.finished for s in states):
        pipeline.tick([s for s in states])
    return [list(s.tokens) for s in states]


class StubPlanner:
    """A planner double whose budget the test can change between ticks."""

    def __init__(self, widths):
        self.widths = tuple(widths)
        self.observed = []

    def plan(self, batch_size, context_len=None):
        budget = tree_tokens(self.widths)
        return TreePlan(
            budget=budget, widths=self.widths, alpha=0.5,
            expected_tokens=1.0 + 0.5 * budget,
            tick_seconds=1.0, baseline_seconds=1.0,
        )

    def observe(self, accepted, stops):
        self.observed.append((accepted, stops))


class TestPlannerParity:
    """The planner only moves tokens-per-step, never the greedy tokens."""

    @pytest.mark.parametrize("backend_factory", [
        lambda llm: PerRequestBackend(llm),
        lambda llm: FusedBackend(llm, mode="block"),
        lambda llm: FusedBackend(llm, mode="dense"),
        lambda llm: IncrementalBackend(llm),
    ], ids=["per_request", "fused_block", "fused_dense", "incremental"])
    def test_matches_static_run(self, llm, backend_factory):
        static = drain(
            DecodePipeline(llm, backend_factory(llm)), make_states(llm)
        )
        planned = drain(
            DecodePipeline(llm, backend_factory(llm),
                           planner=TreePlanner.default()),
            make_states(llm),
        )
        assert planned == static

    def test_packed_and_per_session_build_identical_planned_trees(self, llm):
        packed_states = make_states(llm)
        packed = DecodePipeline(llm, FusedBackend(llm),
                                planner=TreePlanner.default())
        drain(packed, packed_states)

        loop_states = make_states(llm)
        loop = DecodePipeline(llm, FusedBackend(llm),
                              planner=TreePlanner.default(),
                              packed_speculation=False)
        drain(loop, loop_states)

        for a, b in zip(packed_states, loop_states):
            assert a.tokens == b.tokens
            assert ([s.tree_size for s in a.steps]
                    == [s.tree_size for s in b.steps])


class TestPerTickBudget:
    def test_budget_change_takes_effect_next_tick(self, llm):
        """Regression: the budget is a per-call parameter, not baked into
        the speculator at construction time — changing it between ticks
        must change the next tick's tree without a speculator rebuild."""
        stub = StubPlanner((1, 1, 1, 1))
        states = make_states(llm, n=2, max_new_tokens=30)
        speculators = [s.speculator for s in states]
        pipeline = DecodePipeline(llm, FusedBackend(llm), planner=stub)

        pipeline.tick(states)
        assert all(s.steps[-1].tree_size == 5 for s in states)

        stub.widths = (2,)
        pipeline.tick(states)
        assert all(s.steps[-1].tree_size == 3 for s in states)
        # Same speculator objects throughout — no rebuild, caches intact.
        assert [s.speculator for s in states] == speculators

    def test_plan_overrides_static_config_depth_accounting(self, llm):
        stub = StubPlanner((1, 1))
        states = make_states(llm, n=1, max_new_tokens=30)
        pipeline = DecodePipeline(llm, FusedBackend(llm), planner=stub)
        pipeline.tick(states)
        # ssm_steps reflects the plan's 2-level tree, not the static
        # config's depth-8 default.
        assert states[0].steps[-1].ssm_steps == 2

    def test_budget_zero_runs_algorithm_one(self, llm):
        stub = StubPlanner(())
        states = make_states(llm, n=2, max_new_tokens=6)
        pipeline = DecodePipeline(llm, FusedBackend(llm), planner=stub)
        tokens = drain(pipeline, states)
        # Every step has the incremental (Algorithm 1) trace shape: one
        # token scored, one emitted, no tree or SSM-step cost fields.
        for state in states:
            for step in state.steps:
                assert step.llm_tokens_scored == 1
                assert step.tokens_emitted == 1
                assert step.tree_size == 0
                assert step.ssm_steps == 0
        # And the emitted tokens match the speculative run bit-for-bit.
        static = drain(DecodePipeline(llm, FusedBackend(llm)),
                       make_states(llm, n=2, max_new_tokens=6))
        assert tokens == static

    def test_fault_degraded_ticks_skip_planning(self, llm):
        from repro.faults import FaultInjector

        stub = StubPlanner((1, 1, 1))
        states = make_states(llm, n=2, max_new_tokens=10)
        pipeline = DecodePipeline(
            llm, FusedBackend(llm), planner=stub,
            injector=FaultInjector(rate=1.0, seed=3), fallback_cooldown=2,
        )
        pipeline.tick(states)
        # The speculation fault fired, so the tick ran incrementally and
        # contributed no acceptance evidence to the planner.
        assert pipeline.speculation_suppressed
        assert stub.observed == []


class TestPlannerFeedback:
    def test_observations_flow_back_to_the_estimator(self, llm):
        planner = TreePlanner.default()
        pipeline = DecodePipeline(llm, FusedBackend(llm), planner=planner)
        drain(pipeline, make_states(llm))
        assert planner.estimator.observations > 0

    def test_stub_receives_accepted_and_stop_counts(self, llm):
        stub = StubPlanner((1, 1, 1, 1))
        pipeline = DecodePipeline(llm, FusedBackend(llm), planner=stub)
        drain(pipeline, make_states(llm, n=2))
        assert stub.observed
        for accepted, stops in stub.observed:
            assert accepted >= 0
            assert 0 <= stops <= 2
