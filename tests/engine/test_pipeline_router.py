"""Routed pipeline: per-member feedback, fault guards, planner override."""

import numpy as np
import pytest

from repro.engine.generation import GenerationConfig
from repro.engine.pipeline import DecodePipeline, DecodeState, FusedBackend
from repro.faults import FaultInjector
from repro.obs import REGISTRY, reset_observability
from repro.speculate.planner import TreePlanner
from repro.speculate.pool import SpeculatorPool
from repro.speculate.router import RouterConfig, SpeculatorRouter
from tests.conftest import make_prompt


@pytest.fixture(autouse=True)
def clean_registry():
    reset_observability()
    yield


def make_routed(llm, n=3, max_new_tokens=10, policy="round_robin"):
    """A pool, its router, and ``n`` states already routed and pinned."""
    pool = SpeculatorPool.from_coupled(
        llm, (0.9, 0.7, 0.5), names=("strong", "medium", "weak")
    )
    router = SpeculatorRouter(pool, RouterConfig(policy=policy, seed=0))
    states = []
    for i in range(n):
        rng = np.random.default_rng(100 + i)
        prompt = make_prompt(rng, length=5)
        assignment = router.route(i, prompt)
        state = DecodeState(
            llm, prompt,
            GenerationConfig(max_new_tokens=max_new_tokens, seed=i),
            speculator=pool.make_speculator(assignment.member),
        )
        state.route = assignment
        states.append(state)
    return pool, router, states


def drain(pipeline, states):
    while not all(s.finished for s in states):
        pipeline.tick([s for s in states])
    return [list(s.tokens) for s in states]


class TestRoutedFeedback:
    def test_route_defaults_to_none(self, llm, rng):
        state = DecodeState(llm, make_prompt(rng),
                            GenerationConfig(max_new_tokens=4))
        assert state.route is None

    def test_acceptance_flows_to_the_assigned_members(self, llm):
        pool, router, states = make_routed(llm)
        priors = {name: pool.alpha_for(name) for name in pool.names}
        drain(DecodePipeline(llm, FusedBackend(llm), router=router), states)
        assert router.observations > 0
        # Round-robin over 3 states touched every member exactly once, so
        # every estimator moved off its prior with member-private evidence.
        for name in pool.names:
            assert pool.estimator_for(name).observations > 0
            assert pool.alpha_for(name) != priors[name]

    def test_routed_run_matches_unrouted_tokens(self, llm):
        """Routing changes who drafts, never what greedy verification
        emits: token-for-token parity with the plain pipeline."""
        from repro.model.coupled import CoupledSSM
        from repro.speculate.expansion import ExpansionConfig
        from repro.speculate.speculator import Speculator

        _, router, routed_states = make_routed(llm)
        routed = drain(
            DecodePipeline(llm, FusedBackend(llm), router=router),
            routed_states,
        )
        plain_states = []
        for i in range(3):
            rng = np.random.default_rng(100 + i)
            plain_states.append(DecodeState(
                llm, make_prompt(rng, length=5),
                GenerationConfig(max_new_tokens=10, seed=i),
                speculator=Speculator(
                    [CoupledSSM(llm, alignment=0.9, seed=7,
                                noise_scale=2.0)],
                    ExpansionConfig.paper_default(),
                ),
            ))
        plain = drain(DecodePipeline(llm, FusedBackend(llm)), plain_states)
        assert routed == plain


class TestFaultGuards:
    def test_fault_degraded_ticks_observe_nothing(self, llm):
        """A speculation fault runs the tick incrementally: no router
        observation, no member-estimator drift — exactly the global
        planner's skip, per member."""
        pool, router, states = make_routed(llm)
        priors = {name: pool.alpha_for(name) for name in pool.names}
        pipeline = DecodePipeline(
            llm, FusedBackend(llm), router=router,
            injector=FaultInjector(rate=1.0, seed=3), fallback_cooldown=2,
        )
        pipeline.tick(states)
        assert pipeline.speculation_suppressed
        assert router.observations == 0
        for name in pool.names:
            assert pool.alpha_for(name) == priors[name]
            assert pool.estimator_for(name).observations == 0

    def test_suppressed_ticks_observe_nothing(self, llm):
        pool, router, states = make_routed(llm)
        pipeline = DecodePipeline(llm, FusedBackend(llm), router=router)
        pipeline._fallback_remaining = 3
        pipeline.tick(states)
        assert router.observations == 0
        assert REGISTRY.get("repro.router.observations").value == 0

    def test_fault_ticks_keep_assignments_pinned(self, llm):
        """Fallback must not reset routing history: the sticky assignment
        survives and no new assignment is minted afterwards."""
        pool, router, states = make_routed(llm)
        history = router.assignment_history
        pipeline = DecodePipeline(
            llm, FusedBackend(llm), router=router,
            injector=FaultInjector(rate=1.0, seed=3), fallback_cooldown=1,
        )
        pipeline.tick(states)
        assert router.assignment_history == history
        for i, state in enumerate(states):
            assert router.assignment_for(i) is state.route


class TestPlannerOverride:
    def test_plan_uses_mean_routed_alpha(self, llm):
        pool, router, states = make_routed(llm)
        # Push the member estimates apart so the routed mean is
        # distinguishable from the planner's global prior.
        pool.estimator_for("strong").observe(9, 1)
        pool.estimator_for("medium").observe(5, 5)
        pool.estimator_for("weak").observe(1, 9)
        expected = round(
            sum(router.alpha_for(s.route.member) for s in states)
            / len(states), 6,
        )
        planner = TreePlanner.default()
        assert expected != round(planner.estimator.alpha, 6)
        pipeline = DecodePipeline(llm, FusedBackend(llm), router=router,
                                  planner=planner)
        pipeline.tick(states)
        assert REGISTRY.get("repro.planner.alpha").value == expected

    def test_unrouted_states_fall_back_to_global_estimator(self, llm, rng):
        from repro.model.coupled import CoupledSSM
        from repro.speculate.expansion import ExpansionConfig
        from repro.speculate.speculator import Speculator

        pool, router, _ = make_routed(llm, n=1)
        planner = TreePlanner.default()
        state = DecodeState(
            llm, make_prompt(rng, length=5),
            GenerationConfig(max_new_tokens=6),
            speculator=Speculator(
                [CoupledSSM(llm, alignment=0.9, seed=7, noise_scale=2.0)],
                ExpansionConfig.paper_default(),
            ),
        )
        pipeline = DecodePipeline(llm, FusedBackend(llm), router=router,
                                  planner=planner)
        global_alpha = round(planner.estimator.alpha, 6)
        pipeline.tick([state])
        assert REGISTRY.get("repro.planner.alpha").value == global_alpha
