"""Equivalence and perf-regression suite for the block-sparse fused path.

Headline property: the three execution paths —

1. per-request loop (``TokenTreeVerifier.verify_step`` per request),
2. dense-fused (``BatchedTreeVerifier(mode="dense")``, one block-diagonal
   mask over concatenated caches),
3. block-sparse fused (``BatchedTreeVerifier(mode="block")``, the default)

— produce identical :class:`VerificationResult`s and cache states, for
greedy *and* stochastic verification, over contiguous, paged and arena
caches, including ragged batches.  The ``perf_smoke`` tests additionally
pin the block-sparse path's cost shape (no cross-request score FLOPs, no
per-step KV staging copies, allocation-free steady-state masks) so future
changes cannot silently reintroduce the quadratic path.
"""

import numpy as np
import pytest

from repro.engine.batched import BatchedTreeVerifier, _BatchLayout
from repro.model import perf
from repro.model.arena import BatchArena
from repro.model.paged_cache import PagedKVPool
from repro.model.sampling import SamplingConfig
from repro.speculate.expansion import ExpansionConfig, expand_token_tree
from repro.tree.token_tree import TokenTree
from repro.verify.verifier import TokenTreeVerifier
from tests.conftest import SMALL_CONFIG, make_prompt


def build_batch(llm, ssm, rng, n_requests=3, cache_factory=None,
                widths=(2, 2, 1), prompt_lengths=None):
    """Per-request (tree, cache) pairs with distinct prefix lengths."""
    factory = cache_factory or llm.new_cache
    trees, caches = [], []
    for i in range(n_requests):
        length = (prompt_lengths[i] if prompt_lengths is not None
                  else 4 + 2 * i)
        prompt = make_prompt(rng, length=length)
        cache = factory()
        llm.prefill(prompt[:-1], cache)
        ssm_cache = ssm.new_cache()
        ssm.prefill(prompt[:-1], ssm_cache)
        tree = expand_token_tree(
            ssm, int(prompt[-1]), ssm_cache, ExpansionConfig(widths),
        )
        trees.append(tree)
        caches.append(cache)
    return trees, caches


def assert_results_equal(a, b):
    assert a.accepted_tokens == b.accepted_tokens
    assert a.accepted_nodes == b.accepted_nodes
    assert a.bonus_token == b.bonus_token


def assert_caches_equal(cache_a, cache_b):
    assert cache_a.length == cache_b.length
    for la, lb in zip(cache_a.layers, cache_b.layers):
        ka, va = la.view()
        kb, vb = lb.view()
        np.testing.assert_allclose(ka, kb, atol=1e-12)
        np.testing.assert_allclose(va, vb, atol=1e-12)


class TestThreePathEquivalence:
    """block-sparse == dense-fused == per-request loop, bit for bit."""

    @pytest.mark.parametrize("greedy", [True, False],
                             ids=["greedy", "stochastic"])
    def test_results_identical_across_paths(self, llm, ssm, greedy):
        sampling = (SamplingConfig(greedy=True) if greedy
                    else SamplingConfig(temperature=1.0))
        per_path = {}
        for path in ("loop", "dense", "block"):
            trees, caches = build_batch(llm, ssm, np.random.default_rng(11))
            rng = np.random.default_rng(42)
            if path == "loop":
                verifier = TokenTreeVerifier(llm, sampling, rng=rng)
                results = [
                    verifier.verify_step(tree, cache)
                    for tree, cache in zip(trees, caches)
                ]
            else:
                results = BatchedTreeVerifier(
                    llm, sampling, rng=rng, mode=path
                ).verify_batch(trees, caches)
            per_path[path] = (results, caches)
        for path in ("dense", "block"):
            for res, ref in zip(per_path[path][0], per_path["loop"][0]):
                assert_results_equal(res, ref)
            for cache, ref_cache in zip(per_path[path][1],
                                        per_path["loop"][1]):
                assert_caches_equal(cache, ref_cache)

    @pytest.mark.parametrize("greedy", [True, False],
                             ids=["greedy", "stochastic"])
    def test_paged_caches(self, llm, ssm, greedy):
        sampling = (SamplingConfig(greedy=True) if greedy
                    else SamplingConfig(temperature=1.0))
        pool = PagedKVPool(SMALL_CONFIG, num_blocks=64, block_size=8)
        trees_a, caches_a = build_batch(
            llm, ssm, np.random.default_rng(12),
            cache_factory=pool.new_sequence,
        )
        trees_b, caches_b = build_batch(llm, ssm, np.random.default_rng(12))
        block = BatchedTreeVerifier(
            llm, sampling, rng=np.random.default_rng(7), mode="block"
        ).verify_batch(trees_a, caches_a)
        dense = BatchedTreeVerifier(
            llm, sampling, rng=np.random.default_rng(7), mode="dense"
        ).verify_batch(trees_b, caches_b)
        for res, ref in zip(block, dense):
            assert_results_equal(res, ref)
        for cache, ref_cache in zip(caches_a, caches_b):
            assert_caches_equal(cache, ref_cache)

    def test_arena_caches(self, llm, ssm):
        arena = BatchArena(SMALL_CONFIG, max_requests=3)
        trees_a, caches_a = build_batch(
            llm, ssm, np.random.default_rng(13),
            cache_factory=arena.new_sequence,
        )
        trees_b, caches_b = build_batch(llm, ssm, np.random.default_rng(13))
        block = BatchedTreeVerifier(llm, mode="block").verify_batch(
            trees_a, caches_a
        )
        loop = TokenTreeVerifier(llm)
        for tree, cache, res in zip(trees_b, caches_b, block):
            assert_results_equal(res, loop.verify_step(tree, cache))
        for cache, ref_cache in zip(caches_a, caches_b):
            assert_caches_equal(cache, ref_cache)

    def test_ragged_batch_mixed_prefixes_and_tree_sizes(self, llm, ssm):
        """Strongly ragged batch: prefix lengths 2..14, tree widths vary."""
        per_path = {}
        for path in ("dense", "block"):
            rng = np.random.default_rng(14)
            trees, caches = [], []
            for length, widths in [(2, (1,)), (9, (3, 2, 1)), (14, (2,)),
                                   (5, (2, 2, 2))]:
                t, c = build_batch(llm, ssm, rng, n_requests=1,
                                   widths=widths, prompt_lengths=[length])
                trees += t
                caches += c
            results = BatchedTreeVerifier(llm, mode=path).verify_batch(
                trees, caches
            )
            per_path[path] = (results, caches)
        for res, ref in zip(per_path["block"][0], per_path["dense"][0]):
            assert_results_equal(res, ref)
        for cache, ref_cache in zip(per_path["block"][1],
                                    per_path["dense"][1]):
            assert_caches_equal(cache, ref_cache)

    def test_single_request_batch(self, llm, ssm):
        trees_a, caches_a = build_batch(llm, ssm, np.random.default_rng(15),
                                        n_requests=1)
        trees_b, caches_b = build_batch(llm, ssm, np.random.default_rng(15),
                                        n_requests=1)
        block = BatchedTreeVerifier(llm, mode="block").verify_batch(
            trees_a, caches_a
        )[0]
        plain = TokenTreeVerifier(llm).verify_step(trees_b[0], caches_b[0])
        assert_results_equal(block, plain)

    def test_root_only_tree_edge_case(self, llm, ssm, rng):
        """A degenerate single-node tree (no speculation) in the batch."""
        trees, caches = build_batch(llm, ssm, np.random.default_rng(16),
                                    n_requests=2)
        prompt = make_prompt(rng, length=5)
        root_cache = llm.new_cache()
        llm.prefill(prompt[:-1], root_cache)
        root_tree = TokenTree(int(prompt[-1]))
        trees.append(root_tree)
        caches.append(root_cache)
        dense_trees, dense_caches = build_batch(
            llm, ssm, np.random.default_rng(16), n_requests=2
        )
        dense_root_cache = llm.new_cache()
        llm.prefill(prompt[:-1], dense_root_cache)
        dense_trees.append(TokenTree(int(prompt[-1])))
        dense_caches.append(dense_root_cache)
        block = BatchedTreeVerifier(llm, mode="block").verify_batch(
            trees, caches
        )
        dense = BatchedTreeVerifier(llm, mode="dense").verify_batch(
            dense_trees, dense_caches
        )
        for res, ref in zip(block, dense):
            assert_results_equal(res, ref)
        # The root-only request always accepts exactly the root.
        assert len(block[-1].accepted_nodes) == 1

    def test_empty_batch(self, llm):
        assert BatchedTreeVerifier(llm, mode="block").verify_batch([], []) == []

    def test_unknown_mode_raises(self, llm):
        with pytest.raises(ValueError, match="mode"):
            BatchedTreeVerifier(llm, mode="sparse-ish")

    def test_continued_decoding_matches(self, llm, ssm):
        """After block-sparse verification, requests decode identically."""
        trees_a, caches_a = build_batch(llm, ssm, np.random.default_rng(17))
        trees_b, caches_b = build_batch(llm, ssm, np.random.default_rng(17))
        block = BatchedTreeVerifier(llm, mode="block").verify_batch(
            trees_a, caches_a
        )
        loop = TokenTreeVerifier(llm)
        for tree, cache_a, cache_b, res in zip(trees_b, caches_a, caches_b,
                                               block):
            ref = loop.verify_step(tree, cache_b)
            np.testing.assert_allclose(
                llm.decode(res.bonus_token, cache_a),
                llm.decode(ref.bonus_token, cache_b),
                atol=1e-12,
            )


class TestBatchLayout:
    def test_layout_geometry(self, llm, ssm):
        trees, caches = build_batch(llm, ssm, np.random.default_rng(18))
        from repro.engine.batched import _BatchItem
        from repro.tree.masks import linearize

        items = [
            _BatchItem(tree=t, cache=c, lin=linearize(t),
                       prefix_len=c.length)
            for t, c in zip(trees, caches)
        ]
        layout = _BatchLayout.from_items(items)
        assert layout.n_total == sum(layout.new_counts)
        assert layout.k_total == sum(
            p + n for p, n in zip(layout.priors, layout.new_counts)
        )
        assert layout.block_cells + layout.cross_cells == (
            layout.n_total * layout.k_total
        )
        assert layout.row_offsets[-1] == layout.n_total
        assert layout.col_offsets[-1] == layout.k_total


@pytest.mark.perf_smoke
class TestPerfSmoke:
    """Counter-based regression guards for the block-sparse cost shape."""

    def test_block_path_no_cross_request_flops_and_no_kv_copies(
        self, llm, ssm
    ):
        arena = BatchArena(SMALL_CONFIG, max_requests=3)
        trees, caches = build_batch(
            llm, ssm, np.random.default_rng(20),
            cache_factory=arena.new_sequence,
        )
        verifier = BatchedTreeVerifier(llm, mode="block")
        with perf.track() as c:
            verifier.verify_batch(trees, caches)
        assert c.cross_request_score_flops == 0
        assert c.kv_bytes_copied == 0
        assert c.attn_score_flops > 0

    def test_dense_path_pays_cross_request_flops(self, llm, ssm):
        """Sanity check that the counters actually detect the dense path."""
        trees, caches = build_batch(llm, ssm, np.random.default_rng(21))
        verifier = BatchedTreeVerifier(llm, mode="dense")
        with perf.track() as c:
            verifier.verify_batch(trees, caches)
        assert c.cross_request_score_flops > 0
        assert c.kv_bytes_copied > 0

    def test_block_path_scores_fewer_flops_than_dense(self, llm, ssm):
        flops = {}
        for mode in ("dense", "block"):
            trees, caches = build_batch(llm, ssm, np.random.default_rng(22))
            with perf.track() as c:
                BatchedTreeVerifier(llm, mode=mode).verify_batch(
                    trees, caches
                )
            flops[mode] = c.attn_score_flops
        assert flops["block"] < flops["dense"]

    def test_steady_state_masks_are_allocation_free(self, llm, ssm):
        """After warm-up, repeated batched steps allocate no mask cells."""
        arena = BatchArena(SMALL_CONFIG, max_requests=3)
        trees, caches = build_batch(
            llm, ssm, np.random.default_rng(23),
            cache_factory=arena.new_sequence,
        )
        snapshots = [c.snapshot() for c in caches]
        verifier = BatchedTreeVerifier(llm, mode="block")
        verifier.verify_batch(trees, caches)  # warm-up allocates scratch
        for cache, snap in zip(caches, snapshots):
            cache.restore(snap)
        with perf.track() as c:
            verifier.verify_batch(trees, caches)
        assert c.mask_cells_allocated == 0

    def test_incremental_decode_masks_are_allocation_free(self, llm, rng):
        prompt = make_prompt(rng, length=6)
        cache = llm.new_cache()
        llm.prefill(prompt, cache)
        llm.decode(3, cache)  # warm-up
        with perf.track() as c:
            for token in (4, 5, 6):
                llm.decode(token, cache)
        assert c.mask_cells_allocated == 0
