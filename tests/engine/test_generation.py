"""Tests for generation types and truncation helpers."""

import numpy as np
import pytest

from repro.engine.generation import (
    GenerationConfig,
    GenerationResult,
    StepTrace,
    clip_generated,
)


class TestGenerationConfig:
    def test_rejects_zero_budget(self):
        with pytest.raises(ValueError):
            GenerationConfig(max_new_tokens=0)

    def test_defaults_greedy(self):
        assert GenerationConfig().sampling.greedy


class TestClipGenerated:
    def test_truncates_to_budget(self):
        tokens, eos = clip_generated(
            [1, 2, 3, 4, 5], GenerationConfig(max_new_tokens=3), eos_token_id=0
        )
        assert tokens == [1, 2, 3]
        assert not eos

    def test_stops_at_eos_inclusive(self):
        tokens, eos = clip_generated(
            [1, 0, 3], GenerationConfig(max_new_tokens=10), eos_token_id=0
        )
        assert tokens == [1, 0]
        assert eos

    def test_ignores_eos_when_disabled(self):
        tokens, eos = clip_generated(
            [1, 0, 3],
            GenerationConfig(max_new_tokens=10, stop_on_eos=False),
            eos_token_id=0,
        )
        assert tokens == [1, 0, 3]
        assert not eos


class TestGenerationResult:
    def _result(self):
        result = GenerationResult(prompt=np.array([1, 2]))
        result.tokens = [3, 4, 5, 6]
        result.steps = [
            StepTrace(llm_tokens_scored=5, tokens_emitted=3, tree_size=5),
            StepTrace(llm_tokens_scored=5, tokens_emitted=1, tree_size=5),
        ]
        return result

    def test_counts(self):
        result = self._result()
        assert result.num_tokens == 4
        assert result.num_llm_steps == 2

    def test_mean_tokens_per_step(self):
        assert self._result().mean_tokens_per_step == 2.0

    def test_tokens_per_step_series(self):
        np.testing.assert_array_equal(
            self._result().tokens_per_step_series(), [3.0, 1.0]
        )

    def test_empty_result(self):
        result = GenerationResult(prompt=np.array([1]))
        assert result.mean_tokens_per_step == 0.0
        assert result.tokens_per_step_series().size == 0
