"""In-process streaming semantics: events, ordering, stream lifecycle."""

import asyncio

import pytest

from repro.engine.generation import GenerationConfig
from repro.obs import REGISTRY
from repro.serving.gateway import (
    GatewayRequestFailed,
    ServingGateway,
    SloClass,
    StreamEvent,
    TokenStream,
)

from tests.gateway.conftest import build_manager


def _config(tokens=6):
    return GenerationConfig(max_new_tokens=tokens, stop_on_eos=False)


class TestTokenStreamUnit:
    """TokenStream semantics without a gateway behind it."""

    async def test_iteration_yields_terminal_then_stops(self):
        stream = TokenStream(tenant="t", slo=SloClass.INTERACTIVE)
        stream.push(StreamEvent(kind="token", token=5, index=0))
        stream.push(StreamEvent(kind="done"))
        kinds = [event.kind async for event in stream]
        assert kinds == ["token", "done"]
        with pytest.raises(StopAsyncIteration):
            await stream.__anext__()

    async def test_push_after_terminal_is_ignored(self):
        stream = TokenStream(tenant="t", slo=SloClass.BATCH)
        stream.push(StreamEvent(kind="done"))
        stream.push(StreamEvent(kind="token", token=9, index=0))
        kinds = [event.kind async for event in stream]
        assert kinds == ["done"]

    async def test_collect_returns_tokens(self):
        stream = TokenStream(tenant="t", slo=SloClass.INTERACTIVE)
        for i, token in enumerate((4, 8, 15)):
            stream.push(StreamEvent(kind="token", token=token, index=i))
        stream.push(StreamEvent(kind="done"))
        assert await stream.collect() == [4, 8, 15]

    async def test_collect_raises_with_partial_tokens_on_failure(self):
        stream = TokenStream(tenant="t", slo=SloClass.INTERACTIVE)
        stream.push(StreamEvent(kind="token", token=4, index=0))
        stream.push(StreamEvent(kind="failed", reason="retries_exhausted"))
        with pytest.raises(GatewayRequestFailed) as err:
            await stream.collect()
        assert err.value.partial_tokens == [4]
        assert "retries_exhausted" in str(err.value)

    def test_to_wire_includes_only_set_fields(self):
        assert StreamEvent(kind="token", token=3, index=1).to_wire() == \
            {"event": "token", "token": 3, "index": 1}
        assert StreamEvent(kind="stall", reason="preempted").to_wire() == \
            {"event": "stall", "reason": "preempted"}
        assert StreamEvent(kind="resume").to_wire() == {"event": "resume"}


class TestGatewayStreaming:
    async def test_tokens_arrive_incrementally_with_indices(
            self, llm, prompts):
        manager = build_manager(llm)
        gateway = ServingGateway(manager)
        await gateway.start()
        try:
            stream = await gateway.submit(prompts[0], _config())
            events = [event async for event in stream]
        finally:
            await gateway.stop()
        tokens = [e for e in events if e.kind == "token"]
        assert len(tokens) == 6
        assert [e.index for e in tokens] == list(range(6))
        assert events[-1].kind == "done"
        assert stream.request_id is not None
        assert stream.output is not None
        assert stream.output.tokens == [e.token for e in tokens]

    async def test_concurrent_streams_each_complete(self, llm, prompts):
        manager = build_manager(llm)
        gateway = ServingGateway(manager)
        await gateway.start()
        try:
            streams = [
                await gateway.submit(p, _config()) for p in prompts[:4]
            ]
            results = await asyncio.gather(
                *[stream.collect() for stream in streams])
        finally:
            await gateway.stop()
        for stream, tokens in zip(streams, results):
            assert len(tokens) == 6
            assert stream.output.tokens == tokens

    async def test_streams_open_gauge_returns_to_zero(self, llm, prompts):
        gauge = REGISTRY.gauge("repro.gateway.streams_open")
        before = gauge.value
        manager = build_manager(llm)
        gateway = ServingGateway(manager)
        await gateway.start()
        try:
            stream = await gateway.submit(prompts[0], _config())
            await stream.collect()
        finally:
            await gateway.stop()
        assert gauge.value == before

    async def test_stop_without_drain_fails_queued_requests(
            self, llm, prompts):
        # batch=1 and five queued requests: stopping without drain must
        # fail the still-queued ones (shutdown), not hang their clients.
        manager = build_manager(llm, batch=1)
        gateway = ServingGateway(manager)
        streams = [await gateway.submit(p, _config()) for p in prompts[:5]]
        await gateway.start()
        # Let the first request get going, then pull the plug.
        await asyncio.sleep(0)
        await gateway.stop(drain=False)
        outcomes = []
        for stream in streams:
            try:
                await asyncio.wait_for(stream.collect(), timeout=5.0)
                outcomes.append("done")
            except GatewayRequestFailed as exc:
                assert str(exc) == "shutdown"
                outcomes.append("failed")
        assert "failed" in outcomes

    async def test_stop_with_drain_completes_everything(self, llm, prompts):
        manager = build_manager(llm, batch=2)
        gateway = ServingGateway(manager)
        streams = [await gateway.submit(p, _config()) for p in prompts]
        await gateway.start()
        await gateway.stop(drain=True)
        for stream in streams:
            tokens = await stream.collect()
            assert len(tokens) == 6
