"""TCP/JSONL transport: wire protocol, error handling, client parity."""

import asyncio
import json

import pytest

from repro.engine.generation import GenerationConfig
from repro.obs import REGISTRY
from repro.serving.client import GatewayClient, GatewayClientError
from repro.serving.gateway import GatewayConfig, ServingGateway, TenantConfig
from repro.serving.transport import (
    decode_line,
    encode_line,
    start_gateway_server,
)

from tests.gateway.conftest import build_manager, replay_reference


async def _stack(llm, gateway_config=None, **manager_kwargs):
    gateway = ServingGateway(build_manager(llm, **manager_kwargs),
                             gateway_config)
    await gateway.start()
    server = await start_gateway_server(gateway)
    return gateway, server


class TestWireCodec:
    def test_round_trip_is_canonical(self):
        line = encode_line({"b": 2, "a": 1})
        assert line == b'{"a": 1, "b": 2}\n'
        assert decode_line(line) == {"a": 1, "b": 2}

    def test_non_object_rejected(self):
        with pytest.raises(ValueError):
            decode_line(b"[1, 2]\n")
        with pytest.raises(ValueError):
            decode_line(b"not json\n")


class TestTransport:
    async def test_ping(self, llm):
        gateway, server = await _stack(llm)
        try:
            async with await GatewayClient.connect(
                    server.host, server.port) as client:
                assert await client.ping()
        finally:
            await server.close()
            await gateway.stop()

    async def test_generate_streams_tokens_then_done(self, llm, prompts):
        reference = replay_reference(
            llm, prompts[:1],
            GenerationConfig(max_new_tokens=8, stop_on_eos=False))[0]
        gateway, server = await _stack(llm)
        try:
            async with await GatewayClient.connect(
                    server.host, server.port) as client:
                result = await client.collect(
                    prompts[0], max_new_tokens=8, stop_on_eos=False)
        finally:
            await server.close()
            await gateway.stop()
        assert result.status == "done"
        assert result.tokens == reference
        assert result.events[0] == {"event": "accepted"}
        done = result.events[-1]
        assert done["tokens"] == len(reference)
        assert isinstance(done["request_id"], int)
        indices = [e["index"] for e in result.events
                   if e.get("event") == "token"]
        assert indices == list(range(len(reference)))

    async def test_sequential_requests_share_a_connection(
            self, llm, prompts):
        gateway, server = await _stack(llm)
        try:
            async with await GatewayClient.connect(
                    server.host, server.port) as client:
                first = await client.collect(prompts[0], max_new_tokens=4,
                                             stop_on_eos=False)
                second = await client.collect(prompts[1], max_new_tokens=4,
                                              stop_on_eos=False)
        finally:
            await server.close()
            await gateway.stop()
        assert first.status == second.status == "done"
        assert len(first.tokens) == len(second.tokens) == 4

    async def test_rejected_request_is_terminal_not_fatal(
            self, llm, prompts):
        config = GatewayConfig(
            tenants={"a": TenantConfig(name="a")}, auto_tenants=False)
        gateway, server = await _stack(llm, gateway_config=config)
        try:
            async with await GatewayClient.connect(
                    server.host, server.port) as client:
                rejected = await client.collect(
                    prompts[0], max_new_tokens=4, tenant="ghost")
                assert rejected.status == "rejected"
                assert rejected.reason == "unknown_tenant"
                # The connection survives a reject: the next request works.
                ok = await client.collect(prompts[0], max_new_tokens=4,
                                          stop_on_eos=False, tenant="a")
                assert ok.status == "done"
        finally:
            await server.close()
            await gateway.stop()

    async def test_malformed_lines_answer_error_and_keep_connection(
            self, llm, prompts):
        errors = REGISTRY.counter(
            "repro.gateway.transport_protocol_errors")
        before = errors.value
        gateway, server = await _stack(llm)
        try:
            reader, writer = await asyncio.open_connection(
                server.host, server.port)
            try:
                for bad in (b"not json\n",
                            b"[1, 2]\n",
                            encode_line({"op": "teleport"}),
                            encode_line({"op": "generate",
                                         "prompt": "oops"}),
                            encode_line({"op": "generate",
                                         "prompt": [1, "x"]})):
                    writer.write(bad)
                    await writer.drain()
                    reply = json.loads(await reader.readline())
                    assert reply["event"] == "error"
                # Still alive afterwards.
                writer.write(encode_line({"op": "ping"}))
                await writer.drain()
                assert json.loads(await reader.readline()) == \
                    {"event": "pong"}
            finally:
                writer.close()
                await writer.wait_closed()
        finally:
            await server.close()
            await gateway.stop()
        assert errors.value == before + 5

    async def test_closed_server_refuses_new_connections(self, llm):
        gateway, server = await _stack(llm)
        try:
            async with await GatewayClient.connect(
                    server.host, server.port) as client:
                assert await client.ping()
        finally:
            await server.close()
            await gateway.stop()
        with pytest.raises(OSError):
            await GatewayClient.connect(server.host, server.port)

    async def test_client_error_on_malformed_server_line(self):
        async def bad_server(reader, writer):
            await reader.readline()
            writer.write(b"not json\n")
            await writer.drain()

        server = await asyncio.start_server(
            bad_server, host="127.0.0.1", port=0)
        host, port = server.sockets[0].getsockname()[:2]
        try:
            client = await GatewayClient.connect(host, port)
            with pytest.raises(GatewayClientError):
                await client.ping()
            await client.close()
        finally:
            server.close()
            await server.wait_closed()

    async def test_stall_and_resume_cross_the_wire(self, llm, prompts):
        """Chaos over TCP: the remote client observes stall/resume events
        and still receives the exact replay tokens."""
        reference = replay_reference(
            llm, prompts, GenerationConfig(max_new_tokens=8,
                                           stop_on_eos=False))
        gateway, server = await _stack(llm, fault_rate=0.10, fault_seed=3)

        async def one_client(i):
            async with await GatewayClient.connect(
                    server.host, server.port) as client:
                return await client.collect(prompts[i], max_new_tokens=8,
                                            stop_on_eos=False)
        try:
            results = await asyncio.gather(
                *[one_client(i) for i in range(len(prompts))])
        finally:
            await server.close()
            await gateway.stop()
        assert [r.tokens for r in results] == reference
        assert all(r.status == "done" for r in results)
        assert sum(r.stalls for r in results) >= 1
