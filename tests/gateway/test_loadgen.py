"""Load-generator acceptance: concurrency, fairness, bounded queues."""

from repro.serving.gateway import SloClass
from repro.serving.loadgen import (
    LoadgenSpec,
    _client_plan,
    run_loadgen,
)

import pytest


class TestClientPlan:
    def test_covers_every_tenant_and_class(self):
        spec = LoadgenSpec(clients=8, tenants=("alpha", "beta"))
        plan = _client_plan(spec)
        pairs = {(c.tenant, c.slo) for c in plan}
        assert pairs == {
            ("alpha", SloClass.INTERACTIVE),
            ("alpha", SloClass.BATCH),
            ("beta", SloClass.INTERACTIVE),
            ("beta", SloClass.BATCH),
        }

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            LoadgenSpec(clients=0)
        with pytest.raises(ValueError):
            LoadgenSpec(requests_per_client=0)
        with pytest.raises(ValueError):
            LoadgenSpec(tenants=())


class TestLoadgenAcceptance:
    async def test_eight_clients_two_tenants_both_classes(self):
        """The PR's acceptance run: >= 8 concurrent clients across two
        tenants and both SLO classes; per-class latency histograms
        populate, admission rejects are counted (not errors), and the
        queue stays bounded."""
        spec = LoadgenSpec(clients=8, requests_per_client=2,
                           max_new_tokens=8, batch=4, max_queue_depth=2)
        report = await run_loadgen(spec)
        total = spec.clients * spec.requests_per_client
        assert report.completed == total
        assert report.failed == 0
        assert report.dropped == 0
        assert report.tokens == total * spec.max_new_tokens
        # All four (tenant, class) combinations saw traffic, so both
        # classes populated both latency histograms.
        for slo in SloClass:
            assert report.ttft_counts[slo.value] > 0
            assert report.tbt_counts[slo.value] > 0
        # Eight clients racing two depth-2 tenant queues: overflow
        # submissions were rejected and retried, never fatal.
        assert report.rejections > 0
        # The queue is bounded by the admission limit throughout.
        assert report.queue_bound == spec.max_queue_depth * len(spec.tenants)
        assert 0 < report.peak_queue_depth <= report.queue_bound
        assert report.final_queue_depth == 0
        assert report.ticks > 0

    async def test_rate_limited_run_still_completes(self):
        spec = LoadgenSpec(clients=4, requests_per_client=1,
                           max_new_tokens=4, rate_per_tick=0.5,
                           max_queue_depth=8)
        report = await run_loadgen(spec)
        assert report.completed == 4
        assert report.dropped == 0
        assert report.final_queue_depth == 0

    async def test_chaos_run_accounts_for_every_request(self):
        """Fault injection under live load: requests may stall (and in the
        worst case terminally fail after bounded retries), but every
        submission is accounted for and the gateway drains clean."""
        spec = LoadgenSpec(clients=4, requests_per_client=2,
                           max_new_tokens=4, fault_rate=0.05)
        report = await run_loadgen(spec)
        total = spec.clients * spec.requests_per_client
        assert report.completed + report.failed == total
        assert report.dropped == 0
        assert report.final_queue_depth == 0

    def test_report_renders_every_headline(self):
        report_cls_fields = LoadgenSpec(clients=2)
        # render() is the `repro loadgen` CLI body; pin its headline rows.
        from repro.serving.loadgen import ClientStats, LoadgenReport

        report = LoadgenReport(spec=report_cls_fields, clients=[
            ClientStats(client_id=0, tenant="alpha",
                        slo=SloClass.INTERACTIVE, completed=2, tokens=12),
        ], peak_queue_depth=3, queue_bound=8, ticks=40,
            ttft_counts={"interactive": 2, "batch": 0},
            tbt_counts={"interactive": 10, "batch": 0})
        out = report.render()
        assert "completed          : 2" in out
        assert "tokens streamed    : 12" in out
        assert "peak queue depth   : 3 (bound 8)" in out
        assert "ttft samples interactive: 2" in out
        assert "tbt samples interactive : 10" in out
