"""Admission control: bounded queues, KV prechecks, rate limits, WRR."""

import pytest

from repro.engine.generation import GenerationConfig
from repro.obs import REGISTRY
from repro.serving.gateway import (
    AdmissionError,
    GatewayConfig,
    ServingGateway,
    TenantConfig,
)
from repro.serving.memory import KvMemoryPool

from tests.gateway.conftest import build_manager


def _config(tokens=4):
    return GenerationConfig(max_new_tokens=tokens, stop_on_eos=False)


def _pooled_manager(llm, requests_that_fit, prompt_len=5, tokens=4,
                    **kwargs):
    """A manager whose KV pool holds exactly ``requests_that_fit`` of the
    suite's standard requests at once."""
    pool_probe = KvMemoryPool(1, llm.config)
    per_request = pool_probe.tokens_to_bytes(prompt_len + tokens)
    pool = KvMemoryPool(per_request * requests_that_fit, llm.config)
    return build_manager(llm, memory_pool=pool, **kwargs)


class TestTenantConfigValidation:
    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            TenantConfig(name="t", weight=0)
        with pytest.raises(ValueError):
            TenantConfig(name="t", max_queue_depth=0)
        with pytest.raises(ValueError):
            TenantConfig(name="t", rate_per_tick=0)

    def test_bucket_capacity_defaults(self):
        assert TenantConfig(name="t").bucket_capacity == float("inf")
        assert TenantConfig(name="t", rate_per_tick=0.5).bucket_capacity == 1.0
        assert TenantConfig(name="t", rate_per_tick=2,
                            burst=5).bucket_capacity == 5.0


class TestRejects:
    async def test_queue_full_rejects_at_submit(self, llm, prompts):
        config = GatewayConfig(tenants={
            "a": TenantConfig(name="a", max_queue_depth=2)})
        gateway = ServingGateway(build_manager(llm), config)
        rejected = REGISTRY.counter("repro.gateway.rejected_queue_full")
        before = rejected.value
        # Gateway not started: nothing drains the queue, so the bound is
        # exact — two queued, the third refused.
        await gateway.submit(prompts[0], _config(), tenant="a")
        await gateway.submit(prompts[1], _config(), tenant="a")
        with pytest.raises(AdmissionError) as err:
            await gateway.submit(prompts[2], _config(), tenant="a")
        assert err.value.reason == "queue_full"
        assert rejected.value == before + 1
        assert gateway.queue_depth == 2

    async def test_unservable_rejects_oversized_request(self, llm, prompts):
        manager = _pooled_manager(llm, requests_that_fit=2)
        gateway = ServingGateway(manager)
        rejected = REGISTRY.counter("repro.gateway.rejected_unservable")
        before = rejected.value
        with pytest.raises(AdmissionError) as err:
            # Budget larger than the whole pool: never servable.
            await gateway.submit(prompts[0], _config(tokens=64))
        assert err.value.reason == "unservable"
        assert rejected.value == before + 1
        assert gateway.queue_depth == 0

    async def test_unknown_tenant_without_auto_tenants(self, llm, prompts):
        config = GatewayConfig(
            tenants={"a": TenantConfig(name="a")}, auto_tenants=False)
        gateway = ServingGateway(build_manager(llm), config)
        with pytest.raises(AdmissionError) as err:
            await gateway.submit(prompts[0], _config(), tenant="ghost")
        assert err.value.reason == "unknown_tenant"

    async def test_auto_tenants_inherit_the_template(self, llm, prompts):
        config = GatewayConfig(default_tenant_template=TenantConfig(
            name="default", max_queue_depth=1, weight=3))
        gateway = ServingGateway(build_manager(llm), config)
        await gateway.submit(prompts[0], _config(), tenant="fresh")
        state = gateway._tenants["fresh"]
        assert state.config.max_queue_depth == 1
        assert state.config.weight == 3
        with pytest.raises(AdmissionError):
            await gateway.submit(prompts[1], _config(), tenant="fresh")


class TestDeferral:
    async def test_kv_pressure_defers_and_eventually_serves(
            self, llm, prompts):
        # Pool fits one request at a time.  Once the first request holds
        # its reservation, the pump must defer (not reject) the second —
        # and everything still completes once memory frees up.
        manager = _pooled_manager(llm, requests_that_fit=1)
        gateway = ServingGateway(manager)
        deferred = REGISTRY.counter("repro.gateway.admission_deferred")
        first = await gateway.submit(prompts[0], _config())
        gateway._pump_admissions()
        assert manager.memory_pool.num_reservations == 1
        second = await gateway.submit(prompts[1], _config())
        before = deferred.value
        gateway._pump_admissions()
        assert deferred.value > before
        assert second.request_id is None, "deferred, still gateway-queued"
        await gateway.start()
        await gateway.stop(drain=True)
        assert len(await first.collect()) == 4
        assert len(await second.collect()) == 4
        assert manager.memory_pool.reserved_bytes == 0

    async def test_rate_limit_defers_and_eventually_serves(
            self, llm, prompts):
        config = GatewayConfig(tenants={
            "slow": TenantConfig(name="slow", rate_per_tick=0.5,
                                 max_queue_depth=8)})
        gateway = ServingGateway(build_manager(llm), config)
        deferred = REGISTRY.counter("repro.gateway.admission_deferred")
        before = deferred.value
        streams = [
            await gateway.submit(p, _config(), tenant="slow")
            for p in prompts[:4]
        ]
        await gateway.start()
        await gateway.stop(drain=True)
        for stream in streams:
            assert len(await stream.collect()) == 4
        assert deferred.value > before


class TestWeightedRoundRobin:
    def test_smooth_wrr_ordering(self, llm):
        gateway = ServingGateway(build_manager(llm))
        eligible = {"a": 2, "b": 1}
        picks = [gateway._wrr_next(dict(eligible)) for _ in range(6)]
        # Weight 2:1 and smooth: a,b,a repeating — never two b in a row.
        assert picks == ["a", "b", "a", "a", "b", "a"]

    def test_equal_weights_alternate(self, llm):
        gateway = ServingGateway(build_manager(llm))
        picks = [
            gateway._wrr_next({"x": 1, "y": 1}) for _ in range(4)
        ]
        assert sorted(picks[:2]) == ["x", "y"]
        assert sorted(picks[2:]) == ["x", "y"]

    async def test_heavier_tenant_admits_first(self, llm, prompts):
        config = GatewayConfig(tenants={
            "heavy": TenantConfig(name="heavy", weight=2),
            "light": TenantConfig(name="light", weight=1),
        })
        manager = build_manager(llm, batch=2)
        gateway = ServingGateway(manager, config)
        heavy = [
            await gateway.submit(p, _config(), tenant="heavy")
            for p in prompts[:2]
        ]
        light = [
            await gateway.submit(p, _config(), tenant="light")
            for p in prompts[2:4]
        ]
        gateway._pump_admissions()
        # Two slots, weights 2:1 — smooth WRR gives heavy, light.
        assert heavy[0].request_id is not None
        assert light[0].request_id is not None
        assert heavy[1].request_id is None
        assert light[1].request_id is None
        assert heavy[0].request_id < light[0].request_id
        manager.run_until_complete()


class TestQueueAccounting:
    async def test_queue_depth_gauge_tracks_and_drains(self, llm, prompts):
        gauge = REGISTRY.gauge("repro.gateway.queue_depth")
        manager = build_manager(llm, batch=2)
        gateway = ServingGateway(manager)
        for p in prompts:
            await gateway.submit(p, _config())
        assert gateway.queue_depth == len(prompts)
        assert gateway.peak_queue_depth >= len(prompts)
        await gateway.start()
        await gateway.stop(drain=True)
        assert gateway.queue_depth == 0
        assert gauge.value == 0
