"""SLO classes: scheduler policy unit tests + end-to-end tick shaping."""

import pytest

from repro.engine.generation import GenerationConfig
from repro.obs import REGISTRY
from repro.serving.gateway import ServingGateway, SloClass
from repro.serving.loop import SloScheduler

from tests.gateway.conftest import build_manager


class _Req:
    """Minimal stand-in for the gateway's request view."""

    def __init__(self, request_id, slo, warmed=False):
        self.request_id = request_id
        self.slo = slo
        self.first_token_at = 0.0 if warmed else None


class TestSloClassParse:
    def test_parses_strings_and_passthrough(self):
        assert SloClass.parse("interactive") is SloClass.INTERACTIVE
        assert SloClass.parse("BATCH") is SloClass.BATCH
        assert SloClass.parse(SloClass.BATCH) is SloClass.BATCH

    def test_rejects_unknown(self):
        with pytest.raises(ValueError):
            SloClass.parse("platinum")


class TestSloSchedulerPolicy:
    def test_cold_interactive_with_batch_present_gets_subset(self):
        scheduler = SloScheduler()
        running = [
            _Req(0, SloClass.BATCH, warmed=True),
            _Req(1, SloClass.INTERACTIVE),
            _Req(2, SloClass.INTERACTIVE, warmed=True),
        ]
        # Subset = every interactive request, cold or warm: the warm ones
        # ride along so the small tick still makes progress for them.
        assert scheduler.select(running) == [1, 2]

    def test_all_warm_runs_full_batch(self):
        scheduler = SloScheduler()
        running = [
            _Req(0, SloClass.BATCH, warmed=True),
            _Req(1, SloClass.INTERACTIVE, warmed=True),
        ]
        assert scheduler.select(running) is None

    def test_interactive_only_batch_runs_full(self):
        scheduler = SloScheduler()
        assert scheduler.select([_Req(0, SloClass.INTERACTIVE)]) is None

    def test_batch_only_runs_full(self):
        scheduler = SloScheduler()
        assert scheduler.select(
            [_Req(0, SloClass.BATCH), _Req(1, SloClass.BATCH)]) is None

    def test_starvation_bound_forces_a_full_tick(self):
        scheduler = SloScheduler(max_interactive_only_ticks=2)
        running = [
            _Req(0, SloClass.BATCH, warmed=True),
            _Req(1, SloClass.INTERACTIVE),
        ]
        assert scheduler.select(running) == [1]
        assert scheduler.select(running) == [1]
        # Bound reached: the batch request gets its full tick ...
        assert scheduler.select(running) is None
        # ... and the counter resets, so small ticks may resume.
        assert scheduler.select(running) == [1]

    def test_zero_bound_disables_interactive_ticks(self):
        scheduler = SloScheduler(max_interactive_only_ticks=0)
        running = [
            _Req(0, SloClass.BATCH, warmed=True),
            _Req(1, SloClass.INTERACTIVE),
        ]
        assert scheduler.select(running) is None

    def test_rejects_negative_bound(self):
        with pytest.raises(ValueError):
            SloScheduler(max_interactive_only_ticks=-1)


class TestSloEndToEnd:
    async def test_interactive_ticks_run_and_everything_completes(
            self, llm, prompts):
        interactive_ticks = REGISTRY.counter(
            "repro.gateway.interactive_ticks")
        full_ticks = REGISTRY.counter("repro.gateway.full_ticks")
        before_interactive = interactive_ticks.value
        before_full = full_ticks.value
        manager = build_manager(llm, batch=4)
        gateway = ServingGateway(manager)
        config = GenerationConfig(max_new_tokens=8, stop_on_eos=False)
        streams = [
            await gateway.submit(p, config,
                                 slo=SloClass.BATCH if i < 2
                                 else SloClass.INTERACTIVE)
            for i, p in enumerate(prompts[:4])
        ]
        await gateway.start()
        await gateway.stop(drain=True)
        for stream in streams:
            assert len(await stream.collect()) == 8
        # The cold interactive pair triggered TTFT-optimized small ticks,
        # and the batch pair still finished (no starvation).
        assert interactive_ticks.value > before_interactive
        assert full_ticks.value > before_full

    async def test_first_token_unblocks_interactive_ticks(
            self, llm, prompts):
        """Once every interactive request is warm, ticks are full-batch
        again — small ticks are strictly a TTFT instrument."""
        manager = build_manager(llm, batch=2)
        gateway = ServingGateway(manager)
        config = GenerationConfig(max_new_tokens=4, stop_on_eos=False)
        batch_stream = await gateway.submit(
            prompts[0], config, slo=SloClass.BATCH)
        inter_stream = await gateway.submit(
            prompts[1], config, slo=SloClass.INTERACTIVE)
        await gateway.start()
        await gateway.stop(drain=True)
        assert len(await batch_stream.collect()) == 4
        assert len(await inter_stream.collect()) == 4
        assert gateway._scheduler._consecutive_interactive == 0
