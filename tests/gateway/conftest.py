"""Async test support and shared builders for the gateway suite.

The container intentionally runs without ``pytest-asyncio`` (it is a dev
extra, not a hard dependency), so this conftest implements the two pieces
the suite needs:

* a ``pytest_pyfunc_call`` hook that runs coroutine test functions on a
  fresh event loop, and
* a **per-test timeout guard**: every coroutine test runs under
  ``asyncio.wait_for``, so a stalled gateway event loop fails the test in
  seconds instead of hanging the whole CI job.

When ``pytest-asyncio`` *is* installed it takes over coroutine tests
before this hook sees them; the suite works identically either way
because the tests are plain ``async def`` functions.
"""

import asyncio
import inspect

import numpy as np
import pytest

#: Per-test ceiling for coroutine tests.  Generous against slow CI hosts,
#: tiny against a deadlocked event loop (the failure mode it guards).
ASYNC_TEST_TIMEOUT_SECONDS = 60.0


@pytest.hookimpl(tryfirst=True)
def pytest_pyfunc_call(pyfuncitem):
    func = pyfuncitem.obj
    if not inspect.iscoroutinefunction(func):
        return None
    kwargs = {
        name: pyfuncitem.funcargs[name]
        for name in pyfuncitem._fixtureinfo.argnames
    }
    asyncio.run(
        asyncio.wait_for(func(**kwargs),
                         timeout=ASYNC_TEST_TIMEOUT_SECONDS)
    )
    return True


def pytest_collection_modifyitems(items):
    for item in items:
        if item.path and "tests/gateway" in str(item.path):
            item.add_marker(pytest.mark.gateway)


def build_manager(llm, batch=4, fault_rate=0.0, fault_seed=9973,
                  seed=3, backend="fused", **manager_kwargs):
    """A request manager over the shared test LLM.

    ``backend`` selects the verification strategy: ``"fused"`` (the
    gateway's production shape), ``"per_request"``, ``"incremental"``
    (both under the fused scheduling discipline), or ``"sessions"``
    (per-request incremental sessions, no shared backend).
    """
    from repro.engine.pipeline import (
        FusedBackend,
        IncrementalBackend,
        PerRequestBackend,
    )
    from repro.model.arena import BatchArena
    from repro.model.coupled import CoupledSSM
    from repro.serving.manager import RequestManager
    from repro.serving.session import IncrementalSession, SpeculativeSession
    from repro.speculate.expansion import ExpansionConfig
    from repro.speculate.speculator import Speculator

    injector = None
    if fault_rate > 0:
        from repro.faults import FaultInjector

        injector = FaultInjector(rate=fault_rate, seed=fault_seed)
    if backend == "sessions":
        return RequestManager(
            lambda req: IncrementalSession(req, llm),
            max_batch_size=batch, injector=injector, **manager_kwargs)
    arena = BatchArena(llm.config, max_requests=batch)

    def session_factory(request):
        return SpeculativeSession(
            request, llm,
            lambda: Speculator(
                [CoupledSSM(llm, alignment=0.9, seed=7, noise_scale=2.0)],
                ExpansionConfig.paper_default(),
            ),
            cache_factory=arena.new_sequence,
        )

    backends = {
        "fused": lambda: FusedBackend(llm, rng=np.random.default_rng(seed)),
        "per_request": lambda: PerRequestBackend(
            llm, rng=np.random.default_rng(seed)),
        "incremental": lambda: IncrementalBackend(llm),
    }
    return RequestManager(
        session_factory, max_batch_size=batch,
        backend=backends[backend](),
        injector=injector, **manager_kwargs)


@pytest.fixture()
def prompts(rng):
    from tests.conftest import make_prompt

    return [[int(t) for t in make_prompt(rng, length=5)] for _ in range(6)]


def replay_reference(llm, prompts, config, **manager_kwargs):
    """Token lists from the synchronous replay path (the parity oracle)."""
    manager = build_manager(llm, **manager_kwargs)
    ids = [manager.submit(p, config) for p in prompts]
    manager.run_until_complete()
    return [manager.output_for(rid).tokens for rid in ids]
