"""Gateway-vs-replay token parity.

The gateway's whole correctness argument rests on one property: under
greedy verification the streamed tokens are *bit-identical* to the
synchronous replay path (:meth:`RequestManager.run_until_complete`), no
matter how admission, SLO subset ticks, or mid-stream preemption reorder
the work.  This suite pins that across all three verification backends and
— the hard case — under fault injection with a request preempted
mid-stream and resuming.
"""

import pytest

from repro.engine.generation import GenerationConfig
from repro.serving.gateway import GatewayConfig, ServingGateway, SloClass

from tests.gateway.conftest import build_manager, replay_reference

BACKENDS = ("fused", "per_request", "incremental")


def _config():
    # stop_on_eos=False pins the emitted length, so parity is over the
    # full generation budget rather than a prefix.
    return GenerationConfig(max_new_tokens=8, stop_on_eos=False)


async def _gateway_tokens(llm, prompts, config, *, slos=None,
                          gateway_config=None, **manager_kwargs):
    """Streamed (tokens, events) per prompt, in submission order."""
    manager = build_manager(llm, **manager_kwargs)
    gateway = ServingGateway(manager, gateway_config)
    slos = slos or [SloClass.INTERACTIVE] * len(prompts)
    # Submitting before start() makes admission order independent of task
    # scheduling: the pump sees every queue already populated.
    streams = [
        await gateway.submit(p, config, slo=slo)
        for p, slo in zip(prompts, slos)
    ]
    events = [[] for _ in streams]

    async def drain(i):
        async for event in streams[i]:
            events[i].append(event)

    await gateway.start()
    try:
        import asyncio

        await asyncio.gather(*[drain(i) for i in range(len(streams))])
    finally:
        await gateway.stop()
    tokens = [
        [e.token for e in evs if e.kind == "token"] for evs in events
    ]
    return tokens, events


class TestBackendParity:
    @pytest.mark.parametrize("backend", BACKENDS)
    async def test_streamed_tokens_match_replay(self, llm, prompts, backend):
        config = _config()
        reference = replay_reference(llm, prompts, config, backend=backend)
        tokens, events = await _gateway_tokens(
            llm, prompts, config, backend=backend)
        assert tokens == reference
        for evs in events:
            assert evs[-1].kind == "done"

    async def test_mixed_slo_classes_do_not_change_tokens(self, llm, prompts):
        """Subset (interactive-only) ticks reorder *when* tokens commit,
        never *what* commits — the SLO scheduler's safety property."""
        config = _config()
        reference = replay_reference(llm, prompts, config, backend="fused")
        slos = [
            SloClass.INTERACTIVE if i % 2 == 0 else SloClass.BATCH
            for i in range(len(prompts))
        ]
        tokens, _ = await _gateway_tokens(
            llm, prompts, config, slos=slos, backend="fused")
        assert tokens == reference


class TestChaosParity:
    """Fault injection: streams stall, resume, and still match replay."""

    # rate=0.10 / seed=3 over the shared fixture prompts deterministically
    # preempts at least one mid-stream request (it has already emitted
    # tokens when the fault hits), which is exactly the scenario the
    # acceptance criterion names.
    CHAOS = dict(fault_rate=0.10, fault_seed=3)

    async def test_streams_survive_faults_with_exact_tokens(
            self, llm, prompts):
        config = _config()
        # Greedy tokens depend only on the prompt, so the fault-free
        # replay is the oracle: faults must be invisible in the output.
        reference = replay_reference(llm, prompts, config, backend="fused")
        tokens, events = await _gateway_tokens(
            llm, prompts, config, backend="fused", **self.CHAOS)
        assert tokens == reference

        stalls = sum(
            1 for evs in events for e in evs if e.kind == "stall")
        assert stalls >= 1, "chaos scenario must preempt at least once"
        for evs in events:
            assert evs[-1].kind == "done"
            # Every stall is followed by a resume before the next token:
            # the client sees a pause, never corruption.
            stalled = False
            for event in evs:
                if event.kind == "stall":
                    stalled = True
                elif event.kind == "resume":
                    stalled = False
                elif event.kind == "token":
                    assert not stalled, "token emitted while stalled"
            assert not stalled, "stream ended while stalled"

    async def test_mid_stream_preemption_observed(self, llm, prompts):
        """At least one preempted request had already streamed tokens —
        the stall is genuinely *mid*-stream, not a pre-admission defer."""
        config = _config()
        _, events = await _gateway_tokens(
            llm, prompts, config, backend="fused", **self.CHAOS)
        mid_stream = 0
        for evs in events:
            emitted_before = 0
            for event in evs:
                if event.kind == "token":
                    emitted_before += 1
                elif event.kind == "stall" and emitted_before > 0:
                    mid_stream += 1
        assert mid_stream >= 1

    async def test_token_indices_are_contiguous_across_resume(
            self, llm, prompts):
        config = _config()
        _, events = await _gateway_tokens(
            llm, prompts, config, backend="fused", **self.CHAOS)
        for evs in events:
            indices = [e.index for e in evs if e.kind == "token"]
            assert indices == list(range(len(indices)))
