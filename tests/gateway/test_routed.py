"""Routed pool behind the async gateway: pinned at admit, fed on verify."""

import asyncio

import numpy as np

from repro.engine.generation import GenerationConfig
from repro.engine.pipeline import FusedBackend
from repro.obs import reset_observability
from repro.serving.gateway import ServingGateway
from repro.serving.manager import RequestManager
from repro.serving.session import make_routed_factory
from repro.speculate.pool import SpeculatorPool
from repro.speculate.router import RouterConfig, SpeculatorRouter
from tests.conftest import make_prompt


def build_routed_manager(llm, batch=4):
    pool = SpeculatorPool.from_coupled(
        llm, (0.9, 0.7, 0.5), names=("strong", "medium", "weak")
    )
    router = SpeculatorRouter(pool, RouterConfig(policy="ucb", seed=5))
    manager = RequestManager(
        make_routed_factory(llm, pool, router),
        max_batch_size=batch,
        backend=FusedBackend(llm, rng=np.random.default_rng(3)),
        router=router,
    )
    return manager, router


class TestRoutedGateway:
    async def test_gateway_requests_are_routed_and_lossless(self, llm, rng):
        """Admission through the gateway pins one pool member per request
        and the verify loop feeds acceptance back; tokens match the plain
        single-SSM gateway run bit-for-bit."""
        from tests.gateway.conftest import build_manager

        prompts = [[int(t) for t in make_prompt(rng, length=4 + 3 * i)]
                   for i in range(4)]
        config = GenerationConfig(max_new_tokens=6, stop_on_eos=False)

        reset_observability()
        manager, router = build_routed_manager(llm)
        gateway = ServingGateway(manager)
        await gateway.start()
        try:
            streams = await asyncio.gather(
                *[gateway.submit(p, config) for p in prompts]
            )
            routed = await asyncio.gather(
                *[s.collect() for s in streams]
            )
        finally:
            await gateway.stop()
        assert len(router.assignment_history) == len(prompts)
        assert router.observations > 0

        plain_gateway = ServingGateway(build_manager(llm))
        await plain_gateway.start()
        try:
            streams = await asyncio.gather(
                *[plain_gateway.submit(p, config) for p in prompts]
            )
            plain = await asyncio.gather(
                *[s.collect() for s in streams]
            )
        finally:
            await plain_gateway.stop()
        assert routed == plain
