"""Shared fixtures: small, fast model instances reused across the suite."""

import numpy as np
import pytest

from repro.model.config import ModelConfig
from repro.model.coupled import CoupledSSM
from repro.model.transformer import TransformerLM


SMALL_CONFIG = ModelConfig(
    vocab_size=64,
    d_model=32,
    n_layers=2,
    n_heads=4,
    max_seq_len=96,
    name="test-llm",
)


@pytest.fixture(scope="session")
def llm() -> TransformerLM:
    """A small random-init LLM shared (read-only) across tests."""
    return TransformerLM(SMALL_CONFIG, seed=42)


@pytest.fixture(scope="session")
def ssm(llm) -> CoupledSSM:
    """A well-aligned coupled SSM over the shared LLM."""
    return CoupledSSM(llm, alignment=0.9, seed=7, noise_scale=2.0)


@pytest.fixture(scope="session")
def weak_ssm(llm) -> CoupledSSM:
    """A poorly-aligned SSM (low acceptance regime)."""
    return CoupledSSM(llm, alignment=0.3, seed=8, noise_scale=2.0)


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(0)


def make_prompt(rng: np.random.Generator, length: int = 6,
                vocab: int = 64) -> np.ndarray:
    """Random prompt avoiding the EOS id (0)."""
    return rng.integers(1, vocab, size=length).astype(np.intp)
