"""The core correctness property: tree-parallel decoding equivalence.

Definition 4.1 says tree attention for node ``u`` equals ordinary sequence
attention over ``S_u``.  These tests check it bit-exactly against (a) the
sequence-based decomposition and (b) fresh incremental decoding of each
root-to-node path, over hand-built and randomly generated trees.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tree.token_tree import TokenTree
from repro.verify.decode import sequence_parallel_decode, tree_parallel_decode
from tests.conftest import make_prompt


@st.composite
def random_tree(draw):
    tree = TokenTree(draw(st.integers(1, 63)))
    for _ in range(draw(st.integers(0, 10))):
        parent = draw(st.integers(0, len(tree) - 1))
        tree.add_child(parent, draw(st.integers(1, 63)))
    return tree


class TestTreeDecodeEquivalence:
    def test_single_node_tree_is_plain_decode(self, llm, rng):
        prompt = make_prompt(rng, length=5)
        cache = llm.new_cache()
        llm.prefill(prompt[:-1], cache)
        reference = llm.decode(int(prompt[-1]), cache)
        cache2 = llm.new_cache()
        llm.prefill(prompt[:-1], cache2)
        out = tree_parallel_decode(llm, cache2, TokenTree(int(prompt[-1])))
        np.testing.assert_allclose(out.logits_for_node(0), reference,
                                   atol=1e-12)

    def test_matches_incremental_per_path(self, llm, rng):
        """Every node's logits equal incremental decoding of S_u."""
        prompt = make_prompt(rng, length=6)
        tree = TokenTree(7)
        a = tree.add_child(0, 10)
        b = tree.add_child(0, 11)
        c = tree.add_child(a, 12)
        tree.add_child(c, 13)
        tree.add_child(b, 14)
        cache = llm.new_cache()
        llm.prefill(prompt, cache)
        out = tree_parallel_decode(llm, cache, tree)
        for node in range(len(tree)):
            seq = tree.sequence_of(node)
            ref_cache = llm.new_cache()
            llm.prefill(prompt, ref_cache)
            for token in seq[:-1]:
                llm.decode(int(token), ref_cache)
            reference = llm.decode(int(seq[-1]), ref_cache)
            np.testing.assert_allclose(
                out.logits_for_node(node), reference, atol=1e-10,
                err_msg=f"node {node} (sequence {seq})"
            )

    @given(tree=random_tree(), seed=st.integers(0, 1000))
    @settings(max_examples=25, deadline=None)
    def test_tree_vs_sequence_decomposition(self, llm, tree, seed):
        """Fused tree decode == per-sequence kernels, for arbitrary trees."""
        rng = np.random.default_rng(seed)
        prompt = make_prompt(rng, length=4)
        cache = llm.new_cache()
        llm.prefill(prompt, cache)
        snap = cache.snapshot()
        out = tree_parallel_decode(llm, cache, tree)
        cache.restore(snap)
        seq_outputs, stats = sequence_parallel_decode(llm, cache, tree)
        assert set(seq_outputs) == set(range(len(tree)))
        for node, reference in seq_outputs.items():
            np.testing.assert_allclose(
                out.logits_for_node(node), reference, atol=1e-10
            )

    def test_appends_tree_rows_to_cache(self, llm, rng):
        prompt = make_prompt(rng, length=4)
        tree = TokenTree(5)
        tree.add_path([6, 7])
        tree.add_path([8])
        cache = llm.new_cache()
        llm.prefill(prompt, cache)
        tree_parallel_decode(llm, cache, tree)
        assert cache.length == len(prompt) + len(tree)


class TestSequenceDecodeStats:
    def test_chain_has_no_redundancy(self, llm, rng):
        tree = TokenTree(5)
        tree.add_path([6, 7, 8])
        cache = llm.new_cache()
        llm.prefill(make_prompt(rng, 3), cache)
        _, stats = sequence_parallel_decode(llm, cache, tree)
        assert stats.num_kernels == 1
        assert stats.tokens_computed == len(tree)
        assert stats.redundancy_factor == pytest.approx(1.0)

    def test_branching_tree_is_redundant(self, llm, rng):
        tree = TokenTree(5)
        tree.add_path([6, 7])
        tree.add_path([6, 8])  # shares the "6" prefix
        cache = llm.new_cache()
        llm.prefill(make_prompt(rng, 3), cache)
        _, stats = sequence_parallel_decode(llm, cache, tree)
        assert stats.num_kernels == 2
        assert stats.tokens_computed == 6  # 2 sequences x 3 tokens
        assert stats.unique_tokens == 4
        assert stats.redundancy_factor > 1.0

    def test_cache_restored_after_sequence_decode(self, llm, rng):
        tree = TokenTree(5)
        tree.add_path([6, 7])
        cache = llm.new_cache()
        llm.prefill(make_prompt(rng, 3), cache)
        before = cache.length
        sequence_parallel_decode(llm, cache, tree)
        assert cache.length == before
