"""Statistical tests for multi-step speculative sampling (Theorems 4.2/4.3).

These tests construct token trees with *known* LLM and SSM distributions and
check, over many trials:

* Theorem 4.2 — the token emitted at a node follows exactly the LLM's
  distribution, regardless of what the SSMs proposed;
* Theorem 4.3 — MSS rejects speculation less often than naive sampling.
"""

import numpy as np
import pytest

from repro.metrics.stats import total_variation_distance
from repro.model.sampling import SamplingConfig
from repro.tree.masks import linearize
from repro.tree.token_tree import TokenTree
from repro.verify.decode import TreeDecodeOutput
from repro.verify.naive import verify_naive_sampling
from repro.verify.stochastic import (
    _normalized_residual,
    verify_stochastic,
)

VOCAB = 6
SAMPLING = SamplingConfig()  # temperature 1, no filtering


def output_with_distribution(tree: TokenTree, p_llm: np.ndarray):
    """TreeDecodeOutput whose every node has next-token distribution p_llm."""
    lin = linearize(tree)
    log_p = np.log(np.clip(p_llm, 1e-300, None))
    logits = np.tile(log_p, (len(tree), 1))
    return TreeDecodeOutput(lin=lin, logits=logits, prefix_len=0)


def empirical_first_token(build_tree, p_llm, n_trials, seed=0):
    """Frequency of the first emitted token over repeated verification."""
    rng = np.random.default_rng(seed)
    counts = np.zeros(VOCAB)
    for _ in range(n_trials):
        tree = build_tree(rng)
        output = output_with_distribution(tree, p_llm)
        result = verify_stochastic(output, tree, SAMPLING, rng)
        counts[result.accepted_tokens[0]] += 1
    return counts / counts.sum()


P_LLM = np.array([0.35, 0.25, 0.15, 0.12, 0.08, 0.05])
Q_SSM = np.array([0.10, 0.45, 0.20, 0.10, 0.10, 0.05])


class TestResidual:
    def test_residual_formula(self):
        residual = _normalized_residual(P_LLM, Q_SSM)
        expected = np.maximum(0, P_LLM - Q_SSM)
        expected /= expected.sum()
        np.testing.assert_allclose(residual, expected)

    def test_dominated_distribution_falls_back(self):
        residual = _normalized_residual(P_LLM, np.ones(VOCAB))
        np.testing.assert_allclose(residual, P_LLM)

    def test_residual_is_distribution(self):
        residual = _normalized_residual(P_LLM, Q_SSM)
        assert residual.sum() == pytest.approx(1.0)
        assert (residual >= 0).all()


class TestTheorem42DistributionPreservation:
    """The emitted-token law equals the LLM's distribution exactly."""

    def test_single_ssm_single_child(self):
        def build(rng):
            tree = TokenTree(0)
            child = int(rng.choice(VOCAB, p=Q_SSM))
            tree.add_child(0, child, ssm_id=0)
            tree.set_proposal(0, 0, Q_SSM)
            return tree

        freqs = empirical_first_token(build, P_LLM, n_trials=20000)
        assert total_variation_distance(freqs, P_LLM) < 0.02

    def test_two_ssms_disjoint_supports(self):
        q1 = np.array([0.5, 0.5, 0.0, 0.0, 0.0, 0.0])
        q2 = np.array([0.0, 0.0, 0.4, 0.3, 0.3, 0.0])

        def build(rng):
            tree = TokenTree(0)
            c1 = int(rng.choice(VOCAB, p=q1))
            c2 = int(rng.choice(VOCAB, p=q2))
            tree.add_child(0, c1, ssm_id=0)
            tree.add_child(0, c2, ssm_id=1)
            tree.set_proposal(0, 0, q1)
            tree.set_proposal(0, 1, q2)
            return tree

        freqs = empirical_first_token(build, P_LLM, n_trials=20000)
        assert total_variation_distance(freqs, P_LLM) < 0.02

    def test_oracle_ssm_always_accepts(self):
        """When the SSM equals the LLM, children sampled from it are always
        accepted (ratio = 1) and the output law is trivially preserved."""
        def build(rng):
            tree = TokenTree(0)
            child = int(rng.choice(VOCAB, p=P_LLM))
            tree.add_child(0, child, ssm_id=0)
            tree.set_proposal(0, 0, P_LLM)
            return tree

        rng = np.random.default_rng(1)
        rejections = 0
        for _ in range(2000):
            tree = build(rng)
            output = output_with_distribution(tree, P_LLM)
            result = verify_stochastic(output, tree, SAMPLING, rng)
            rejections += result.num_rejections
        assert rejections == 0

    def test_hopeless_ssm_still_preserves_law(self):
        """Even proposals the LLM would never emit keep the law intact."""
        q_bad = np.array([0.0, 0.0, 0.0, 0.0, 0.0, 1.0])
        p_llm = np.array([0.5, 0.3, 0.2, 0.0, 0.0, 0.0])

        def build(rng):
            tree = TokenTree(0)
            tree.add_child(0, 5, ssm_id=0)
            tree.set_proposal(0, 0, q_bad)
            return tree

        freqs = empirical_first_token(build, p_llm, n_trials=8000)
        assert freqs[5] == 0.0
        assert total_variation_distance(freqs, p_llm) < 0.02

    def test_deep_tree_chain_law_holds_per_level(self):
        """On a 2-level chain, the second emitted token's law (conditioned
        on the first being accepted) is also the LLM's."""
        rng = np.random.default_rng(2)
        counts = np.zeros(VOCAB)
        total = 0
        for _ in range(20000):
            tree = TokenTree(0)
            c1 = int(rng.choice(VOCAB, p=Q_SSM))
            n1 = tree.add_child(0, c1, ssm_id=0)
            tree.set_proposal(0, 0, Q_SSM)
            c2 = int(rng.choice(VOCAB, p=Q_SSM))
            tree.add_child(n1, c2, ssm_id=0)
            tree.set_proposal(n1, 0, Q_SSM)
            output = output_with_distribution(tree, P_LLM)
            result = verify_stochastic(output, tree, SAMPLING, rng)
            if len(result.accepted_tokens) >= 2:
                counts[result.accepted_tokens[1]] += 1
                total += 1
        freqs = counts / total
        assert total_variation_distance(freqs, P_LLM) < 0.03


class TestTheorem43MssBeatsNaive:
    def _rejection_rates(self, q_proposal, n_trials=8000):
        rng_m = np.random.default_rng(3)
        rng_n = np.random.default_rng(4)
        reject_mss = reject_ns = 0
        for _ in range(n_trials):
            child_m = int(rng_m.choice(VOCAB, p=q_proposal))
            tree_m = TokenTree(0)
            tree_m.add_child(0, child_m, ssm_id=0)
            tree_m.set_proposal(0, 0, q_proposal)
            out = output_with_distribution(tree_m, P_LLM)
            res = verify_stochastic(out, tree_m, SAMPLING, rng_m)
            reject_mss += res.num_accepted_speculated == 0

            child_n = int(rng_n.choice(VOCAB, p=q_proposal))
            tree_n = TokenTree(0)
            tree_n.add_child(0, child_n, ssm_id=0)
            tree_n.set_proposal(0, 0, q_proposal)
            out = output_with_distribution(tree_n, P_LLM)
            res = verify_naive_sampling(out, tree_n, SAMPLING, rng_n)
            reject_ns += res.num_accepted_speculated == 0
        return reject_mss / n_trials, reject_ns / n_trials

    def test_mss_rejects_less_with_aligned_proposals(self):
        mss, ns = self._rejection_rates(Q_SSM)
        assert mss <= ns + 0.02, (mss, ns)

    def test_mss_rejects_less_with_llm_matched_proposals(self):
        mss, ns = self._rejection_rates(P_LLM)
        assert mss == pytest.approx(0.0, abs=0.005)
        assert ns > 0.5  # naive still rejects per LLM entropy


class TestFilteredDecoding:
    """Theorem 4.2 under top-k / top-p filtered LLM distributions (the
    paper's section 7: these decoding strategies compose with MSS)."""

    def test_top_k_filtered_law_preserved(self):
        sampling = SamplingConfig(top_k=3)
        rng = np.random.default_rng(7)
        counts = np.zeros(VOCAB)
        # The filtered target distribution.
        from repro.model.sampling import distribution_from_logits

        log_p = np.log(np.clip(P_LLM, 1e-300, None))
        target = distribution_from_logits(log_p, sampling)
        for _ in range(15000):
            tree = TokenTree(0)
            child = int(rng.choice(VOCAB, p=Q_SSM))
            tree.add_child(0, child, ssm_id=0)
            tree.set_proposal(0, 0, Q_SSM)
            output = output_with_distribution(tree, P_LLM)
            result = verify_stochastic(output, tree, sampling, rng)
            counts[result.accepted_tokens[0]] += 1
        freqs = counts / counts.sum()
        assert total_variation_distance(freqs, target) < 0.02

    def test_top_p_filtered_law_preserved(self):
        sampling = SamplingConfig(top_p=0.8)
        rng = np.random.default_rng(8)
        counts = np.zeros(VOCAB)
        from repro.model.sampling import distribution_from_logits

        log_p = np.log(np.clip(P_LLM, 1e-300, None))
        target = distribution_from_logits(log_p, sampling)
        for _ in range(15000):
            tree = TokenTree(0)
            child = int(rng.choice(VOCAB, p=Q_SSM))
            tree.add_child(0, child, ssm_id=0)
            tree.set_proposal(0, 0, Q_SSM)
            output = output_with_distribution(tree, P_LLM)
            result = verify_stochastic(output, tree, sampling, rng)
            counts[result.accepted_tokens[0]] += 1
        freqs = counts / counts.sum()
        assert total_variation_distance(freqs, target) < 0.02

    def test_filtered_out_tokens_never_emitted(self):
        """Tokens removed by top-k can be proposed but never emitted."""
        sampling = SamplingConfig(top_k=2)  # keeps tokens 0 and 1 only
        rng = np.random.default_rng(9)
        for _ in range(500):
            tree = TokenTree(0)
            tree.add_child(0, 5, ssm_id=0)  # token 5 is filtered out
            tree.set_proposal(0, 0, Q_SSM)
            output = output_with_distribution(tree, P_LLM)
            result = verify_stochastic(output, tree, sampling, rng)
            assert result.accepted_tokens[0] in (0, 1)


class TestVerifyStochasticMechanics:
    def test_result_validates(self):
        rng = np.random.default_rng(0)
        tree = TokenTree(0)
        tree.add_child(0, 1, ssm_id=0)
        tree.set_proposal(0, 0, Q_SSM)
        output = output_with_distribution(tree, P_LLM)
        result = verify_stochastic(output, tree, SAMPLING, rng)
        result.validate()

    def test_zero_probability_proposal_rejected(self):
        """A child the SSM claims it could never propose is always rejected."""
        rng = np.random.default_rng(0)
        q = np.array([1.0, 0.0, 0.0, 0.0, 0.0, 0.0])
        for _ in range(200):
            tree = TokenTree(0)
            tree.add_child(0, 3, ssm_id=0)  # but q[3] == 0
            tree.set_proposal(0, 0, q)
            output = output_with_distribution(tree, P_LLM)
            result = verify_stochastic(output, tree, SAMPLING, rng)
            assert result.num_accepted_speculated == 0

    def test_proposal_free_child_uses_llm_probability(self):
        """Hand-built trees without proposals accept child w.p. P_LLM(x)."""
        rng = np.random.default_rng(0)
        accepts = 0
        n = 8000
        for _ in range(n):
            tree = TokenTree(0)
            tree.add_child(0, 0)  # P_LLM[0] = 0.35
            output = output_with_distribution(tree, P_LLM)
            result = verify_stochastic(output, tree, SAMPLING, rng)
            accepts += result.num_accepted_speculated
        assert accepts / n == pytest.approx(0.35, abs=0.03)

    def test_counts_rejections(self):
        rng = np.random.default_rng(0)
        q = np.array([0.0, 0.0, 0.0, 0.0, 0.0, 1.0])
        p = np.array([0.5, 0.5, 0.0, 0.0, 0.0, 0.0])
        tree = TokenTree(0)
        tree.add_child(0, 5, ssm_id=0)
        tree.set_proposal(0, 0, q)
        output = output_with_distribution(tree, p)
        result = verify_stochastic(output, tree, SAMPLING, rng)
        assert result.num_rejections == 1
