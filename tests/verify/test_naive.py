"""Tests for the naive-sampling verification baseline."""

import numpy as np
import pytest

from repro.metrics.stats import total_variation_distance
from repro.model.sampling import SamplingConfig
from repro.tree.token_tree import TokenTree
from repro.verify.naive import verify_naive_sampling

from tests.verify.test_stochastic import (
    P_LLM,
    VOCAB,
    output_with_distribution,
)

SAMPLING = SamplingConfig()


class TestVerifyNaive:
    def test_preserves_llm_distribution(self):
        """Naive sampling trivially samples from the LLM distribution."""
        rng = np.random.default_rng(0)
        counts = np.zeros(VOCAB)
        for _ in range(20000):
            tree = TokenTree(0)
            tree.add_child(0, 1)
            out = output_with_distribution(tree, P_LLM)
            result = verify_naive_sampling(out, tree, SAMPLING, rng)
            counts[result.accepted_tokens[0]] += 1
        freqs = counts / counts.sum()
        assert total_variation_distance(freqs, P_LLM) < 0.02

    def test_acceptance_rate_equals_child_probability(self):
        """P(descend) = P_LLM(child token) exactly."""
        rng = np.random.default_rng(1)
        accepts = 0
        n = 10000
        for _ in range(n):
            tree = TokenTree(0)
            tree.add_child(0, 0)  # P_LLM[0] = 0.35
            out = output_with_distribution(tree, P_LLM)
            result = verify_naive_sampling(out, tree, SAMPLING, rng)
            accepts += result.num_accepted_speculated
        assert accepts / n == pytest.approx(0.35, abs=0.02)

    def test_wide_tree_raises_acceptance(self):
        """More children = more tokens the sampled token can match."""
        rng = np.random.default_rng(2)

        def rate(width):
            accepts = 0
            n = 4000
            for _ in range(n):
                tree = TokenTree(0)
                for t in range(width):
                    tree.add_child(0, t)
                out = output_with_distribution(tree, P_LLM)
                result = verify_naive_sampling(out, tree, SAMPLING, rng)
                accepts += result.num_accepted_speculated > 0
            return accepts / n

        assert rate(3) > rate(1)

    def test_descends_chain(self):
        rng = np.random.default_rng(3)
        # Deterministic LLM: always emits token 2.
        p = np.zeros(VOCAB)
        p[2] = 1.0
        tree = TokenTree(0)
        n1 = tree.add_child(0, 2)
        tree.add_child(n1, 2)
        out = output_with_distribution(tree, p)
        result = verify_naive_sampling(out, tree, SAMPLING, rng)
        assert result.accepted_tokens == [2, 2, 2]
        assert result.num_accepted_speculated == 2

    def test_result_validates(self):
        rng = np.random.default_rng(4)
        tree = TokenTree(0)
        tree.add_child(0, 1)
        out = output_with_distribution(tree, P_LLM)
        result = verify_naive_sampling(out, tree, SAMPLING, rng)
        result.validate()
