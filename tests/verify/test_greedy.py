"""Tests for VerifyGreedy with hand-constructed LLM outputs."""

import numpy as np
import pytest

from repro.tree.token_tree import TokenTree
from repro.verify.decode import TreeDecodeOutput
from repro.verify.greedy import verify_greedy
from repro.tree.masks import linearize


def fake_output(tree: TokenTree, greedy_by_node: dict, vocab: int = 16):
    """A TreeDecodeOutput whose argmax at each node is prescribed."""
    lin = linearize(tree)
    logits = np.zeros((len(tree), vocab))
    for node, token in greedy_by_node.items():
        logits[lin.slot_of[node], token] = 10.0
    return TreeDecodeOutput(lin=lin, logits=logits, prefix_len=0)


class TestVerifyGreedy:
    def test_full_match_accepts_whole_path(self):
        tree = TokenTree(1)
        a = tree.add_child(0, 2)
        b = tree.add_child(a, 3)
        output = fake_output(tree, {0: 2, a: 3, b: 7})
        result = verify_greedy(output, tree)
        assert result.accepted_tokens == [2, 3, 7]
        assert result.accepted_nodes == [0, a, b]
        assert result.bonus_token == 7
        assert result.num_accepted_speculated == 2
        result.validate()

    def test_immediate_miss_yields_only_bonus(self):
        tree = TokenTree(1)
        tree.add_child(0, 2)
        output = fake_output(tree, {0: 9})
        result = verify_greedy(output, tree)
        assert result.accepted_tokens == [9]
        assert result.accepted_nodes == [0]
        assert result.num_accepted_speculated == 0

    def test_selects_matching_branch(self):
        tree = TokenTree(1)
        a = tree.add_child(0, 2)
        b = tree.add_child(0, 3)
        a1 = tree.add_child(a, 4)
        b1 = tree.add_child(b, 5)
        output = fake_output(tree, {0: 3, b: 5, b1: 8})
        result = verify_greedy(output, tree)
        assert result.accepted_tokens == [3, 5, 8]
        assert result.accepted_nodes == [0, b, b1]

    def test_partial_match_stops_at_divergence(self):
        tree = TokenTree(1)
        a = tree.add_child(0, 2)
        tree.add_child(a, 3)
        output = fake_output(tree, {0: 2, a: 9})  # diverges after first
        result = verify_greedy(output, tree)
        assert result.accepted_tokens == [2, 9]
        assert result.bonus_token == 9

    def test_root_only_tree(self):
        tree = TokenTree(1)
        output = fake_output(tree, {0: 4})
        result = verify_greedy(output, tree)
        assert result.accepted_tokens == [4]
        assert result.tokens_per_step == 1

    def test_emits_incremental_sequence(self, llm, rng):
        """Against a real model: the accepted tokens must be exactly what
        incremental greedy decoding would emit next."""
        from repro.verify.decode import tree_parallel_decode
        from tests.conftest import make_prompt

        prompt = make_prompt(rng, length=5)
        # Build a tree speculating the LLM's own greedy continuation (oracle)
        cache = llm.new_cache()
        llm.prefill(prompt[:-1], cache)
        ref_cache = llm.new_cache()
        llm.prefill(prompt[:-1], ref_cache)
        pending = int(prompt[-1])
        expected = []
        t = pending
        for _ in range(4):
            t = int(np.argmax(llm.decode(t, ref_cache)))
            expected.append(t)
        tree = TokenTree(pending)
        tree.add_path(expected[:3])  # speculate first 3 correctly
        output = tree_parallel_decode(llm, cache, tree)
        result = verify_greedy(output, tree)
        assert result.accepted_tokens == expected[:4]
