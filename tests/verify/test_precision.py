"""Reduced-precision draft scoring: argmax parity and bit-exact greedy accept.

The guard in :mod:`repro.verify.precision` promises that every logits row it
returns has *exactly* the fp32 argmax — quantized rows only survive when
their top-1/top-2 gap provably exceeds twice the quantization error, and
near-tie rows fall back to fp32.  These tests hammer that promise with
adversarial near-ties and then confirm the end-to-end consequence: fp16 and
int8 verifier configs commit bit-identical tokens to fp32 under greedy
decoding, across both the per-request and the fused batched verifiers.
"""

import numpy as np
import pytest

from repro.engine.batched import BatchedTreeVerifier
from repro.model.sampling import SamplingConfig
from repro.obs import reset_observability
from repro.speculate.expansion import ExpansionConfig, expand_token_tree
from repro.verify.precision import (
    PRECISIONS,
    ROWS_FALLBACK,
    ROWS_QUANTIZED,
    apply_precision,
    quantize_fp16,
    quantize_int8,
    validate_precision,
)
from repro.verify.verifier import TokenTreeVerifier
from tests.conftest import make_prompt

REDUCED = [p for p in PRECISIONS if p != "fp32"]


class TestValidatePrecision:
    def test_known_precisions_pass_greedy(self):
        for p in PRECISIONS:
            validate_precision(p, greedy=True)

    def test_unknown_precision_rejected(self):
        with pytest.raises(ValueError, match="must be one of"):
            validate_precision("bf16", greedy=True)

    @pytest.mark.parametrize("precision", REDUCED)
    def test_reduced_precision_requires_greedy(self, precision):
        with pytest.raises(ValueError, match="greedy"):
            validate_precision(precision, greedy=False)

    def test_fp32_allowed_stochastic(self):
        validate_precision("fp32", greedy=False)


class TestQuantizers:
    def test_fp16_roundtrip_error_bounded(self):
        rng = np.random.default_rng(0)
        x = rng.normal(0, 10, size=(32, 64))
        q = quantize_fp16(x)
        # Half precision keeps ~3 decimal digits at this magnitude.
        assert np.abs(q - x).max() < 0.02
        assert q.dtype == np.float64

    def test_int8_scale_and_clip(self):
        x = np.array([[0.0, 127.0, -254.0]])
        q = quantize_int8(x)
        # scale = 2.0; entries land on multiples of the scale.
        np.testing.assert_allclose(q, [[0.0, 128.0, -254.0]])

    def test_int8_zero_row_is_fixed_point(self):
        x = np.zeros((2, 5))
        np.testing.assert_array_equal(quantize_int8(x), x)


class TestArgmaxParity:
    """The headline property: argmax(apply_precision(x)) == argmax(x)."""

    def setup_method(self):
        reset_observability()

    @pytest.mark.parametrize("precision", REDUCED)
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_random_rows(self, precision, seed):
        rng = np.random.default_rng(seed)
        x = rng.normal(0, 8, size=(200, 97))
        out = apply_precision(x, precision)
        np.testing.assert_array_equal(
            np.argmax(out, axis=-1), np.argmax(x, axis=-1)
        )

    @pytest.mark.parametrize("precision", REDUCED)
    @pytest.mark.parametrize("seed", [3, 4, 5])
    def test_adversarial_near_ties(self, precision, seed):
        """Rows whose top two entries differ by less than any quantization
        step — exactly where naive quantization flips the winner."""
        rng = np.random.default_rng(seed)
        n, vocab = 300, 61
        x = rng.normal(0, 8, size=(n, vocab))
        top = np.argmax(x, axis=-1)
        runner_up = (top + 1 + rng.integers(0, vocab - 1, size=n)) % vocab
        runner_up = np.where(runner_up == top, (top + 1) % vocab, runner_up)
        eps = 10.0 ** rng.uniform(-12, -2, size=n)
        rows = np.arange(n)
        x[rows, runner_up] = x[rows, top] - eps
        out = apply_precision(x, precision)
        np.testing.assert_array_equal(
            np.argmax(out, axis=-1), np.argmax(x, axis=-1)
        )
        # Near-ties must actually exercise the fp32 fallback.
        assert ROWS_FALLBACK.value > 0

    @pytest.mark.parametrize("precision", REDUCED)
    def test_clear_winners_stay_quantized(self, precision):
        x = np.zeros((8, 32))
        x[np.arange(8), np.arange(8)] = 50.0
        out = apply_precision(x, precision)
        assert ROWS_QUANTIZED.value == 8
        assert ROWS_FALLBACK.value == 0
        np.testing.assert_array_equal(
            np.argmax(out, axis=-1), np.argmax(x, axis=-1)
        )

    def test_fp32_is_identity_object(self):
        x = np.ones((3, 4))
        assert apply_precision(x, "fp32") is x

    def test_unknown_precision_rejected(self):
        with pytest.raises(ValueError, match="must be one of"):
            apply_precision(np.ones((1, 4)), "fp8")


def _verify_once(llm, ssm, verifier_cls, seed, **kwargs):
    """Committed tokens + compacted cache length for one verification pass."""
    rng = np.random.default_rng(seed)
    prompt = make_prompt(rng, length=6)
    cache = llm.new_cache()
    llm.prefill(prompt[:-1], cache)
    ssm_cache = ssm.new_cache()
    ssm.prefill(prompt[:-1], ssm_cache)
    tree = expand_token_tree(
        ssm, int(prompt[-1]), ssm_cache, ExpansionConfig((2, 2, 1))
    )
    verifier = verifier_cls(llm, SamplingConfig(greedy=True), **kwargs)
    if verifier_cls is BatchedTreeVerifier:
        result = verifier.verify_batch([tree], [cache])[0]
    else:
        result = verifier.verify_step(tree, cache)
    return result.accepted_tokens, result.accepted_nodes, cache.length


class TestEndToEndGreedyParity:
    """fp16/int8 verifiers commit bit-identical tokens to fp32."""

    @pytest.mark.parametrize("verifier_cls",
                             [TokenTreeVerifier, BatchedTreeVerifier])
    @pytest.mark.parametrize("precision", REDUCED)
    @pytest.mark.parametrize("seed", [10, 11, 12])
    def test_commits_match_fp32(self, llm, ssm, verifier_cls, precision,
                                seed):
        baseline = _verify_once(llm, ssm, verifier_cls, seed,
                                precision="fp32")
        reduced = _verify_once(llm, ssm, verifier_cls, seed,
                               precision=precision)
        assert baseline == reduced

    @pytest.mark.parametrize("verifier_cls",
                             [TokenTreeVerifier, BatchedTreeVerifier])
    @pytest.mark.parametrize("precision", REDUCED)
    def test_stochastic_config_rejected(self, llm, verifier_cls, precision):
        with pytest.raises(ValueError, match="greedy"):
            verifier_cls(llm, SamplingConfig(temperature=1.0),
                         precision=precision)
