"""Tests for the TokenTreeVerifier façade, especially cache compaction."""

import numpy as np
import pytest

from repro.model.sampling import SamplingConfig
from repro.tree.token_tree import TokenTree
from repro.verify.verifier import TokenTreeVerifier
from tests.conftest import make_prompt


def oracle_tree(llm, prompt, depth=3, width=2):
    """A tree whose first branch is the LLM's own greedy continuation."""
    cache = llm.new_cache()
    llm.prefill(prompt[:-1], cache)
    pending = int(prompt[-1])
    tree = TokenTree(pending)
    node = 0
    t = pending
    for d in range(depth):
        t = int(np.argmax(llm.decode(t, cache)))
        node = tree.add_child(node, t)
        # Add a decoy sibling that will not match.
        decoy = (t + 1) % llm.config.vocab_size or 1
        tree.add_child(tree.nodes[node].parent, decoy)
    return tree


class TestVerifyStep:
    def test_cache_grows_by_accepted_path(self, llm, rng):
        prompt = make_prompt(rng, length=5)
        verifier = TokenTreeVerifier(llm, SamplingConfig(greedy=True))
        cache = llm.new_cache()
        llm.prefill(prompt[:-1], cache)
        before = cache.length
        tree = oracle_tree(llm, prompt, depth=3)
        result = verifier.verify_step(tree, cache)
        assert cache.length == before + len(result.accepted_nodes)
        # Oracle speculation: all 3 speculated tokens accepted.
        assert result.num_accepted_speculated == 3

    def test_compacted_cache_continues_correctly(self, llm, rng):
        """After verification+compaction, further decoding matches a fresh
        cache built from the accepted sequence — the KV rows kept for the
        accepted path must be *exactly* the right ones."""
        prompt = make_prompt(rng, length=5)
        verifier = TokenTreeVerifier(llm, SamplingConfig(greedy=True))
        cache = llm.new_cache()
        llm.prefill(prompt[:-1], cache)
        tree = oracle_tree(llm, prompt, depth=2)
        result = verifier.verify_step(tree, cache)
        # The verified sequence so far:
        accepted_path_tokens = [int(prompt[-1])] + result.accepted_tokens[:-1]
        full_sequence = list(prompt[:-1]) + accepted_path_tokens
        # Continue decoding from the compacted cache...
        next_logits = llm.decode(result.bonus_token, cache)
        # ...and from a scratch cache over the same sequence.
        ref_cache = llm.new_cache()
        llm.prefill(np.array(full_sequence), ref_cache)
        ref_logits = llm.decode(result.bonus_token, ref_cache)
        np.testing.assert_allclose(next_logits, ref_logits, atol=1e-10)

    def test_root_only_tree_is_incremental_decoding(self, llm, rng):
        prompt = make_prompt(rng, length=4)
        verifier = TokenTreeVerifier(llm, SamplingConfig(greedy=True))
        cache = llm.new_cache()
        llm.prefill(prompt[:-1], cache)
        ref_cache = llm.new_cache()
        llm.prefill(prompt[:-1], ref_cache)
        expected = int(np.argmax(llm.decode(int(prompt[-1]), ref_cache)))
        result = verifier.verify_step(TokenTree(int(prompt[-1])), cache)
        assert result.accepted_tokens == [expected]
        assert cache.length == len(prompt)

    def test_stochastic_mode_runs(self, llm, rng):
        prompt = make_prompt(rng, length=4)
        verifier = TokenTreeVerifier(
            llm, SamplingConfig(temperature=1.0),
            rng=np.random.default_rng(0),
        )
        cache = llm.new_cache()
        llm.prefill(prompt[:-1], cache)
        tree = TokenTree(int(prompt[-1]))
        tree.add_child(0, 5)
        tree.set_proposal(0, 0, np.full(llm.config.vocab_size,
                                        1 / llm.config.vocab_size))
        result = verifier.verify_step(tree, cache)
        result.validate()
        assert len(result.accepted_tokens) >= 1

    def test_naive_sampling_mode_runs(self, llm, rng):
        prompt = make_prompt(rng, length=4)
        verifier = TokenTreeVerifier(
            llm, SamplingConfig(), rng=np.random.default_rng(0),
            use_naive_sampling=True,
        )
        cache = llm.new_cache()
        llm.prefill(prompt[:-1], cache)
        tree = TokenTree(int(prompt[-1]))
        tree.add_child(0, 5)
        result = verifier.verify_step(tree, cache)
        result.validate()

    def test_decode_and_verify_returns_output(self, llm, rng):
        prompt = make_prompt(rng, length=4)
        verifier = TokenTreeVerifier(llm, SamplingConfig(greedy=True))
        cache = llm.new_cache()
        llm.prefill(prompt[:-1], cache)
        tree = TokenTree(int(prompt[-1]))
        result, output = verifier.decode_and_verify(tree, cache)
        assert output.logits.shape[0] == 1
        assert result.accepted_tokens[0] == output.greedy_token_for_node(0)
