"""Tests for the VerificationResult record."""

import pytest

from repro.verify.result import VerificationResult


def good_result():
    return VerificationResult(
        accepted_tokens=[5, 9],
        accepted_nodes=[0, 3],
        bonus_token=9,
    )


class TestValidate:
    def test_accepts_consistent_result(self):
        good_result().validate()

    def test_rejects_missing_root(self):
        result = good_result()
        result.accepted_nodes = [3]
        with pytest.raises(ValueError, match="root"):
            result.validate()

    def test_rejects_empty_path(self):
        result = VerificationResult(accepted_tokens=[1], bonus_token=1)
        with pytest.raises(ValueError, match="root"):
            result.validate()

    def test_rejects_token_count_mismatch(self):
        result = good_result()
        result.accepted_tokens = [5]
        with pytest.raises(ValueError, match="bonus token plus"):
            result.validate()

    def test_rejects_wrong_bonus(self):
        result = good_result()
        result.bonus_token = 42
        with pytest.raises(ValueError, match="bonus"):
            result.validate()


class TestDerived:
    def test_num_accepted_speculated(self):
        assert good_result().num_accepted_speculated == 1

    def test_tokens_per_step(self):
        assert good_result().tokens_per_step == 2

    def test_minimal_step_is_one_token(self):
        result = VerificationResult(
            accepted_tokens=[7], accepted_nodes=[0], bonus_token=7
        )
        result.validate()
        assert result.num_accepted_speculated == 0
        assert result.tokens_per_step == 1
