"""Tests for synthetic corpora."""

import numpy as np
import pytest

from repro.workloads.corpus import MarkovCorpus, ZipfCorpus


class TestZipfCorpus:
    def test_sample_shape_and_range(self):
        corpus = ZipfCorpus(vocab_size=32, seed=0)
        seq = corpus.sample(50)
        assert len(seq) == 50
        assert (seq >= 1).all() and (seq < 32).all()

    def test_sample_many(self):
        corpus = ZipfCorpus(vocab_size=32, seed=0)
        seqs = corpus.sample_many(4, 10)
        assert len(seqs) == 4
        assert all(len(s) == 10 for s in seqs)

    def test_skew(self):
        corpus = ZipfCorpus(vocab_size=32, exponent=1.5, seed=0)
        tokens = corpus.sample(5000)
        counts = np.bincount(tokens, minlength=32)
        # Rank-1 token should dominate rank-10.
        sorted_counts = np.sort(counts)[::-1]
        assert sorted_counts[0] > 3 * sorted_counts[9]

    def test_rejects_tiny_vocab(self):
        with pytest.raises(ValueError):
            ZipfCorpus(vocab_size=2)


class TestMarkovCorpus:
    def test_transitions_follow_chain(self):
        corpus = MarkovCorpus(vocab_size=32, branching=3, seed=0)
        seq = corpus.sample(200)
        for prev, cur in zip(seq[:-1], seq[1:]):
            successors = corpus.successors[prev - corpus.reserved_low]
            assert cur in successors

    def test_conditional_entropy_below_log_branching(self):
        corpus = MarkovCorpus(vocab_size=32, branching=4, exponent=1.0,
                              seed=0)
        assert corpus.conditional_entropy() <= np.log(4) + 1e-9
        assert corpus.conditional_entropy() > 0

    def test_uniform_exponent_zero(self):
        corpus = MarkovCorpus(vocab_size=32, branching=4, exponent=0.0,
                              seed=0)
        assert corpus.conditional_entropy() == pytest.approx(np.log(4))

    def test_rejects_excess_branching(self):
        with pytest.raises(ValueError):
            MarkovCorpus(vocab_size=4, branching=4)

    def test_rejects_zero_branching(self):
        with pytest.raises(ValueError):
            MarkovCorpus(vocab_size=32, branching=0)

    def test_reproducible(self):
        a = MarkovCorpus(vocab_size=32, branching=3, seed=5).sample(20)
        b = MarkovCorpus(vocab_size=32, branching=3, seed=5).sample(20)
        np.testing.assert_array_equal(a, b)

    def test_predictable_by_trained_model(self):
        """The whole point of the Markov corpus: a small transformer can
        learn it well enough to make speculation informative."""
        from repro.model.config import ModelConfig
        from repro.model.trainer import Trainer, TrainingConfig
        from repro.model.transformer import TransformerLM

        corpus = MarkovCorpus(vocab_size=24, branching=2, seed=3)
        model = TransformerLM(
            ModelConfig(vocab_size=24, d_model=16, n_layers=2, n_heads=2,
                        max_seq_len=32),
            seed=0,
        )
        trainer = Trainer(model, TrainingConfig(max_steps=80,
                                                learning_rate=3e-3))
        trainer.train_lm(corpus.sample_many(16, 20))
        # Model should usually rank a true chain successor at top-1.
        hits = total = 0
        for seq in corpus.sample_many(5, 15):
            logits = model.logits_for_sequence(seq)
            for i in range(5, len(seq) - 1):
                pred = int(np.argmax(logits[i]))
                hits += pred in corpus.successors[seq[i] - 1]
                total += 1
        assert hits / total > 0.6
