"""Tests for synthetic prompt datasets."""

import numpy as np
import pytest

from repro.workloads.datasets import (
    DATASET_NAMES,
    DatasetSpec,
    PromptDataset,
    dataset_specs,
    make_dataset,
)


class TestSpecs:
    def test_all_five_paper_datasets_present(self):
        specs = dataset_specs()
        assert set(specs) == set(DATASET_NAMES)

    def test_difficulty_ordering_matches_table1(self):
        """CIP should be the easiest dataset, WebQA the hardest."""
        specs = dataset_specs()
        assert specs["CIP"].alignment == max(s.alignment
                                             for s in specs.values())
        assert specs["WebQA"].alignment == min(s.alignment
                                               for s in specs.values())

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            DatasetSpec("x", 0, 1, 1.0, alignment=0.5, seed=0)
        with pytest.raises(ValueError):
            DatasetSpec("x", 10, 1, 1.0, alignment=0.0, seed=0)


class TestPromptDataset:
    def test_prompts_avoid_reserved_tokens(self):
        dataset = make_dataset("Alpaca", vocab_size=64)
        for prompt in dataset.sample_prompts(20):
            assert (prompt >= 1).all()
            assert (prompt < 64).all()

    def test_max_len_respected(self):
        dataset = make_dataset("CP", vocab_size=64)
        for prompt in dataset.sample_prompts(20, max_len=8):
            assert 2 <= len(prompt) <= 8

    def test_reproducible_by_seed(self):
        a = make_dataset("PIQA", vocab_size=64).sample_prompts(5)
        b = make_dataset("PIQA", vocab_size=64).sample_prompts(5)
        for pa, pb in zip(a, b):
            np.testing.assert_array_equal(pa, pb)

    def test_datasets_differ(self):
        a = make_dataset("Alpaca", vocab_size=64).sample_prompt()
        b = make_dataset("WebQA", vocab_size=64).sample_prompt()
        assert len(a) != len(b) or not np.array_equal(a, b)

    def test_length_profile_tracks_spec(self):
        specs = dataset_specs()
        long_ds = make_dataset("CP", vocab_size=64)      # mean 32
        short_ds = make_dataset("WebQA", vocab_size=64)  # mean 12
        long_mean = np.mean([len(p) for p in long_ds.sample_prompts(60)])
        short_mean = np.mean([len(p) for p in short_ds.sample_prompts(60)])
        assert long_mean > short_mean

    def test_zipf_skew(self):
        """Higher-exponent datasets concentrate more mass on few tokens."""
        skewed = PromptDataset(
            DatasetSpec("s", 50, 1, 2.0, alignment=0.9, seed=1), 64
        )
        flat = PromptDataset(
            DatasetSpec("f", 50, 1, 0.2, alignment=0.9, seed=1), 64
        )
        def top_token_share(ds):
            tokens = np.concatenate(ds.sample_prompts(40))
            counts = np.bincount(tokens, minlength=64)
            return counts.max() / counts.sum()
        assert top_token_share(skewed) > top_token_share(flat)

    def test_unknown_dataset_raises(self):
        with pytest.raises(KeyError, match="unknown dataset"):
            make_dataset("imagenet", vocab_size=64)

    def test_tiny_vocab_rejected(self):
        with pytest.raises(ValueError):
            PromptDataset(dataset_specs()["Alpaca"], vocab_size=2)
