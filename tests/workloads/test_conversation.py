"""Tests for multi-turn conversation workloads."""

import numpy as np
import pytest

from repro.workloads.conversation import (
    Conversation,
    ConversationBuilder,
    ConversationTurn,
    serve_conversation,
)
from repro.workloads.datasets import make_dataset


@pytest.fixture()
def builder():
    dataset = make_dataset("CIP", vocab_size=64)
    return ConversationBuilder(dataset, turns=3, user_len=6,
                               reply_budget=6, seed=0)


class TestBuilder:
    def test_turn_count(self, builder):
        assert builder.build().num_turns == 3

    def test_budget_within_bounds(self, builder):
        for turn in builder.build().turns:
            assert 3 <= turn.reply_budget <= 6

    def test_user_prompts_truncated(self, builder):
        for turn in builder.build().turns:
            assert len(turn.user_tokens) <= 6

    def test_max_context_bound(self, builder):
        conversation = builder.build()
        assert conversation.max_context() <= 3 * (6 + 6)

    def test_build_many(self, builder):
        assert len(builder.build_many(4)) == 4

    def test_validation(self):
        dataset = make_dataset("CIP", vocab_size=64)
        with pytest.raises(ValueError):
            ConversationBuilder(dataset, turns=0)
        with pytest.raises(ValueError):
            ConversationBuilder(dataset, reply_budget=0)


class TestServeConversation:
    def test_contexts_grow_per_turn(self, llm, builder):
        from repro.engine.incremental import IncrementalEngine

        conversation = builder.build()
        result = serve_conversation(IncrementalEngine(llm), conversation)
        assert result.contexts == sorted(result.contexts)
        assert result.contexts[1] > result.contexts[0]
        assert len(result.replies) == 3

    def test_replies_respect_budgets(self, llm, builder):
        from repro.engine.incremental import IncrementalEngine

        conversation = builder.build()
        result = serve_conversation(IncrementalEngine(llm), conversation)
        for reply, turn in zip(result.replies, conversation.turns):
            assert len(reply) <= turn.reply_budget

    def test_speculative_conversation_matches_incremental(self, llm, ssm,
                                                          builder):
        """Losslessness holds across turns: each turn's reply conditions on
        the shared history, so the whole conversation transcript matches."""
        from repro.engine.incremental import IncrementalEngine
        from repro.engine.tree_spec import SpecInferEngine
        from repro.speculate.expansion import ExpansionConfig
        from repro.speculate.speculator import Speculator

        conversation = builder.build()
        incremental = serve_conversation(IncrementalEngine(llm),
                                         conversation)
        engine = SpecInferEngine(
            llm, Speculator([ssm], ExpansionConfig((1, 2, 1)))
        )
        speculative = serve_conversation(engine, conversation)
        assert speculative.replies == incremental.replies
        assert speculative.total_llm_steps <= incremental.total_llm_steps

    def test_context_truncation(self, llm, builder):
        from repro.engine.incremental import IncrementalEngine

        conversation = builder.build()
        result = serve_conversation(IncrementalEngine(llm), conversation,
                                    max_context=10)
        assert all(c <= 10 for c in result.contexts)

    def test_long_chat_fits_window_with_truncation(self, llm):
        """A conversation whose raw history would exceed the context window
        still serves when truncated."""
        from repro.engine.incremental import IncrementalEngine

        dataset = make_dataset("CIP", vocab_size=64)
        builder = ConversationBuilder(dataset, turns=12, user_len=8,
                                      reply_budget=8, seed=1)
        conversation = builder.build()
        assert conversation.max_context() > llm.config.max_seq_len
        result = serve_conversation(
            IncrementalEngine(llm), conversation,
            max_context=llm.config.max_seq_len - 10,
        )
        assert len(result.replies) == 12
        assert result.total_tokens > 0
