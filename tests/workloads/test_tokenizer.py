"""Tests for the toy tokenizer."""

import pytest

from repro.workloads.tokenizer import ToyTokenizer


class TestToyTokenizer:
    def test_special_tokens_fixed(self):
        tok = ToyTokenizer(["hello", "world"])
        assert tok.eos_id == 0
        assert tok.unk_id == 1
        assert tok.vocab_size == 4

    def test_roundtrip(self):
        tok = ToyTokenizer("the quick brown fox".split())
        ids = tok.encode("the quick fox")
        assert tok.decode(ids) == "the quick fox"

    def test_unknown_words_map_to_unk(self):
        tok = ToyTokenizer(["hello"])
        assert tok.encode("hello goodbye") == [2, tok.unk_id]

    def test_decode_stops_at_eos(self):
        tok = ToyTokenizer(["a", "b"])
        assert tok.decode([2, 0, 3]) == "a"

    def test_duplicates_deduplicated(self):
        tok = ToyTokenizer(["a", "a", "b"])
        assert tok.vocab_size == 4

    def test_from_text(self):
        tok = ToyTokenizer.from_text("to be or not to be")
        assert tok.vocab_size == 2 + 4  # to, be, or, not

    def test_decode_out_of_range_raises(self):
        tok = ToyTokenizer(["a"])
        with pytest.raises(ValueError):
            tok.decode([99])

    def test_word_lookup(self):
        tok = ToyTokenizer(["alpha"])
        assert tok.word(2) == "alpha"
        with pytest.raises(ValueError):
            tok.word(-1)
