"""Tests for arrival processes and manager driving."""

import numpy as np
import pytest

from repro.engine.generation import GenerationConfig
from repro.serving.manager import RequestManager
from repro.serving.session import IncrementalSession
from repro.workloads.arrival import (
    Arrival,
    PoissonArrivals,
    UniformArrivals,
    drive_manager,
    sort_arrivals,
)
from repro.workloads.datasets import make_dataset


@pytest.fixture()
def dataset():
    return make_dataset("Alpaca", vocab_size=64)


class TestPoissonArrivals:
    def test_schedule_shape(self, dataset):
        arrivals = PoissonArrivals(rate=0.5, dataset=dataset,
                                   seed=0).schedule(20)
        assert len(arrivals) == 20
        times = [a.iteration for a in arrivals]
        assert times == sorted(times)

    def test_rate_controls_density(self, dataset):
        fast = PoissonArrivals(rate=2.0, dataset=dataset, seed=1).schedule(50)
        slow = PoissonArrivals(rate=0.2, dataset=dataset, seed=1).schedule(50)
        assert fast[-1].iteration < slow[-1].iteration

    def test_mean_gap_matches_rate(self, dataset):
        arrivals = PoissonArrivals(rate=0.5, dataset=dataset,
                                   seed=2).schedule(400)
        span = arrivals[-1].iteration
        # 400 arrivals at rate 0.5/iter -> span ~ 800 iterations.
        assert 600 < span < 1000

    def test_rejects_bad_args(self, dataset):
        with pytest.raises(ValueError):
            PoissonArrivals(rate=0, dataset=dataset)
        with pytest.raises(ValueError):
            PoissonArrivals(rate=1, dataset=dataset).schedule(0)

    def test_reproducible(self, dataset):
        a = PoissonArrivals(rate=1.0, dataset=dataset, seed=5).schedule(10)
        b = PoissonArrivals(
            rate=1.0, dataset=make_dataset("Alpaca", 64), seed=5
        ).schedule(10)
        assert [x.iteration for x in a] == [x.iteration for x in b]


class TestArrivalTieBreak:
    """Simultaneous arrivals order by the stable (iteration, request_id)
    key everywhere, so replay and gateway admission agree."""

    def test_sort_arrivals_breaks_iteration_ties_by_request_id(self):
        prompt = np.array([1], dtype=np.intp)
        shuffled = [
            Arrival(iteration=3, prompt=prompt, request_id=2),
            Arrival(iteration=1, prompt=prompt, request_id=1),
            Arrival(iteration=3, prompt=prompt, request_id=0),
        ]
        ordered = sort_arrivals(shuffled)
        assert [(a.iteration, a.request_id) for a in ordered] == \
            [(1, 1), (3, 0), (3, 2)]

    def test_poisson_schedule_pinned_order(self, dataset):
        """Pinned regression: seed 3 at rate 4 floors several arrivals onto
        shared iterations; the schedule must come back tie-broken by draw
        order, not by whatever the platform's sort did with equal keys."""
        arrivals = PoissonArrivals(rate=4.0, dataset=dataset,
                                   seed=3).schedule(10)
        assert [(a.iteration, a.request_id) for a in arrivals] == [
            (0, 0), (0, 1), (0, 2), (1, 3), (1, 4),
            (1, 5), (1, 6), (1, 7), (1, 8), (1, 9),
        ]

    def test_drive_manager_submission_order_is_canonical(self, llm, dataset):
        """A shuffled arrival list submits in canonical order: the ids
        drive_manager returns are assigned ascending along the sorted
        (iteration, request_id) sequence."""
        arrivals = PoissonArrivals(rate=4.0, dataset=dataset,
                                   seed=3).schedule(6)
        shuffled = [arrivals[i] for i in (4, 1, 5, 0, 3, 2)]
        mgr = RequestManager(lambda req: IncrementalSession(req, llm),
                             max_batch_size=2)
        ids = drive_manager(
            mgr, shuffled,
            GenerationConfig(max_new_tokens=2, stop_on_eos=False),
        )
        assert ids == sorted(ids)
        canonical = sort_arrivals(shuffled)
        for request_id, arrival in zip(ids, canonical):
            tracked = mgr._tracked[request_id].request
            assert tracked.prompt.tolist() == arrival.prompt.tolist()


class TestUniformArrivals:
    def test_fixed_gaps(self, dataset):
        arrivals = UniformArrivals(gap=3, dataset=dataset).schedule(4)
        assert [a.iteration for a in arrivals] == [0, 3, 6, 9]

    def test_gap_zero_is_batch(self, dataset):
        arrivals = UniformArrivals(gap=0, dataset=dataset).schedule(3)
        assert all(a.iteration == 0 for a in arrivals)


class TestDriveManager:
    def test_all_requests_served(self, llm, dataset):
        mgr = RequestManager(lambda req: IncrementalSession(req, llm),
                             max_batch_size=2)
        arrivals = UniformArrivals(gap=2, dataset=dataset,
                                   max_prompt_len=6).schedule(5)
        ids = drive_manager(
            mgr, arrivals,
            GenerationConfig(max_new_tokens=3, stop_on_eos=False),
        )
        assert len(ids) == 5
        assert len(mgr.finished_outputs()) == 5

    def test_arrival_iterations_respected(self, llm, dataset):
        mgr = RequestManager(lambda req: IncrementalSession(req, llm),
                             max_batch_size=4)
        arrivals = UniformArrivals(gap=3, dataset=dataset,
                                   max_prompt_len=6).schedule(3)
        ids = drive_manager(
            mgr, arrivals,
            GenerationConfig(max_new_tokens=2, stop_on_eos=False),
        )
        for request_id, arrival in zip(ids, arrivals):
            recorded = mgr._tracked[request_id].request.arrival_iteration
            assert recorded >= arrival.iteration

    def test_higher_load_increases_queueing(self, llm, dataset):
        """At high arrival rate the batch saturates and TTFT grows."""
        from repro.serving.metrics import report_from_manager

        def run(gap):
            mgr = RequestManager(lambda req: IncrementalSession(req, llm),
                                 max_batch_size=1)
            arrivals = UniformArrivals(gap=gap, dataset=dataset,
                                       max_prompt_len=6).schedule(6)
            drive_manager(
                mgr, arrivals,
                GenerationConfig(max_new_tokens=4, stop_on_eos=False),
            )
            return report_from_manager(mgr).mean_ttft

        assert run(0) > run(6)
