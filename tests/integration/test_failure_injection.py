"""Failure injection: the system degrades gracefully at resource limits."""

import numpy as np
import pytest

from repro.engine.generation import GenerationConfig
from repro.model.config import ModelConfig
from repro.model.coupled import CoupledSSM
from repro.model.paged_cache import PagedKVPool
from repro.model.transformer import TransformerLM
from repro.serving.manager import RequestManager
from repro.serving.session import IncrementalSession, SpeculativeSession
from repro.speculate.expansion import ExpansionConfig
from repro.speculate.speculator import Speculator
from tests.conftest import SMALL_CONFIG, make_prompt


class TestContextLimits:
    def test_generation_stops_at_context_limit_not_crash(self, rng):
        """A request whose budget exceeds the context window ends cleanly
        with fewer tokens, for all engines."""
        from repro.engine.incremental import IncrementalEngine
        from repro.engine.tree_spec import SpecInferEngine

        config = ModelConfig(vocab_size=32, d_model=16, n_layers=1,
                             n_heads=2, max_seq_len=24)
        llm = TransformerLM(config, seed=0)
        ssm = CoupledSSM(llm, alignment=0.8, seed=1, noise_scale=2.0)
        prompt = rng.integers(1, 32, size=6)
        generation = GenerationConfig(max_new_tokens=100, stop_on_eos=False)
        for engine in (
            IncrementalEngine(llm),
            SpecInferEngine(llm, Speculator([ssm], ExpansionConfig((2, 2)))),
        ):
            result = engine.generate(list(prompt), generation)
            assert 0 < result.num_tokens <= 24

    def test_speculation_near_limit_still_lossless(self, rng):
        """Trees pruned at the context boundary must not corrupt output."""
        from repro.engine.incremental import IncrementalEngine
        from repro.engine.tree_spec import SpecInferEngine

        config = ModelConfig(vocab_size=32, d_model=16, n_layers=1,
                             n_heads=2, max_seq_len=26)
        llm = TransformerLM(config, seed=3)
        ssm = CoupledSSM(llm, alignment=0.9, seed=4, noise_scale=2.0)
        prompt = list(rng.integers(1, 32, size=5))
        generation = GenerationConfig(max_new_tokens=100, stop_on_eos=False)
        reference = IncrementalEngine(llm).generate(prompt, generation)
        speculative = SpecInferEngine(
            llm, Speculator([ssm], ExpansionConfig((2, 2, 2)))
        ).generate(prompt, generation)
        n = min(reference.num_tokens, speculative.num_tokens)
        assert speculative.tokens[:n] == reference.tokens[:n]


class TestPoolExhaustion:
    def test_paged_pool_exhaustion_is_loud(self, llm, rng):
        """Running out of blocks raises MemoryError (never silent
        corruption)."""
        pool = PagedKVPool(SMALL_CONFIG, num_blocks=2, block_size=4)
        cache = pool.new_sequence()
        with pytest.raises(MemoryError, match="exhausted"):
            llm.prefill(rng.integers(1, 64, size=12), cache)

    def test_oversubscribed_batch_fails_fast(self, llm, rng):
        """A manager without admission control on an undersized pool
        surfaces MemoryError instead of deadlocking."""
        pool = PagedKVPool(SMALL_CONFIG, num_blocks=3, block_size=4)
        mgr = RequestManager(
            lambda req: IncrementalSession(req, llm,
                                           cache_factory=pool.new_sequence),
            max_batch_size=4,
        )
        for _ in range(4):
            mgr.submit(make_prompt(rng, length=8),
                       GenerationConfig(max_new_tokens=8, stop_on_eos=False))
        with pytest.raises(MemoryError):
            mgr.run_until_complete()


class TestAdversarialTrees:
    def test_verifier_handles_tree_with_unknown_proposals(self, llm, rng):
        """Hand-built trees lacking proposal distributions verify without
        error in stochastic mode (deterministic-proposal semantics)."""
        from repro.model.sampling import SamplingConfig
        from repro.tree.token_tree import TokenTree
        from repro.verify.verifier import TokenTreeVerifier

        prompt = make_prompt(rng, length=4)
        cache = llm.new_cache()
        llm.prefill(prompt[:-1], cache)
        tree = TokenTree(int(prompt[-1]))
        tree.add_path([1, 2, 3])
        tree.add_path([4, 5])
        verifier = TokenTreeVerifier(
            llm, SamplingConfig(temperature=1.0),
            rng=np.random.default_rng(0),
        )
        result = verifier.verify_step(tree, cache)
        result.validate()

    def test_deep_chain_tree_within_limits(self, llm, rng):
        """A maximum-depth chain (degenerate tree) verifies correctly."""
        from repro.model.sampling import SamplingConfig
        from repro.tree.token_tree import TokenTree
        from repro.verify.verifier import TokenTreeVerifier

        prompt = make_prompt(rng, length=4)
        cache = llm.new_cache()
        llm.prefill(prompt[:-1], cache)
        tree = TokenTree(int(prompt[-1]))
        tree.add_path(list(rng.integers(1, 64, size=30)))
        result = TokenTreeVerifier(llm, SamplingConfig(greedy=True)
                                   ).verify_step(tree, cache)
        result.validate()
        assert cache.length == len(prompt) - 1 + len(result.accepted_nodes)

    def test_duplicate_heavy_merge(self):
        """Merging many copies of the same tree never duplicates nodes."""
        from repro.tree.token_tree import TokenTree, merge_trees

        tree = TokenTree(1)
        tree.add_path([2, 3, 4])
        merged = merge_trees([tree] * 10)
        assert len(merged) == len(tree)
