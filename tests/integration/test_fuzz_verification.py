"""Fuzz tests: verification invariants over randomly generated trees.

Brute-force reference implementations check the verifiers on arbitrary
inputs — not just the trees the speculator happens to build.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model.sampling import SamplingConfig
from repro.tree.masks import linearize
from repro.tree.token_tree import TokenTree
from repro.verify.decode import TreeDecodeOutput, tree_parallel_decode
from repro.verify.greedy import verify_greedy
from repro.verify.stochastic import verify_stochastic
from tests.conftest import make_prompt

VOCAB = 16


@st.composite
def random_tree_with_proposals(draw):
    """A random tree where every expanded node carries a proposal."""
    rng = np.random.default_rng(draw(st.integers(0, 10_000)))
    tree = TokenTree(draw(st.integers(0, VOCAB - 1)))
    for _ in range(draw(st.integers(0, 10))):
        parent = draw(st.integers(0, len(tree) - 1))
        token = draw(st.integers(0, VOCAB - 1))
        tree.add_child(parent, token, ssm_id=0)
    for idx, node in enumerate(tree.nodes):
        if node.children:
            probs = rng.dirichlet(np.ones(VOCAB))
            tree.set_proposal(idx, 0, probs)
    return tree


def brute_force_greedy(tree: TokenTree, greedy_token_of: dict):
    """Reference: walk the greedy chain through the tree."""
    accepted = [0]
    u = 0
    emitted = []
    while True:
        target = greedy_token_of[u]
        matched = None
        for child in tree.nodes[u].children:
            if tree.nodes[child].token == target:
                matched = child
                break
        emitted.append(target)
        if matched is None:
            return emitted, accepted
        accepted.append(matched)
        u = matched


class TestGreedyFuzz:
    @given(random_tree_with_proposals(), st.integers(0, 1000))
    @settings(max_examples=60, deadline=None)
    def test_matches_brute_force(self, tree, seed):
        rng = np.random.default_rng(seed)
        lin = linearize(tree)
        logits = rng.normal(size=(len(tree), VOCAB))
        output = TreeDecodeOutput(lin=lin, logits=logits, prefix_len=0)
        greedy_token_of = {
            node: int(np.argmax(output.logits_for_node(node)))
            for node in range(len(tree))
        }
        expected_tokens, expected_nodes = brute_force_greedy(
            tree, greedy_token_of
        )
        result = verify_greedy(output, tree)
        result.validate()
        assert result.accepted_tokens == expected_tokens
        assert result.accepted_nodes == expected_nodes

    @given(random_tree_with_proposals(), st.integers(0, 1000))
    @settings(max_examples=40, deadline=None)
    def test_accepted_path_is_tree_path(self, tree, seed):
        rng = np.random.default_rng(seed)
        lin = linearize(tree)
        logits = rng.normal(size=(len(tree), VOCAB))
        output = TreeDecodeOutput(lin=lin, logits=logits, prefix_len=0)
        result = verify_greedy(output, tree)
        for parent, child in zip(result.accepted_nodes,
                                 result.accepted_nodes[1:]):
            assert tree.nodes[child].parent == parent


class TestStochasticFuzz:
    @given(random_tree_with_proposals(), st.integers(0, 1000))
    @settings(max_examples=60, deadline=None)
    def test_result_always_wellformed(self, tree, seed):
        rng = np.random.default_rng(seed)
        lin = linearize(tree)
        logits = rng.normal(size=(len(tree), VOCAB))
        output = TreeDecodeOutput(lin=lin, logits=logits, prefix_len=0)
        result = verify_stochastic(output, tree, SamplingConfig(), rng)
        result.validate()
        # Accepted path is a genuine root-anchored path.
        for parent, child in zip(result.accepted_nodes,
                                 result.accepted_nodes[1:]):
            assert tree.nodes[child].parent == parent
        # Accepted speculated tokens match the tree's labels.
        for token, node in zip(result.accepted_tokens,
                               result.accepted_nodes[1:]):
            assert tree.nodes[node].token == token

    @given(random_tree_with_proposals(), st.integers(0, 500))
    @settings(max_examples=40, deadline=None)
    def test_never_emits_zero_probability_token(self, tree, seed):
        """Under a top-k-filtered LLM distribution, the bonus token always
        has nonzero filtered probability."""
        rng = np.random.default_rng(seed)
        lin = linearize(tree)
        logits = rng.normal(size=(len(tree), VOCAB))
        output = TreeDecodeOutput(lin=lin, logits=logits, prefix_len=0)
        sampling = SamplingConfig(top_k=4)
        result = verify_stochastic(output, tree, sampling, rng)
        # The bonus token was sampled from (a residual of) the filtered
        # distribution at the last accepted node.
        last = result.accepted_nodes[-1]
        probs = output.distribution_for_node(last, sampling)
        assert probs[result.bonus_token] >= 0  # well-defined
        assert np.isfinite(probs).all()


class TestEngineFuzz:
    @given(
        seed=st.integers(0, 10_000),
        widths=st.lists(st.integers(1, 3), min_size=1, max_size=5),
        prompt_len=st.integers(2, 8),
    )
    @settings(max_examples=15, deadline=None)
    def test_lossless_across_random_configs(self, llm, seed, widths,
                                            prompt_len):
        """Greedy losslessness under arbitrary expansion shapes and
        alignments — the strongest single invariant in the system."""
        from repro.engine.generation import GenerationConfig
        from repro.engine.incremental import IncrementalEngine
        from repro.engine.tree_spec import SpecInferEngine
        from repro.model.coupled import CoupledSSM
        from repro.speculate.expansion import ExpansionConfig
        from repro.speculate.speculator import Speculator

        rng = np.random.default_rng(seed)
        prompt = make_prompt(rng, length=prompt_len)
        config = GenerationConfig(max_new_tokens=10)
        incremental = IncrementalEngine(llm).generate(prompt, config)
        alignment = float(rng.uniform(0.1, 1.0))
        engine = SpecInferEngine(
            llm,
            Speculator(
                [CoupledSSM(llm, alignment=alignment, seed=seed,
                            noise_scale=2.0)],
                ExpansionConfig(tuple(widths)),
            ),
        )
        assert engine.generate(prompt, config).tokens == incremental.tokens
