"""Cross-module integration tests: the full SpecInfer pipeline."""

import numpy as np
import pytest

from repro import (
    CoupledSSM,
    ExpansionConfig,
    GenerationConfig,
    IncrementalEngine,
    SamplingConfig,
    SpecInferEngine,
    Speculator,
    make_sequence_spec_engine,
)
from repro.cluster.cost_model import LatencyModel
from repro.cluster.hardware import single_node_cluster
from repro.cluster.models import paper_model
from repro.cluster.parallel import ParallelPlan
from repro.cluster.simulator import ServingSimulator
from repro.workloads.datasets import make_dataset
from tests.conftest import make_prompt


class TestFullPipelineGreedy:
    def test_three_systems_agree_on_output(self, llm, rng):
        """Incremental, sequence-spec and tree-spec all emit the same
        greedy sequence — the paper's losslessness claim end to end."""
        prompt = make_prompt(rng, length=6)
        config = GenerationConfig(max_new_tokens=20)
        ssm = CoupledSSM(llm, alignment=0.88, seed=5, noise_scale=2.0)
        incremental = IncrementalEngine(llm).generate(prompt, config)
        sequence = make_sequence_spec_engine(
            llm, CoupledSSM(llm, alignment=0.88, seed=5, noise_scale=2.0)
        ).generate(prompt, config)
        tree = SpecInferEngine(
            llm, Speculator([ssm], ExpansionConfig.paper_default())
        ).generate(prompt, config)
        assert incremental.tokens == sequence.tokens == tree.tokens

    def test_step_ordering_tree_fewest(self, llm):
        """LLM steps: tree-spec <= sequence-spec <= incremental, on average
        (the mechanism behind Figures 7 and 9)."""
        rng = np.random.default_rng(1)
        prompts = [make_prompt(rng, length=6) for _ in range(5)]
        config = GenerationConfig(max_new_tokens=24, stop_on_eos=False)

        def steps(engine_builder):
            return float(np.mean([
                engine_builder().generate(p, config).num_llm_steps
                for p in prompts
            ]))

        inc = steps(lambda: IncrementalEngine(llm))
        seq = steps(lambda: make_sequence_spec_engine(
            llm, CoupledSSM(llm, alignment=0.9, seed=5, noise_scale=2.0)
        ))
        tree = steps(lambda: SpecInferEngine(
            llm,
            Speculator(
                [CoupledSSM(llm, alignment=0.9, seed=5, noise_scale=2.0)],
                ExpansionConfig.width_sweep(3, depth=8, expand_step=0),
            ),
        ))
        assert tree <= seq <= inc
        assert tree < inc

    def test_simulated_latency_speedup_in_paper_band(self, llm):
        """End-to-end: algorithm traces + cost model land in 1.2-4x for
        distributed inference at BS=1 (paper: 1.5-2.8x)."""
        rng = np.random.default_rng(2)
        prompts = [make_prompt(rng, length=6) for _ in range(4)]
        config = GenerationConfig(max_new_tokens=24, stop_on_eos=False)
        cluster = single_node_cluster()
        sim = ServingSimulator(
            LatencyModel(paper_model("llama-7b"), ParallelPlan(), cluster),
            LatencyModel(paper_model("llama-68m"), ParallelPlan(), cluster),
        )
        inc_traces = [IncrementalEngine(llm).generate(p, config)
                      for p in prompts]
        engine = SpecInferEngine(
            llm,
            Speculator(
                [CoupledSSM(llm, alignment=0.9, seed=5, noise_scale=2.0)],
                ExpansionConfig.paper_default(),
            ),
        )
        spec_traces = [engine.generate(p, config) for p in prompts]
        inc_latency = sim.replay_many(inc_traces).per_token_seconds
        spec_latency = sim.replay_many(spec_traces).per_token_seconds
        speedup = inc_latency / spec_latency
        assert 1.2 < speedup < 4.0, speedup


class TestFullPipelineStochastic:
    def test_stochastic_output_distribution_preserved(self, llm):
        """Theorem 4.2 end-to-end: the first generated token's empirical
        distribution under tree-spec matches incremental decoding's."""
        rng = np.random.default_rng(3)
        prompt = make_prompt(rng, length=5)
        sampling = SamplingConfig(temperature=1.0)
        n_trials = 400
        vocab = llm.config.vocab_size

        def first_token_freqs(make_result):
            counts = np.zeros(vocab)
            for seed in range(n_trials):
                tokens = make_result(seed)
                counts[tokens[0]] += 1
            return counts / counts.sum()

        inc_engine = IncrementalEngine(llm)
        freq_inc = first_token_freqs(
            lambda seed: inc_engine.generate(
                prompt,
                GenerationConfig(max_new_tokens=1, sampling=sampling,
                                 seed=seed),
            ).tokens
        )
        engine = SpecInferEngine(
            llm,
            Speculator(
                [CoupledSSM(llm, alignment=0.8, seed=5, noise_scale=2.0)],
                ExpansionConfig((3, 1)),
            ),
        )
        freq_tree = first_token_freqs(
            lambda seed: engine.generate(
                prompt,
                GenerationConfig(max_new_tokens=1, sampling=sampling,
                                 seed=seed),
            ).tokens
        )
        # Both are 400-sample estimates of the same distribution.
        from repro.metrics.stats import total_variation_distance

        assert total_variation_distance(freq_inc, freq_tree) < 0.25


class TestWorkloadIntegration:
    def test_datasets_drive_generation(self, llm):
        dataset = make_dataset("Alpaca", vocab_size=llm.config.vocab_size)
        engine = SpecInferEngine(
            llm,
            Speculator(
                [CoupledSSM(llm, alignment=0.9, seed=5, noise_scale=2.0)],
                ExpansionConfig.paper_default(),
            ),
        )
        for prompt in dataset.sample_prompts(3, max_len=10):
            result = engine.generate(
                list(prompt), GenerationConfig(max_new_tokens=8)
            )
            assert result.num_tokens >= 1
