"""Baseline/ratchet behavior: stable fingerprints, apply, stale debt."""

import json

import pytest

from repro.analysis.baseline import (
    apply_baseline,
    fingerprint_findings,
    load_baseline,
    render_baseline,
    write_baseline,
)
from repro.analysis.checks import resolve_checks
from repro.analysis.runner import lint_file, run_paths

BAD = (
    "# lint: scope hot-path\n"
    "import numpy as np\n"
    "def f(xs):\n"
    "    return np.concatenate(xs)\n"
)

BAD_TWICE = (
    "# lint: scope hot-path\n"
    "import numpy as np\n"
    "def f(xs):\n"
    "    a = np.concatenate(xs)\n"
    "    return np.concatenate(xs)\n"
)


def lint(tmp_path, source, name="mod.py", checks=("hot-path-alloc",)):
    path = tmp_path / name
    path.write_text(source)
    return lint_file(str(path), resolve_checks(list(checks)))


class TestFingerprints:
    def test_stable_across_line_drift(self, tmp_path):
        a = lint(tmp_path, BAD, "a.py")
        drifted = BAD.replace("import numpy as np\n",
                              "import numpy as np\n\n\n# a comment\n")
        b = lint(tmp_path, drifted, "b.py")
        fa = fingerprint_findings(a.findings)[0]
        fb = fingerprint_findings(b.findings)[0]
        assert fa.line != fb.line  # the finding really moved
        # Same path string is required for equality; normalize via rename.
        assert fa.fingerprint == fingerprint_findings(
            [type(fb)(**{**fb.__dict__, "path": fa.path,
                         "fingerprint": ""})])[0].fingerprint

    def test_occurrence_index_disambiguates_duplicates(self, tmp_path):
        report = lint(tmp_path, BAD_TWICE)
        stamped = fingerprint_findings(report.findings)
        prints = [f.fingerprint for f in stamped]
        assert len(prints) == 2
        assert len(set(prints)) == 2  # identical message, distinct identity

    def test_fingerprint_ignores_line_numbers(self, tmp_path):
        report = lint(tmp_path, BAD)
        stamped = fingerprint_findings(report.findings)[0]
        import dataclasses
        moved = dataclasses.replace(stamped, line=999, col=42,
                                    fingerprint="")
        assert fingerprint_findings([moved])[0].fingerprint \
            == stamped.fingerprint


class TestApply:
    def test_baselined_findings_do_not_fail(self, tmp_path):
        src = tmp_path / "mod.py"
        src.write_text(BAD)
        result = run_paths([str(src)], check_names=["hot-path-alloc"])
        assert result.exit_code == 1

        baseline_path = tmp_path / "base.json"
        write_baseline(result.unsuppressed, str(baseline_path))
        again = run_paths([str(src)], check_names=["hot-path-alloc"],
                          baseline_path=str(baseline_path))
        assert again.exit_code == 0
        assert len(again.baselined) == 1
        assert again.new_findings == []

    def test_new_finding_still_fails(self, tmp_path):
        src = tmp_path / "mod.py"
        src.write_text(BAD)
        result = run_paths([str(src)], check_names=["hot-path-alloc"])
        baseline_path = tmp_path / "base.json"
        write_baseline(result.unsuppressed, str(baseline_path))

        src.write_text(BAD_TWICE)  # one accepted finding + one new
        again = run_paths([str(src)], check_names=["hot-path-alloc"],
                          baseline_path=str(baseline_path))
        assert again.exit_code == 1
        assert len(again.new_findings) == 1

    def test_fixed_finding_leaves_stale_debt(self, tmp_path):
        src = tmp_path / "mod.py"
        src.write_text(BAD)
        result = run_paths([str(src)], check_names=["hot-path-alloc"])
        baseline_path = tmp_path / "base.json"
        write_baseline(result.unsuppressed, str(baseline_path))

        src.write_text("# lint: scope hot-path\n"
                       "import numpy as np\n"
                       "def f(xs, buf):\n"
                       "    return np.concatenate(xs, out=buf)\n")
        again = run_paths([str(src)], check_names=["hot-path-alloc"],
                          baseline_path=str(baseline_path))
        assert again.exit_code == 0  # stale debt warns, never fails lint
        assert len(again.baseline.stale_entries) == 1

    def test_suppressed_findings_never_consume_entries(self, tmp_path):
        src = tmp_path / "mod.py"
        src.write_text(BAD)
        result = run_paths([str(src)], check_names=["hot-path-alloc"])
        baseline_path = tmp_path / "base.json"
        write_baseline(result.unsuppressed, str(baseline_path))

        src.write_text(BAD.replace(
            "    return np.concatenate(xs)",
            "    return np.concatenate(xs)"
            "  # lint: allow-alloc cold setup",
        ))
        again = run_paths([str(src)], check_names=["hot-path-alloc"],
                          baseline_path=str(baseline_path))
        assert again.exit_code == 0
        assert len(again.suppressed) == 1
        # The suppression, not the baseline, absorbed it: entry is stale.
        assert len(again.baseline.stale_entries) == 1

    def test_malformed_baseline_raises(self, tmp_path):
        bad = tmp_path / "base.json"
        bad.write_text(json.dumps({"version": 99, "entries": []}))
        with pytest.raises(ValueError, match="version"):
            load_baseline(str(bad))


class TestRender:
    def test_round_trip(self, tmp_path):
        report = lint(tmp_path, BAD_TWICE)
        stamped = fingerprint_findings(report.findings)
        path = tmp_path / "base.json"
        path.write_text(render_baseline(stamped))
        loaded = load_baseline(str(path))
        assert len(loaded.entries) == 2
        assert {e.fingerprint for e in loaded.entries} \
            == {f.fingerprint for f in stamped}

    def test_suppressed_findings_excluded(self, tmp_path):
        report = lint(tmp_path, BAD.replace(
            "    return np.concatenate(xs)",
            "    return np.concatenate(xs)  # lint: allow-alloc setup",
        ))
        assert report.findings and report.findings[0].suppressed
        rendered = json.loads(render_baseline(
            fingerprint_findings(report.findings)
        ))
        assert rendered["count"] == 0
