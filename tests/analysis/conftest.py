"""Shared helpers for the static-analysis test suite."""

from pathlib import Path

import pytest

from repro.analysis.checks import resolve_checks
from repro.analysis.runner import lint_file

FIXTURES = Path(__file__).parent / "fixtures"
REPO_ROOT = Path(__file__).resolve().parents[2]


@pytest.fixture()
def lint_snippet(tmp_path):
    """Lint an inline source snippet; returns the FileReport."""

    def _lint(source: str, name: str = "snippet.py", checks=None):
        path = tmp_path / name
        path.write_text(source)
        return lint_file(str(path), resolve_checks(checks))

    return _lint


def lint_fixture(name: str, checks=None):
    """Lint one file from the fixture corpus."""
    return lint_file(str(FIXTURES / name), resolve_checks(checks))
