"""Each check catches its seeded violations and passes the clean corpus."""

import pytest

from tests.analysis.conftest import lint_fixture


def names(report):
    return [f.check for f in report.unsuppressed]


class TestDtypeDrift:
    def test_catches_all_seeded_violations(self):
        report = lint_fixture("bad_dtype.py", checks=["dtype-drift"])
        assert len(report.unsuppressed) == 5
        assert set(names(report)) == {"dtype-drift"}

    def test_flags_implicit_default_dtype(self):
        report = lint_fixture("bad_dtype.py", checks=["dtype-drift"])
        messages = [f.message for f in report.unsuppressed]
        assert any("without an explicit dtype" in m for m in messages)
        assert any("astype(float64)" in m for m in messages)
        assert any("dtype=float64" in m for m in messages)

    def test_requires_model_or_engine_scope(self, lint_snippet):
        # Same code, no scope pragma and a neutral path: out of scope.
        report = lint_snippet("import numpy as np\nx = np.zeros(3)\n",
                              checks=["dtype-drift"])
        assert report.findings == []

    def test_scope_pragma_opts_in(self, lint_snippet):
        report = lint_snippet(
            "# lint: scope engine\nimport numpy as np\nx = np.zeros(3)\n",
            checks=["dtype-drift"],
        )
        assert names(report) == ["dtype-drift"]

    def test_explicit_dtype_is_clean(self, lint_snippet):
        report = lint_snippet(
            "# lint: scope model\nimport numpy as np\n"
            "x = np.zeros(3, dtype=np.float32)\n",
            checks=["dtype-drift"],
        )
        assert report.findings == []


class TestHotPathAlloc:
    def test_catches_all_seeded_violations(self):
        report = lint_fixture("bad_alloc.py", checks=["hot-path-alloc"])
        assert len(report.unsuppressed) == 4
        assert set(names(report)) == {"hot-path-alloc"}

    def test_hot_path_decorator_marks_cold_files(self):
        report = lint_fixture("bad_alloc_decorated.py",
                              checks=["hot-path-alloc"])
        # Only the @hot_path function body is flagged, not the cold helper.
        assert len(report.unsuppressed) == 1
        assert report.unsuppressed[0].message.startswith("np.stack()")

    def test_cold_file_not_flagged(self, lint_snippet):
        report = lint_snippet(
            "import numpy as np\ndef f(xs):\n    return np.concatenate(xs)\n",
            checks=["hot-path-alloc"],
        )
        assert report.findings == []

    def test_out_kwarg_is_clean(self, lint_snippet):
        """Writing into an explicit out= (scratch-arena) buffer allocates
        nothing and must not be flagged."""
        report = lint_snippet(
            "# lint: scope hot-path\nimport numpy as np\n"
            "def f(xs, buf):\n    return np.concatenate(xs, out=buf)\n",
            checks=["hot-path-alloc"],
        )
        assert report.findings == []

    def test_comprehension_alloc_gets_sharper_message(self):
        report = lint_fixture("bad_alloc.py", checks=["hot-path-alloc"])
        comp = [f for f in report.unsuppressed
                if "inside a comprehension" in f.message]
        assert len(comp) == 1
        assert "per item" in comp[0].message

    def test_comprehension_with_out_still_clean(self, lint_snippet):
        report = lint_snippet(
            "# lint: scope hot-path\nimport numpy as np\n"
            "def f(xs, arena):\n"
            "    return [np.concatenate(x, out=arena.take('t', (4,), float))\n"
            "            for x in xs]\n",
            checks=["hot-path-alloc"],
        )
        assert report.findings == []


class TestRngDiscipline:
    def test_catches_all_seeded_violations(self):
        report = lint_fixture("bad_rng.py", checks=["rng-discipline"])
        assert len(report.unsuppressed) == 5
        assert set(names(report)) == {"rng-discipline"}

    def test_flags_legacy_stdlib_and_unseeded(self):
        report = lint_fixture("bad_rng.py", checks=["rng-discipline"])
        messages = " ".join(f.message for f in report.unsuppressed)
        assert "np.random.seed" in messages
        assert "np.random.rand" in messages
        assert "stdlib random.random" in messages
        assert "without a seed" in messages

    def test_generator_api_is_clean(self, lint_snippet):
        report = lint_snippet(
            "import numpy as np\n"
            "rng = np.random.default_rng(7)\n"
            "x = rng.integers(0, 10)\n",
            checks=["rng-discipline"],
        )
        assert report.findings == []

    def test_runs_without_scope(self, lint_snippet):
        # Repo-wide check: no pragma needed anywhere.
        report = lint_snippet("import numpy as np\nnp.random.seed(1)\n",
                              checks=["rng-discipline"])
        assert names(report) == ["rng-discipline"]


class TestMaskContract:
    def test_catches_all_seeded_violations(self):
        report = lint_fixture("bad_mask.py", checks=["mask-contract"])
        assert set(names(report)) == {"mask-contract"}
        messages = " ".join(f.message for f in report.unsuppressed)
        assert "looks like mask" in messages          # swapped slots
        assert "no parameter(s) kv_cache" in messages  # unknown keyword
        assert "required arguments" in messages        # arity
        assert "without dtype=" in messages            # constructor dtype

    def test_swapped_args_flagged_by_name(self, lint_snippet):
        report = lint_snippet(
            "def f(m, tokens, positions, mask, cache):\n"
            "    return m.forward_masked(tokens, mask, positions, cache)\n",
            checks=["mask-contract"],
        )
        assert len(report.unsuppressed) == 2

    def test_faithful_calls_are_clean(self):
        report = lint_fixture("good_clean.py")
        assert report.findings == []

    def test_neutral_names_are_not_guessed(self, lint_snippet):
        # `seq` is a token-ish name; `a`/`b` say nothing: no finding.
        report = lint_snippet(
            "def f(m, seq, a, b, cache):\n"
            "    return m.forward_masked(seq, a, b, cache)\n",
            checks=["mask-contract"],
        )
        assert report.findings == []


class TestGoodCorpus:
    def test_clean_fixture_passes_every_check(self):
        report = lint_fixture("good_clean.py")
        assert report.findings == []
        assert report.error == ""


class TestWallClock:
    def test_catches_all_seeded_violations(self):
        report = lint_fixture("bad_wall_clock.py", checks=["wall-clock"])
        assert len(report.unsuppressed) == 7
        assert set(names(report)) == {"wall-clock"}
        messages = [f.message for f in report.unsuppressed]
        assert any("time.time()" in m and "hot path" in m for m in messages)
        assert any("time.time_ns()" in m and "instrumented span" in m
                   for m in messages)
        assert any(m.startswith("now()") for m in messages)

    def test_catches_hand_rolled_timers(self):
        report = lint_fixture("bad_wall_clock.py", checks=["wall-clock"])
        messages = [f.message for f in report.unsuppressed]
        perf = [m for m in messages if "time.perf_counter()" in m]
        assert len(perf) == 2
        assert all("hand-rolls a timer" in m for m in perf)
        assert any("time.monotonic()" in m and "hand-rolls a timer" in m
                   for m in messages)
        assert any("datetime.now()" in m for m in messages)

    def test_cold_code_outside_spans_is_clean(self, lint_snippet):
        report = lint_snippet(
            "import time\n"
            "def stamp():\n"
            "    return time.time()\n",
            checks=["wall-clock"],
        )
        assert report.findings == []

    def test_hot_scope_pragma_opts_in(self, lint_snippet):
        report = lint_snippet(
            "# lint: scope hot-path\n"
            "import time\n"
            "def stamp():\n"
            "    return time.time()\n",
            checks=["wall-clock"],
        )
        assert names(report) == ["wall-clock"]

    def test_perf_counter_is_flagged_in_spans(self, lint_snippet):
        # The span already measures host_seconds: a hand-rolled timer
        # inside it is redundant at best, divergent at worst.
        report = lint_snippet(
            "import time\n"
            "def phase(tracer):\n"
            "    with tracer.span('repro.engine.tick'):\n"
            "        return time.perf_counter()\n",
            checks=["wall-clock"],
        )
        assert names(report) == ["wall-clock"]
        assert "hand-rolls a timer" in report.unsuppressed[0].message

    def test_perf_counter_is_clean_in_cold_code(self, lint_snippet):
        report = lint_snippet(
            "import time\n"
            "def stamp():\n"
            "    return time.perf_counter()\n",
            checks=["wall-clock"],
        )
        assert report.findings == []

    def test_suppression_is_honored(self, lint_snippet):
        report = lint_snippet(
            "# lint: scope hot-path\n"
            "import time\n"
            "def stamp():\n"
            "    return time.time()  # lint: allow-wall-clock batch stamp\n",
            checks=["wall-clock"],
        )
        assert report.findings != []
        assert report.unsuppressed == []


class TestTransitiveHotPath:
    """Interprocedural reachability: @hot_path taints callees."""

    def test_alloc_two_levels_below_hot_root_is_caught(self):
        report = lint_fixture("bad_transitive_alloc.py",
                              checks=["hot-path-alloc"])
        assert len(report.unsuppressed) == 1
        finding = report.unsuppressed[0]
        assert finding.message.startswith("np.concatenate()")
        assert finding.evidence == (
            "Pipeline.tick", "Pipeline._speculate", "Pipeline._fit_tree"
        )

    def test_cold_chain_is_not_flagged(self):
        # _cold_fit allocates too, but is only reachable from a cold root.
        report = lint_fixture("bad_transitive_alloc.py",
                              checks=["hot-path-alloc"])
        assert all("vstack" not in f.message for f in report.unsuppressed)

    def test_wall_clock_propagates_through_helpers(self, lint_snippet):
        report = lint_snippet(
            "import time\n"
            "from repro.analysis.sanitizer import hot_path\n"
            "@hot_path\n"
            "def tick():\n"
            "    return helper()\n"
            "def helper():\n"
            "    return time.time()\n",
            checks=["wall-clock"],
        )
        assert names(report) == ["wall-clock"]
        assert report.unsuppressed[0].evidence == ("tick", "helper")

    def test_recursive_helpers_terminate(self, lint_snippet):
        report = lint_snippet(
            "import numpy as np\n"
            "from repro.analysis.sanitizer import hot_path\n"
            "@hot_path\n"
            "def tick(xs):\n"
            "    return spin(xs, 3)\n"
            "def spin(xs, n):\n"
            "    if n:\n"
            "        return spin(xs, n - 1)\n"
            "    return np.concatenate(xs)\n",
            checks=["hot-path-alloc"],
        )
        assert names(report) == ["hot-path-alloc"]


class TestTensorContract:
    def test_catches_all_seeded_violations(self):
        report = lint_fixture("bad_contract.py", checks=["tensor-contract"])
        assert len(report.unsuppressed) == 4
        assert set(names(report)) == {"tensor-contract"}

    def test_static_ndim_violation(self):
        report = lint_fixture("bad_contract.py", checks=["tensor-contract"])
        messages = [f.message for f in report.unsuppressed]
        ndim = [m for m in messages if "ndim 1 != declared 2" in m]
        assert len(ndim) == 2  # direct zeros() and the reshape(-1) flow

    def test_static_dtype_violation(self):
        report = lint_fixture("bad_contract.py", checks=["tensor-contract"])
        messages = [f.message for f in report.unsuppressed]
        assert any("dtype float64 != declared intp" in m for m in messages)

    def test_coverage_gap_flagged(self):
        report = lint_fixture("bad_contract.py", checks=["tensor-contract"])
        messages = [f.message for f in report.unsuppressed]
        assert any("score_tokens()" in m and "declares no tensor_contract"
                   in m for m in messages)

    def test_unknown_shapes_stay_silent(self, lint_snippet):
        # Prove-only: a fact the checker can't establish is not a finding.
        report = lint_snippet(
            "from repro.analysis.sanitizer import tensor_contract\n"
            "@tensor_contract(mask={'ndim': 2})\n"
            "def f(mask):\n"
            "    return mask\n"
            "def g(mask):\n"
            "    return f(mask)\n",
            checks=["tensor-contract"],
        )
        assert report.findings == []

    def test_contract_params_seed_facts(self, lint_snippet):
        # The caller's own declared contract is a source of facts.
        report = lint_snippet(
            "# lint: scope model\n"
            "from repro.analysis.sanitizer import tensor_contract\n"
            "@tensor_contract(mask={'ndim': 2})\n"
            "def inner(mask):\n"
            "    return mask\n"
            "@tensor_contract(probs={'ndim': 1})\n"
            "def outer(probs):\n"
            "    return inner(probs)\n",
            checks=["tensor-contract"],
        )
        assert len(report.unsuppressed) == 1
        assert "ndim 1 != declared 2" in report.unsuppressed[0].message


class TestArenaLifetime:
    def test_catches_all_seeded_violations(self):
        report = lint_fixture("bad_arena.py", checks=["arena-lifetime"])
        assert len(report.unsuppressed) == 3
        assert set(names(report)) == {"arena-lifetime"}

    def test_rank_conflict(self):
        report = lint_fixture("bad_arena.py", checks=["arena-lifetime"])
        messages = [f.message for f in report.unsuppressed]
        assert any("taken 2-d here but 1-d" in m for m in messages)

    def test_dtype_split(self):
        report = lint_fixture("bad_arena.py", checks=["arena-lifetime"])
        messages = [f.message for f in report.unsuppressed]
        assert any("float32 here but float64" in m for m in messages)

    def test_live_range_overlap(self):
        report = lint_fixture("bad_arena.py", checks=["arena-lifetime"])
        messages = [f.message for f in report.unsuppressed]
        assert any("invalidates the view 'first'" in m for m in messages)

    def test_disjoint_reuse_is_clean(self):
        report = lint_fixture("bad_arena.py", checks=["arena-lifetime"])
        assert all("ping" not in f.message for f in report.unsuppressed)

    def test_same_tag_different_methods_of_one_class(self, lint_snippet):
        # self._arena names one object across methods: collisions group.
        report = lint_snippet(
            "import numpy as np\n"
            "class Stage:\n"
            "    def a(self, n):\n"
            "        return self._arena.take('t', (n,), np.float64)\n"
            "    def b(self, n):\n"
            "        return self._arena.take('t', (n, n), np.float64)\n",
            checks=["arena-lifetime"],
        )
        assert names(report) == ["arena-lifetime"]

    def test_same_local_name_in_unrelated_functions_is_clean(
            self, lint_snippet):
        # Bare locals named `arena` are different objects per function.
        report = lint_snippet(
            "import numpy as np\n"
            "def a(arena, n):\n"
            "    return arena.take('t', (n,), np.float64)\n"
            "def b(arena, n):\n"
            "    return arena.take('t', (n, n), np.float64)\n",
            checks=["arena-lifetime"],
        )
        assert report.findings == []
