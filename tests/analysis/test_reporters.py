"""Text and JSON reporter output, and runner exit-code semantics."""

import json

from repro.analysis.checks import resolve_checks
from repro.analysis.report import render_json, render_text
from repro.analysis.runner import LintResult, lint_file, run_paths

from tests.analysis.conftest import FIXTURES


def result_for(names):
    result = LintResult(checks=[c.name for c in resolve_checks(None)])
    for name in names:
        result.reports.append(
            lint_file(str(FIXTURES / name), resolve_checks(None))
        )
    return result


class TestTextReporter:
    def test_findings_use_editor_format(self):
        result = result_for(["bad_rng.py"])
        text = render_text(result)
        assert "bad_rng.py:" in text
        assert "[rng-discipline]" in text
        # path:line:col prefix on every finding line
        first = text.splitlines()[0]
        path, line, col, _ = first.split(":", 3)
        assert path.endswith("bad_rng.py")
        assert line.isdigit() and col.isdigit()

    def test_summary_counts_by_check(self):
        result = result_for(["bad_rng.py", "bad_dtype.py"])
        summary = render_text(result).splitlines()[-1]
        assert "2 files scanned" in summary
        assert "rng-discipline: 5" in summary
        assert "dtype-drift: 5" in summary

    def test_clean_run_reports_zero(self):
        result = result_for(["good_clean.py"])
        text = render_text(result)
        assert "0 findings" in text

    def test_suppressed_section_opt_in(self, tmp_path):
        path = tmp_path / "s.py"
        path.write_text("# lint: scope model\nimport numpy as np\n"
                        "x = np.zeros(3)  # lint: allow-dtype fixture\n")
        result = LintResult(checks=["dtype-drift"])
        result.reports.append(
            lint_file(str(path), resolve_checks(["dtype-drift"]))
        )
        assert "fixture" not in render_text(result)
        assert "fixture" in render_text(result, show_suppressed=True)


class TestJsonReporter:
    def test_payload_shape(self):
        result = result_for(["bad_mask.py"])
        payload = json.loads(render_json(result))
        assert payload["files_scanned"] == 1
        assert payload["counts"]["findings"] == len(result.unsuppressed)
        assert payload["exit_code"] == 1
        finding = payload["findings"][0]
        assert set(finding) == {"check", "path", "line", "col", "message",
                                "context", "evidence", "fingerprint",
                                "baselined", "suppressed",
                                "suppression_reason"}

    def test_clean_payload_exit_zero(self):
        result = result_for(["good_clean.py"])
        payload = json.loads(render_json(result))
        assert payload["counts"]["findings"] == 0
        assert payload["exit_code"] == 0


class TestRunner:
    def test_unreadable_file_is_an_error(self, tmp_path):
        bad = tmp_path / "broken.py"
        bad.write_text("def broken(:\n")
        result = run_paths([str(bad)])
        assert result.errors and result.exit_code == 2

    def test_unknown_check_raises(self):
        try:
            run_paths([str(FIXTURES)], check_names=["no-such-check"])
        except ValueError as exc:
            assert "unknown check" in str(exc)
        else:
            raise AssertionError("expected ValueError")

    def test_directory_discovery_finds_corpus(self):
        result = run_paths([str(FIXTURES)])
        assert result.files_scanned >= 6
        assert result.exit_code == 1
