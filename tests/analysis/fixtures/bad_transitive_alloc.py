"""Seeded regression: an allocation two call levels below a hot root.

Mirrors the shape of ``DecodePipeline.tick`` → ``_fit_tree`` →
``np.concatenate``: only the root carries ``@hot_path``, so a file-local
checker sees nothing — the finding requires transitive reachability over
the call graph, and its evidence must name the chain.
"""

import numpy as np

from repro.analysis.sanitizer import hot_path


class Pipeline:
    @hot_path
    def tick(self, batch):
        return self._speculate(batch)

    def _speculate(self, batch):
        # One level down: still hot by reachability.
        return self._fit_tree(batch)

    def _fit_tree(self, batch):
        # Two levels down: the seeded regression.
        return np.concatenate(batch)  # finding: transitive hot-path alloc


def cold_entry(batch):
    # Same helper reached only from a cold root: not flagged.
    return _cold_fit(batch)


def _cold_fit(batch):
    return np.vstack(batch)
