"""Seeded ScratchArena tag collisions: rank conflict, dtype split, overlap."""

import numpy as np

from repro.model.scratch import ScratchArena


def rank_conflict(arena: ScratchArena, n: int):
    flat = arena.take("qkv", (n,), np.float64)
    flat[:] = 0.0
    # finding: same (tag, dtype) key re-taken at a different rank
    return arena.take("qkv", (n, n), np.float64)


def dtype_split(arena: ScratchArena, n: int):
    scores = arena.take("scores", (n,), np.float64)
    # finding: same tag taken under a second dtype (distinct buffer, same name)
    halves = arena.take("scores", (n,), np.float32)
    return scores, halves


def live_range_overlap(arena: ScratchArena, n: int):
    first = arena.take("stage", (n,), np.float64)
    first[:] = 1.0
    # finding: re-take of the live key below invalidates `first`
    second = arena.take("stage", (n,), np.float64)
    second[:] = 2.0
    return first.sum() + second.sum()


def disjoint_reuse_is_clean(arena: ScratchArena, n: int):
    # Re-taking after the previous view's last use is the intended pattern.
    staged = arena.take("ping", (n,), np.float64)
    total = float(staged.sum())
    staged2 = arena.take("ping", (n,), np.float64)
    return total + float(staged2.sum())
