# lint: scope hot-path
"""Seeded ``hot-path-alloc`` violations (linter test corpus; never imported)."""

import numpy as np


def staging_concat(chunks):
    return np.concatenate(chunks)


def staging_stack(rows):
    return np.vstack(rows)


def defensive_copy(x):
    return x.copy()


def staged_into_scratch(chunks, arena):
    # Clean: writes into an arena-backed out= destination, allocates nothing.
    return np.concatenate(chunks, out=arena.take("kv", (8, 4), np.float64))


def per_slot_copies(batches):
    # Flagged with the comprehension-specific message (alloc per item).
    return [np.concatenate(b) for b in batches]
