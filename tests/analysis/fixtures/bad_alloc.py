# lint: scope hot-path
"""Seeded ``hot-path-alloc`` violations (linter test corpus; never imported)."""

import numpy as np


def staging_concat(chunks):
    return np.concatenate(chunks)


def staging_stack(rows):
    return np.vstack(rows)


def defensive_copy(x):
    return x.copy()
