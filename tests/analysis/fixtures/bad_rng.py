"""Seeded ``rng-discipline`` violations (linter test corpus; never imported)."""

import random

import numpy as np


def legacy_global_draws():
    np.random.seed(0)
    values = np.random.rand(4)
    pick = np.random.choice(values)
    return values, pick


def stdlib_global_draw():
    return random.random()


def unseeded_generator():
    return np.random.default_rng()
