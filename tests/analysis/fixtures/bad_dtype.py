# lint: scope model
"""Seeded ``dtype-drift`` violations (linter test corpus; never imported)."""

import numpy as np


def implicit_default_dtype(n):
    return np.zeros(n)


def implicit_array_dtype(values):
    return np.array(values)


def hardcoded_astype(x):
    return x.astype(np.float64)


def hardcoded_dtype_kwarg(n):
    return np.empty(n, dtype="float64")


def builtin_float_dtype(n):
    return np.ones(n, dtype=float)
