"""``@hot_path`` function in a *cold* file: body is still checked."""

import numpy as np

from repro.analysis.sanitizer import hot_path


@hot_path
def decode_step(xs):
    return np.stack(xs)


def cold_helper(xs):
    # Outside any hot function and the file is not hot: not flagged.
    return np.concatenate(xs)
