# lint: scope model hot-path
"""Clean counterpart for every check (linter test corpus; never imported)."""

import numpy as np

from repro.analysis.sanitizer import tensor_contract


def explicit_dtype_alloc(n, dtype):
    return np.zeros(n, dtype=dtype)


@tensor_contract(values={"ndim": 1})
def explicit_index_alloc(values):
    return np.array(values, dtype=np.intp)


def threaded_generator(rng: np.random.Generator) -> float:
    return float(rng.uniform())


def seeded_generator(seed: int) -> np.random.Generator:
    return np.random.default_rng(seed)


@tensor_contract(tokens={"ndim": 1}, positions={"ndim": 1}, mask={"ndim": 2})
def faithful_call(model, tokens, positions, mask, cache):
    return model.forward_masked(tokens, positions, mask, cache)


@tensor_contract(tokens={"ndim": 1}, positions={"ndim": 1}, mask={"ndim": 2})
def keyword_call(model, tokens, positions, mask, cache):
    return model.forward_masked(tokens=tokens, positions=positions,
                                mask=mask, cache=cache)


def in_place_update(buffer, rows):
    buffer[: len(rows)] = rows
    return buffer
