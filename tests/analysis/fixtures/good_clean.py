# lint: scope model hot-path
"""Clean counterpart for every check (linter test corpus; never imported)."""

import numpy as np


def explicit_dtype_alloc(n, dtype):
    return np.zeros(n, dtype=dtype)


def explicit_index_alloc(values):
    return np.array(values, dtype=np.intp)


def threaded_generator(rng: np.random.Generator) -> float:
    return float(rng.uniform())


def seeded_generator(seed: int) -> np.random.Generator:
    return np.random.default_rng(seed)


def faithful_call(model, tokens, positions, mask, cache):
    return model.forward_masked(tokens, positions, mask, cache)


def keyword_call(model, tokens, positions, mask, cache):
    return model.forward_masked(tokens=tokens, positions=positions,
                                mask=mask, cache=cache)


def in_place_update(buffer, rows):
    buffer[: len(rows)] = rows
    return buffer
