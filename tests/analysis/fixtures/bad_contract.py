# lint: scope model
"""Seeded tensor-contract violations: static mismatches plus a coverage gap."""

import numpy as np

from repro.analysis.sanitizer import tensor_contract


@tensor_contract(mask={"ndim": 2}, positions={"ndim": 1, "dtype": "intp"})
def forward_masked(tokens, positions, mask):
    return tokens, positions, mask


def build_and_call():
    mask = np.zeros(16, dtype=np.float64)  # 1-d, contract wants 2-d
    positions = np.zeros(4, dtype=np.float64)  # contract wants intp
    tokens = np.zeros(4, dtype=np.intp)
    # findings: mask ndim violation, positions dtype violation
    return forward_masked(tokens, positions, mask)


def reshaped_call():
    mask = np.zeros((4, 4), dtype=np.float64)
    flat = mask.reshape(-1)  # rank drops to 1
    tokens = np.zeros(4, dtype=np.intp)
    positions = np.arange(4)
    # finding: flat is provably 1-d where the contract wants 2-d
    return forward_masked(tokens, positions, flat)


def score_tokens(tokens: np.ndarray, logits: np.ndarray):
    # finding: public tensor function in model scope with no contract
    return logits[tokens]
