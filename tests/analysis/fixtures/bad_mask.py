"""Seeded ``mask-contract`` violations (linter test corpus; never imported)."""

from repro.model.attention import cross_mask


def swapped_positions_and_mask(model, tokens, positions, mask, cache):
    return model.forward_masked(tokens, mask, positions, cache)


def unknown_keyword(model, tokens, positions, mask, cache):
    return model.forward_masked(tokens, positions, mask, kv_cache=cache)


def missing_arguments(model, tokens, mask, cache):
    return model.forward_masked(tokens, mask)


def mask_without_dtype(n, prior):
    return cross_mask(n, prior + n, prior)
