"""Wall-clock and hand-rolled-timer reads on the hot path and in spans."""

import time
from datetime import datetime
from time import time as now

from repro.analysis.sanitizer import hot_path
from repro.obs import TRACER


@hot_path
def decode_step(xs):
    start = time.time()  # finding: wall clock in a @hot_path function
    return xs, start


def traced_phase(tracer):
    with tracer.span("repro.engine.speculate"):
        stamp = time.time_ns()  # finding: wall clock inside a span
    with TRACER.span("repro.engine.commit", batch=1):
        started = now()  # finding: from-imported wall clock inside a span
    return stamp, started


@hot_path
def timed_step(xs):
    t0 = time.perf_counter()  # finding: hand-rolled timer in a @hot_path function
    ys = list(xs)
    return ys, time.perf_counter() - t0  # finding: second perf_counter read


def monotonic_phase(tracer):
    with tracer.span("repro.engine.verify"):
        t0 = time.monotonic()  # finding: hand-rolled timer inside a span
        stamped = datetime.now()  # finding: datetime wall clock inside a span
    return t0, stamped


def cold_helper():
    # Cold code outside any span: wall clock is fine here.
    return time.time()


def cold_timer():
    # Cold code: hand-rolled timers outside hot paths/spans are fine.
    t0 = time.perf_counter()
    return time.perf_counter() - t0
