"""Wall-clock reads on the hot path and inside instrumented spans."""

import time
from time import time as now

from repro.analysis.sanitizer import hot_path
from repro.obs import TRACER


@hot_path
def decode_step(xs):
    start = time.time()  # finding: wall clock in a @hot_path function
    return xs, start


def traced_phase(tracer):
    with tracer.span("repro.engine.speculate"):
        stamp = time.time_ns()  # finding: wall clock inside a span
    with TRACER.span("repro.engine.commit", batch=1):
        started = now()  # finding: from-imported wall clock inside a span
    return stamp, started


def cold_helper():
    # Cold code outside any span: wall clock is fine here.
    return time.time()
