"""Runtime tensor sanitizer: armed guards fire, disarmed guards are free.

Run just this tier with ``-m sanitizer``.
"""

import numpy as np
import pytest

from repro.analysis import sanitizer
from repro.analysis.sanitizer import (
    SanitizerError,
    guard_disjoint_ranges,
    guard_finite,
    guard_simplex,
    sanitized,
    tensor_contract,
)
from repro.model.arena import ArenaKVCache, BatchArena
from repro.model.config import ModelConfig
from repro.model.transformer import TransformerLM

pytestmark = pytest.mark.sanitizer

CONFIG = ModelConfig(vocab_size=32, d_model=16, n_layers=2, n_heads=2,
                     max_seq_len=32, name="sanitizer-lm")


@pytest.fixture(autouse=True)
def restore_flag():
    yield
    sanitizer.reset()


class TestGating:
    def test_disabled_by_default(self, monkeypatch):
        monkeypatch.delenv(sanitizer.ENV_FLAG, raising=False)
        sanitizer.reset()
        assert not sanitizer.enabled()
        guard_finite("x", np.array([np.nan]))  # no raise

    def test_env_flag_arms_guards(self, monkeypatch):
        monkeypatch.setenv(sanitizer.ENV_FLAG, "1")
        sanitizer.reset()
        assert sanitizer.enabled()
        with pytest.raises(SanitizerError):
            guard_finite("x", np.array([np.nan]))

    def test_context_manager_restores(self):
        with sanitized():
            assert sanitizer.enabled()
        assert not sanitizer.enabled()


class TestGuards:
    def test_nan_logit_guard_fires_end_to_end(self):
        # The required injection test: poison one lm_head weight with NaN
        # and assert the decode-path guard catches it at the source.
        model = TransformerLM(CONFIG, seed=3)
        model.params["lm_head"][0, 0] = np.nan
        cache = model.new_cache()
        with sanitized(), pytest.raises(SanitizerError, match="non-finite"):
            model.decode(1, cache)

    def test_clean_model_passes_armed(self):
        model = TransformerLM(CONFIG, seed=3)
        cache = model.new_cache()
        with sanitized():
            logits = model.decode(1, cache)
        assert np.all(np.isfinite(logits))

    def test_overlapping_arena_range_fires(self):
        # The required overlap test: a second cache claiming rows inside a
        # live request's range must be rejected.
        arena = BatchArena(CONFIG, max_requests=2)
        first = arena.new_sequence(16)
        start, _ = first.row_range
        with sanitized(), pytest.raises(SanitizerError, match="overlaps"):
            ArenaKVCache(arena, start + 4, start + 12)

    def test_released_range_can_be_reused(self):
        arena = BatchArena(CONFIG, max_requests=2)
        with sanitized():
            first = arena.new_sequence(16)
            first.free()
            second = arena.new_sequence(16)  # same rows, no overlap error
        assert second.row_range == first.row_range

    def test_simplex_guard(self):
        with sanitized():
            guard_simplex("p", np.array([0.5, 0.5]))
            with pytest.raises(SanitizerError, match="sum to"):
                guard_simplex("p", np.array([0.5, 0.9]))
            with pytest.raises(SanitizerError, match="negative"):
                guard_simplex("p", np.array([1.5, -0.5]))

    def test_simplex_guard_in_stochastic_verifier(self, llm, ssm, rng):
        # A corrupted SSM proposal is caught by the verifier's guard.
        from repro.model.sampling import SamplingConfig
        from repro.speculate.expansion import ExpansionConfig
        from repro.speculate.speculator import Speculator
        from repro.verify.decode import tree_parallel_decode

        speculator = Speculator([ssm], ExpansionConfig((2, 1)))
        prompt = rng.integers(1, 64, size=6)
        speculator.prefill(prompt[:-1])
        tree = speculator.speculate(int(prompt[-1]), stochastic=True,
                                    rng=np.random.default_rng(5))
        for node in tree.nodes:
            for ssm_id in node.proposals:
                node.proposals[ssm_id] = node.proposals[ssm_id] * 3.0
        cache = llm.new_cache()
        llm.prefill(prompt[:-1], cache)
        output = tree_parallel_decode(llm, cache, tree)
        from repro.verify.stochastic import verify_stochastic

        with sanitized(), pytest.raises(SanitizerError, match="ssm_probs"):
            verify_stochastic(output, tree, SamplingConfig(temperature=1.0),
                              np.random.default_rng(0))

    def test_range_guard_rejects_inverted(self):
        with sanitized(), pytest.raises(SanitizerError, match="inverted"):
            guard_disjoint_ranges("arena", [], (5, 5))


class TestTensorContract:
    def test_contract_checks_when_armed(self):
        @tensor_contract(x={"ndim": 2, "dtype": np.float32})
        def f(x):
            return x

        good = np.zeros((2, 2), dtype=np.float32)
        with sanitized():
            assert f(good) is good
            with pytest.raises(SanitizerError, match="ndim"):
                f(np.zeros(3, dtype=np.float32))
            with pytest.raises(SanitizerError, match="dtype"):
                f(np.zeros((2, 2), dtype=np.float64))

    def test_contract_free_when_disarmed(self):
        @tensor_contract(x={"ndim": 2})
        def f(x):
            return x

        assert f(np.zeros(3)) is not None  # wrong ndim, but disarmed

    def test_shape_spec_with_wildcards(self):
        @tensor_contract(x={"shape": (None, 4)})
        def f(x):
            return x

        with sanitized():
            f(np.zeros((7, 4)))
            with pytest.raises(SanitizerError, match="shape"):
                f(np.zeros((7, 5)))

    def test_unknown_parameter_rejected_at_decoration(self):
        with pytest.raises(TypeError, match="no parameter"):
            @tensor_contract(missing={"ndim": 1})
            def f(x):
                return x

    def test_forward_masked_contract_rejects_bad_mask(self, llm):
        cache = llm.new_cache()
        with sanitized(), pytest.raises(SanitizerError, match="ndim"):
            llm.forward_masked(
                np.array([1], dtype=np.intp),
                np.array([0], dtype=np.intp),
                np.zeros(1, dtype=llm.config.dtype),  # 1-D mask
                cache,
            )
