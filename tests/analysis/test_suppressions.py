"""Suppression comments: ``# lint: allow-<tag>`` and ``# lint: ignore``."""

from repro.analysis.runner import run_paths

SNIPPET = ("# lint: scope model\n"
           "import numpy as np\n"
           "x = np.zeros(3)%s\n")


class TestSuppressions:
    def test_trailing_allow_suppresses(self, lint_snippet):
        report = lint_snippet(
            SNIPPET % "  # lint: allow-dtype accumulator wants float64",
            checks=["dtype-drift"],
        )
        assert report.unsuppressed == []
        (finding,) = report.findings
        assert finding.suppressed
        assert finding.suppression_reason == "accumulator wants float64"

    def test_standalone_comment_covers_next_line(self, lint_snippet):
        report = lint_snippet(
            "# lint: scope model\n"
            "import numpy as np\n"
            "# lint: allow-dtype staged buffer\n"
            "x = np.zeros(3)\n",
            checks=["dtype-drift"],
        )
        assert report.unsuppressed == []
        assert report.findings[0].suppressed

    def test_standalone_comment_does_not_leak_further(self, lint_snippet):
        report = lint_snippet(
            "# lint: scope model\n"
            "import numpy as np\n"
            "# lint: allow-dtype only the next line\n"
            "x = np.zeros(3)\n"
            "y = np.zeros(4)\n",
            checks=["dtype-drift"],
        )
        assert len(report.unsuppressed) == 1
        assert report.unsuppressed[0].line == 5

    def test_wrong_tag_does_not_suppress(self, lint_snippet):
        report = lint_snippet(
            SNIPPET % "  # lint: allow-alloc wrong tag",
            checks=["dtype-drift"],
        )
        assert len(report.unsuppressed) == 1

    def test_ignore_suppresses_every_check(self, lint_snippet):
        report = lint_snippet(
            "# lint: scope model hot-path\n"
            "import numpy as np\n"
            "x = np.concatenate([np.zeros(3)])  # lint: ignore fixture\n",
        )
        assert report.unsuppressed == []
        assert len(report.findings) >= 2  # dtype-drift + hot-path-alloc
        assert all(f.suppressed for f in report.findings)

    def test_reason_defaults_to_empty(self, lint_snippet):
        report = lint_snippet(SNIPPET % "  # lint: allow-dtype",
                              checks=["dtype-drift"])
        assert report.findings[0].suppressed
        assert report.findings[0].suppression_reason == ""


class TestStaleSuppressionAudit:
    """Dead pragmas are reported (warning tier: never the exit code)."""

    def audit(self, tmp_path, source):
        path = tmp_path / "mod.py"
        path.write_text(source)
        return run_paths([str(path)])

    def test_dead_pragma_is_reported(self, tmp_path):
        result = self.audit(
            tmp_path,
            "# lint: scope model\n"
            "import numpy as np\n"
            "x = np.zeros(3, dtype=np.float32)  # lint: allow-dtype stale\n",
        )
        assert result.exit_code == 0  # warning tier
        assert len(result.stale_suppressions) == 1
        stale = result.stale_suppressions[0]
        assert stale.tag == "allow-dtype"
        assert stale.reason == "stale"
        assert stale.line == 3

    def test_used_pragma_is_not_reported(self, tmp_path):
        result = self.audit(
            tmp_path,
            "# lint: scope model\n"
            "import numpy as np\n"
            "x = np.zeros(3)  # lint: allow-dtype accumulator\n",
        )
        assert result.stale_suppressions == []

    def test_pragma_text_inside_strings_is_not_a_pragma(self, tmp_path):
        # Docstrings documenting the pragma syntax must not register
        # suppressions (and so can never be reported stale).
        result = self.audit(
            tmp_path,
            '"""Write `# lint: allow-dtype <reason>` to suppress."""\n'
            "MSG = 'annotate with # lint: allow-alloc <reason>'\n",
        )
        assert result.stale_suppressions == []

    def test_audit_skipped_for_partial_check_runs(self, tmp_path):
        # With one check selected, an unrelated pragma is not "dead" —
        # the check that would use it simply didn't run.
        path = tmp_path / "mod.py"
        path.write_text(
            "# lint: scope model hot-path\n"
            "import numpy as np\n"
            "x = np.concatenate([1])  # lint: allow-alloc staging\n"
        )
        result = run_paths([str(path)], check_names=["dtype-drift"])
        assert result.stale_suppressions == []

    def test_dead_ignore_pragma_is_reported(self, tmp_path):
        result = self.audit(
            tmp_path,
            "def f():\n"
            "    return 1  # lint: ignore nothing to ignore\n",
        )
        assert len(result.stale_suppressions) == 1
        assert result.stale_suppressions[0].tag == "ignore"
