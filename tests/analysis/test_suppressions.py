"""Suppression comments: ``# lint: allow-<tag>`` and ``# lint: ignore``."""


SNIPPET = ("# lint: scope model\n"
           "import numpy as np\n"
           "x = np.zeros(3)%s\n")


class TestSuppressions:
    def test_trailing_allow_suppresses(self, lint_snippet):
        report = lint_snippet(
            SNIPPET % "  # lint: allow-dtype accumulator wants float64",
            checks=["dtype-drift"],
        )
        assert report.unsuppressed == []
        (finding,) = report.findings
        assert finding.suppressed
        assert finding.suppression_reason == "accumulator wants float64"

    def test_standalone_comment_covers_next_line(self, lint_snippet):
        report = lint_snippet(
            "# lint: scope model\n"
            "import numpy as np\n"
            "# lint: allow-dtype staged buffer\n"
            "x = np.zeros(3)\n",
            checks=["dtype-drift"],
        )
        assert report.unsuppressed == []
        assert report.findings[0].suppressed

    def test_standalone_comment_does_not_leak_further(self, lint_snippet):
        report = lint_snippet(
            "# lint: scope model\n"
            "import numpy as np\n"
            "# lint: allow-dtype only the next line\n"
            "x = np.zeros(3)\n"
            "y = np.zeros(4)\n",
            checks=["dtype-drift"],
        )
        assert len(report.unsuppressed) == 1
        assert report.unsuppressed[0].line == 5

    def test_wrong_tag_does_not_suppress(self, lint_snippet):
        report = lint_snippet(
            SNIPPET % "  # lint: allow-alloc wrong tag",
            checks=["dtype-drift"],
        )
        assert len(report.unsuppressed) == 1

    def test_ignore_suppresses_every_check(self, lint_snippet):
        report = lint_snippet(
            "# lint: scope model hot-path\n"
            "import numpy as np\n"
            "x = np.concatenate([np.zeros(3)])  # lint: ignore fixture\n",
        )
        assert report.unsuppressed == []
        assert len(report.findings) >= 2  # dtype-drift + hot-path-alloc
        assert all(f.suppressed for f in report.findings)

    def test_reason_defaults_to_empty(self, lint_snippet):
        report = lint_snippet(SNIPPET % "  # lint: allow-dtype",
                              checks=["dtype-drift"])
        assert report.findings[0].suppressed
        assert report.findings[0].suppression_reason == ""
