"""Unit suite for the project call graph and the dataflow framework."""

from pathlib import Path

import pytest

from repro.analysis.callgraph import Project, module_name_for_path
from repro.analysis.core import SourceFile
from repro.analysis.dataflow import TensorFact, propagate_hot_chains


def build_project(tmp_path: Path, files: dict) -> Project:
    sources = []
    for name, text in files.items():
        path = tmp_path / name
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text)
        sources.append(SourceFile(str(path), text))
    return Project(sources)


def edges_of(project: Project, qualname: str):
    return sorted(e.callee for e in project.callgraph.callees(qualname))


class TestModuleNaming:
    def test_repro_package_paths_get_dotted_names(self):
        assert module_name_for_path(
            "/x/src/repro/model/layers.py") == "repro.model.layers"

    def test_other_paths_use_the_stem(self):
        assert module_name_for_path("/tmp/anything/snippet.py") == "snippet"


class TestLocalCalls:
    def test_plain_function_call(self, tmp_path):
        project = build_project(tmp_path, {"m.py": (
            "def a():\n    return b()\n"
            "def b():\n    return 1\n"
        )})
        assert edges_of(project, "m:a") == ["m:b"]

    def test_method_call_through_self(self, tmp_path):
        project = build_project(tmp_path, {"m.py": (
            "class C:\n"
            "    def a(self):\n        return self.b()\n"
            "    def b(self):\n        return 1\n"
        )})
        assert edges_of(project, "m:C.a") == ["m:C.b"]

    def test_method_on_first_party_base_class(self, tmp_path):
        project = build_project(tmp_path, {"m.py": (
            "class Base:\n"
            "    def b(self):\n        return 1\n"
            "class C(Base):\n"
            "    def a(self):\n        return self.b()\n"
        )})
        assert edges_of(project, "m:C.a") == ["m:Base.b"]

    def test_constructor_call_resolves_to_init(self, tmp_path):
        project = build_project(tmp_path, {"m.py": (
            "class C:\n"
            "    def __init__(self):\n        self.x = 1\n"
            "def make():\n    return C()\n"
        )})
        assert edges_of(project, "m:make") == ["m:C.__init__"]

    def test_local_instance_method_call(self, tmp_path):
        project = build_project(tmp_path, {"m.py": (
            "class C:\n"
            "    def run(self):\n        return 1\n"
            "def go():\n"
            "    c = C()\n"
            "    return c.run()\n"
        )})
        assert "m:C.run" in edges_of(project, "m:go")


class TestImports:
    def test_aliased_module_import(self, tmp_path):
        project = build_project(tmp_path, {
            "helper.py": "def h():\n    return 1\n",
            "main.py": "import helper as hp\n"
                       "def a():\n    return hp.h()\n",
        })
        assert edges_of(project, "main:a") == ["helper:h"]

    def test_aliased_symbol_import(self, tmp_path):
        project = build_project(tmp_path, {
            "helper.py": "def h():\n    return 1\n",
            "main.py": "from helper import h as do\n"
                       "def a():\n    return do()\n",
        })
        assert edges_of(project, "main:a") == ["helper:h"]

    def test_reexport_chain_is_followed(self, tmp_path):
        project = build_project(tmp_path, {
            "impl.py": "def h():\n    return 1\n",
            "api.py": "from impl import h\n",
            "main.py": "from api import h\n"
                       "def a():\n    return h()\n",
        })
        assert edges_of(project, "main:a") == ["impl:h"]

    def test_module_level_instance_typing(self, tmp_path):
        project = build_project(tmp_path, {
            "obs.py": "class Tracer:\n"
                      "    def span(self, name):\n        return name\n"
                      "TRACER = Tracer()\n",
            "main.py": "from obs import TRACER\n"
                       "def a():\n    return TRACER.span('x')\n",
        })
        assert edges_of(project, "main:a") == ["obs:Tracer.span"]

    def test_self_attribute_instance_typing(self, tmp_path):
        project = build_project(tmp_path, {"m.py": (
            "class Helper:\n"
            "    def run(self):\n        return 1\n"
            "class Owner:\n"
            "    def __init__(self):\n        self.h = Helper()\n"
            "    def go(self):\n        return self.h.run()\n"
        )})
        assert "m:Helper.run" in edges_of(project, "m:Owner.go")

    def test_third_party_calls_produce_no_edges(self, tmp_path):
        project = build_project(tmp_path, {"m.py": (
            "import numpy as np\n"
            "def a(xs):\n    return np.concatenate(xs)\n"
        )})
        assert edges_of(project, "m:a") == []


class TestReachability:
    def test_shortest_chain_wins(self, tmp_path):
        # Two routes to sink: direct (root → sink) and via mid.
        project = build_project(tmp_path, {"m.py": (
            "def root():\n    mid()\n    sink()\n"
            "def mid():\n    sink()\n"
            "def sink():\n    return 1\n"
        )})
        chains = project.callgraph.reachable_from(["m:root"])
        assert chains["m:sink"] == ("root", "sink")

    def test_recursion_terminates(self, tmp_path):
        project = build_project(tmp_path, {"m.py": (
            "def a():\n    return b()\n"
            "def b():\n    return a()\n"
        )})
        chains = project.callgraph.reachable_from(["m:a"])
        assert chains["m:a"] == ("a",)
        assert chains["m:b"] == ("a", "b")

    def test_mutual_recursion_through_methods(self, tmp_path):
        project = build_project(tmp_path, {"m.py": (
            "class C:\n"
            "    def a(self):\n        return self.b()\n"
            "    def b(self):\n        return self.a()\n"
        )})
        chains = project.callgraph.reachable_from(["m:C.a"])
        assert chains["m:C.b"] == ("C.a", "C.b")

    def test_unreachable_functions_are_absent(self, tmp_path):
        project = build_project(tmp_path, {"m.py": (
            "def root():\n    return 1\n"
            "def island():\n    return 2\n"
        )})
        chains = project.callgraph.reachable_from(["m:root"])
        assert "m:island" not in chains

    def test_propagate_hot_chains_matches_reachability(self, tmp_path):
        project = build_project(tmp_path, {"m.py": (
            "def tick():\n    return fit()\n"
            "def fit():\n    return 1\n"
        )})
        graph = project.callgraph
        chains = propagate_hot_chains(graph, {"m:tick": ("tick",)})
        assert chains["m:fit"] == ("tick", "fit")


class TestDuplicateStems:
    def test_same_stem_in_two_directories_does_not_collide(self, tmp_path):
        project = build_project(tmp_path, {
            "a/util.py": "def f():\n    return 1\n",
            "b/util.py": "def g():\n    return 2\n",
        })
        graph = project.callgraph
        names = set(graph.functions)
        assert "util:f" in names
        # The second file registers under a disambiguated module name,
        # so its functions are still part of every project-wide pass.
        assert any(q.endswith(":g") for q in names)


class TestTensorFactLattice:
    def test_join_keeps_agreement(self):
        a = TensorFact(ndim=2, dtype="float64", shape=(4, 4))
        b = TensorFact(ndim=2, dtype="float64", shape=(4, 8))
        j = a.join(b)
        assert j.ndim == 2
        assert j.dtype == "float64"
        assert j.shape == (4, None)  # agreement kept per axis

    def test_join_drops_disagreement(self):
        a = TensorFact(ndim=1, dtype="float64", shape=None)
        b = TensorFact(ndim=2, dtype="intp", shape=None)
        j = a.join(b)
        assert j.is_bottom()

    def test_bottom(self):
        assert TensorFact(None, None, None).is_bottom()
        assert not TensorFact(ndim=1, dtype=None, shape=None).is_bottom()


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))
