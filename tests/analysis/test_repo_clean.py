"""The ``lint`` tier: the repository itself is lint-clean.

This is the static complement of the ``perf_smoke`` counters — every
invariant the checks encode holds across the *whole* tree, not just the
paths a test happens to execute.  Run just this tier with ``-m lint``.
"""

import os
import subprocess
import sys

import pytest

from repro.analysis.report import render_text
from repro.analysis.runner import run_paths

from tests.analysis.conftest import FIXTURES, REPO_ROOT

SRC = str(REPO_ROOT / "src")

pytestmark = pytest.mark.lint


class TestRepoClean:
    def test_src_has_zero_unsuppressed_findings(self):
        result = run_paths([SRC])
        assert result.exit_code == 0, "\n" + render_text(result)

    def test_every_suppression_carries_a_reason(self):
        # A suppression without a reason is a decision nobody recorded.
        result = run_paths([SRC])
        unexplained = [f for f in result.suppressed
                       if not f.suppression_reason]
        assert not unexplained, "\n".join(
            f.location() for f in unexplained
        )


def run_cli(*args):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, "-m", "repro.cli", "lint", *args],
        cwd=str(REPO_ROOT), env=env,
        capture_output=True, text=True, timeout=120,
    )


class TestCliExitCodes:
    def test_lint_src_exits_zero(self):
        proc = run_cli("src")
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "0 findings" in proc.stdout

    def test_bad_corpus_exits_nonzero(self):
        proc = run_cli(str(FIXTURES))
        assert proc.returncode == 1, proc.stdout + proc.stderr

    def test_json_format(self):
        proc = run_cli("--format", "json", str(FIXTURES / "bad_rng.py"))
        assert proc.returncode == 1
        assert '"rng-discipline"' in proc.stdout

    def test_missing_path_exits_two(self):
        proc = run_cli("no/such/path")
        assert proc.returncode == 2
