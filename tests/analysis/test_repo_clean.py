"""The ``lint`` tier: the repository itself is lint-clean.

This is the static complement of the ``perf_smoke`` counters — every
invariant the checks encode holds across the *whole* tree, not just the
paths a test happens to execute.  Run just this tier with ``-m lint``.
"""

import os
import subprocess
import sys

import pytest

from repro.analysis.report import render_text
from repro.analysis.runner import run_paths

from tests.analysis.conftest import FIXTURES, REPO_ROOT

SRC = str(REPO_ROOT / "src")

pytestmark = pytest.mark.lint


class TestRepoClean:
    def test_src_has_zero_unsuppressed_findings(self):
        result = run_paths([SRC])
        assert result.exit_code == 0, "\n" + render_text(result)

    def test_every_suppression_carries_a_reason(self):
        # A suppression without a reason is a decision nobody recorded.
        result = run_paths([SRC])
        unexplained = [f for f in result.suppressed
                       if not f.suppression_reason]
        assert not unexplained, "\n".join(
            f.location() for f in unexplained
        )


def run_cli(*args):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, "-m", "repro.cli", "lint", *args],
        cwd=str(REPO_ROOT), env=env,
        capture_output=True, text=True, timeout=120,
    )


class TestCliExitCodes:
    def test_lint_src_exits_zero(self):
        proc = run_cli("src")
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "0 findings" in proc.stdout

    def test_bad_corpus_exits_nonzero(self):
        proc = run_cli(str(FIXTURES))
        assert proc.returncode == 1, proc.stdout + proc.stderr

    def test_json_format(self):
        proc = run_cli("--format", "json", str(FIXTURES / "bad_rng.py"))
        assert proc.returncode == 1
        assert '"rng-discipline"' in proc.stdout

    def test_missing_path_exits_two(self):
        proc = run_cli("no/such/path")
        assert proc.returncode == 2


BAD_SNIPPET = (
    "# lint: scope hot-path\n"
    "import numpy as np\n"
    "def f(xs):\n"
    "    return np.concatenate(xs)\n"
)


class TestCliBaseline:
    """The ``--baseline`` / ``--update-baseline`` / ``--fail-stale`` flow."""

    def test_update_baseline_bootstraps_missing_file(self, tmp_path):
        src = tmp_path / "mod.py"
        src.write_text(BAD_SNIPPET)
        baseline = tmp_path / "base.json"
        proc = run_cli("--baseline", str(baseline), "--update-baseline",
                       str(src))
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "wrote 1 finding(s)" in proc.stdout
        assert baseline.exists()

    def test_baselined_run_exits_zero(self, tmp_path):
        src = tmp_path / "mod.py"
        src.write_text(BAD_SNIPPET)
        baseline = tmp_path / "base.json"
        run_cli("--baseline", str(baseline), "--update-baseline", str(src))
        proc = run_cli("--baseline", str(baseline), str(src))
        assert proc.returncode == 0, proc.stdout + proc.stderr

    def test_new_finding_fails_despite_baseline(self, tmp_path):
        src = tmp_path / "mod.py"
        src.write_text(BAD_SNIPPET)
        baseline = tmp_path / "base.json"
        run_cli("--baseline", str(baseline), "--update-baseline", str(src))
        src.write_text(BAD_SNIPPET.replace(
            "    return np.concatenate(xs)",
            "    a = np.concatenate(xs)\n"
            "    return np.concatenate(xs)",
        ))
        proc = run_cli("--baseline", str(baseline), str(src))
        assert proc.returncode == 1, proc.stdout + proc.stderr

    def test_fail_stale_turns_debt_into_exit_one(self, tmp_path):
        src = tmp_path / "mod.py"
        src.write_text(BAD_SNIPPET)
        baseline = tmp_path / "base.json"
        run_cli("--baseline", str(baseline), "--update-baseline", str(src))
        src.write_text("# lint: scope hot-path\n"
                       "def f(xs):\n"
                       "    return xs\n")
        plain = run_cli("--baseline", str(baseline), str(src))
        assert plain.returncode == 0  # stale debt is warning tier...
        strict = run_cli("--baseline", str(baseline), "--fail-stale",
                         str(src))
        assert strict.returncode == 1  # ...unless the ratchet asks

    def test_missing_baseline_exits_two(self, tmp_path):
        src = tmp_path / "mod.py"
        src.write_text(BAD_SNIPPET)
        proc = run_cli("--baseline", str(tmp_path / "absent.json"),
                       str(src))
        assert proc.returncode == 2


class TestRatchetScript:
    """``scripts/lint_ratchet.py`` — the CI enforcement half."""

    def run_ratchet(self, *args):
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
        return subprocess.run(
            [sys.executable, str(REPO_ROOT / "scripts" / "lint_ratchet.py"),
             *args],
            cwd=str(REPO_ROOT), env=env,
            capture_output=True, text=True, timeout=180,
        )

    def test_clean_tree_passes(self):
        proc = self.run_ratchet()
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "lint-ratchet: OK" in proc.stdout

    def test_new_findings_fail(self, tmp_path):
        src = tmp_path / "mod.py"
        src.write_text(BAD_SNIPPET)
        proc = self.run_ratchet(str(src))
        assert proc.returncode == 1, proc.stdout + proc.stderr
        assert "new finding(s)" in proc.stdout

    def test_stale_baseline_entries_fail(self, tmp_path):
        src = tmp_path / "mod.py"
        src.write_text(BAD_SNIPPET)
        baseline = tmp_path / "base.json"
        run_cli("--baseline", str(baseline), "--update-baseline", str(src))
        src.write_text("# lint: scope hot-path\n"
                       "def f(xs):\n"
                       "    return xs\n")
        proc = self.run_ratchet("--baseline", str(baseline), str(src))
        assert proc.returncode == 1, proc.stdout + proc.stderr
        assert "stale baseline entry" in proc.stdout
