"""Tests for the roofline cost model: magnitudes and monotonicity."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.cost_model import LatencyModel
from repro.cluster.hardware import single_node_cluster, two_node_cluster
from repro.cluster.models import paper_model
from repro.cluster.parallel import ParallelPlan


@pytest.fixture(scope="module")
def llama7b_model():
    return LatencyModel(paper_model("llama-7b"), ParallelPlan(),
                        single_node_cluster())


class TestMagnitudes:
    def test_llama7b_incremental_in_paper_range(self, llama7b_model):
        """Paper Figure 7: ~20-40 ms per token for LLaMA-7B on one A10."""
        latency = llama7b_model.step_latency(1, 100)
        assert 0.015 < latency < 0.045

    def test_weight_traffic_dominates_small_batch(self, llama7b_model):
        cost = llama7b_model.step_cost(1, 100)
        assert cost.weight_time > cost.compute_time
        assert cost.weight_time > cost.kv_time

    def test_ssm_step_far_cheaper_than_llm(self):
        cluster = single_node_cluster()
        llm = LatencyModel(paper_model("llama-7b"), ParallelPlan(), cluster)
        ssm = LatencyModel(paper_model("llama-68m"), ParallelPlan(), cluster)
        assert ssm.step_latency(1, 100) < llm.step_latency(1, 100) / 10

    def test_llama65b_two_nodes_in_paper_range(self):
        """Paper Figure 7: ~60-120 ms per token for LLaMA-65B on 8 GPUs."""
        model = LatencyModel(
            paper_model("llama-65b"),
            ParallelPlan(tensor_parallel=4, pipeline_stages=2),
            two_node_cluster(),
        )
        latency = model.step_latency(1, 100)
        assert 0.04 < latency < 0.15


class TestShape:
    def test_tree_verification_nearly_free_at_batch_one(self, llama7b_model):
        """Scoring a 10-token tree costs ~the same as one token (the
        memory-bound regime the paper exploits)."""
        one = llama7b_model.step_latency(1, 100)
        tree = llama7b_model.step_latency(10, 110)
        assert tree < one * 1.15

    def test_compute_bound_at_large_batch_tokens(self, llama7b_model):
        """At B x T in the hundreds, compute overtakes weight traffic and
        step latency grows — the reason speedup shrinks with batch size."""
        small = llama7b_model.step_latency(1, 100)
        large = llama7b_model.step_latency(1024, 2000)
        assert large > small * 1.5

    def test_monotone_in_scored_tokens(self, llama7b_model):
        latencies = [
            llama7b_model.step_latency(t, 100 + t)
            for t in (1, 64, 256, 1024)
        ]
        assert latencies == sorted(latencies)

    def test_monotone_in_context(self, llama7b_model):
        assert llama7b_model.step_latency(1, 10_000) > \
            llama7b_model.step_latency(1, 100)

    def test_monotone_in_model_size(self):
        cluster = single_node_cluster()
        small = LatencyModel(paper_model("llama-68m"), ParallelPlan(), cluster)
        big = LatencyModel(paper_model("llama-7b"), ParallelPlan(), cluster)
        assert big.step_latency(1, 100) > small.step_latency(1, 100)

    def test_tp_reduces_weight_time_but_adds_comm(self):
        cluster = single_node_cluster()
        model = paper_model("llama-7b")
        tp1 = LatencyModel(model, ParallelPlan(tensor_parallel=1), cluster)
        tp4 = LatencyModel(model, ParallelPlan(tensor_parallel=4), cluster)
        c1 = tp1.step_cost(1, 100)
        c4 = tp4.step_cost(1, 100)
        assert c4.weight_time < c1.weight_time
        assert c4.tp_comm_time > c1.tp_comm_time

    def test_more_kernels_cost_more(self, llama7b_model):
        one = llama7b_model.step_latency(10, 110, num_kernel_batches=1)
        five = llama7b_model.step_latency(10, 110, num_kernel_batches=5)
        assert five > one

    def test_pp_adds_network_cost(self):
        cluster = two_node_cluster()
        model = paper_model("llama-65b")
        pp = LatencyModel(
            model, ParallelPlan(tensor_parallel=4, pipeline_stages=2), cluster
        )
        cost = pp.step_cost(1, 100)
        assert cost.pp_comm_time > 0

    @given(tokens=st.integers(1, 2048))
    @settings(max_examples=30, deadline=None)
    def test_latency_always_positive_and_finite(self, llama7b_model, tokens):
        latency = llama7b_model.step_latency(tokens, tokens + 10)
        assert 0 < latency < 10

    def test_rejects_zero_tokens(self, llama7b_model):
        with pytest.raises(ValueError):
            llama7b_model.step_latency(0, 10)
