"""Tests for the serving simulator (trace replay)."""

import numpy as np
import pytest

from repro.cluster.cost_model import LatencyModel
from repro.cluster.hardware import AWS_G5_NODE, single_node_cluster
from repro.cluster.models import paper_model
from repro.cluster.offload import OffloadLatencyModel, OffloadSpec
from repro.cluster.parallel import ParallelPlan
from repro.cluster.simulator import ServingSimulator, mean_tokens_per_step
from repro.engine.generation import GenerationResult, StepTrace


def incremental_trace(n_steps=10, prefix0=5):
    result = GenerationResult(prompt=np.array([1, 2]))
    result.tokens = list(range(n_steps))
    result.steps = [
        StepTrace(llm_tokens_scored=1, tokens_emitted=1,
                  prefix_len=prefix0 + i)
        for i in range(n_steps)
    ]
    return result


def tree_trace(n_steps=4, tree_size=10, emitted=3, depth=8, prefix0=5):
    result = GenerationResult(prompt=np.array([1, 2]))
    result.tokens = list(range(n_steps * emitted))
    result.steps = [
        StepTrace(
            llm_tokens_scored=tree_size,
            tokens_emitted=emitted,
            ssm_steps=depth,
            tree_size=tree_size,
            tree_depth=depth,
            tree_leaves=3,
            tree_path_tokens=tree_size + 6,
            prefix_len=prefix0 + i * emitted,
        )
        for i in range(n_steps)
    ]
    return result


@pytest.fixture(scope="module")
def simulator():
    cluster = single_node_cluster()
    llm = LatencyModel(paper_model("llama-7b"), ParallelPlan(), cluster)
    ssm = LatencyModel(paper_model("llama-68m"), ParallelPlan(), cluster)
    return ServingSimulator(llm, ssm)


class TestReplay:
    def test_incremental_has_no_spec_time(self, simulator):
        sim = simulator.replay(incremental_trace())
        assert sim.spec_seconds == 0.0
        assert sim.verify_seconds > 0

    def test_speculative_faster_per_token_at_bs1(self, simulator):
        """Same token count, fewer LLM steps -> lower per-token latency."""
        inc = simulator.replay(incremental_trace(n_steps=12))
        spec = simulator.replay(tree_trace(n_steps=4, emitted=3))
        assert spec.tokens == inc.tokens
        assert spec.per_token_seconds < inc.per_token_seconds

    def test_speedup_shrinks_with_batch_size(self, simulator):
        """The paper's headline shape: larger batches leave less spare
        compute for verification, so SpecInfer's advantage narrows."""
        speedups = []
        for bs in (1, 16):
            inc = simulator.replay(incremental_trace(n_steps=12),
                                   batch_size=bs)
            spec = simulator.replay(tree_trace(n_steps=4, emitted=3),
                                    batch_size=bs)
            speedups.append(inc.per_token_seconds / spec.per_token_seconds)
        assert speedups[1] < speedups[0]

    def test_sequence_based_decoding_slower_at_large_batch(self, simulator):
        """Figure 11: the fused tree kernel beats per-sequence kernels
        when compute is scarce (large batches)."""
        trace = tree_trace()
        tree = simulator.replay(trace, batch_size=16)
        seq = simulator.replay(trace, batch_size=16,
                               sequence_based_decoding=True)
        assert seq.total_seconds > tree.total_seconds

    def test_offload_replay(self):
        offload = OffloadLatencyModel(paper_model("opt-30b"),
                                      OffloadSpec(AWS_G5_NODE))
        cluster = single_node_cluster()
        ssm = LatencyModel(paper_model("opt-125m"), ParallelPlan(), cluster)
        sim = ServingSimulator(offload, ssm)
        inc = sim.replay(incremental_trace(n_steps=6))
        spec = sim.replay(tree_trace(n_steps=2, emitted=3, tree_size=10))
        # 6 tokens each; spec needs 2 weight streams vs 6.
        assert inc.tokens == 6
        speedup = inc.per_token_seconds / (
            spec.total_seconds / spec.tokens
        )
        assert speedup > 2.0

    def test_missing_ssm_model_raises(self):
        cluster = single_node_cluster()
        llm = LatencyModel(paper_model("llama-7b"), ParallelPlan(), cluster)
        sim = ServingSimulator(llm, ssm_latency=None)
        with pytest.raises(ValueError, match="SSM latency"):
            sim.replay(tree_trace())

    def test_rejects_bad_batch_size(self, simulator):
        with pytest.raises(ValueError):
            simulator.replay(incremental_trace(), batch_size=0)

    def test_replay_many_aggregates(self, simulator):
        traces = [incremental_trace(n_steps=5), incremental_trace(n_steps=7)]
        combined = simulator.replay_many(traces)
        assert combined.tokens == 12
        singles = [simulator.replay(t) for t in traces]
        assert combined.total_seconds == pytest.approx(
            sum(s.total_seconds for s in singles)
        )

    def test_replay_many_reports_batch_wall_clock(self, simulator):
        """total_seconds sums serial seconds across concurrent requests;
        the wall-clock of the batch is the slowest request, reported
        separately so callers cannot conflate the two."""
        traces = [incremental_trace(n_steps=5), incremental_trace(n_steps=7)]
        combined = simulator.replay_many(traces)
        singles = [simulator.replay(t) for t in traces]
        assert combined.batch_wall_seconds == pytest.approx(
            max(s.total_seconds for s in singles)
        )
        assert combined.batch_wall_seconds < combined.total_seconds
        # A single replay is not a batch aggregate.
        assert singles[0].batch_wall_seconds is None

    def test_replay_many_rejects_empty(self, simulator):
        with pytest.raises(ValueError):
            simulator.replay_many([])

    def test_sequence_based_context_uses_path_tokens(self, simulator):
        """Regression pin: the sequence-based baseline re-reads the shared
        prefix once per root-to-leaf path, so its memory context term must
        scale with tree_path_tokens, not the fused kernel's deduplicated
        llm_tokens_scored."""
        step = tree_trace(n_steps=1).steps[0]
        expected_scored = max(step.tree_path_tokens, 1)
        expected_context = step.prefix_len + max(step.tree_path_tokens, 1)
        expected = simulator.llm_latency.step_latency(
            expected_scored, expected_context,
            num_kernel_batches=max(step.tree_leaves, 1),
        )
        actual = simulator._verify_time(step, batch_size=1,
                                        sequence_based=True)
        assert actual == pytest.approx(expected)
        # And the fused path keeps the deduplicated context term.
        fused_expected = simulator.llm_latency.step_latency(
            step.llm_tokens_scored,
            step.prefix_len + step.llm_tokens_scored,
            num_kernel_batches=1,
        )
        assert simulator._verify_time(step, batch_size=1,
                                      sequence_based=False) == \
            pytest.approx(fused_expected)


class TestHelpers:
    def test_mean_tokens_per_step(self):
        traces = [tree_trace(n_steps=2, emitted=3),
                  incremental_trace(n_steps=2)]
        assert mean_tokens_per_step(traces) == pytest.approx(2.0)

    def test_mean_tokens_per_step_empty(self):
        assert mean_tokens_per_step([]) == 0.0

    def test_simulated_latency_properties(self, simulator):
        sim = simulator.replay(incremental_trace(n_steps=4))
        assert sim.per_token_ms == pytest.approx(
            sim.per_token_seconds * 1e3
        )
