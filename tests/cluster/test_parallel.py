"""Tests for parallelization plans."""

import pytest

from repro.cluster.hardware import single_node_cluster, two_node_cluster
from repro.cluster.models import paper_model
from repro.cluster.parallel import ParallelPlan


class TestParallelPlan:
    def test_rejects_bad_degrees(self):
        with pytest.raises(ValueError):
            ParallelPlan(tensor_parallel=0)
        with pytest.raises(ValueError):
            ParallelPlan(pipeline_stages=0)
        with pytest.raises(ValueError):
            ParallelPlan(bytes_per_param=3)

    def test_weight_bytes_split(self):
        model = paper_model("llama-7b")
        single = ParallelPlan().weight_bytes_per_gpu(model)
        quad = ParallelPlan(tensor_parallel=4).weight_bytes_per_gpu(model)
        assert quad == pytest.approx(single / 4)

    def test_llama7b_fits_one_gpu(self):
        ParallelPlan().validate(paper_model("llama-7b"),
                                single_node_cluster())

    def test_opt30b_needs_four_gpus(self):
        model = paper_model("opt-30b")
        cluster = single_node_cluster()
        with pytest.raises(ValueError, match="GB"):
            ParallelPlan().validate(model, cluster)
        ParallelPlan(tensor_parallel=4).validate(model, cluster)

    def test_llama65b_needs_two_nodes(self):
        model = paper_model("llama-65b")
        with pytest.raises(ValueError):
            ParallelPlan(tensor_parallel=4).validate(model,
                                                     single_node_cluster())
        ParallelPlan(tensor_parallel=4, pipeline_stages=2).validate(
            model, two_node_cluster()
        )

    def test_tp_cannot_exceed_node(self):
        with pytest.raises(ValueError, match="exceeds"):
            ParallelPlan(tensor_parallel=8).validate(
                paper_model("llama-7b"), single_node_cluster()
            )

    def test_pp_cannot_exceed_nodes(self):
        with pytest.raises(ValueError, match="exceed"):
            ParallelPlan(pipeline_stages=2).validate(
                paper_model("llama-7b"), single_node_cluster()
            )

    def test_for_model_picks_paper_plans(self):
        """Auto-placement reproduces the paper's configurations."""
        assert ParallelPlan.for_model(
            paper_model("llama-7b"), single_node_cluster()
        ) == ParallelPlan(tensor_parallel=1, pipeline_stages=1)
        assert ParallelPlan.for_model(
            paper_model("opt-30b"), single_node_cluster()
        ) == ParallelPlan(tensor_parallel=4, pipeline_stages=1)
        assert ParallelPlan.for_model(
            paper_model("llama-65b"), two_node_cluster()
        ) == ParallelPlan(tensor_parallel=4, pipeline_stages=2)

    def test_for_model_raises_when_impossible(self):
        with pytest.raises(ValueError, match="does not fit"):
            ParallelPlan.for_model(paper_model("llama-65b"),
                                   single_node_cluster())

    def test_ssms_fit_one_gpu(self):
        for name in ("llama-68m", "opt-125m"):
            ParallelPlan().validate(paper_model(name), single_node_cluster())
