"""Tests for the offloading latency model."""

import pytest

from repro.cluster.hardware import AWS_G5_NODE
from repro.cluster.models import paper_model
from repro.cluster.offload import OffloadLatencyModel, OffloadSpec


@pytest.fixture(scope="module")
def opt30b():
    return OffloadLatencyModel(paper_model("opt-30b"),
                               OffloadSpec(AWS_G5_NODE))


class TestOffloadSpec:
    def test_rejects_bad_overlap(self):
        with pytest.raises(ValueError):
            OffloadSpec(AWS_G5_NODE, overlap_efficiency=1.0)

    def test_rejects_model_exceeding_dram(self):
        huge = paper_model("llama-65b").scaled(n_layers=200, name="huge")
        with pytest.raises(ValueError, match="DRAM"):
            OffloadSpec(AWS_G5_NODE).validate(huge)


class TestOffloadLatency:
    def test_opt30b_in_paper_range(self, opt30b):
        """Paper Figure 8: FlexGen OPT-30B ~2-4 s per token at BS=1."""
        assert 1.5 < opt30b.step_latency(1, 100) < 5.0

    def test_weight_stream_dominates(self, opt30b):
        stream = opt30b.weight_stream_time()
        step = opt30b.step_latency(1, 100)
        assert step == pytest.approx(stream, rel=0.1)

    def test_multi_token_step_nearly_free(self, opt30b):
        """Verifying a 16-token tree costs the same weight stream — the
        mechanism behind the paper's 2.6-3.5x offloading speedup."""
        one = opt30b.step_latency(1, 100)
        tree = opt30b.step_latency(16, 116)
        assert tree < one * 1.05

    def test_opt13b_faster_than_opt30b(self):
        spec = OffloadSpec(AWS_G5_NODE)
        opt13 = OffloadLatencyModel(paper_model("opt-13b"), spec)
        opt30 = OffloadLatencyModel(paper_model("opt-30b"), spec)
        assert opt13.step_latency(1, 100) < opt30.step_latency(1, 100)

    def test_rejects_zero_tokens(self, opt30b):
        with pytest.raises(ValueError):
            opt30b.step_latency(0, 10)
