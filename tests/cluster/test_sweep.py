"""Tests for what-if sweeps over the cost model."""

import pytest

from repro.cluster.hardware import single_node_cluster, two_node_cluster
from repro.cluster.models import paper_model
from repro.cluster.sweep import (
    best_point,
    sweep_speculation_depth,
    sweep_ssm_size,
    sweep_tensor_parallel,
)


class TestTensorParallelSweep:
    def test_small_model_gains_little_from_tp(self):
        """LLaMA-7B: TP=4 helps less than 4x (all-reduce overhead)."""
        points = sweep_tensor_parallel(paper_model("llama-7b"),
                                       single_node_cluster())
        assert len(points) == 4
        tp1 = points[0].latency
        tp4 = points[-1].latency
        assert tp4 < tp1           # still faster...
        assert tp4 > tp1 / 4       # ...but sublinearly

    def test_big_model_skips_undersized_degrees(self):
        """OPT-30B does not fit below TP=4, so the sweep starts there."""
        points = sweep_tensor_parallel(paper_model("opt-30b"),
                                       single_node_cluster())
        assert [p.x for p in points] == [4]

    def test_impossible_model_raises(self):
        with pytest.raises(ValueError, match="fits no"):
            sweep_tensor_parallel(paper_model("llama-65b"),
                                  single_node_cluster())


class TestSpeculationDepthSweep:
    def test_curve_has_interior_minimum_for_moderate_alpha(self):
        points = sweep_speculation_depth(
            paper_model("llama-7b"), paper_model("llama-68m"),
            single_node_cluster(), alpha=0.7,
        )
        best = best_point(points)
        assert 2 <= best.x <= 16
        # The curve actually bends: depth 1 and depth 16 are both worse.
        assert points[0].latency > best.latency
        # For alpha=0.7 speculating deeper than ~10 pays nothing.
        assert points[-1].latency >= best.latency

    def test_higher_alpha_prefers_deeper(self):
        def optimal(alpha):
            return best_point(
                sweep_speculation_depth(
                    paper_model("llama-7b"), paper_model("llama-68m"),
                    single_node_cluster(), alpha=alpha,
                )
            ).x

        assert optimal(0.9) >= optimal(0.5)

    def test_paper_configuration_near_optimal(self):
        """With Table-1-like alpha ~0.7, the optimal depth is close to the
        paper's 8."""
        best = best_point(
            sweep_speculation_depth(
                paper_model("llama-7b"), paper_model("llama-68m"),
                single_node_cluster(), alpha=0.7,
            )
        )
        assert 4 <= best.x <= 14

    def test_alpha_validation(self):
        with pytest.raises(ValueError):
            sweep_speculation_depth(
                paper_model("llama-7b"), paper_model("llama-68m"),
                single_node_cluster(), alpha=1.5,
            )


class TestSsmSizeSweep:
    #: Bigger SSMs align better — a plausible alpha(scale) curve.
    ALPHAS = {0.01: 0.55, 0.05: 0.7, 0.15: 0.8, 0.5: 0.9}

    def test_sweet_spot_is_a_small_ssm(self):
        """The latency-optimal SSM is much smaller than the LLM — the
        paper's 100-1000x size-gap observation."""
        points = sweep_ssm_size(
            paper_model("llama-7b"), single_node_cluster(), self.ALPHAS
        )
        best = best_point(points)
        assert best.x <= 0.15

    def test_all_scales_evaluated(self):
        points = sweep_ssm_size(
            paper_model("llama-7b"), single_node_cluster(), self.ALPHAS
        )
        assert len(points) == len(self.ALPHAS)

    def test_scale_validation(self):
        with pytest.raises(ValueError, match="scale"):
            sweep_ssm_size(
                paper_model("llama-7b"), single_node_cluster(), {2.0: 0.9}
            )

    def test_best_point_empty_raises(self):
        with pytest.raises(ValueError):
            best_point([])
