"""Tests for the decoding energy model."""

import numpy as np
import pytest

from repro.cluster.energy import EnergyModel, EnergySpec, replay_energy
from repro.cluster.models import paper_model
from repro.cluster.parallel import ParallelPlan
from repro.engine.generation import GenerationResult, StepTrace


@pytest.fixture(scope="module")
def llama7b_energy():
    return EnergyModel(paper_model("llama-7b"))


class TestEnergySpec:
    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            EnergySpec(memory_pj_per_byte=0)

    def test_memory_dominates_compute_per_bit(self):
        """The paper's premise: memory access energy >> FLOP energy."""
        spec = EnergySpec()
        # energy to read one FP16 value vs one FLOP on it
        assert spec.memory_pj_per_byte * 2 > 10 * spec.flop_pj


class TestStepEnergy:
    def test_weight_read_dominates_single_token(self, llama7b_energy):
        e = llama7b_energy.step_energy(1, 100)
        assert e.weight_read > e.compute
        assert e.weight_read > e.kv_read

    def test_tree_step_is_nearly_free(self, llama7b_energy):
        """Scoring 20 tree tokens costs barely more energy than 1 token."""
        one = llama7b_energy.step_energy(1, 100).total
        tree = llama7b_energy.step_energy(20, 120).total
        assert tree < one * 1.2

    def test_energy_per_token_drops_with_acceptance(self, llama7b_energy):
        incremental = llama7b_energy.energy_per_token(1, 100, 1.0)
        speculative = llama7b_energy.energy_per_token(20, 120, 3.0)
        assert speculative < incremental / 2

    def test_offloading_adds_transfer_energy(self):
        plain = EnergyModel(paper_model("opt-30b"))
        offload = EnergyModel(paper_model("opt-30b"), offloaded=True)
        assert offload.step_energy(1, 100).total > \
            plain.step_energy(1, 100).total
        assert plain.step_energy(1, 100).transfer == 0.0

    def test_plan_does_not_change_total_energy(self):
        """Parallelism buys latency, not joules: every shard is read."""
        model = paper_model("opt-30b")
        single = EnergyModel(model, ParallelPlan())
        parallel = EnergyModel(model, ParallelPlan(tensor_parallel=4))
        assert single.step_energy(1, 100).weight_read == pytest.approx(
            parallel.step_energy(1, 100).weight_read
        )

    def test_rejects_bad_inputs(self, llama7b_energy):
        with pytest.raises(ValueError):
            llama7b_energy.step_energy(0, 10)
        with pytest.raises(ValueError):
            llama7b_energy.energy_per_token(1, 10, 0.0)

    def test_magnitude_sane(self, llama7b_energy):
        """~13.4 GB of weight reads at 30 pJ/byte is ~0.4 J per step."""
        e = llama7b_energy.step_energy(1, 100)
        assert 0.1 < e.weight_read < 1.0


class TestReplayEnergy:
    def _trace(self, n_steps, scored, emitted):
        result = GenerationResult(prompt=np.array([1]))
        result.tokens = list(range(n_steps * emitted))
        result.steps = [
            StepTrace(llm_tokens_scored=scored, tokens_emitted=emitted,
                      prefix_len=10 + i)
            for i in range(n_steps)
        ]
        return result

    def test_speculative_trace_uses_less_energy(self, llama7b_energy):
        """Same 12 tokens: 4 tree steps beat 12 incremental steps."""
        incremental = replay_energy(llama7b_energy, self._trace(12, 1, 1))
        speculative = replay_energy(llama7b_energy, self._trace(4, 12, 3))
        assert speculative < incremental / 2

    def test_scales_with_batch(self, llama7b_energy):
        trace = self._trace(4, 1, 1)
        single = replay_energy(llama7b_energy, trace, batch_size=1)
        batch = replay_energy(llama7b_energy, trace, batch_size=8)
        # Weight reads are shared across the batch; only KV/compute scale.
        assert single < batch < single * 8
