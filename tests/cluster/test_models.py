"""Tests for paper-scale model descriptors."""

import pytest

from repro.cluster.models import PAPER_MODELS, kv_bytes_per_token, paper_model


class TestPaperModels:
    def test_all_six_models_present(self):
        assert set(PAPER_MODELS) == {
            "llama-7b", "opt-13b", "opt-30b", "llama-65b",
            "llama-68m", "opt-125m",
        }

    def test_lookup(self):
        assert paper_model("llama-7b").name == "llama-7b"

    def test_unknown_raises(self):
        with pytest.raises(KeyError, match="unknown paper model"):
            paper_model("gpt-5")

    @pytest.mark.parametrize(
        "name,target",
        [
            ("llama-7b", 6.7e9),
            ("opt-13b", 13e9),
            ("opt-30b", 30e9),
            ("llama-65b", 65e9),
            ("llama-68m", 68e6),
            # OPT-125M ties its input/output embeddings; this substrate
            # keeps them separate, adding vocab x d_model (~39M) params.
            ("opt-125m", 164e6),
        ],
    )
    def test_param_counts_within_ten_percent(self, name, target):
        count = paper_model(name).num_parameters()
        assert abs(count - target) / target < 0.30, (
            f"{name}: {count / 1e9:.2f}B vs nominal {target / 1e9:.2f}B"
        )

    def test_ssm_llm_size_gap_matches_paper(self):
        """The paper's 100-1000x SSM/LLM size gap holds for both families."""
        llama_gap = (paper_model("llama-7b").num_parameters()
                     / paper_model("llama-68m").num_parameters())
        opt_gap = (paper_model("opt-30b").num_parameters()
                   / paper_model("opt-125m").num_parameters())
        assert 50 < llama_gap < 1000
        assert 50 < opt_gap < 1000

    def test_head_dims_valid(self):
        for config in PAPER_MODELS.values():
            assert config.d_model % config.n_heads == 0


class TestKvBytes:
    def test_formula(self):
        config = paper_model("llama-7b")
        expected = 2 * config.n_layers * config.d_model * 2
        assert kv_bytes_per_token(config) == expected

    def test_precision_scales(self):
        config = paper_model("opt-13b")
        assert kv_bytes_per_token(config, 4) == 2 * kv_bytes_per_token(config, 2)

    def test_magnitude_llama7b(self):
        """LLaMA-7B KV is ~0.5 MB per token at FP16 — the memory pressure
        section 2 describes for long sequences."""
        per_token = kv_bytes_per_token(paper_model("llama-7b"))
        assert 0.4e6 < per_token < 0.7e6
        # A full 2048-token context costs ~1 GB per request.
        assert 0.8e9 < per_token * 2048 < 1.4e9
