"""Tests for hardware specs."""

import pytest

from repro.cluster.hardware import (
    A10_GPU,
    AWS_G5_NODE,
    ClusterSpec,
    GpuSpec,
    single_node_cluster,
    two_node_cluster,
)


class TestGpuSpec:
    def test_a10_datasheet(self):
        assert A10_GPU.mem_bandwidth == 600e9
        assert A10_GPU.hbm_bytes == 24e9

    def test_sustained_rates_below_peak(self):
        assert A10_GPU.sustained_bandwidth < A10_GPU.mem_bandwidth
        assert A10_GPU.sustained_flops < A10_GPU.fp16_flops

    def test_rejects_bad_efficiency(self):
        with pytest.raises(ValueError):
            GpuSpec("x", 1e9, 1e12, 1e9, mem_efficiency=1.5)

    def test_rejects_zero_bandwidth(self):
        with pytest.raises(ValueError):
            GpuSpec("x", 0, 1e12, 1e9)


class TestClusterSpec:
    def test_total_gpus(self):
        assert single_node_cluster().total_gpus == 4
        assert two_node_cluster().total_gpus == 8

    def test_node_defaults(self):
        assert AWS_G5_NODE.gpus_per_node == 4
        assert AWS_G5_NODE.dram_bytes == 192e9

    def test_rejects_zero_nodes(self):
        with pytest.raises(ValueError):
            ClusterSpec(node=AWS_G5_NODE, num_nodes=0)
