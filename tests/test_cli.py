"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestDemo:
    def test_runs_and_is_lossless(self, capsys):
        code = main(["demo", "--tokens", "12", "--seed", "3"])
        out = capsys.readouterr().out
        assert code == 0
        assert "outputs identical: True" in out
        assert "tree-based SpecInfer" in out


class TestTree:
    def test_renders_tree(self, capsys):
        code = main(["tree", "--widths", "2", "2", "--seed", "5"])
        out = capsys.readouterr().out
        assert code == 0
        assert "tree:" in out
        assert "accepted" in out
        assert "`--" in out


class TestServe:
    def test_serving_report(self, capsys):
        code = main([
            "serve", "--requests", "4", "--tokens", "6", "--batch", "2",
            "--rate", "1.0",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "requests           : 4" in out
        assert "tokens generated   : 24" in out


class TestModels:
    def test_lists_all_paper_models(self, capsys):
        code = main(["models"])
        out = capsys.readouterr().out
        assert code == 0
        for name in ("llama-7b", "opt-30b", "llama-65b", "llama-68m"):
            assert name in out
        assert "tp=4 pp=2" in out  # llama-65b placement


class TestSweep:
    def test_depth_sweep_output(self, capsys):
        code = main(["sweep", "--alpha", "0.7", "--max-depth", "10"])
        out = capsys.readouterr().out
        assert code == 0
        assert "depth  1:" in out
        assert "<- best" in out

    def test_sweep_multi_node_model(self, capsys):
        code = main(["sweep", "--model", "llama-65b", "--max-depth", "4"])
        assert code == 0


class TestLatency:
    def test_latency_query(self, capsys):
        code = main([
            "latency", "--model", "llama-7b", "--tree-tokens", "10",
            "--tokens-per-step", "3",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "step latency" in out
        assert "ms" in out

    def test_multi_node_query(self, capsys):
        code = main(["latency", "--model", "llama-65b", "--tp", "4",
                     "--pp", "2"])
        assert code == 0


class TestTrace:
    def test_trace_to_file_is_deterministic(self, capsys, tmp_path):
        first = tmp_path / "a.jsonl"
        second = tmp_path / "b.jsonl"
        argv = ["trace", "Alpaca", "--requests", "2", "--tokens", "4",
                "--seed", "3"]
        assert main(argv + ["--out", str(first)]) == 0
        assert main(argv + ["--out", str(second)]) == 0
        out = capsys.readouterr().out
        assert "trace records" in out
        assert first.read_bytes() == second.read_bytes()
        lines = first.read_text().splitlines()
        names = {json.loads(line)["name"] for line in lines}
        for phase in ("speculate", "fit", "verify", "commit"):
            assert f"repro.engine.{phase}" in names

    def test_trace_to_stdout(self, capsys):
        code = main(["trace", "Alpaca", "--requests", "1", "--tokens", "2"])
        out = capsys.readouterr().out
        assert code == 0
        line = out.splitlines()[0]
        record = json.loads(line)
        assert record["kind"] in ("span", "event")


class TestMetrics:
    def test_text_table(self, capsys):
        code = main(["metrics", "--requests", "2", "--tokens", "4"])
        out = capsys.readouterr().out
        assert code == 0
        assert "repro.engine.ticks" in out
        assert "repro.serving.retired" in out
        assert "histogram" in out

    def test_json_snapshot(self, capsys):
        code = main(["metrics", "--requests", "2", "--tokens", "4",
                     "--format", "json"])
        out = capsys.readouterr().out
        assert code == 0
        snapshot = json.loads(out)
        assert snapshot["repro.serving.retired"]["value"] == 2
        assert snapshot["repro.engine.tick.host_seconds"]["count"] > 0


class TestChaos:
    def test_survives_and_exits_zero(self, capsys):
        code = main(["chaos", "Alpaca", "--requests", "4", "--tokens", "8",
                     "--seed", "11", "--fault-rate", "0.3"])
        out = capsys.readouterr().out
        assert code == 0
        assert "token parity        : True" in out
        assert "survived            : True" in out
        assert "faults injected" in out
        assert "preemptions" in out

    def test_zero_rate_reports_no_faults(self, capsys):
        code = main(["chaos", "Alpaca", "--requests", "2", "--tokens", "4",
                     "--fault-rate", "0.0"])
        out = capsys.readouterr().out
        assert code == 0
        assert "faults injected     : 0" in out
