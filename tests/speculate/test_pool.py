"""Tests for the heterogeneous speculator pool."""

import os

import pytest

from repro.model.config import ModelConfig
from repro.model.zoo import ZooSpec
from repro.speculate.expansion import ExpansionConfig
from repro.speculate.pool import PoolMember, SpeculatorPool
from repro.speculate.speculator import Speculator


def coupled_pool(llm, alignments=(0.9, 0.6), seed=0):
    return SpeculatorPool.from_coupled(llm, alignments, seed=seed)


class TestPoolMember:
    def test_rejects_bad_names(self, ssm):
        for bad in ("", "Upper", "has-dash", "has.dot", "0leading", "a b"):
            with pytest.raises(ValueError, match="member name"):
                PoolMember(name=bad, ssm_factory=lambda: ssm)

    def test_accepts_slug_names(self, ssm):
        member = PoolMember(name="short_expert_2", ssm_factory=lambda: ssm)
        assert member.config == ExpansionConfig.paper_default()


class TestSpeculatorPool:
    def test_rejects_empty_pool(self):
        with pytest.raises(ValueError, match="at least one"):
            SpeculatorPool([])

    def test_rejects_duplicate_names(self, ssm):
        members = [PoolMember(name="a", ssm_factory=lambda: ssm),
                   PoolMember(name="a", ssm_factory=lambda: ssm)]
        with pytest.raises(ValueError, match="duplicate"):
            SpeculatorPool(members)

    def test_unknown_member_lookup_names_the_pool(self, llm):
        pool = coupled_pool(llm)
        with pytest.raises(KeyError, match="coupled_0_a90"):
            pool.member("nope")

    def test_order_and_names(self, llm):
        pool = coupled_pool(llm, alignments=(0.9, 0.6, 0.4))
        assert pool.names == ("coupled_0_a90", "coupled_1_a60",
                              "coupled_2_a40")
        assert len(pool) == 3
        assert [m.name for m in pool] == list(pool.names)

    def test_make_speculator_returns_fresh_instances(self, llm):
        pool = coupled_pool(llm)
        a = pool.make_speculator("coupled_0_a90")
        b = pool.make_speculator("coupled_0_a90")
        assert isinstance(a, Speculator)
        assert a is not b
        assert a.ssms[0] is not b.ssms[0]

    def test_estimators_are_private_per_member(self, llm):
        pool = coupled_pool(llm)
        before = pool.alpha_for("coupled_1_a60")
        pool.estimator_for("coupled_0_a90").observe(8, 0)
        assert pool.alpha_for("coupled_0_a90") > before
        assert pool.alpha_for("coupled_1_a60") == before
        pool.reset_estimators()
        assert pool.alpha_for("coupled_0_a90") == before

    def test_from_coupled_validates_inputs(self, llm):
        with pytest.raises(ValueError, match="alignment"):
            SpeculatorPool.from_coupled(llm, [])
        with pytest.raises(ValueError, match="pair up"):
            SpeculatorPool.from_coupled(llm, [0.9, 0.6], names=["only_one"])

    def test_coupled_spread_is_deterministic(self, llm):
        a = SpeculatorPool.coupled_spread(llm, 3, 0.88, seed=5)
        b = SpeculatorPool.coupled_spread(llm, 3, 0.88, seed=5)
        assert a.names == b.names
        prompt = [3, 5, 7, 9]
        spec_a = a.make_speculator(a.names[1])
        spec_b = b.make_speculator(b.names[1])
        assert spec_a.ssms[0].alignment == spec_b.ssms[0].alignment

    def test_coupled_spread_floors_alignment(self, llm):
        pool = SpeculatorPool.coupled_spread(llm, 4, 0.5, step=0.2,
                                             floor=0.3)
        alignments = [m.ssm_factory().alignment for m in pool]
        assert alignments == [0.5, 0.3, 0.3, 0.3]


ZOO_LLM_CONFIG = ModelConfig(vocab_size=32, d_model=32, n_layers=2,
                             n_heads=4, max_seq_len=64, name="pool-zoo-llm")
ZOO_SSM_A = ModelConfig(vocab_size=32, d_model=16, n_layers=1, n_heads=2,
                        max_seq_len=64, name="pool-zoo-ssm-a")
ZOO_SSM_B = ModelConfig(vocab_size=32, d_model=8, n_layers=1, n_heads=2,
                        max_seq_len=64, name="pool-zoo-ssm-b")


def zoo_spec(ssm_config, distill_steps=15):
    return ZooSpec(vocab_size=32, llm_config=ZOO_LLM_CONFIG,
                   ssm_config=ssm_config, llm_steps=25,
                   distill_steps=distill_steps)


class TestFromZoo:
    def test_rejects_empty_and_mismatched_teachers(self):
        with pytest.raises(ValueError, match="at least one"):
            SpeculatorPool.from_zoo({})
        mismatched = {
            "a": zoo_spec(ZOO_SSM_A),
            "b": ZooSpec(vocab_size=32, llm_config=ZOO_LLM_CONFIG,
                         ssm_config=ZOO_SSM_B, llm_steps=30,
                         distill_steps=15),
        }
        with pytest.raises(ValueError, match="share one teacher"):
            SpeculatorPool.from_zoo(mismatched)

    def test_members_share_one_trained_teacher(self, tmp_path):
        """Two member specs differing only in SSM fields train the LLM
        once: exactly one llm checkpoint lands in the cache."""
        cache_dir = str(tmp_path)
        pool = SpeculatorPool.from_zoo(
            {"wide": zoo_spec(ZOO_SSM_A), "narrow": zoo_spec(ZOO_SSM_B)},
            cache_dir=cache_dir,
        )
        assert pool.names == ("wide", "narrow")
        assert pool.llm is not None
        assert pool.boost_report is None
        llm_files = [f for f in os.listdir(cache_dir)
                     if f.endswith("-llm.npz")]
        ssm_files = [f for f in os.listdir(cache_dir)
                     if f.endswith("-ssm.npz")]
        assert len(llm_files) == 1
        assert len(ssm_files) == 2
        wide = pool.make_speculator("wide").ssms[0]
        narrow = pool.make_speculator("narrow").ssms[0]
        assert wide.config.d_model != narrow.config.d_model

    def test_boost_pass_reports_coverage(self, tmp_path):
        from repro.model.trainer import TrainingConfig
        from repro.speculate.boost import BoostTuner
        from repro.workloads.corpus import MarkovCorpus

        prompts = MarkovCorpus(vocab_size=32, branching=3,
                               seed=4).sample_many(4, 8)
        specs = {"wide": zoo_spec(ZOO_SSM_A),
                 "narrow": zoo_spec(ZOO_SSM_B)}
        pool = SpeculatorPool.from_zoo(
            specs, cache_dir=str(tmp_path), boost_prompts=prompts,
            tuner=None,
        )
        report = pool.boost_report
        assert report is not None
        assert report.total_samples == len(prompts)
        assert (sum(report.per_ssm_covered) + report.uncovered
                == report.total_samples)
