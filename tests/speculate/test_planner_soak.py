"""Long-horizon planner soak under drifting acceptance.

Runs waves of batched requests against one persistent :class:`TreePlanner`
while the draft model's alignment flips between waves (0.95 <-> 0.25).
Asserts, per wave, that the planned run emits exactly the greedy tokens of
a static (planner-less) run, and that over the whole soak the planner
settles between drifts instead of thrashing (bounded replan rate).

Tier-1 runs a short soak; nightly sets ``REPRO_PLANNER_SOAK_TICKS=200``
(with ``REPRO_SANITIZE=1``) for the long version.
"""

import os

import numpy as np
import pytest

from repro.engine.generation import GenerationConfig
from repro.engine.pipeline import DecodePipeline, DecodeState, FusedBackend
from repro.model.coupled import CoupledSSM
from repro.obs import REGISTRY
from repro.speculate.expansion import ExpansionConfig
from repro.speculate.planner import TreePlanner
from repro.speculate.speculator import Speculator
from tests.conftest import make_prompt

pytestmark = pytest.mark.planner_soak

SOAK_TICKS = int(os.environ.get("REPRO_PLANNER_SOAK_TICKS", "48"))
WAVE_BATCH = 4
# Long enough that each wave has a steady stretch after the EWMA converges
# on the new alignment — with tiny waves every tick is a convergence tick
# and the replan-rate bound below would measure nothing.
WAVE_TOKENS = 20
HIGH_ALIGNMENT = 0.95
LOW_ALIGNMENT = 0.25
# Steady-state budget: replans should happen around drift boundaries and
# the cold start, not every tick.
MAX_REPLAN_RATE = 0.5


def wave_states(llm, wave, alignment):
    states = []
    for i in range(WAVE_BATCH):
        rng = np.random.default_rng(1000 * wave + i)
        speculator = Speculator(
            [CoupledSSM(llm, alignment=alignment, seed=7, noise_scale=2.0)],
            ExpansionConfig.paper_default(),
        )
        states.append(DecodeState(
            llm, make_prompt(rng, length=5),
            GenerationConfig(max_new_tokens=WAVE_TOKENS, seed=wave * 17 + i),
            speculator=speculator,
        ))
    return states


def drain(pipeline, states):
    ticks = 0
    while not all(s.finished for s in states):
        pipeline.tick(states)
        ticks += 1
    return [list(s.tokens) for s in states], ticks


def test_drift_soak_keeps_parity_with_bounded_replans(llm):
    plans = REGISTRY.counter("repro.planner.plans")
    replans = REGISTRY.counter("repro.planner.replans")
    start_plans, start_replans = plans.value, replans.value

    planner = TreePlanner.default()
    planned_pipeline = DecodePipeline(llm, FusedBackend(llm), planner=planner)
    static_pipeline = DecodePipeline(llm, FusedBackend(llm))

    total_ticks = wave = 0
    budgets_by_alignment = {HIGH_ALIGNMENT: [], LOW_ALIGNMENT: []}
    while total_ticks < SOAK_TICKS:
        alignment = HIGH_ALIGNMENT if wave % 2 == 0 else LOW_ALIGNMENT
        planned_tokens, ticks = drain(
            planned_pipeline, wave_states(llm, wave, alignment))
        static_tokens, _ = drain(
            static_pipeline, wave_states(llm, wave, alignment))
        # Greedy token parity holds through every drift, wave by wave.
        assert planned_tokens == static_tokens, f"parity broke on wave {wave}"
        budgets_by_alignment[alignment].append(planner.plan(WAVE_BATCH).budget)
        total_ticks += ticks
        wave += 1

    assert wave >= 2, "soak too short to cross a drift boundary"
    assert planner.estimator.observations > 0

    plans_made = plans.value - start_plans
    replans_made = replans.value - start_replans
    assert plans_made >= total_ticks
    # The planner reacts to drift (it replans at all) but settles in the
    # steady stretches between boundaries (bounded replan rate).
    assert replans_made > 0
    assert replans_made / plans_made <= MAX_REPLAN_RATE, (
        f"planner thrashing: {replans_made} replans / {plans_made} plans"
    )

    # The adaptation is directional: once both regimes have been seen,
    # the low-alignment waves end with smaller budgets than the
    # high-alignment ones.
    if len(budgets_by_alignment[LOW_ALIGNMENT]) >= 2:
        assert (budgets_by_alignment[LOW_ALIGNMENT][-1]
                <= budgets_by_alignment[HIGH_ALIGNMENT][-1])
