"""Tests for the hardware-aware dynamic tree planner."""

import itertools

import pytest

from repro.cluster.cost_model import LatencyModel
from repro.cluster.hardware import single_node_cluster
from repro.cluster.models import paper_model
from repro.cluster.parallel import ParallelPlan
from repro.speculate.planner import (
    AcceptanceEstimator,
    PlannerConfig,
    TreePlanner,
    optimal_widths,
    tree_tokens,
)
from repro.tree.token_tree import TokenTree


def brute_force_widths(alpha, budget, max_depth, max_width):
    """Exhaustive best expected accepted tokens over all width vectors."""
    best_value, best_widths = 0.0, ()
    for depth in range(1, max_depth + 1):
        for widths in itertools.product(range(1, max_width + 1),
                                        repeat=depth):
            if tree_tokens(widths) > budget:
                continue
            survive, expected = 1.0, 0.0
            for width in widths:
                survive *= 1.0 - (1.0 - alpha) ** width
                expected += survive
            if expected > best_value:
                best_value, best_widths = expected, widths
    return best_widths, best_value


class TestOptimalWidths:
    @pytest.mark.parametrize("alpha", [0.1, 0.3, 0.55, 0.8, 0.95])
    @pytest.mark.parametrize("budget", [1, 2, 4, 7, 9])
    def test_matches_brute_force(self, alpha, budget):
        widths, expected = optimal_widths(alpha, budget, max_depth=4,
                                          max_width=3)
        _, best = brute_force_widths(alpha, budget, 4, 3)
        assert expected == pytest.approx(best, abs=1e-9)
        assert tree_tokens(widths) <= budget
        # The returned profile realizes the claimed value.
        survive, realized = 1.0, 0.0
        for width in widths:
            survive *= 1.0 - (1.0 - alpha) ** width
            realized += survive
        assert realized == pytest.approx(expected, abs=1e-12)

    def test_zero_budget_and_zero_alpha(self):
        assert optimal_widths(0.5, 0) == ((), 0.0)
        assert optimal_widths(0.0, 8) == ((), 0.0)

    def test_respects_depth_and_width_caps(self):
        widths, _ = optimal_widths(0.9, 100, max_depth=3, max_width=2)
        assert len(widths) <= 3
        assert all(w <= 2 for w in widths)

    def test_high_alpha_goes_deep_low_alpha_goes_wide(self):
        deep, _ = optimal_widths(0.95, 8, max_depth=8, max_width=4)
        wide, _ = optimal_widths(0.1, 8, max_depth=8, max_width=4)
        assert len(deep) > len(wide)
        assert max(wide) > max(deep)

    def test_deterministic(self):
        runs = {optimal_widths(0.6180339, 17) for _ in range(3)}
        assert len(runs) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            optimal_widths(1.5, 4)
        with pytest.raises(ValueError):
            optimal_widths(0.5, 4, max_depth=0)


class TestAcceptanceEstimator:
    def test_cold_start_is_prior(self):
        assert AcceptanceEstimator(prior=0.7).alpha == 0.7

    def test_moves_toward_tick_estimate(self):
        est = AcceptanceEstimator(prior=0.7, ewma=0.25)
        est.observe(accepted=0, stops=4)
        assert est.alpha == pytest.approx(0.7 * 0.75)
        est.observe(accepted=8, stops=0)
        assert est.alpha > 0.5

    def test_converges_under_drift(self):
        est = AcceptanceEstimator(prior=0.9, ewma=0.25)
        for _ in range(30):
            est.observe(accepted=1, stops=4)  # tick alpha 0.2
        assert est.alpha == pytest.approx(0.2, abs=0.01)

    def test_zero_trial_ticks_ignored(self):
        est = AcceptanceEstimator(prior=0.7)
        est.observe(accepted=0, stops=0)
        assert est.alpha == 0.7
        assert est.observations == 0

    def test_clamped_to_floor_and_ceiling(self):
        est = AcceptanceEstimator(prior=0.5, ewma=1.0, floor=0.05,
                                  ceiling=0.9)
        est.observe(accepted=0, stops=10)
        assert est.alpha == 0.05
        est.observe(accepted=10, stops=0)
        assert est.alpha == 0.9

    def test_reset_returns_to_prior(self):
        est = AcceptanceEstimator(prior=0.7)
        est.observe(accepted=9, stops=1)
        est.reset()
        assert est.alpha == 0.7
        assert est.observations == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            AcceptanceEstimator(ewma=0.0)
        with pytest.raises(ValueError):
            AcceptanceEstimator(floor=0.5, ceiling=0.4)
        est = AcceptanceEstimator()
        with pytest.raises(ValueError):
            est.observe(accepted=-1, stops=0)


class TestCostPerVerifiedToken:
    def _model(self):
        return LatencyModel(
            paper_model("llama-7b"),
            ParallelPlan(tensor_parallel=1, pipeline_stages=1),
            single_node_cluster(),
        )

    def test_accepts_tree_or_node_count(self):
        cost = self._model()
        tree = TokenTree(5)
        for _ in range(9):
            tree.add_child(0, 7)
        by_tree = cost.cost_per_verified_token(4, tree)
        by_count = cost.cost_per_verified_token(4, len(tree))
        assert by_tree == by_count > 0

    def test_batching_amortizes_verify_cost(self):
        cost = self._model()
        per_token = [cost.cost_per_verified_token(b, 16) for b in (1, 4, 16)]
        assert per_token[0] > per_token[1] > per_token[2]

    def test_acceptance_scales_cost_down(self):
        cost = self._model()
        assert cost.cost_per_verified_token(
            4, 16, expected_tokens_per_step=4.0
        ) == pytest.approx(
            cost.cost_per_verified_token(4, 16) / 4.0
        )

    def test_validation(self):
        cost = self._model()
        with pytest.raises(ValueError):
            cost.cost_per_verified_token(0, 8)
        with pytest.raises(ValueError):
            cost.verify_seconds(4, 0, 128)
        with pytest.raises(ValueError):
            cost.cost_per_verified_token(4, 8, expected_tokens_per_step=0.0)


class TestTreePlanner:
    def test_default_planner_speculates_at_cold_start(self):
        plan = TreePlanner.default().plan(batch_size=4)
        assert plan.speculative
        assert plan.budget == tree_tokens(plan.widths)
        assert plan.expected_tokens > 1.0
        assert plan.goodput > plan.baseline_goodput

    def test_budget_shrinks_with_batch_size(self):
        planner = TreePlanner.default()
        small_batch = planner.plan(batch_size=1)
        large_batch = planner.plan(batch_size=16)
        assert large_batch.budget < small_batch.budget

    def test_budget_shrinks_as_acceptance_drops(self):
        planner = TreePlanner.default()
        optimistic = planner.plan(batch_size=8)
        for _ in range(20):
            planner.observe(accepted=0, stops=8)
        pessimistic = planner.plan(batch_size=8)
        assert pessimistic.budget < optimistic.budget

    def test_degrades_below_margin_and_probes_on_cooldown(self):
        config = PlannerConfig(speculation_margin=100.0, probe_cooldown=3)
        planner = TreePlanner.default(config=config)
        plans = [planner.plan(batch_size=4) for _ in range(6)]
        assert not plans[0].speculative
        assert not plans[1].speculative
        # Every probe_cooldown-th degraded tick re-probes speculation with
        # a minimal tree so an acceptance recovery is noticed.
        assert plans[2].probe and plans[2].speculative
        assert plans[2].budget <= config.probe_budget
        assert not plans[3].speculative
        assert plans[5].probe

    def test_deterministic_given_identical_observations(self):
        def run():
            planner = TreePlanner.default()
            plans = []
            for tick in range(10):
                plans.append(planner.plan(batch_size=4, context_len=200))
                planner.observe(accepted=tick % 3, stops=2)
            return [(p.budget, p.widths, p.alpha) for p in plans]

        assert run() == run()

    def test_plan_validation(self):
        with pytest.raises(ValueError):
            TreePlanner.default().plan(batch_size=0)
        with pytest.raises(ValueError):
            PlannerConfig(max_budget=0)
        with pytest.raises(ValueError):
            PlannerConfig(probe_budget=99)
