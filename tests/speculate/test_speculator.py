"""Tests for the Speculator façade (single- and multi-SSM)."""

import numpy as np
import pytest

from repro.model.coupled import CoupledSSM
from repro.speculate.expansion import ExpansionConfig
from repro.speculate.speculator import Speculator
from tests.conftest import make_prompt


class TestConstruction:
    def test_needs_at_least_one_ssm(self):
        with pytest.raises(ValueError):
            Speculator([])

    def test_per_ssm_config_count_checked(self, ssm):
        with pytest.raises(ValueError):
            Speculator([ssm], per_ssm_configs=[ExpansionConfig.sequence(2)] * 2)


class TestSingleSsm:
    def test_speculate_leaves_caches_untouched(self, ssm, rng):
        spec = Speculator([ssm], ExpansionConfig((2, 2)))
        prompt = make_prompt(rng, length=5)
        spec.prefill(prompt[:-1])
        before = spec.prefix_len
        tree = spec.speculate(int(prompt[-1]))
        assert spec.prefix_len == before
        tree.validate()

    def test_advance_extends_prefix(self, ssm, rng):
        spec = Speculator([ssm], ExpansionConfig((2,)))
        prompt = make_prompt(rng, length=5)
        spec.prefill(prompt[:-1])
        spec.advance([int(prompt[-1]), 3])
        assert spec.prefix_len == len(prompt) + 1

    def test_reset_clears_state(self, ssm, rng):
        spec = Speculator([ssm], ExpansionConfig((2,)))
        spec.prefill(make_prompt(rng, length=5))
        spec.reset()
        assert spec.prefix_len == 0

    def test_speculation_depends_on_context(self, ssm, rng):
        """Different mirrored prefixes produce different trees."""
        spec = Speculator([ssm], ExpansionConfig((3, 1, 1)))
        p1 = make_prompt(rng, length=6)
        spec.prefill(p1[:-1])
        t1 = spec.speculate(int(p1[-1]))
        spec.reset()
        p2 = make_prompt(rng, length=6)
        spec.prefill(p2[:-1])
        t2 = spec.speculate(int(p1[-1]))
        # Same pending token, different context: trees should differ
        # (statistically certain for a context-keyed model).
        assert t1.sequences() != t2.sequences()

    def test_latency_steps_is_config_depth(self, ssm):
        spec = Speculator([ssm], ExpansionConfig((1, 2, 1, 1)))
        assert spec.speculation_latency_steps() == 4


class TestMultiSsm:
    def test_merged_tree_covers_each_ssm(self, llm, rng):
        ssms = [CoupledSSM(llm, alignment=0.7, seed=s, noise_scale=2.0)
                for s in (1, 2, 3)]
        spec = Speculator(ssms, ExpansionConfig.sequence(3))
        prompt = make_prompt(rng, length=5)
        spec.prefill(prompt[:-1])
        merged = spec.speculate(int(prompt[-1]))
        merged.validate()
        # Each SSM's own sequence must appear in the merged tree.
        for ssm_id, ssm in enumerate(ssms):
            solo = Speculator([ssm], ExpansionConfig.sequence(3))
            solo.prefill(prompt[:-1])
            tree = solo.speculate(int(prompt[-1]))
            # Re-attribute: solo trees use ssm_id 0.
            assert tree.sequences() <= merged.sequences()

    def test_merged_tree_attributes_ssms(self, llm, rng):
        ssms = [CoupledSSM(llm, alignment=0.5, seed=s, noise_scale=2.0)
                for s in (4, 5)]
        spec = Speculator(ssms, ExpansionConfig.sequence(2))
        prompt = make_prompt(rng, length=4)
        spec.prefill(prompt[:-1])
        tree = spec.speculate(int(prompt[-1]))
        seen_ids = set()
        for node in tree.nodes[1:]:
            seen_ids |= node.ssm_ids
        assert seen_ids <= {0, 1}
        assert len(seen_ids) >= 1

    def test_per_ssm_configs(self, llm, rng):
        ssms = [CoupledSSM(llm, alignment=0.7, seed=s) for s in (6, 7)]
        spec = Speculator(
            ssms,
            per_ssm_configs=[ExpansionConfig((2,)), ExpansionConfig.sequence(4)],
        )
        assert spec.speculation_latency_steps() == 4
        prompt = make_prompt(rng, length=4)
        spec.prefill(prompt[:-1])
        tree = spec.speculate(int(prompt[-1]))
        assert tree.max_depth() <= 4
