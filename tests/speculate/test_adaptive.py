"""Tests for dynamic (best-first) token tree expansion."""

import numpy as np
import pytest

from repro.model.coupled import CoupledSSM
from repro.speculate.adaptive import (
    AdaptiveConfig,
    _adaptive_width,
    expand_token_tree_adaptive,
)
from repro.speculate.expansion import ExpansionConfig
from repro.speculate.speculator import Speculator
from tests.conftest import make_prompt


class TestAdaptiveConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_tokens": 0},
            {"max_depth": 0},
            {"max_width": 0},
            {"coverage": 0.0},
            {"coverage": 1.5},
            {"min_path_prob": 1.0},
        ],
    )
    def test_rejects_invalid(self, kwargs):
        with pytest.raises(ValueError):
            AdaptiveConfig(**kwargs)


class TestAdaptiveWidth:
    def test_confident_distribution_expands_one(self):
        probs = np.array([0.9, 0.05, 0.03, 0.02])
        config = AdaptiveConfig(coverage=0.85, max_width=4)
        assert len(_adaptive_width(probs, config)) == 1

    def test_uncertain_distribution_expands_wide(self):
        probs = np.full(10, 0.1)
        config = AdaptiveConfig(coverage=0.85, max_width=4)
        assert len(_adaptive_width(probs, config)) == 4

    def test_returns_most_likely_first(self):
        probs = np.array([0.1, 0.6, 0.3])
        config = AdaptiveConfig(coverage=0.95, max_width=3)
        order = _adaptive_width(probs, config)
        assert order[0] == 1


class TestExpandAdaptive:
    def test_budget_respected(self, llm, ssm, rng):
        prompt = make_prompt(rng, length=5)
        cache = ssm.new_cache()
        ssm.prefill(prompt[:-1], cache)
        config = AdaptiveConfig(max_tokens=6, max_depth=8, max_width=3,
                                min_path_prob=0.0)
        tree = expand_token_tree_adaptive(ssm, int(prompt[-1]), cache, config)
        tree.validate()
        assert 1 <= tree.num_speculated() <= 6

    def test_depth_limit_respected(self, ssm, rng):
        prompt = make_prompt(rng, length=4)
        cache = ssm.new_cache()
        ssm.prefill(prompt[:-1], cache)
        config = AdaptiveConfig(max_tokens=30, max_depth=3,
                                min_path_prob=0.0)
        tree = expand_token_tree_adaptive(ssm, int(prompt[-1]), cache, config)
        assert tree.max_depth() <= 3

    def test_cache_restored(self, ssm, rng):
        prompt = make_prompt(rng, length=4)
        cache = ssm.new_cache()
        ssm.prefill(prompt[:-1], cache)
        before = cache.snapshot()
        expand_token_tree_adaptive(
            ssm, int(prompt[-1]), cache,
            AdaptiveConfig(max_tokens=8, min_path_prob=0.0),
        )
        assert cache.snapshot() == before

    def test_expands_highest_probability_first(self, llm, rng):
        """With budget 1, the single speculated token is the SSM argmax."""
        ssm = CoupledSSM(llm, alignment=1.0)  # oracle = deterministic
        prompt = make_prompt(rng, length=5)
        cache = ssm.new_cache()
        ssm.prefill(prompt[:-1], cache)
        probe = ssm.new_cache()
        ssm.prefill(prompt[:-1], probe)
        expected = int(np.argmax(ssm.decode(int(prompt[-1]), probe)))
        tree = expand_token_tree_adaptive(
            ssm, int(prompt[-1]), cache,
            AdaptiveConfig(max_tokens=1, min_path_prob=0.0),
        )
        assert tree.num_speculated() == 1
        assert tree.nodes[1].token == expected

    def test_proposals_recorded(self, ssm, rng):
        prompt = make_prompt(rng, length=4)
        cache = ssm.new_cache()
        ssm.prefill(prompt[:-1], cache)
        tree = expand_token_tree_adaptive(
            ssm, int(prompt[-1]), cache,
            AdaptiveConfig(max_tokens=6, min_path_prob=0.0),
        )
        # Every expanded (non-leaf) node carries its proposal distribution.
        for idx, node in enumerate(tree.nodes):
            if node.children:
                assert 0 in node.proposals

    def test_min_path_prob_prunes(self, ssm, rng):
        prompt = make_prompt(rng, length=4)
        cache = ssm.new_cache()
        ssm.prefill(prompt[:-1], cache)
        strict = expand_token_tree_adaptive(
            ssm, int(prompt[-1]), cache,
            AdaptiveConfig(max_tokens=30, max_depth=6, min_path_prob=0.5),
        )
        loose = expand_token_tree_adaptive(
            ssm, int(prompt[-1]), cache,
            AdaptiveConfig(max_tokens=30, max_depth=6, min_path_prob=0.0),
        )
        assert strict.num_speculated() <= loose.num_speculated()

    def test_stochastic_requires_rng(self, ssm, rng):
        prompt = make_prompt(rng, length=4)
        cache = ssm.new_cache()
        ssm.prefill(prompt[:-1], cache)
        with pytest.raises(ValueError, match="rng"):
            expand_token_tree_adaptive(
                ssm, int(prompt[-1]), cache, AdaptiveConfig(),
                stochastic=True,
            )

    def test_stochastic_mode_runs(self, ssm, rng):
        prompt = make_prompt(rng, length=4)
        cache = ssm.new_cache()
        ssm.prefill(prompt[:-1], cache)
        tree = expand_token_tree_adaptive(
            ssm, int(prompt[-1]), cache,
            AdaptiveConfig(max_tokens=8, min_path_prob=0.0),
            stochastic=True, rng=np.random.default_rng(0),
        )
        tree.validate()


class TestAdaptiveEngine:
    def test_lossless_with_adaptive_speculator(self, llm, ssm, rng):
        from repro.engine.generation import GenerationConfig
        from repro.engine.incremental import IncrementalEngine
        from repro.engine.tree_spec import SpecInferEngine

        prompt = make_prompt(rng, length=5)
        config = GenerationConfig(max_new_tokens=16)
        incremental = IncrementalEngine(llm).generate(prompt, config)
        engine = SpecInferEngine(
            llm,
            Speculator([ssm], adaptive=AdaptiveConfig(max_tokens=10,
                                                      max_depth=5)),
        )
        result = engine.generate(prompt, config)
        assert result.tokens == incremental.tokens

    def test_latency_steps_uses_adaptive_depth(self, ssm):
        spec = Speculator([ssm], adaptive=AdaptiveConfig(max_depth=5))
        assert spec.speculation_latency_steps() == 5
