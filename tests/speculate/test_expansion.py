"""Tests for expansion configurations and expansion-based tree construction."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.speculate.expansion import ExpansionConfig, expand_token_tree
from tests.conftest import make_prompt


class TestExpansionConfig:
    def test_paper_default(self):
        config = ExpansionConfig.paper_default()
        assert config.widths == (1, 1, 3, 1, 1, 1, 1, 1)
        assert config.depth == 8
        assert config.num_sequences == 3

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            ExpansionConfig(())

    def test_rejects_zero_width(self):
        with pytest.raises(ValueError):
            ExpansionConfig((1, 0, 1))

    def test_width_sweep(self):
        config = ExpansionConfig.width_sweep(4, depth=8, expand_step=2)
        assert config.widths == (1, 1, 4, 1, 1, 1, 1, 1)
        assert config.num_sequences == 4

    def test_width_sweep_bad_step(self):
        with pytest.raises(ValueError):
            ExpansionConfig.width_sweep(2, depth=4, expand_step=4)

    def test_sequence_config(self):
        config = ExpansionConfig.sequence(5)
        assert config.widths == (1,) * 5
        assert config.num_sequences == 1

    @given(st.lists(st.integers(1, 4), min_size=1, max_size=6))
    @settings(max_examples=40, deadline=None)
    def test_max_tree_tokens_formula(self, widths):
        config = ExpansionConfig(tuple(widths))
        total = 0
        frontier = 1
        for k in widths:
            frontier *= k
            total += frontier
        assert config.max_tree_tokens() == total


class TestExpandTokenTree:
    def test_shape_follows_config(self, llm, ssm, rng):
        prompt = make_prompt(rng, length=5)
        cache = ssm.new_cache()
        ssm.prefill(prompt[:-1], cache)
        config = ExpansionConfig((2, 1))
        tree = expand_token_tree(ssm, int(prompt[-1]), cache, config)
        tree.validate()
        assert tree.max_depth() <= 2
        assert len(tree.nodes[0].children) == 2
        for child in tree.nodes[0].children:
            assert len(tree.nodes[child].children) == 1

    def test_children_are_ssm_top_k(self, llm, ssm, rng):
        prompt = make_prompt(rng, length=5)
        cache = ssm.new_cache()
        ssm.prefill(prompt[:-1], cache)
        probe_cache = ssm.new_cache()
        ssm.prefill(prompt[:-1], probe_cache)
        logits = ssm.decode(int(prompt[-1]), probe_cache)
        top3 = set(np.argsort(logits)[::-1][:3].tolist())
        tree = expand_token_tree(
            ssm, int(prompt[-1]), cache, ExpansionConfig((3,))
        )
        child_tokens = {tree.nodes[c].token for c in tree.nodes[0].children}
        assert child_tokens == top3

    def test_cache_restored_on_return(self, ssm, rng):
        prompt = make_prompt(rng, length=5)
        cache = ssm.new_cache()
        ssm.prefill(prompt[:-1], cache)
        before = cache.snapshot()
        expand_token_tree(ssm, int(prompt[-1]), cache,
                          ExpansionConfig((2, 2, 1)))
        assert cache.snapshot() == before

    def test_proposals_recorded_at_internal_nodes(self, ssm, rng):
        prompt = make_prompt(rng, length=4)
        cache = ssm.new_cache()
        ssm.prefill(prompt[:-1], cache)
        tree = expand_token_tree(ssm, int(prompt[-1]), cache,
                                 ExpansionConfig((2, 1)))
        for idx, node in enumerate(tree.nodes):
            if node.children:
                assert 0 in node.proposals, f"node {idx} missing proposal"
                probs = node.proposals[0]
                assert probs.sum() == pytest.approx(1.0)

    def test_deterministic(self, ssm, rng):
        prompt = make_prompt(rng, length=4)
        trees = []
        for _ in range(2):
            cache = ssm.new_cache()
            ssm.prefill(prompt[:-1], cache)
            trees.append(
                expand_token_tree(ssm, int(prompt[-1]), cache,
                                  ExpansionConfig((2, 2)))
            )
        assert trees[0].sequences() == trees[1].sequences()

    def test_works_with_plain_transformer_as_ssm(self, llm, rng):
        """A TransformerLM itself satisfies the SSM protocol."""
        prompt = make_prompt(rng, length=4)
        cache = llm.new_cache()
        llm.prefill(prompt[:-1], cache)
        tree = expand_token_tree(llm, int(prompt[-1]), cache,
                                 ExpansionConfig((2, 1)))
        tree.validate()
        assert len(tree) == 5  # root + 2 + 2
