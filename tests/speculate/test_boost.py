"""Tests for boost-tuning an SSM pool against a teacher LLM."""

import numpy as np
import pytest

from repro.model.config import ModelConfig
from repro.model.trainer import TrainingConfig
from repro.model.transformer import TransformerLM
from repro.speculate.boost import BoostTuner
from repro.workloads.corpus import MarkovCorpus

TEACHER_CONFIG = ModelConfig(vocab_size=24, d_model=16, n_layers=2,
                             n_heads=2, max_seq_len=32)
STUDENT_CONFIG = TEACHER_CONFIG.scaled(d_model=8, n_layers=1, n_heads=2)


@pytest.fixture(scope="module")
def teacher():
    return TransformerLM(TEACHER_CONFIG, seed=0)


@pytest.fixture(scope="module")
def prompts():
    corpus = MarkovCorpus(vocab_size=24, branching=3, seed=1)
    return corpus.sample_many(8, 10)


class TestBoostTuner:
    def test_rejects_bad_match_len(self, teacher):
        with pytest.raises(ValueError):
            BoostTuner(teacher, continuation_len=2, match_len=3)

    def test_generate_targets_extends_prompts(self, teacher, prompts):
        tuner = BoostTuner(teacher, continuation_len=4)
        samples = tuner.generate_targets(prompts)
        assert len(samples) == len(prompts)
        for prompt, sample in zip(prompts, samples):
            assert len(sample) == len(prompt) + 4
            np.testing.assert_array_equal(sample[: len(prompt)], prompt)

    def test_targets_are_greedy_continuations(self, teacher, prompts):
        tuner = BoostTuner(teacher, continuation_len=3)
        sample = tuner.generate_targets(prompts[:1])[0]
        prompt = prompts[0]
        cache = teacher.new_cache()
        logits = teacher.prefill(prompt, cache)
        t = int(np.argmax(logits[-1]))
        assert sample[len(prompt)] == t

    def test_ssm_matches_oracle(self, teacher, prompts):
        """The teacher trivially matches its own continuations."""
        tuner = BoostTuner(teacher, continuation_len=3, match_len=2)
        samples = tuner.generate_targets(prompts)
        for prompt, sample in zip(prompts, samples):
            assert tuner.ssm_matches(teacher, len(prompt), sample)

    def test_tune_reports_and_improves_coverage(self, teacher, prompts):
        students = [TransformerLM(STUDENT_CONFIG, seed=s) for s in (10, 11)]
        tuner = BoostTuner(
            teacher,
            continuation_len=2,
            match_len=1,
            training=TrainingConfig(max_steps=60, learning_rate=3e-3),
        )
        # Coverage before tuning (untrained students rarely match).
        samples = tuner.generate_targets(prompts)
        before = sum(
            any(tuner.ssm_matches(s, len(p), smp) for s in students)
            for p, smp in zip(prompts, samples)
        )
        report = tuner.tune(students, prompts)
        assert report.total_samples == len(prompts)
        assert report.uncovered + sum(report.per_ssm_covered) == len(prompts)
        after = report.total_samples - report.uncovered
        assert after >= before
        assert 0.0 <= report.coverage <= 1.0

    def test_overlapping_coverage_not_double_counted(self, teacher, prompts):
        """ISSUE regression: two SSMs whose competence overlaps (A covers
        samples {0,1}, B covers {1,2} of 4) must credit the shared sample
        to its first coverer only — per_ssm_covered [2, 1], uncovered 1,
        and the marginal-count invariant intact.  Before the fix the
        overlap could be double-counted across the per-SSM tallies."""
        ssm_a = TransformerLM(STUDENT_CONFIG, seed=20)
        ssm_b = TransformerLM(STUDENT_CONFIG, seed=21)
        coverage = {id(ssm_a): {0, 1}, id(ssm_b): {1, 2}}

        class ScriptedTuner(BoostTuner):
            def ssm_matches(self, ssm, prompt_len, sample):
                index = next(
                    i for i, s in enumerate(self._samples)
                    if s is sample
                )
                return index in coverage[id(ssm)]

        tuner = ScriptedTuner(
            teacher, continuation_len=2, match_len=1,
            training=TrainingConfig(max_steps=1),
        )
        four_prompts = prompts[:4]
        tuner._samples = tuner.generate_targets(four_prompts)
        original = tuner.generate_targets

        # Pin tune() to the pre-generated samples so identity lookups in
        # the scripted ssm_matches line up.
        tuner.generate_targets = lambda _prompts: tuner._samples

        report = tuner.tune([ssm_a, ssm_b], four_prompts)
        tuner.generate_targets = original
        assert report.per_ssm_covered == [2, 1]
        assert report.uncovered == 1
        assert report.coverage == 0.75
        assert (sum(report.per_ssm_covered) + report.uncovered
                == report.total_samples == 4)

    def test_later_ssm_sees_filtered_samples(self, teacher, prompts):
        """With an oracle first SSM, the second SSM gets nothing to cover."""
        oracle = teacher  # matches everything
        second = TransformerLM(STUDENT_CONFIG, seed=12)
        tuner = BoostTuner(
            teacher, continuation_len=2, match_len=1,
            training=TrainingConfig(max_steps=1),
        )
        report = tuner.tune([oracle, second], prompts)
        assert report.per_ssm_covered[0] == len(prompts)
        assert report.per_ssm_covered[1] == 0
        assert report.coverage == 1.0
