"""Tests for the per-request speculator router (acceptance bandit)."""

import pytest

from repro.obs import REGISTRY, reset_observability
from repro.speculate.pool import SpeculatorPool
from repro.speculate.router import (
    RouteAssignment,
    RouterConfig,
    SpeculatorRouter,
)


@pytest.fixture(autouse=True)
def clean_registry():
    reset_observability()
    yield


@pytest.fixture()
def pool(llm):
    return SpeculatorPool.from_coupled(
        llm, (0.9, 0.6, 0.4), names=("strong", "medium", "weak")
    )


def make_router(pool, **kwargs):
    return SpeculatorRouter(pool, RouterConfig(**kwargs))


def short_prompt():
    return [1] * 4


def long_prompt():
    return [1] * 30


class TestRouterConfig:
    def test_rejects_unknown_policy(self):
        with pytest.raises(ValueError, match="unknown routing policy"):
            RouterConfig(policy="greedy")

    def test_rejects_anonymous_fixed(self):
        with pytest.raises(ValueError, match="fixed"):
            RouterConfig(policy="fixed")

    def test_rejects_bad_buckets(self):
        with pytest.raises(ValueError, match="length_buckets"):
            RouterConfig(length_buckets=(24, 16))
        with pytest.raises(ValueError, match="length_buckets"):
            RouterConfig(length_buckets=(0, 8))

    def test_rejects_negative_exploration(self):
        with pytest.raises(ValueError, match="exploration"):
            RouterConfig(exploration=-0.1)

    def test_fixed_member_validated_against_pool(self, pool):
        with pytest.raises(KeyError):
            SpeculatorRouter(pool, RouterConfig(policy="fixed:nope"))


class TestFeatures:
    def test_length_bucketing(self, pool):
        router = make_router(pool, length_buckets=(16, 24))
        assert router.feature_key([1] * 4) == "len0"
        assert router.feature_key([1] * 15) == "len0"
        assert router.feature_key([1] * 16) == "len1"
        assert router.feature_key([1] * 23) == "len1"
        assert router.feature_key([1] * 24) == "len2"
        assert router.feature_key([1] * 100) == "len2"


class TestRouting:
    def test_assignment_is_sticky(self, pool):
        router = make_router(pool)
        first = router.route(1, short_prompt())
        again = router.route(1, long_prompt())  # re-admit, even new prompt
        assert again is first
        assert router.assignment_history == (first.member,)
        assert router.assignment_for(1) is first
        router.forget(1)
        assert router.assignment_for(1) is None

    @pytest.mark.parametrize("policy", ["ucb", "thompson"])
    def test_cold_start_is_seed_determined(self, pool, policy):
        a = make_router(pool, policy=policy, seed=3)
        b = make_router(pool, policy=policy, seed=3)
        ra = a.route(1, short_prompt())
        rb = b.route(99, short_prompt())  # different id, same feature
        assert ra.cold_start and rb.cold_start
        assert ra.member == rb.member
        assert REGISTRY.get("repro.router.cold_starts").value == 2

    def test_distinct_buckets_can_cold_start_differently(self, pool):
        router = make_router(pool, seed=0)
        members = {
            router._cold_member(f"len{i}") for i in range(8)
        }
        assert len(members) > 1

    @pytest.mark.parametrize("policy", ["ucb", "thompson"])
    def test_same_seed_same_history(self, pool, llm, policy):
        """Two identically-configured routers replay the same route/observe
        sequence into byte-identical assignment histories."""
        other_pool = SpeculatorPool.from_coupled(
            llm, (0.9, 0.6, 0.4), names=("strong", "medium", "weak")
        )
        a = make_router(pool, policy=policy, seed=7)
        b = make_router(other_pool, policy=policy, seed=7)
        for router in (a, b):
            for i in range(30):
                prompt = short_prompt() if i % 2 else long_prompt()
                assignment = router.route(i, prompt)
                # Acceptance favours `strong` regardless of bucket.
                accepted = 3 if assignment.member == "strong" else 1
                router.observe(assignment, accepted, 1)
        assert a.assignment_history == b.assignment_history

    def test_ucb_converges_to_best_arm(self, pool):
        router = make_router(pool, policy="ucb", exploration=0.2, seed=0)
        feature = router.feature_key(short_prompt())
        for member, accepted in (("strong", 9), ("medium", 2), ("weak", 1)):
            router.observe(
                RouteAssignment(request_id=-1, member=member,
                                feature=feature),
                accepted, 1,
            )
        routes = [router.route(100 + i, short_prompt()).member
                  for i in range(8)]
        assert routes.count("strong") >= 6
        assert not any(
            router.assignment_for(100 + i).cold_start for i in range(8)
        )

    def test_round_robin_cycles_pool_order(self, pool):
        router = make_router(pool, policy="round_robin")
        routes = [router.route(i, short_prompt()).member for i in range(6)]
        assert routes == ["strong", "medium", "weak"] * 2

    def test_fixed_policy_always_routes_to_member(self, pool):
        router = make_router(pool, policy="fixed:medium")
        routes = {router.route(i, short_prompt()).member for i in range(5)}
        assert routes == {"medium"}

    def test_regret_proxy_grows_when_ignoring_best(self, pool):
        router = make_router(pool, policy="fixed:weak")
        feature = router.feature_key(short_prompt())
        router.observe(
            RouteAssignment(request_id=-1, member="strong",
                            feature=feature),
            9, 1,
        )
        assert router.regret_proxy == 0.0
        router.route(1, short_prompt())
        assert router.regret_proxy > 0.0
        assert (REGISTRY.get("repro.router.regret_proxy").value
                == round(router.regret_proxy, 6))


class TestObserve:
    def test_rejects_negative_evidence(self, pool):
        router = make_router(pool)
        assignment = router.route(1, short_prompt())
        with pytest.raises(ValueError):
            router.observe(assignment, -1, 0)

    def test_zero_trial_observe_is_noop(self, pool):
        router = make_router(pool)
        assignment = router.route(1, short_prompt())
        alpha = router.alpha_for(assignment.member)
        router.observe(assignment, 0, 0)
        assert router.observations == 0
        assert router.alpha_for(assignment.member) == alpha
        assert REGISTRY.get("repro.router.observations").value == 0

    def test_observe_moves_only_the_assigned_member(self, pool):
        router = make_router(pool)
        assignment = router.route(1, short_prompt())
        others = [n for n in pool.names if n != assignment.member]
        before = {n: router.alpha_for(n) for n in pool.names}
        router.observe(assignment, 4, 0)
        assert router.alpha_for(assignment.member) > before[assignment.member]
        for name in others:
            assert router.alpha_for(name) == before[name]
        assert router.observations == 1
        gauge = REGISTRY.get(f"repro.router.alpha.{assignment.member}")
        assert gauge.value == round(router.alpha_for(assignment.member), 6)

    def test_frozen_router_neither_learns_nor_explores(self, pool):
        router = make_router(pool, policy="ucb", seed=1)
        feature = router.feature_key(short_prompt())
        router.observe(
            RouteAssignment(request_id=-1, member="strong",
                            feature=feature),
            9, 1,
        )
        router.freeze()
        before = router.observations
        assignment = router.route(1, short_prompt())
        assert assignment.member == "strong"
        alpha = router.alpha_for("strong")
        router.observe(assignment, 5, 0)
        assert router.alpha_for("strong") == alpha
        assert router.observations == before
        router.unfreeze()
        router.observe(assignment, 5, 0)
        assert router.observations == before + 1

    def test_assignment_metrics_count_routes(self, pool):
        router = make_router(pool, policy="round_robin")
        for i in range(4):
            router.route(i, short_prompt())
        router.route(0, short_prompt())  # sticky: not re-counted
        assert REGISTRY.get("repro.router.assignments").value == 4
        assert REGISTRY.get("repro.router.assigned.strong").value == 2
        assert REGISTRY.get("repro.router.assigned.medium").value == 1
