"""Tests for request lifecycle types."""

import numpy as np
import pytest

from repro.engine.generation import GenerationConfig
from repro.serving.request import Request, RequestOutput, RequestState


class TestRequest:
    def test_prompt_coerced_to_array(self):
        request = Request(request_id=0, prompt=[1, 2, 3],
                          config=GenerationConfig())
        assert isinstance(request.prompt, np.ndarray)
        assert request.prompt.dtype == np.intp

    def test_rejects_empty_prompt(self):
        with pytest.raises(ValueError, match="non-empty"):
            Request(request_id=0, prompt=[], config=GenerationConfig())

    def test_default_state_is_waiting(self):
        request = Request(request_id=0, prompt=[1], config=GenerationConfig())
        assert request.state is RequestState.WAITING


class TestRequestOutput:
    def test_defaults(self):
        output = RequestOutput(request_id=3)
        assert output.tokens == []
        assert output.first_token_iteration is None
        assert not output.finished_by_eos
