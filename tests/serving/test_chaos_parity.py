"""Chaos parity: fault injection never changes greedy serving output.

The acceptance bar for the fault layer — a workload served under seeded
fault injection (preemptions, retries, speculation fallback) must emit
final tokens bit-identical to the fault-free run, across seeds, with no
request failed and no KV reservation leaked.  Parity is promised under
greedy verification only; stochastic decoding consumes RNG on paths that
faults reorder.
"""

from dataclasses import replace

import pytest

from repro.engine.generation import GenerationConfig
from repro.faults import FaultInjector
from repro.obs import REGISTRY, reset_observability
from repro.obs.workload import WorkloadSpec, run_observed_workload
from repro.serving.manager import RequestManager
from repro.serving.memory import KvMemoryPool
from tests.conftest import SMALL_CONFIG, make_prompt
from tests.serving.test_manager import speculative_factory

pytestmark = pytest.mark.chaos


def run_workload_tokens(spec):
    reset_observability()
    manager = run_observed_workload(spec)
    finished = {o.request_id: o.tokens for o in manager.finished_outputs()}
    failed = manager.failed_outputs()
    return finished, failed


class TestWorkloadParity:
    @pytest.mark.parametrize("seed", [3, 7, 13])
    def test_fused_workload_survives_rate_005(self, seed):
        """ISSUE acceptance: greedy workload at fault rate 0.05, three
        seeds, bit-identical finished tokens and zero failures."""
        spec = WorkloadSpec(requests=4, max_new_tokens=8, seed=seed,
                            simulate=False)
        expected, _ = run_workload_tokens(spec)
        actual, failed = run_workload_tokens(
            replace(spec, fault_rate=0.05)
        )
        assert failed == []
        assert actual == expected

    def test_parity_holds_under_heavy_faults(self):
        """Rate 0.3 actually exercises every path (preempt/retry/fallback)
        on this workload and parity still holds."""
        spec = WorkloadSpec(requests=6, max_new_tokens=10, seed=11,
                            simulate=False)
        expected, _ = run_workload_tokens(spec)
        actual, failed = run_workload_tokens(replace(spec, fault_rate=0.3))
        assert failed == []
        assert actual == expected
        assert REGISTRY.get("repro.faults.injected").value > 0

    def test_zero_rate_runs_without_injector(self):
        """fault_rate=0 must not even construct an injector, keeping the
        byte-determinism contract of the observed workload intact."""
        reset_observability()
        manager = run_observed_workload(
            WorkloadSpec(requests=2, max_new_tokens=4, simulate=False)
        )
        assert manager.injector is None
        checks = REGISTRY.get("repro.faults.checks")
        assert checks is None or checks.value == 0


class TestRoutedPoolParity:
    def test_routed_workload_survives_rate_010(self):
        """ISSUE regression: a routed 3-member pool at fault rate 0.10
        keeps bit-identical finished tokens and zero failures — fallback
        ticks feed neither the member estimators nor routing history."""
        spec = WorkloadSpec(requests=6, max_new_tokens=8, seed=7,
                            simulate=False, pool=3)
        expected, _ = run_workload_tokens(spec)
        actual, failed = run_workload_tokens(replace(spec, fault_rate=0.10))
        assert failed == []
        assert actual == expected

    def test_faulty_run_keeps_clean_assignment_sequence(self):
        """The fault layer must not perturb routing: the chaos run assigns
        requests to the same members as the clean run (retries/preemptions
        re-route sticky, fallback ticks observe nothing)."""
        spec = WorkloadSpec(requests=6, max_new_tokens=8, seed=7,
                            simulate=False, pool=3)
        reset_observability()
        clean = run_observed_workload(spec)
        clean_assigned = REGISTRY.get("repro.router.assignments").value
        reset_observability()
        chaotic = run_observed_workload(replace(spec, fault_rate=0.10))
        assert chaotic.failed_outputs() == []
        assert (REGISTRY.get("repro.router.assignments").value
                == clean_assigned)
        assert REGISTRY.get("repro.faults.checks").value > 0


class TestPerRequestParity:
    @pytest.mark.parametrize("seed", [3, 7, 13])
    def test_per_request_chaos_is_lossless_and_leak_free(self, llm, rng,
                                                         seed):
        """Per-request serving with a memory pool under random faults:
        same tokens as the clean run, reservations fully drained."""
        config = GenerationConfig(max_new_tokens=8, stop_on_eos=False)
        prompts = [make_prompt(rng, length=4) for _ in range(4)]

        clean = RequestManager(speculative_factory(llm), max_batch_size=3)
        clean_ids = [clean.submit(p, config) for p in prompts]
        clean.run_until_complete()
        expected = [clean.output_for(rid).tokens for rid in clean_ids]

        pool = KvMemoryPool(budget_bytes=10**9, model=SMALL_CONFIG)
        chaotic = RequestManager(
            speculative_factory(llm), max_batch_size=3, memory_pool=pool,
            injector=FaultInjector(rate=0.05, seed=seed),
        )
        ids = [chaotic.submit(p, config) for p in prompts]
        chaotic.run_until_complete(max_iterations=2000)
        assert chaotic.failed_outputs() == []
        assert [chaotic.output_for(rid).tokens for rid in ids] == expected
        assert pool.reserved_bytes == 0
        assert pool.num_reservations == 0
