"""Tests for the request manager: continuous batching invariants."""

import numpy as np
import pytest

from repro.engine.generation import GenerationConfig
from repro.model.coupled import CoupledSSM
from repro.serving.manager import RequestManager
from repro.serving.request import RequestState
from repro.serving.session import IncrementalSession, SpeculativeSession
from repro.speculate.expansion import ExpansionConfig
from repro.speculate.speculator import Speculator
from tests.conftest import make_prompt


def incremental_factory(llm):
    return lambda req: IncrementalSession(req, llm)


def speculative_factory(llm):
    def factory(req):
        return SpeculativeSession(
            req,
            llm,
            lambda: Speculator(
                [CoupledSSM(llm, alignment=0.9, seed=7, noise_scale=2.0)],
                ExpansionConfig((1, 2, 1)),
            ),
        )

    return factory


class TestSubmission:
    def test_ids_are_unique_and_sequential(self, llm, rng):
        mgr = RequestManager(incremental_factory(llm))
        ids = [mgr.submit(make_prompt(rng)) for _ in range(3)]
        assert ids == [0, 1, 2]
        assert mgr.num_waiting == 3

    def test_rejects_bad_batch_size(self, llm):
        with pytest.raises(ValueError):
            RequestManager(incremental_factory(llm), max_batch_size=0)


class TestContinuousBatching:
    def test_batch_never_exceeds_limit(self, llm, rng):
        mgr = RequestManager(incremental_factory(llm), max_batch_size=2)
        for _ in range(5):
            mgr.submit(make_prompt(rng), GenerationConfig(max_new_tokens=4,
                                                          stop_on_eos=False))
        while mgr.has_work:
            stats = mgr.run_iteration()
            assert stats.batch_size <= 2

    def test_new_requests_join_mid_flight(self, llm, rng):
        """A request submitted later is admitted as soon as a slot frees —
        without waiting for the whole batch to finish."""
        mgr = RequestManager(incremental_factory(llm), max_batch_size=2)
        mgr.submit(make_prompt(rng), GenerationConfig(max_new_tokens=2,
                                                      stop_on_eos=False))
        mgr.submit(make_prompt(rng), GenerationConfig(max_new_tokens=8,
                                                      stop_on_eos=False))
        mgr.run_iteration()
        late = mgr.submit(make_prompt(rng),
                          GenerationConfig(max_new_tokens=2,
                                           stop_on_eos=False))
        outputs = mgr.run_until_complete()
        late_output = mgr.output_for(late)
        # The long request (8 tokens) must still be running when the late
        # one was admitted and finished.
        long_output = mgr.output_for(1)
        assert late_output.finish_iteration < long_output.finish_iteration

    def test_all_requests_complete_with_full_budget(self, llm, rng):
        mgr = RequestManager(speculative_factory(llm), max_batch_size=3)
        ids = [
            mgr.submit(make_prompt(rng),
                       GenerationConfig(max_new_tokens=6, stop_on_eos=False))
            for _ in range(5)
        ]
        outputs = mgr.run_until_complete()
        assert len(outputs) == 5
        for request_id in ids:
            assert len(mgr.output_for(request_id).tokens) == 6

    def test_speculative_serving_matches_engine_output(self, llm, rng):
        """Greedy serving through the manager equals direct engine output."""
        from repro.engine.incremental import IncrementalEngine

        prompt = make_prompt(rng, length=5)
        config = GenerationConfig(max_new_tokens=10)
        mgr = RequestManager(speculative_factory(llm), max_batch_size=2)
        rid = mgr.submit(prompt, config)
        mgr.run_until_complete()
        served = mgr.output_for(rid).tokens
        reference = IncrementalEngine(llm).generate(prompt, config).tokens
        assert served == reference

    def test_iteration_stats_accounting(self, llm, rng):
        mgr = RequestManager(incremental_factory(llm), max_batch_size=4)
        for _ in range(3):
            mgr.submit(make_prompt(rng),
                       GenerationConfig(max_new_tokens=3, stop_on_eos=False))
        mgr.run_until_complete()
        total_emitted = sum(s.tokens_emitted for s in mgr.iteration_stats)
        total_tokens = sum(
            len(o.tokens) for o in mgr.finished_outputs()
        )
        assert total_emitted == total_tokens
        assert sum(s.admitted for s in mgr.iteration_stats) == 3
        assert sum(s.finished for s in mgr.iteration_stats) == 3

    def test_speculative_finishes_in_fewer_iterations(self, llm, rng):
        prompt = make_prompt(rng, length=5)
        config = GenerationConfig(max_new_tokens=12, stop_on_eos=False)
        inc = RequestManager(incremental_factory(llm))
        inc.submit(prompt, config)
        inc.run_until_complete()
        spec = RequestManager(speculative_factory(llm))
        spec.submit(prompt, config)
        spec.run_until_complete()
        assert spec.iteration <= inc.iteration


class TestOutputs:
    def test_output_for_unknown_raises(self, llm):
        mgr = RequestManager(incremental_factory(llm))
        with pytest.raises(KeyError):
            mgr.output_for(99)

    def test_output_for_unfinished_raises(self, llm, rng):
        mgr = RequestManager(incremental_factory(llm))
        rid = mgr.submit(make_prompt(rng))
        with pytest.raises(ValueError, match="not finished"):
            mgr.output_for(rid)

    def test_first_token_iteration_recorded(self, llm, rng):
        mgr = RequestManager(incremental_factory(llm))
        rid = mgr.submit(make_prompt(rng),
                         GenerationConfig(max_new_tokens=3,
                                          stop_on_eos=False))
        mgr.run_until_complete()
        output = mgr.output_for(rid)
        assert output.first_token_iteration == 0
        assert output.finish_iteration >= output.first_token_iteration

    def test_session_freed_after_finish(self, llm, rng):
        mgr = RequestManager(incremental_factory(llm))
        rid = mgr.submit(make_prompt(rng),
                         GenerationConfig(max_new_tokens=2,
                                          stop_on_eos=False))
        mgr.run_until_complete()
        assert mgr._tracked[rid].session is None
        assert mgr._tracked[rid].request.state is RequestState.FINISHED
