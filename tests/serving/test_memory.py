"""Tests for KV memory accounting and memory-gated admission."""

import pytest

from repro.engine.generation import GenerationConfig
from repro.model.config import ModelConfig
from repro.serving.manager import RequestManager
from repro.serving.memory import KvMemoryPool, speculation_headroom
from repro.serving.session import IncrementalSession
from tests.conftest import SMALL_CONFIG, make_prompt


class TestKvMemoryPool:
    @pytest.fixture()
    def pool(self):
        # Small model: kv bytes/token = 2 * 2 layers * 32 d_model * 2 = 256.
        return KvMemoryPool(budget_bytes=256 * 100, model=SMALL_CONFIG)

    def test_bytes_per_token(self, pool):
        assert pool.bytes_per_token == 2 * 2 * 32 * 2

    def test_reserve_and_release(self, pool):
        pool.reserve(1, tokens=40)
        assert pool.num_reservations == 1
        assert pool.available_bytes == pool.budget_bytes - 40 * 256
        pool.release(1)
        assert pool.available_bytes == pool.budget_bytes

    def test_over_reserve_raises(self, pool):
        pool.reserve(1, tokens=80)
        with pytest.raises(MemoryError, match="exhausted"):
            pool.reserve(2, tokens=40)

    def test_double_reserve_raises(self, pool):
        pool.reserve(1, tokens=10)
        with pytest.raises(ValueError, match="already"):
            pool.reserve(1, tokens=10)

    def test_release_unknown_raises(self, pool):
        with pytest.raises(KeyError):
            pool.release(7)

    def test_can_admit(self, pool):
        assert pool.can_admit(100)
        assert not pool.can_admit(101)

    def test_max_concurrent_requests(self, pool):
        assert pool.max_concurrent_requests(25) == 4

    def test_rejects_zero_budget(self):
        with pytest.raises(ValueError):
            KvMemoryPool(0, SMALL_CONFIG)

    def test_headroom_helper(self):
        assert speculation_headroom(12) == 12
        with pytest.raises(ValueError):
            speculation_headroom(-1)

    def test_accounting_is_integer(self, pool):
        """Regression: reserved/available bytes are exact ints, so repeated
        reserve/release cycles can never drift (float accumulation would)."""
        assert isinstance(pool.reserved_bytes, int)
        assert isinstance(pool.available_bytes, int)
        assert isinstance(pool.bytes_per_token, int)
        for cycle in range(200):
            pool.reserve(cycle, tokens=7)
            pool.release(cycle)
        assert pool.reserved_bytes == 0
        assert pool.available_bytes == pool.budget_bytes

    def test_float_budget_truncated_to_int(self):
        pool = KvMemoryPool(budget_bytes=1e6, model=SMALL_CONFIG)
        assert pool.budget_bytes == 1_000_000
        assert isinstance(pool.budget_bytes, int)


class TestMemoryGatedAdmission:
    def _manager(self, llm, pool):
        return RequestManager(
            lambda req: IncrementalSession(req, llm),
            max_batch_size=8,
            memory_pool=pool,
        )

    def test_admission_limited_by_memory_not_batch(self, llm, rng):
        """Budget for ~2 concurrent requests gates a batch limit of 8."""
        per_request = 10 + 4  # prompt + max_new
        pool = KvMemoryPool(
            budget_bytes=2 * per_request * 256 + 10, model=SMALL_CONFIG
        )
        mgr = self._manager(llm, pool)
        for _ in range(4):
            mgr.submit(make_prompt(rng, length=10),
                       GenerationConfig(max_new_tokens=4, stop_on_eos=False))
        stats = mgr.run_iteration()
        assert stats.batch_size == 2
        mgr.run_until_complete()
        assert len(mgr.finished_outputs()) == 4
        assert pool.num_reservations == 0

    def test_small_requests_skip_ahead(self, llm, rng):
        """A large request that does not fit is skipped, not head-of-line
        blocking: a smaller later request is admitted instead."""
        per_token = 256
        pool = KvMemoryPool(budget_bytes=20 * per_token, model=SMALL_CONFIG)
        mgr = self._manager(llm, pool)
        big = mgr.submit(make_prompt(rng, length=10),
                         GenerationConfig(max_new_tokens=30,
                                          stop_on_eos=False))
        small = mgr.submit(make_prompt(rng, length=5),
                           GenerationConfig(max_new_tokens=5,
                                            stop_on_eos=False))
        mgr.run_iteration()
        assert mgr._tracked[small].request.state.value == "running"
        assert mgr._tracked[big].request.state.value == "waiting"

    def test_impossible_request_raises(self, llm, rng):
        pool = KvMemoryPool(budget_bytes=5 * 256, model=SMALL_CONFIG)
        mgr = self._manager(llm, pool)
        mgr.submit(make_prompt(rng, length=10),
                   GenerationConfig(max_new_tokens=30, stop_on_eos=False))
        with pytest.raises(MemoryError, match="never fit"):
            mgr.run_until_complete()

    def test_headroom_reserved(self, llm, rng):
        pool = KvMemoryPool(budget_bytes=100 * 256, model=SMALL_CONFIG)
        mgr = RequestManager(
            lambda req: IncrementalSession(req, llm),
            memory_pool=pool,
            kv_headroom=12,
        )
        mgr.submit(make_prompt(rng, length=8),
                   GenerationConfig(max_new_tokens=4, stop_on_eos=False))
        mgr.run_iteration()
        assert pool.reserved_bytes == (8 + 4 + 12) * 256

    def test_drained_run_returns_to_exact_zero(self, llm, rng):
        """After a fully drained run the pool holds exactly 0 reserved
        bytes — integer accounting, no epsilon tolerance."""
        pool = KvMemoryPool(budget_bytes=256 * 200, model=SMALL_CONFIG)
        mgr = self._manager(llm, pool)
        for _ in range(6):
            mgr.submit(make_prompt(rng, length=6),
                       GenerationConfig(max_new_tokens=5, stop_on_eos=False))
        mgr.run_until_complete()
        assert pool.reserved_bytes == 0
        assert pool.available_bytes == pool.budget_bytes
        assert pool.num_reservations == 0
