"""Integration: the serving runtime over a shared paged KV pool."""

import pytest

from repro.engine.generation import GenerationConfig
from repro.model.coupled import CoupledSSM
from repro.model.paged_cache import PagedKVPool
from repro.serving.manager import RequestManager
from repro.serving.session import IncrementalSession, SpeculativeSession
from repro.speculate.expansion import ExpansionConfig
from repro.speculate.speculator import Speculator
from tests.conftest import SMALL_CONFIG, make_prompt


@pytest.fixture()
def pool():
    return PagedKVPool(SMALL_CONFIG, num_blocks=96, block_size=8)


class TestPagedServing:
    def test_blocks_recycled_across_requests(self, llm, pool, rng):
        mgr = RequestManager(
            lambda req: IncrementalSession(req, llm,
                                           cache_factory=pool.new_sequence),
            max_batch_size=2,
        )
        for _ in range(6):
            mgr.submit(make_prompt(rng, length=8),
                       GenerationConfig(max_new_tokens=6, stop_on_eos=False))
        outputs = mgr.run_until_complete()
        assert len(outputs) == 6
        # Every block returned to the pool after the queue drained.
        assert pool.used_blocks == 0

    def test_pool_smaller_than_total_demand(self, llm, pool, rng):
        """The pool only needs to hold the *concurrent* batch, not all
        requests — continuous batching plus block recycling make a small
        pool serve a long queue."""
        demand_per_request = 8 + 6  # prompt + generation
        total_demand_blocks = 10 * ((demand_per_request // 8) + 1)
        small_pool = PagedKVPool(SMALL_CONFIG, num_blocks=8, block_size=8)
        assert small_pool.num_blocks < total_demand_blocks
        mgr = RequestManager(
            lambda req: IncrementalSession(
                req, llm, cache_factory=small_pool.new_sequence
            ),
            max_batch_size=2,
        )
        for _ in range(10):
            mgr.submit(make_prompt(rng, length=8),
                       GenerationConfig(max_new_tokens=6, stop_on_eos=False))
        outputs = mgr.run_until_complete()
        assert len(outputs) == 10
        assert small_pool.used_blocks == 0

    def test_speculative_sessions_on_paged_pool(self, llm, pool, rng):
        """Tree verification (append + compaction) works under serving on
        paged storage, and output matches the contiguous-cache manager."""

        def paged_factory(req):
            return SpeculativeSession(
                req, llm,
                lambda: Speculator(
                    [CoupledSSM(llm, alignment=0.9, seed=7, noise_scale=2.0)],
                    ExpansionConfig((1, 2, 1)),
                ),
                cache_factory=pool.new_sequence,
            )

        def contiguous_factory(req):
            return SpeculativeSession(
                req, llm,
                lambda: Speculator(
                    [CoupledSSM(llm, alignment=0.9, seed=7, noise_scale=2.0)],
                    ExpansionConfig((1, 2, 1)),
                ),
            )

        prompt = make_prompt(rng, length=6)
        config = GenerationConfig(max_new_tokens=10)
        paged_mgr = RequestManager(paged_factory)
        rid_p = paged_mgr.submit(prompt, config)
        paged_mgr.run_until_complete()
        contig_mgr = RequestManager(contiguous_factory)
        rid_c = contig_mgr.submit(prompt, config)
        contig_mgr.run_until_complete()
        assert paged_mgr.output_for(rid_p).tokens == \
            contig_mgr.output_for(rid_c).tokens
        assert pool.used_blocks == 0
