"""Tests for per-request decode sessions."""

import numpy as np
import pytest

from repro.engine.generation import GenerationConfig
from repro.model.coupled import CoupledSSM
from repro.serving.request import Request
from repro.serving.session import IncrementalSession, SpeculativeSession
from repro.speculate.expansion import ExpansionConfig
from repro.speculate.speculator import Speculator
from tests.conftest import make_prompt


def make_request(prompt, max_new=8, rid=0):
    return Request(
        request_id=rid,
        prompt=np.asarray(prompt),
        config=GenerationConfig(max_new_tokens=max_new, stop_on_eos=False),
    )


def spec_session(llm, request):
    return SpeculativeSession(
        request,
        llm,
        lambda: Speculator(
            [CoupledSSM(llm, alignment=0.9, seed=7, noise_scale=2.0)],
            ExpansionConfig((1, 2, 1)),
        ),
    )


class TestIncrementalSession:
    def test_one_token_per_step(self, llm, rng):
        session = IncrementalSession(make_request(make_prompt(rng)), llm)
        emitted = session.step()
        assert len(emitted) == 1
        assert session.tokens == emitted

    def test_finishes_at_budget(self, llm, rng):
        session = IncrementalSession(
            make_request(make_prompt(rng), max_new=3), llm
        )
        steps = 0
        while not session.finished:
            session.step()
            steps += 1
        assert steps == 3
        assert len(session.tokens) == 3

    def test_step_after_finish_is_noop(self, llm, rng):
        session = IncrementalSession(
            make_request(make_prompt(rng), max_new=1), llm
        )
        session.step()
        assert session.finished
        assert session.step() == []

    def test_matches_engine(self, llm, rng):
        from repro.engine.incremental import IncrementalEngine

        prompt = make_prompt(rng, length=5)
        session = IncrementalSession(make_request(prompt, max_new=6), llm)
        while not session.finished:
            session.step()
        engine_result = IncrementalEngine(llm).generate(
            prompt, GenerationConfig(max_new_tokens=6, stop_on_eos=False)
        )
        assert session.tokens == engine_result.tokens


class TestSpeculativeSession:
    def test_can_emit_multiple_tokens_per_step(self, llm, rng):
        prompt = make_prompt(rng, length=5)
        session = spec_session(llm, make_request(prompt, max_new=12))
        emitted = session.step()
        assert 1 <= len(emitted) <= 4  # depth-3 tree + bonus

    def test_matches_incremental_greedy(self, llm, rng):
        prompt = make_prompt(rng, length=5)
        inc = IncrementalSession(make_request(prompt, max_new=10), llm)
        spec = spec_session(llm, make_request(prompt, max_new=10))
        while not inc.finished:
            inc.step()
        while not spec.finished:
            spec.step()
        assert spec.tokens == inc.tokens

    def test_respects_budget_exactly(self, llm, rng):
        session = spec_session(llm, make_request(make_prompt(rng), max_new=5))
        while not session.finished:
            session.step()
        assert len(session.tokens) == 5

    def test_traces_recorded(self, llm, rng):
        session = spec_session(llm, make_request(make_prompt(rng), max_new=8))
        session.step()
        assert len(session.steps) == 1
        assert session.steps[0].tree_size >= 1
        assert session.steps[0].ssm_steps == 3
