"""Manager fault tolerance: preemption, bounded retry, terminal failure.

These tests drive the failure paths deterministically (scripted injector
decisions) and assert the two load-bearing invariants: resources are fully
reclaimed (KV reservations, arena slots), and under greedy verification
every surviving request's output is bit-identical to a fault-free run.
"""

import pytest

from repro.engine.generation import GenerationConfig
from repro.engine.incremental import IncrementalEngine
from repro.faults import (
    FaultInjector,
    FaultKind,
    TransientSessionFault,
)
from repro.serving.manager import RequestManager
from repro.serving.memory import KvMemoryPool
from repro.serving.policies import preempt_oldest_first
from repro.serving.request import RequestState
from tests.conftest import SMALL_CONFIG, make_prompt
from tests.serving.test_manager import incremental_factory, speculative_factory


class ScriptedInjector(FaultInjector):
    """Deterministic test double: fires per-kind scripted decisions."""

    def __init__(self, script):
        super().__init__(rate=0.0)
        self._script = {kind: list(flags) for kind, flags in script.items()}

    def _decide(self, kind):
        flags = self._script.get(kind)
        return bool(flags.pop(0)) if flags else False


def reference_tokens(llm, prompt, config):
    return IncrementalEngine(llm).generate(prompt, config).tokens


class TestPreemption:
    def test_preempt_requeues_and_recomputes_bit_identically(self, llm, rng):
        """A preempted request's final output equals the unpreempted run."""
        prompt = make_prompt(rng, length=5)
        config = GenerationConfig(max_new_tokens=12, stop_on_eos=False)
        mgr = RequestManager(speculative_factory(llm), max_batch_size=2)
        rid = mgr.submit(prompt, config)
        for _ in range(2):  # cannot finish: 2 ticks emit at most 8 tokens
            mgr.run_iteration()
        committed_before = list(mgr._tracked[rid].session.tokens)
        assert committed_before, "need progress before preempting"
        mgr.preempt(rid)
        assert mgr._tracked[rid].request.state is RequestState.WAITING
        assert mgr._tracked[rid].session is None
        mgr.run_until_complete()
        output = mgr.output_for(rid)
        assert output.preemptions == 1
        assert output.tokens == reference_tokens(llm, prompt, config)
        assert output.tokens[: len(committed_before)] == committed_before

    def test_preempt_releases_kv_reservation(self, llm, rng):
        pool = KvMemoryPool(budget_bytes=10**9, model=SMALL_CONFIG)
        mgr = RequestManager(incremental_factory(llm), memory_pool=pool)
        rid = mgr.submit(make_prompt(rng),
                         GenerationConfig(max_new_tokens=6,
                                          stop_on_eos=False))
        mgr.run_iteration()
        assert pool.num_reservations == 1
        mgr.preempt(rid)
        assert pool.num_reservations == 0
        assert pool.reserved_bytes == 0
        mgr.run_until_complete()
        assert pool.reserved_bytes == 0

    def test_preempt_non_running_raises(self, llm, rng):
        mgr = RequestManager(incremental_factory(llm))
        rid = mgr.submit(make_prompt(rng))
        with pytest.raises(ValueError, match="not running"):
            mgr.preempt(rid)
        with pytest.raises(KeyError):
            mgr.preempt(99)

    def test_kv_pressure_fault_preempts_one_victim(self, llm, rng):
        """An injected pressure spike sheds the newest request, which then
        finishes with unchanged output."""
        config = GenerationConfig(max_new_tokens=8, stop_on_eos=False)
        prompts = [make_prompt(rng, length=4) for _ in range(2)]
        injector = ScriptedInjector({FaultKind.KV_PRESSURE: [0, 0, 1]})
        mgr = RequestManager(incremental_factory(llm), max_batch_size=2,
                             injector=injector)
        ids = [mgr.submit(p, config) for p in prompts]
        mgr.run_until_complete()
        victim = mgr.output_for(ids[1])  # newest-first default policy
        assert victim.preemptions == 1
        assert mgr.output_for(ids[0]).preemptions == 0
        for rid, prompt in zip(ids, prompts):
            assert mgr.output_for(rid).tokens == \
                reference_tokens(llm, prompt, config)

    def test_preemption_policy_override(self, llm, rng):
        config = GenerationConfig(max_new_tokens=8, stop_on_eos=False)
        injector = ScriptedInjector({FaultKind.KV_PRESSURE: [0, 0, 1]})
        mgr = RequestManager(incremental_factory(llm), max_batch_size=2,
                             injector=injector,
                             preemption_policy=preempt_oldest_first)
        ids = [mgr.submit(make_prompt(rng, length=4), config)
               for _ in range(2)]
        mgr.run_until_complete()
        assert mgr.output_for(ids[0]).preemptions == 1
        assert mgr.output_for(ids[1]).preemptions == 0


class TestBoundedRetry:
    def test_transient_fault_backs_off_then_recovers(self, llm, rng):
        prompt = make_prompt(rng, length=4)
        config = GenerationConfig(max_new_tokens=6, stop_on_eos=False)
        injector = ScriptedInjector({FaultKind.SESSION: [0, 1]})
        mgr = RequestManager(incremental_factory(llm), injector=injector)
        rid = mgr.submit(prompt, config)
        mgr.run_until_complete()
        output = mgr.output_for(rid)
        assert output.retries == 1
        assert output.error is None
        assert output.tokens == reference_tokens(llm, prompt, config)
        # The faulted iteration advanced nothing: one extra iteration beyond
        # the fault-free finish (iteration 5 for 6 one-token iterations).
        assert output.finish_iteration == 5 + 1

    def test_backoff_skips_iterations_exponentially(self, llm, rng):
        """Consecutive faults double the cooldown: 1, 2, 4 iterations."""
        injector = ScriptedInjector({FaultKind.SESSION: [1, 1]})
        mgr = RequestManager(incremental_factory(llm), injector=injector,
                             max_session_retries=3)
        rid = mgr.submit(make_prompt(rng),
                         GenerationConfig(max_new_tokens=2,
                                          stop_on_eos=False))
        mgr.run_iteration()  # fault 1 -> cooldown until iteration 1
        tracked = mgr._tracked[rid]
        assert tracked.cooldown_until == 1
        mgr.run_iteration()  # fault 2 -> cooldown until iteration 3
        assert tracked.cooldown_until == 3
        mgr.run_iteration()  # iteration 2: still cooling down, no check
        assert injector.checks[FaultKind.SESSION] == 2
        mgr.run_until_complete()
        assert mgr.output_for(rid).retries == 2

    def test_exhausted_retries_fail_terminally(self, llm, rng):
        injector = FaultInjector(rates={FaultKind.SESSION: 1.0})
        mgr = RequestManager(incremental_factory(llm), injector=injector,
                             max_session_retries=2)
        rid = mgr.submit(make_prompt(rng),
                         GenerationConfig(max_new_tokens=4,
                                          stop_on_eos=False))
        outputs = mgr.run_until_complete()
        assert outputs == []  # nothing finished
        failed = mgr.failed_outputs()
        assert [o.request_id for o in failed] == [rid]
        assert mgr._tracked[rid].request.state is RequestState.FAILED
        assert "retries" in failed[0].error
        assert failed[0].retries == 3  # 2 tolerated + the fatal one
        assert failed[0].tokens == []  # never advanced

    def test_failure_releases_resources(self, llm, rng):
        pool = KvMemoryPool(budget_bytes=10**9, model=SMALL_CONFIG)
        injector = FaultInjector(rates={FaultKind.SESSION: 1.0})
        mgr = RequestManager(incremental_factory(llm), memory_pool=pool,
                             injector=injector, max_session_retries=1)
        rid = mgr.submit(make_prompt(rng))
        mgr.run_until_complete()
        assert mgr._tracked[rid].session is None
        assert pool.reserved_bytes == 0
        assert pool.num_reservations == 0

    def test_streak_resets_on_successful_advance(self, llm, rng):
        """Retries are consecutive, not cumulative: spaced-out faults never
        exhaust the budget."""
        injector = ScriptedInjector(
            {FaultKind.SESSION: [1, 0, 1, 0, 1, 0, 1, 0]}
        )
        mgr = RequestManager(incremental_factory(llm), injector=injector,
                             max_session_retries=1)
        rid = mgr.submit(make_prompt(rng),
                         GenerationConfig(max_new_tokens=4,
                                          stop_on_eos=False))
        mgr.run_until_complete()
        output = mgr.output_for(rid)
        assert output.error is None
        assert output.retries >= 2  # several faults absorbed, none fatal


class TestAdmissionFaults:
    def test_factory_exception_releases_reservation(self, llm, rng):
        """Regression: a failing session factory must not leak its KV
        reservation."""
        pool = KvMemoryPool(budget_bytes=10**9, model=SMALL_CONFIG)

        def exploding_factory(request):
            raise RuntimeError("model load failed")

        mgr = RequestManager(exploding_factory, memory_pool=pool)
        mgr.submit(make_prompt(rng))
        with pytest.raises(RuntimeError, match="model load failed"):
            mgr.run_iteration()
        assert pool.reserved_bytes == 0
        assert pool.num_reservations == 0

    def test_transient_factory_fault_retries_with_backoff(self, llm, rng):
        """A FaultError from the factory keeps the request WAITING and
        re-admits it after the cooldown."""
        pool = KvMemoryPool(budget_bytes=10**9, model=SMALL_CONFIG)
        attempts = []
        inner = incremental_factory(llm)

        def flaky_factory(request):
            attempts.append(request.request_id)
            if len(attempts) == 1:
                raise TransientSessionFault("injected")
            return inner(request)

        prompt = make_prompt(rng)
        config = GenerationConfig(max_new_tokens=4, stop_on_eos=False)
        mgr = RequestManager(flaky_factory, memory_pool=pool)
        rid = mgr.submit(prompt, config)
        mgr.run_until_complete()
        assert len(attempts) == 2
        assert pool.reserved_bytes == 0
        output = mgr.output_for(rid)
        assert output.retries == 1
        assert output.tokens == reference_tokens(llm, prompt, config)


class TestDrainedAccounting:
    def test_reserved_bytes_exactly_zero_after_chaotic_drain(self, llm, rng):
        """Integer KV accounting: many reserve/release/preempt cycles end at
        exactly 0 reserved bytes, not a float epsilon."""
        pool = KvMemoryPool(budget_bytes=10**9, model=SMALL_CONFIG)
        injector = FaultInjector(rate=0.2, seed=13)
        mgr = RequestManager(speculative_factory(llm), max_batch_size=3,
                             memory_pool=pool, injector=injector)
        for _ in range(5):
            mgr.submit(make_prompt(rng, length=4),
                       GenerationConfig(max_new_tokens=6, stop_on_eos=False))
        mgr.run_until_complete(max_iterations=2000)
        assert pool.reserved_bytes == 0
        assert isinstance(pool.reserved_bytes, int)
        assert pool.num_reservations == 0
