"""Backend parity suite: every verification backend emits the same tokens.

The refactor's core promise: per-request, fused-block, and fused-dense
verification are *execution strategies*, not semantics.  For the same
seeds, the same requests come out token-identical under both greedy and
stochastic sampling — including when a request exhausts its context
mid-batch and is retired by the tree fitter.

Run standalone with ``pytest -m serving``.
"""

import os

import numpy as np
import pytest

from repro.engine.generation import GenerationConfig
from repro.engine.pipeline import FusedBackend, PerRequestBackend
from repro.model.coupled import CoupledSSM
from repro.model.sampling import SamplingConfig
from repro.serving.batched_manager import BatchedRequestManager
from repro.serving.manager import RequestManager
from repro.serving.session import SpeculativeSession
from repro.speculate.expansion import ExpansionConfig
from repro.speculate.speculator import Speculator
from tests.conftest import make_prompt

pytestmark = pytest.mark.serving

# The shared verification-rng seed.  The nightly workflow sweeps this via
# REPRO_PARITY_SEED to exercise stochastic parity on fresh draw sequences.
SEED = int(os.environ.get("REPRO_PARITY_SEED", "11"))

GREEDY = SamplingConfig(greedy=True)
STOCHASTIC = SamplingConfig(temperature=1.0)


def spec_factory(llm):
    def factory(request):
        return SpeculativeSession(
            request, llm,
            lambda: Speculator(
                [CoupledSSM(llm, alignment=0.9, seed=7, noise_scale=2.0)],
                ExpansionConfig((1, 2, 1)),
            ),
        )

    return factory


def make_backend(kind, llm, sampling):
    """Build a manager-level backend with its own seeded verification rng.

    All three consume the shared stream in batch order, so for the same
    seed the stochastic draws line up across backends.
    """
    rng = np.random.default_rng(SEED)
    if kind == "per-request":
        return PerRequestBackend(llm, sampling=sampling, rng=rng)
    return FusedBackend(llm, sampling=sampling, rng=rng, mode=kind)


BACKENDS = ["per-request", "block", "dense"]


def run_workload(llm, kind, sampling, prompts, configs):
    manager = RequestManager(
        spec_factory(llm),
        max_batch_size=len(prompts),
        backend=make_backend(kind, llm, sampling),
    )
    ids = [manager.submit(p, c) for p, c in zip(prompts, configs)]
    manager.run_until_complete()
    return manager, [manager.output_for(rid).tokens for rid in ids]


class TestBackendParity:
    @pytest.mark.parametrize("sampling", [GREEDY, STOCHASTIC],
                             ids=["greedy", "stochastic"])
    def test_all_backends_emit_identical_tokens(self, llm, rng, sampling):
        prompts = [make_prompt(rng, length=4 + i) for i in range(4)]
        configs = [
            GenerationConfig(max_new_tokens=8, sampling=sampling,
                             stop_on_eos=False)
            for _ in prompts
        ]
        results = {
            kind: run_workload(llm, kind, sampling, prompts, configs)[1]
            for kind in BACKENDS
        }
        assert results["per-request"] == results["block"]
        assert results["per-request"] == results["dense"]

    @pytest.mark.parametrize("sampling", [GREEDY, STOCHASTIC],
                             ids=["greedy", "stochastic"])
    def test_context_exhaustion_mid_batch(self, llm, rng, sampling):
        """One request runs out of context while its batchmates keep going:
        the fitter returns ``None``, the state is retired, and every
        backend agrees on what was emitted before retirement."""
        long_prompt = make_prompt(rng, length=llm.config.max_seq_len - 12)
        short_prompt = make_prompt(rng, length=5)
        prompts = [long_prompt, short_prompt]
        configs = [
            GenerationConfig(max_new_tokens=500, sampling=sampling,
                             stop_on_eos=False),
            GenerationConfig(max_new_tokens=20, sampling=sampling,
                             stop_on_eos=False),
        ]
        results = {}
        for kind in BACKENDS:
            manager, tokens = run_workload(llm, kind, sampling, prompts,
                                           configs)
            results[kind] = tokens
            # The long request was cut off by context, not by its budget.
            assert 0 < len(tokens[0]) < 500
            assert len(tokens[1]) == 20
        assert results["per-request"] == results["block"]
        assert results["per-request"] == results["dense"]

    def test_per_request_backend_matches_legacy_manager(self, llm, rng):
        """The backend-driven manager reproduces per-session serving
        (greedy, where rng plumbing is irrelevant)."""
        prompts = [make_prompt(rng, length=5) for _ in range(3)]
        configs = [GenerationConfig(max_new_tokens=10, stop_on_eos=False)
                   for _ in prompts]
        _, via_backend = run_workload(llm, "per-request", GREEDY, prompts,
                                      configs)
        legacy = RequestManager(spec_factory(llm), max_batch_size=3)
        ids = [legacy.submit(p, c) for p, c in zip(prompts, configs)]
        legacy.run_until_complete()
        assert via_backend == [legacy.output_for(rid).tokens for rid in ids]


class TestIterationAccounting:
    def test_batch_size_counts_sessions_advanced(self, llm, rng):
        """Satellite: ``batch_size`` means "sessions advanced this
        iteration" in *both* managers — including the iteration in which a
        session finishes or is retired."""
        prompts = [make_prompt(rng, length=llm.config.max_seq_len - 10),
                   make_prompt(rng, length=5)]
        configs = [
            GenerationConfig(max_new_tokens=500, stop_on_eos=False),
            GenerationConfig(max_new_tokens=12, stop_on_eos=False),
        ]

        plain = RequestManager(spec_factory(llm), max_batch_size=2)
        for p, c in zip(prompts, configs):
            plain.submit(p, c)
        plain.run_until_complete()

        fused = BatchedRequestManager(spec_factory(llm), llm,
                                      max_batch_size=2)
        for p, c in zip(prompts, configs):
            fused.submit(p, c)
        fused.run_until_complete()

        plain_sizes = [s.batch_size for s in plain.iteration_stats]
        fused_sizes = [s.batch_size for s in fused.iteration_stats]
        assert plain_sizes == fused_sizes
        # The retiring iterations still count their sessions: every
        # iteration that finished requests processed at least that many.
        for stats in plain.iteration_stats + fused.iteration_stats:
            assert stats.batch_size >= stats.finished
            if stats.finished:
                assert stats.batch_size > 0

    def test_llm_tokens_scored_not_double_counted(self, llm, rng):
        """Satellite: per-session serving accumulates ``llm_tokens_scored``
        only when the session actually recorded a new trace.  A session
        retired by context exhaustion runs extra no-op iterations; those
        must not re-add its last trace."""
        prompt = make_prompt(rng, length=llm.config.max_seq_len - 8)
        config = GenerationConfig(max_new_tokens=500, stop_on_eos=False)
        manager = RequestManager(spec_factory(llm), max_batch_size=1)
        rid = manager.submit(prompt, config)
        manager.run_until_complete()
        output = manager.output_for(rid)

        from repro.engine.tree_spec import SpecInferEngine

        engine = SpecInferEngine(
            llm,
            Speculator(
                [CoupledSSM(llm, alignment=0.9, seed=7, noise_scale=2.0)],
                ExpansionConfig((1, 2, 1)),
            ),
        )
        result = engine.generate(prompt, config)
        assert output.tokens == result.tokens
        assert output.num_llm_steps == len(result.steps)
        assert sum(s.llm_tokens_scored for s in manager.iteration_stats) == \
            sum(s.llm_tokens_scored for s in result.steps)
