"""Router determinism suite: seeded routing is replayable and lossless.

The tentpole's serving contract: for the same seed and workload the router
produces a byte-identical assignment sequence, the greedy tokens match an
equivalent fixed-assignment run exactly, and none of it depends on which
verification backend executes the batch.

Run standalone with ``pytest -m serving``.
"""

import numpy as np
import pytest

from repro.engine.generation import GenerationConfig
from repro.engine.pipeline import FusedBackend, PerRequestBackend
from repro.obs import reset_observability
from repro.serving.manager import RequestManager
from repro.serving.session import make_routed_factory
from repro.speculate.pool import SpeculatorPool
from repro.speculate.router import RouterConfig, SpeculatorRouter
from tests.conftest import make_prompt

pytestmark = pytest.mark.serving

#: Mixed short/long prompt lengths so routing exercises several buckets.
PROMPT_LENS = (4, 30, 18, 6, 26, 12)


def make_prompts(seed=0):
    rng = np.random.default_rng(seed)
    return [make_prompt(rng, length=n) for n in PROMPT_LENS]


def build_pool(llm):
    return SpeculatorPool.from_coupled(
        llm, (0.9, 0.7, 0.5), names=("strong", "medium", "weak")
    )


def make_backend(kind, llm):
    if kind == "sessions":
        return None
    if kind == "per-request":
        return PerRequestBackend(llm, rng=np.random.default_rng(11))
    return FusedBackend(llm, rng=np.random.default_rng(11), mode=kind)


def run_routed(llm, backend_kind="block", policy="ucb", batch=3,
               tokens=8):
    """One routed serving run; returns (assignment history, token lists)."""
    reset_observability()
    pool = build_pool(llm)
    router = SpeculatorRouter(pool, RouterConfig(policy=policy, seed=5))
    manager = RequestManager(
        make_routed_factory(llm, pool, router),
        max_batch_size=batch,
        backend=make_backend(backend_kind, llm),
        router=router,
    )
    config = GenerationConfig(max_new_tokens=tokens, stop_on_eos=False)
    ids = [manager.submit(p, config) for p in make_prompts()]
    manager.run_until_complete()
    tokens_out = [manager.output_for(rid).tokens for rid in ids]
    return router.assignment_history, tokens_out, router


class TestRoutingDeterminism:
    @pytest.mark.parametrize("policy", ["ucb", "thompson"])
    def test_same_seed_same_assignments_and_tokens(self, llm, policy):
        first_history, first_tokens, _ = run_routed(llm, policy=policy)
        again_history, again_tokens, _ = run_routed(llm, policy=policy)
        assert first_history == again_history
        assert first_tokens == again_tokens

    def test_assignments_and_tokens_agree_across_backends(self, llm):
        """Per-request, fused-block, and fused-dense verification are
        bit-equivalent, so the acceptance evidence — and therefore every
        later routing decision — replays identically on all three."""
        results = {
            kind: run_routed(llm, backend_kind=kind)[:2]
            for kind in ("sessions", "per-request", "block", "dense")
        }
        baseline_history, baseline_tokens = results["block"]
        for kind, (history, tokens) in results.items():
            assert history == baseline_history, kind
            assert tokens == baseline_tokens, kind

    def test_learning_actually_happened(self, llm):
        history, _, router = run_routed(llm)
        assert len(history) == len(PROMPT_LENS)
        assert router.observations > 0


class TestRoutedParity:
    def test_routed_matches_every_fixed_assignment_run(self, llm):
        """Greedy token parity with each fixed-member run: routing decides
        who drafts, the verifier decides what is emitted."""
        _, routed_tokens, router = run_routed(llm, policy="ucb")
        for member in router.pool.names:
            _, fixed_tokens, _ = run_routed(llm, policy=f"fixed:{member}")
            assert fixed_tokens == routed_tokens, member

    def test_round_robin_matches_routed_tokens(self, llm):
        _, routed_tokens, _ = run_routed(llm)
        _, rr_tokens, _ = run_routed(llm, policy="round_robin")
        assert rr_tokens == routed_tokens
