"""Tests for admission-ordering policies and their manager integration."""

import numpy as np
import pytest

from repro.engine.generation import GenerationConfig
from repro.serving.manager import RequestManager
from repro.serving.policies import (
    fcfs,
    longest_job_first,
    make_priority_policy,
    preempt_newest_first,
    preempt_oldest_first,
    shortest_job_first,
)
from repro.serving.request import Request
from repro.serving.session import IncrementalSession
from tests.conftest import make_prompt


def make_request(rid, prompt_len, max_new, arrival=0):
    return Request(
        request_id=rid,
        prompt=np.arange(1, prompt_len + 1),
        config=GenerationConfig(max_new_tokens=max_new, stop_on_eos=False),
        arrival_iteration=arrival,
    )


class TestPolicyOrdering:
    def test_fcfs_orders_by_arrival(self):
        requests = [
            make_request(0, 5, 5, arrival=3),
            make_request(1, 5, 5, arrival=1),
            make_request(2, 5, 5, arrival=2),
        ]
        assert [r.request_id for r in fcfs(requests)] == [1, 2, 0]

    def test_sjf_orders_by_total_work(self):
        requests = [
            make_request(0, 10, 20),
            make_request(1, 2, 3),
            make_request(2, 5, 5),
        ]
        assert [r.request_id for r in shortest_job_first(requests)] == \
            [1, 2, 0]

    def test_ljf_is_reverse_of_sjf_on_distinct_lengths(self):
        requests = [
            make_request(0, 10, 20),
            make_request(1, 2, 3),
            make_request(2, 5, 5),
        ]
        sjf_ids = [r.request_id for r in shortest_job_first(requests)]
        ljf_ids = [r.request_id for r in longest_job_first(requests)]
        assert ljf_ids == sjf_ids[::-1]

    def test_sjf_ties_break_fcfs(self):
        requests = [
            make_request(5, 5, 5, arrival=2),
            make_request(3, 5, 5, arrival=1),
        ]
        assert [r.request_id for r in shortest_job_first(requests)] == [3, 5]

    def test_priority_policy(self):
        requests = [make_request(i, 5, 5) for i in range(3)]
        policy = make_priority_policy(lambda r: -r.request_id)
        assert [r.request_id for r in policy(requests)] == [2, 1, 0]

    def test_policies_do_not_mutate_input(self):
        requests = [make_request(1, 5, 5), make_request(0, 2, 2)]
        shortest_job_first(requests)
        assert [r.request_id for r in requests] == [1, 0]


class _KvSpike:
    """Stub injector: fire one KV-pressure spike, nothing else."""

    def __init__(self):
        self.fired = False

    def should_fire(self, kind, **_kw):
        from repro.faults import FaultKind

        if kind is FaultKind.KV_PRESSURE and not self.fired:
            self.fired = True
            return True
        return False


class TestPreemptionTieBreak:
    """Same-iteration admissions share an arrival iteration; victim choice
    must tie-break on request id, not sort stability."""

    def _same_iteration_batch(self):
        return [
            make_request(1, 5, 5, arrival=2),
            make_request(0, 5, 5, arrival=2),
            make_request(2, 5, 5, arrival=1),
        ]

    def test_newest_first_ties_on_higher_request_id(self):
        order = preempt_newest_first(self._same_iteration_batch())
        assert [r.request_id for r in order] == [1, 0, 2]

    def test_oldest_first_ties_on_lower_request_id(self):
        order = preempt_oldest_first(self._same_iteration_batch())
        assert [r.request_id for r in order] == [2, 0, 1]

    def test_orders_are_exact_reverses_under_ties(self):
        batch = self._same_iteration_batch()
        newest = [r.request_id for r in preempt_newest_first(batch)]
        oldest = [r.request_id for r in preempt_oldest_first(batch)]
        assert newest == oldest[::-1]

    @pytest.mark.parametrize("policy,victim", [
        (preempt_oldest_first, 0),
        (preempt_newest_first, 2),
    ])
    def test_manager_picks_tie_broken_victim(self, llm, rng, policy, victim):
        """Three requests admitted in the same iteration (identical
        arrival iteration): a KV-pressure spike must preempt the victim
        the tie-broken policy ordering names."""
        mgr = RequestManager(
            lambda req: IncrementalSession(req, llm),
            max_batch_size=3,
            preemption_policy=policy,
        )
        config = GenerationConfig(max_new_tokens=4, stop_on_eos=False)
        ids = [mgr.submit(make_prompt(rng, length=4), config)
               for _ in range(3)]
        assert ids == [0, 1, 2]
        mgr.run_iteration()  # admits all three at iteration 0
        mgr.injector = _KvSpike()
        stats = mgr.run_iteration()
        assert stats.preempted_ids == [victim]
        mgr.injector = None
        mgr.run_until_complete()
        assert mgr.output_for(victim).preemptions == 1


class TestZeroCommittedResume:
    def test_preempt_before_first_token_resumes_from_original_request(
            self, llm, rng):
        """A request preempted with zero committed tokens must re-admit
        from its *original* request view (full prompt, full budget) — the
        resume-view path would otherwise build a session from an empty
        committed list and a reduced budget."""
        config = GenerationConfig(max_new_tokens=5, stop_on_eos=False)
        prompt = make_prompt(rng, length=6)

        reference = RequestManager(
            lambda req: IncrementalSession(req, llm), max_batch_size=2)
        ref_id = reference.submit(prompt, config)
        reference.run_until_complete()
        expected = reference.output_for(ref_id).tokens

        mgr = RequestManager(
            lambda req: IncrementalSession(req, llm), max_batch_size=2)
        rid = mgr.submit(prompt, config)
        assert mgr.admit() == 1  # session exists, nothing decoded yet
        mgr.preempt(rid)
        tracked = mgr._tracked[rid]
        assert tracked.committed == []
        assert tracked.preemptions == 1
        # The factory view is the untouched original request.
        view = mgr._session_request(tracked)
        assert view is tracked.request
        assert view.config.max_new_tokens == 5
        mgr.run_until_complete()
        output = mgr.output_for(rid)
        assert output.tokens == expected
        assert output.preemptions == 1


class TestManagerWithPolicy:
    def test_sjf_finishes_short_jobs_first(self, llm, rng):
        mgr = RequestManager(
            lambda req: IncrementalSession(req, llm),
            max_batch_size=1,  # force sequential service
            policy=shortest_job_first,
        )
        long_id = mgr.submit(make_prompt(rng, length=4),
                             GenerationConfig(max_new_tokens=10,
                                              stop_on_eos=False))
        short_id = mgr.submit(make_prompt(rng, length=4),
                              GenerationConfig(max_new_tokens=2,
                                               stop_on_eos=False))
        mgr.run_until_complete()
        short = mgr.output_for(short_id)
        long = mgr.output_for(long_id)
        assert short.finish_iteration < long.finish_iteration

    def test_mean_completion_sjf_beats_fcfs(self, llm, rng):
        """The classic scheduling result, observed end-to-end."""
        from repro.serving.metrics import report_from_manager

        def run(policy):
            mgr = RequestManager(
                lambda req: IncrementalSession(req, llm),
                max_batch_size=1,
                policy=policy,
            )
            lengths = [8, 2, 5, 3]
            for n in lengths:
                mgr.submit(make_prompt(rng, length=4),
                           GenerationConfig(max_new_tokens=n,
                                            stop_on_eos=False))
            mgr.run_until_complete()
            return report_from_manager(mgr).mean_completion

        assert run(shortest_job_first) < run(fcfs)
