"""Tests for the fused-verification request manager."""

import numpy as np
import pytest

from repro.engine.generation import GenerationConfig
from repro.model.coupled import CoupledSSM
from repro.model.paged_cache import PagedKVPool
from repro.serving.batched_manager import BatchedRequestManager
from repro.serving.manager import RequestManager
from repro.serving.session import IncrementalSession, SpeculativeSession
from repro.speculate.expansion import ExpansionConfig
from repro.speculate.speculator import Speculator
from tests.conftest import SMALL_CONFIG, make_prompt


def spec_factory(llm, cache_factory=None):
    def factory(request):
        return SpeculativeSession(
            request, llm,
            lambda: Speculator(
                [CoupledSSM(llm, alignment=0.9, seed=7, noise_scale=2.0)],
                ExpansionConfig((1, 2, 1)),
            ),
            cache_factory=cache_factory,
        )

    return factory


class TestBatchedManager:
    def test_outputs_match_per_request_manager(self, llm, rng):
        """Fused-batch serving emits exactly what per-request serving does
        (greedy)."""
        prompts = [make_prompt(rng, length=5) for _ in range(4)]
        config = GenerationConfig(max_new_tokens=10)

        batched = BatchedRequestManager(spec_factory(llm), llm,
                                        max_batch_size=4)
        ids_b = [batched.submit(p, config) for p in prompts]
        batched.run_until_complete()

        plain = RequestManager(spec_factory(llm), max_batch_size=4)
        ids_p = [plain.submit(p, config) for p in prompts]
        plain.run_until_complete()

        for rid_b, rid_p in zip(ids_b, ids_p):
            assert batched.output_for(rid_b).tokens == \
                plain.output_for(rid_p).tokens

    def test_iteration_counts_match(self, llm, rng):
        """Fused batching changes kernel granularity, not scheduling: a
        request takes the same number of iterations either way."""
        prompt = make_prompt(rng, length=5)
        config = GenerationConfig(max_new_tokens=12, stop_on_eos=False)
        batched = BatchedRequestManager(spec_factory(llm), llm)
        rid = batched.submit(prompt, config)
        batched.run_until_complete()
        plain = RequestManager(spec_factory(llm))
        rid_p = plain.submit(prompt, config)
        plain.run_until_complete()
        assert batched.output_for(rid).num_llm_steps == \
            plain.output_for(rid_p).num_llm_steps

    def test_rejects_incremental_sessions(self, llm, rng):
        manager = BatchedRequestManager(
            lambda req: IncrementalSession(req, llm), llm
        )
        manager.submit(make_prompt(rng), GenerationConfig(max_new_tokens=2))
        with pytest.raises(TypeError, match="SpeculativeSession"):
            manager.run_iteration()

    def test_fused_iteration_stats(self, llm, rng):
        manager = BatchedRequestManager(spec_factory(llm), llm,
                                        max_batch_size=3)
        for _ in range(3):
            manager.submit(make_prompt(rng, length=5),
                           GenerationConfig(max_new_tokens=6,
                                            stop_on_eos=False))
        stats = manager.run_iteration()
        assert stats.batch_size == 3
        # One fused pass scored the sum of all trees' tokens.
        assert stats.llm_tokens_scored >= 3  # at least a root per request
        assert stats.tokens_emitted >= 3

    def test_on_shared_paged_pool(self, llm, rng):
        """Fused batch verification + paged pool + continuous batching."""
        pool = PagedKVPool(SMALL_CONFIG, num_blocks=96, block_size=8)
        manager = BatchedRequestManager(
            spec_factory(llm, cache_factory=pool.new_sequence), llm,
            max_batch_size=2,
        )
        for _ in range(4):
            manager.submit(make_prompt(rng, length=5),
                           GenerationConfig(max_new_tokens=8,
                                            stop_on_eos=False))
        outputs = manager.run_until_complete()
        assert len(outputs) == 4
        assert pool.used_blocks == 0

    def test_stochastic_mode_runs(self, llm, rng):
        from repro.model.sampling import SamplingConfig

        sampling = SamplingConfig(temperature=1.0)
        manager = BatchedRequestManager(spec_factory(llm), llm,
                                        sampling=sampling, seed=5)
        rid = manager.submit(
            make_prompt(rng, length=5),
            GenerationConfig(max_new_tokens=8, sampling=sampling,
                             stop_on_eos=False),
        )
        manager.run_until_complete()
        assert len(manager.output_for(rid).tokens) == 8


class TestArenaBackedBlockSparseServing:
    """End-to-end serving over the block-sparse path with a shared arena."""

    def test_arena_block_sparse_matches_dense_and_per_request(self, llm, rng):
        from repro.model import perf
        from repro.model.arena import BatchArena

        prompts = [make_prompt(rng, length=4 + i) for i in range(4)]
        config = GenerationConfig(max_new_tokens=8, stop_on_eos=False)

        arena = BatchArena(SMALL_CONFIG, max_requests=4)
        block = BatchedRequestManager(
            spec_factory(llm, cache_factory=arena.new_sequence), llm,
            max_batch_size=4, mode="block",
        )
        ids_block = [block.submit(p, config) for p in prompts]
        with perf.track() as counters:
            block.run_until_complete()

        dense = BatchedRequestManager(spec_factory(llm), llm,
                                      max_batch_size=4, mode="dense")
        ids_dense = [dense.submit(p, config) for p in prompts]
        dense.run_until_complete()

        plain = RequestManager(spec_factory(llm), max_batch_size=4)
        ids_plain = [plain.submit(p, config) for p in prompts]
        plain.run_until_complete()

        for rid_b, rid_d, rid_p in zip(ids_block, ids_dense, ids_plain):
            assert block.output_for(rid_b).tokens == \
                dense.output_for(rid_d).tokens
            assert block.output_for(rid_b).tokens == \
                plain.output_for(rid_p).tokens
        # The block-sparse serving loop never staged KV copies or computed
        # cross-request scores.
        assert counters.cross_request_score_flops == 0
        assert counters.kv_bytes_copied == 0

    def test_retired_requests_release_arena_rows(self, llm, rng):
        from repro.model.arena import BatchArena

        arena = BatchArena(SMALL_CONFIG, max_requests=2)
        manager = BatchedRequestManager(
            spec_factory(llm, cache_factory=arena.new_sequence), llm,
            max_batch_size=2, mode="block",
        )
        for _ in range(4):
            manager.submit(make_prompt(rng, length=5),
                           GenerationConfig(max_new_tokens=4,
                                            stop_on_eos=False))
        manager.run_until_complete()
        assert arena.used_rows == 0
