"""Tests for serving-level metrics."""

import pytest

from repro.engine.generation import GenerationConfig
from repro.serving.manager import IterationStats, RequestManager
from repro.serving.metrics import (
    build_report,
    report_from_manager,
    request_latency,
)
from repro.serving.request import RequestOutput
from repro.serving.session import IncrementalSession
from tests.conftest import make_prompt


def finished_output(rid=0, first=2, finish=6, steps=4, tokens=4):
    return RequestOutput(
        request_id=rid,
        tokens=list(range(tokens)),
        first_token_iteration=first,
        finish_iteration=finish,
        num_llm_steps=steps,
    )


class TestRequestLatency:
    def test_decomposition(self):
        latency = request_latency(finished_output(), arrival_iteration=1)
        assert latency.queueing == 1
        assert latency.ttft == 2
        assert latency.completion == 5
        assert latency.tpot == 1.0

    def test_unfinished_raises(self):
        output = RequestOutput(request_id=0)
        with pytest.raises(ValueError, match="not finished"):
            request_latency(output, 0)

    def test_tokenless_request_has_none_ttft(self):
        """Regression: a request that finished without emitting (failed, or
        retired on an exhausted context) must not raise — TTFT is simply
        undefined for it."""
        output = RequestOutput(request_id=3, finish_iteration=5)
        latency = request_latency(output, arrival_iteration=1)
        assert latency.ttft is None
        assert latency.queueing is None
        assert latency.completion == 4
        assert latency.tpot == 0.0


class TestBuildReport:
    def test_aggregates(self):
        outputs = [
            finished_output(0, first=0, finish=4, steps=4, tokens=4),
            finished_output(1, first=1, finish=9, steps=8, tokens=8),
        ]
        stats = [
            IterationStats(iteration=i, batch_size=2, tokens_emitted=2,
                           llm_tokens_scored=2, admitted=0, finished=0)
            for i in range(10)
        ]
        report = build_report(outputs, arrivals=[0, 0],
                              iteration_stats=stats)
        assert report.num_requests == 2
        assert report.total_tokens == 12
        assert report.total_iterations == 10
        assert report.tokens_per_iteration == pytest.approx(1.2)
        assert report.mean_batch_occupancy == 2.0

    def test_mismatched_arrivals_raise(self):
        with pytest.raises(ValueError, match="parallel"):
            build_report([finished_output()], arrivals=[0, 1],
                         iteration_stats=[])

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            build_report([], [], [])

    def test_tokenless_outputs_excluded_from_token_timing(self):
        """Tokenless requests count toward completion but not TTFT/TPOT."""
        import math

        outputs = [
            finished_output(0, first=0, finish=4, steps=4, tokens=4),
            RequestOutput(request_id=1, finish_iteration=6),  # no tokens
        ]
        report = build_report(outputs, arrivals=[0, 0], iteration_stats=[])
        assert report.num_requests == 2
        assert report.total_tokens == 4
        assert report.mean_ttft == 1.0  # only the emitting request
        assert report.mean_completion == 5.0  # both requests
        assert not math.isnan(report.mean_tpot)

    def test_all_tokenless_yields_nan_token_timing(self):
        import math

        outputs = [RequestOutput(request_id=0, finish_iteration=3)]
        report = build_report(outputs, arrivals=[0], iteration_stats=[])
        assert math.isnan(report.mean_ttft)
        assert math.isnan(report.p95_ttft)
        assert math.isnan(report.mean_tpot)
        assert report.mean_completion == 3.0


class TestReportFromManager:
    def test_end_to_end(self, llm, rng):
        mgr = RequestManager(lambda req: IncrementalSession(req, llm),
                             max_batch_size=2)
        for _ in range(3):
            mgr.submit(make_prompt(rng),
                       GenerationConfig(max_new_tokens=4, stop_on_eos=False))
        mgr.run_until_complete()
        report = report_from_manager(mgr)
        assert report.num_requests == 3
        assert report.total_tokens == 12
        assert report.mean_ttft >= 1
        assert report.mean_tpot == pytest.approx(1.0)  # incremental
        assert 0 < report.mean_batch_occupancy <= 2
