"""Gradient and behavior tests for the layer primitives."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model.layers import (
    embedding_backward,
    embedding_forward,
    gelu_backward,
    gelu_forward,
    kl_divergence_loss,
    layernorm_backward,
    layernorm_forward,
    linear_backward,
    linear_forward,
    softmax_cross_entropy,
    stable_softmax,
)


def numerical_grad(f, x, eps=1e-6):
    """Central-difference gradient of scalar-valued ``f`` at ``x``."""
    grad = np.zeros_like(x)
    flat = x.reshape(-1)
    gflat = grad.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        fp = f()
        flat[i] = orig - eps
        fm = f()
        flat[i] = orig
        gflat[i] = (fp - fm) / (2 * eps)
    return grad


class TestLinear:
    def test_forward_shape_and_value(self, rng):
        x = rng.normal(size=(3, 4))
        w = rng.normal(size=(4, 5))
        b = rng.normal(size=5)
        out, _ = linear_forward(x, w, b)
        assert out.shape == (3, 5)
        np.testing.assert_allclose(out, x @ w + b)

    def test_gradients_match_numerical(self, rng):
        x = rng.normal(size=(3, 4))
        w = rng.normal(size=(4, 5))
        b = rng.normal(size=5)
        upstream = rng.normal(size=(3, 5))

        def loss():
            return float((linear_forward(x, w, b)[0] * upstream).sum())

        out, cache = linear_forward(x, w, b)
        dx, dw, db = linear_backward(upstream, cache)
        np.testing.assert_allclose(dx, numerical_grad(loss, x), atol=1e-6)
        np.testing.assert_allclose(dw, numerical_grad(loss, w), atol=1e-6)
        np.testing.assert_allclose(db, numerical_grad(loss, b), atol=1e-6)

    def test_3d_input(self, rng):
        x = rng.normal(size=(2, 3, 4))
        w = rng.normal(size=(4, 5))
        b = np.zeros(5)
        out, cache = linear_forward(x, w, b)
        assert out.shape == (2, 3, 5)
        dx, dw, db = linear_backward(np.ones_like(out), cache)
        assert dx.shape == x.shape
        assert dw.shape == w.shape


class TestLayerNorm:
    def test_output_normalized(self, rng):
        x = rng.normal(loc=3.0, scale=5.0, size=(4, 8))
        out, _ = layernorm_forward(x, np.ones(8), np.zeros(8))
        np.testing.assert_allclose(out.mean(axis=-1), 0.0, atol=1e-10)
        np.testing.assert_allclose(out.std(axis=-1), 1.0, atol=1e-4)

    def test_gradients_match_numerical(self, rng):
        x = rng.normal(size=(3, 6))
        scale = rng.normal(size=6)
        bias = rng.normal(size=6)
        upstream = rng.normal(size=(3, 6))

        def loss():
            return float((layernorm_forward(x, scale, bias)[0] * upstream).sum())

        _, cache = layernorm_forward(x, scale, bias)
        dx, dscale, dbias = layernorm_backward(upstream, cache)
        np.testing.assert_allclose(dx, numerical_grad(loss, x), atol=1e-6)
        np.testing.assert_allclose(dscale, numerical_grad(loss, scale), atol=1e-6)
        np.testing.assert_allclose(dbias, numerical_grad(loss, bias), atol=1e-6)


class TestGelu:
    def test_matches_known_values(self):
        out, _ = gelu_forward(np.array([0.0]))
        assert out[0] == pytest.approx(0.0)
        out, _ = gelu_forward(np.array([10.0]))
        assert out[0] == pytest.approx(10.0, rel=1e-4)

    def test_gradient_matches_numerical(self, rng):
        x = rng.normal(size=(4, 5))
        upstream = rng.normal(size=(4, 5))

        def loss():
            return float((gelu_forward(x)[0] * upstream).sum())

        _, cache = gelu_forward(x)
        dx = gelu_backward(upstream, cache)
        np.testing.assert_allclose(dx, numerical_grad(loss, x), atol=1e-6)


class TestEmbedding:
    def test_lookup(self, rng):
        table = rng.normal(size=(10, 4))
        ids = np.array([3, 3, 7])
        out, _ = embedding_forward(ids, table)
        np.testing.assert_allclose(out, table[ids])

    def test_backward_accumulates_duplicates(self, rng):
        table = rng.normal(size=(10, 4))
        ids = np.array([3, 3, 7])
        _, cache = embedding_forward(ids, table)
        grad = np.ones((3, 4))
        dtable = embedding_backward(grad, cache)
        np.testing.assert_allclose(dtable[3], 2 * np.ones(4))
        np.testing.assert_allclose(dtable[7], np.ones(4))
        np.testing.assert_allclose(dtable[0], np.zeros(4))


class TestSoftmaxCrossEntropy:
    def test_loss_of_perfect_prediction_near_zero(self):
        logits = np.zeros((2, 4))
        logits[0, 1] = 50.0
        logits[1, 2] = 50.0
        loss, _ = softmax_cross_entropy(logits, np.array([1, 2]))
        assert loss < 1e-6

    def test_uniform_logits_loss_is_log_vocab(self):
        logits = np.zeros((3, 8))
        loss, _ = softmax_cross_entropy(logits, np.array([0, 1, 2]))
        assert loss == pytest.approx(np.log(8))

    def test_ignored_positions_do_not_contribute(self, rng):
        logits = rng.normal(size=(3, 5))
        loss_all, _ = softmax_cross_entropy(logits[:2], np.array([1, 2]))
        loss_masked, _ = softmax_cross_entropy(logits, np.array([1, 2, -1]))
        assert loss_all == pytest.approx(loss_masked)

    def test_gradient_matches_numerical(self, rng):
        logits = rng.normal(size=(3, 5))
        targets = np.array([0, 4, -1])

        def loss():
            return softmax_cross_entropy(logits, targets)[0]

        _, dlogits = softmax_cross_entropy(logits, targets)
        np.testing.assert_allclose(
            dlogits, numerical_grad(loss, logits), atol=1e-6
        )

    def test_all_ignored_returns_zero(self):
        loss, grad = softmax_cross_entropy(np.ones((2, 3)), np.array([-1, -1]))
        assert loss == 0.0
        np.testing.assert_allclose(grad, 0.0)

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError, match="2-D"):
            softmax_cross_entropy(np.zeros(5), np.array([1]))


class TestKlDivergence:
    def test_zero_when_matching(self, rng):
        logits = rng.normal(size=(2, 6))
        teacher = stable_softmax(logits)
        loss, grad = kl_divergence_loss(logits, teacher)
        assert loss == pytest.approx(0.0, abs=1e-10)
        np.testing.assert_allclose(grad, 0.0, atol=1e-12)

    def test_positive_when_different(self, rng):
        student = rng.normal(size=(2, 6))
        teacher = stable_softmax(rng.normal(size=(2, 6)))
        loss, _ = kl_divergence_loss(student, teacher)
        assert loss > 0

    def test_gradient_matches_numerical(self, rng):
        student = rng.normal(size=(2, 6))
        teacher = stable_softmax(rng.normal(size=(2, 6)))

        def loss():
            return kl_divergence_loss(student, teacher)[0]

        _, grad = kl_divergence_loss(student, teacher)
        np.testing.assert_allclose(grad, numerical_grad(loss, student), atol=1e-6)


class TestStableSoftmax:
    @given(
        st.lists(
            st.floats(min_value=-100, max_value=100),
            min_size=2,
            max_size=20,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_sums_to_one_and_nonnegative(self, values):
        probs = stable_softmax(np.array(values))
        assert probs.sum() == pytest.approx(1.0)
        assert (probs >= 0).all()

    def test_handles_extreme_logits(self):
        probs = stable_softmax(np.array([1e4, 0.0, -1e4]))
        assert np.isfinite(probs).all()
        assert probs[0] == pytest.approx(1.0)

    def test_shift_invariance(self, rng):
        logits = rng.normal(size=8)
        np.testing.assert_allclose(
            stable_softmax(logits), stable_softmax(logits + 123.0), atol=1e-12
        )
