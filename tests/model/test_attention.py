"""Tests for attention masks and multi-head attention."""

import numpy as np
import pytest

from repro.model.attention import (
    causal_mask,
    cross_mask,
    mha_backward,
    mha_forward,
    merge_heads,
    scaled_dot_attention,
    split_heads,
)
from repro.model.config import ModelConfig
from repro.model.parameters import ParameterStore


class TestMasks:
    def test_causal_mask_structure(self):
        mask = causal_mask(4)
        for j in range(4):
            for k in range(4):
                if j >= k:
                    assert mask[j, k] == 0.0
                else:
                    assert mask[j, k] == float("-inf")

    def test_cross_mask_reduces_to_causal_without_offset(self):
        np.testing.assert_array_equal(cross_mask(5, 5, 0), causal_mask(5))

    def test_cross_mask_with_cached_prefix(self):
        mask = cross_mask(2, 5, 3)
        # Query 0 (absolute position 3) sees keys 0..3.
        assert (mask[0, :4] == 0.0).all()
        assert mask[0, 4] == float("-inf")
        # Query 1 (absolute position 4) sees everything.
        assert (mask[1] == 0.0).all()


class TestHeadReshape:
    def test_split_merge_roundtrip(self, rng):
        x = rng.normal(size=(5, 12))
        np.testing.assert_array_equal(merge_heads(split_heads(x, 3)), x)

    def test_split_shape(self, rng):
        x = rng.normal(size=(5, 12))
        assert split_heads(x, 4).shape == (5, 4, 3)


class TestScaledDotAttention:
    def test_fully_masked_rows_average_uniformly(self, rng):
        # A row with a single visible key copies that key's value.
        q = rng.normal(size=(1, 2, 4))
        k = rng.normal(size=(3, 2, 4))
        v = rng.normal(size=(3, 2, 4))
        mask = np.array([[0.0, float("-inf"), float("-inf")]])
        out = scaled_dot_attention(q, k, v, mask)
        np.testing.assert_allclose(out[0], v[0], atol=1e-12)

    def test_attention_is_convex_combination(self, rng):
        q = rng.normal(size=(2, 1, 4))
        k = rng.normal(size=(5, 1, 4))
        v = rng.normal(size=(5, 1, 4))
        mask = np.zeros((2, 5))
        out = scaled_dot_attention(q, k, v, mask)
        lo = v.min(axis=0, keepdims=True)
        hi = v.max(axis=0, keepdims=True)
        assert (out >= lo - 1e-9).all() and (out <= hi + 1e-9).all()


class TestMhaTrainingPath:
    @pytest.fixture()
    def setup(self):
        config = ModelConfig(vocab_size=16, d_model=8, n_layers=1, n_heads=2,
                             max_seq_len=16)
        params = ParameterStore.initialize(config, seed=0)
        return config, params

    def test_forward_matches_manual(self, setup, rng):
        config, params = setup
        x = rng.normal(size=(4, 8))
        mask = causal_mask(4)
        out, _ = mha_forward(x, params, "layer0.attn", config.n_heads, mask)
        assert out.shape == (4, 8)
        # Position 0 attends only to itself; its output must not depend on
        # later positions.
        x2 = x.copy()
        x2[2:] += 10.0
        out2, _ = mha_forward(x2, params, "layer0.attn", config.n_heads, mask)
        np.testing.assert_allclose(out[0], out2[0], atol=1e-10)

    def test_backward_matches_numerical(self, setup, rng):
        config, params = setup
        x = rng.normal(size=(3, 8))
        mask = causal_mask(3)
        upstream = rng.normal(size=(3, 8))

        def loss():
            out, _ = mha_forward(x, params, "layer0.attn", config.n_heads, mask)
            return float((out * upstream).sum())

        _, cache = mha_forward(x, params, "layer0.attn", config.n_heads, mask)
        grads = {}
        dx = mha_backward(upstream, cache, "layer0.attn", grads)

        eps = 1e-6
        num_dx = np.zeros_like(x)
        flat = x.reshape(-1)
        nflat = num_dx.reshape(-1)
        for i in range(flat.size):
            orig = flat[i]
            flat[i] = orig + eps
            fp = loss()
            flat[i] = orig - eps
            fm = loss()
            flat[i] = orig
            nflat[i] = (fp - fm) / (2 * eps)
        np.testing.assert_allclose(dx, num_dx, atol=1e-6)

        # Spot-check one weight gradient numerically.
        w = params["layer0.attn.wq"]
        orig = w[0, 0]
        w[0, 0] = orig + eps
        fp = loss()
        w[0, 0] = orig - eps
        fm = loss()
        w[0, 0] = orig
        assert grads["layer0.attn.wq"][0, 0] == pytest.approx(
            (fp - fm) / (2 * eps), abs=1e-6
        )
