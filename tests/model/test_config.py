"""Tests for ModelConfig validation and parameter accounting."""

import dataclasses

import pytest

from repro.model.config import ModelConfig, llm_config, ssm_config


class TestValidation:
    def test_default_config_is_valid(self):
        config = ModelConfig()
        assert config.d_ff == 4 * config.d_model

    def test_d_ff_override_respected(self):
        config = ModelConfig(d_model=32, d_ff=100, n_heads=4)
        assert config.d_ff == 100

    def test_rejects_indivisible_heads(self):
        with pytest.raises(ValueError, match="divisible"):
            ModelConfig(d_model=30, n_heads=4)

    def test_rejects_tiny_vocab(self):
        with pytest.raises(ValueError, match="vocab_size"):
            ModelConfig(vocab_size=1)

    def test_rejects_zero_layers(self):
        with pytest.raises(ValueError, match="n_layers"):
            ModelConfig(n_layers=0)

    def test_rejects_bad_eos(self):
        with pytest.raises(ValueError, match="eos_token_id"):
            ModelConfig(vocab_size=16, eos_token_id=16)

    def test_rejects_zero_seq_len(self):
        with pytest.raises(ValueError, match="max_seq_len"):
            ModelConfig(max_seq_len=0)

    def test_frozen(self):
        config = ModelConfig()
        with pytest.raises(dataclasses.FrozenInstanceError):
            config.d_model = 8


class TestDerived:
    def test_d_head(self):
        config = ModelConfig(d_model=64, n_heads=8)
        assert config.d_head == 8

    def test_scaled_overrides(self):
        config = ModelConfig(d_model=64, n_heads=8)
        smaller = config.scaled(d_model=32, n_heads=4)
        assert smaller.d_model == 32
        assert config.d_model == 64

    def test_num_parameters_matches_store(self):
        from repro.model.parameters import ParameterStore

        config = ModelConfig(vocab_size=32, d_model=16, n_layers=2, n_heads=2,
                             max_seq_len=24)
        store = ParameterStore.initialize(config)
        assert config.num_parameters() == store.num_parameters()

    def test_llm_bigger_than_ssm(self):
        big = llm_config()
        small = ssm_config()
        assert big.num_parameters() > 5 * small.num_parameters()

    def test_paper_scale_param_counts(self):
        """Paper-scale descriptors land near their nominal sizes."""
        from repro.cluster.models import paper_model

        expected = {
            "llama-7b": 6.7e9,
            "opt-13b": 12.8e9,
            "opt-30b": 30e9,
            "llama-65b": 65e9,
            "llama-68m": 68e6,
            "opt-125m": 125e6,
        }
        for name, target in expected.items():
            count = paper_model(name).num_parameters()
            assert 0.7 * target < count < 1.4 * target, (
                f"{name}: {count / 1e9:.2f}B vs expected ~{target / 1e9:.2f}B"
            )
