"""Unit tests for the grow-only scratch arena behind the zero-alloc hot path."""

import numpy as np
import pytest

from repro.model import perf
from repro.model.scratch import ScratchArena, _round_up_pow2
from repro.obs import reset_observability


class TestRoundUpPow2:
    def test_small_values(self):
        assert _round_up_pow2(0) == 1
        assert _round_up_pow2(1) == 1
        assert _round_up_pow2(2) == 2
        assert _round_up_pow2(3) == 4
        assert _round_up_pow2(17) == 32

    def test_exact_powers_unchanged(self):
        for k in range(11):
            assert _round_up_pow2(1 << k) == max(1, 1 << k)


class TestTake:
    def test_reuse_without_growth(self):
        arena = ScratchArena()
        a = arena.take("x", (4, 8), np.float64)
        b = arena.take("x", (4, 8), np.float64)
        assert a.base is b.base or a is b
        assert arena.alloc_events == 1

    def test_shrinking_view_reuses_buffer(self):
        arena = ScratchArena()
        arena.take("x", (8, 8), np.float64)
        view = arena.take("x", (3, 5), np.float64)
        assert view.shape == (3, 5)
        assert arena.alloc_events == 1

    def test_unbounded_growth_is_pow2(self):
        arena = ScratchArena()
        arena.take("x", (3,), np.float64)
        assert arena.buffer_shape("x", np.float64) == (4,)
        arena.take("x", (5,), np.float64)
        assert arena.buffer_shape("x", np.float64) == (8,)
        assert arena.alloc_events == 2
        # Anything <= 8 now reuses.
        arena.take("x", (8,), np.float64)
        assert arena.alloc_events == 2

    def test_bound_allocates_worst_case_once(self):
        arena = ScratchArena()
        arena.take("m", (2, 10), np.float64, bound=(0, 64))
        assert arena.buffer_shape("m", np.float64) == (2, 64)
        arena.take("m", (2, 64), np.float64, bound=(0, 64))
        assert arena.alloc_events == 1

    def test_exact_trailing_bound_keeps_views_contiguous(self):
        """The reshape-as-view contract: exact trailing dims => C order."""
        arena = ScratchArena()
        v = arena.take("qkv", (3, 16), np.float64, bound=(0, 16))
        assert v.flags["C_CONTIGUOUS"]
        v2 = arena.take("qkv", (7, 16), np.float64, bound=(0, 16))
        assert v2.flags["C_CONTIGUOUS"]

    def test_tags_and_dtypes_are_distinct_keys(self):
        arena = ScratchArena()
        a = arena.take("x", (4,), np.float64)
        b = arena.take("y", (4,), np.float64)
        c = arena.take("x", (4,), np.intp)
        assert arena.alloc_events == 3
        a[:] = 1.0
        b[:] = 2.0
        c[:] = 3
        assert a[0] == 1.0 and b[0] == 2.0 and c[0] == 3

    def test_ndim_mismatch_rejected(self):
        arena = ScratchArena()
        arena.take("x", (4, 4), np.float64)
        with pytest.raises(ValueError, match="2-d buffer"):
            arena.take("x", (4,), np.float64)

    def test_negative_shape_rejected(self):
        arena = ScratchArena()
        with pytest.raises(ValueError, match="negative"):
            arena.take("x", (-1,), np.float64)

    def test_reserved_bytes_tracks_buffers(self):
        arena = ScratchArena()
        arena.take("x", (4,), np.float64)
        arena.take("y", (2, 8), np.float32)
        assert arena.reserved_bytes() == 4 * 8 + 2 * 8 * 4


class TestPerfCharging:
    def setup_method(self):
        reset_observability()

    def test_growth_charges_hot_alloc(self):
        arena = ScratchArena()
        before = perf.COUNTERS.hot_alloc_events
        arena.take("x", (4, 4), np.float64)
        assert perf.COUNTERS.hot_alloc_events == before + 1
        assert perf.COUNTERS.hot_alloc_bytes >= 4 * 4 * 8

    def test_reuse_charges_nothing(self):
        arena = ScratchArena()
        arena.take("x", (4, 4), np.float64)
        before = perf.COUNTERS.hot_alloc_events
        for _ in range(10):
            arena.take("x", (4, 4), np.float64)
        assert perf.COUNTERS.hot_alloc_events == before
