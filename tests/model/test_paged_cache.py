"""Tests for the paged KV-cache pool.

The headline property: every engine in the repository produces *identical*
outputs on paged storage as on contiguous storage, even with fragmented
block tables — the paged pool is a drop-in cache implementation.
"""

import numpy as np
import pytest

from repro.model.paged_cache import PagedKVPool, PagedSequenceCache
from repro.model.sampling import SamplingConfig
from repro.tree.token_tree import TokenTree
from repro.verify.verifier import TokenTreeVerifier
from tests.conftest import SMALL_CONFIG, make_prompt


@pytest.fixture()
def pool(llm):
    return PagedKVPool(SMALL_CONFIG, num_blocks=64, block_size=8)


class TestPoolAllocation:
    def test_allocate_and_release(self, pool):
        block = pool.allocate_block()
        assert pool.used_blocks == 1
        pool.release_blocks([block])
        assert pool.used_blocks == 0

    def test_exhaustion_raises(self):
        tiny = PagedKVPool(SMALL_CONFIG, num_blocks=2, block_size=8)
        tiny.allocate_block()
        tiny.allocate_block()
        with pytest.raises(MemoryError, match="exhausted"):
            tiny.allocate_block()

    def test_double_free_rejected(self, pool):
        block = pool.allocate_block()
        pool.release_blocks([block])
        with pytest.raises(ValueError, match="double free"):
            pool.release_blocks([block])

    def test_invalid_block_rejected(self, pool):
        with pytest.raises(ValueError, match="invalid block"):
            pool.release_blocks([999])

    def test_utilization(self, pool):
        assert pool.utilization() == 0.0
        pool.allocate_block()
        assert pool.utilization() == pytest.approx(1 / 64)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            PagedKVPool(SMALL_CONFIG, num_blocks=0)
        with pytest.raises(ValueError):
            PagedKVPool(SMALL_CONFIG, num_blocks=4, block_size=0)


class TestSequenceBlockManagement:
    def test_blocks_grow_with_length(self, llm, pool, rng):
        cache = pool.new_sequence()
        llm.prefill(make_prompt(rng, length=20), cache)
        # 20 tokens at block size 8 -> 3 blocks.
        assert len(cache.block_table) == 3
        assert pool.used_blocks == 3

    def test_truncate_releases_blocks(self, llm, pool, rng):
        cache = pool.new_sequence()
        llm.prefill(make_prompt(rng, length=20), cache)
        cache.truncate(5)
        assert len(cache.block_table) == 1
        assert pool.used_blocks == 1

    def test_free_returns_everything(self, llm, pool, rng):
        cache = pool.new_sequence()
        llm.prefill(make_prompt(rng, length=20), cache)
        cache.free()
        assert pool.used_blocks == 0
        assert cache.length == 0

    def test_capacity_enforced(self, llm, pool):
        cache = PagedSequenceCache(pool, capacity=4)
        with pytest.raises(ValueError, match="overflow"):
            llm.prefill(np.arange(1, 7), cache)

    def test_capacity_cannot_exceed_max_seq_len(self, pool):
        with pytest.raises(ValueError, match="max_seq_len"):
            PagedSequenceCache(pool, capacity=SMALL_CONFIG.max_seq_len + 1)


class TestOutputEquivalence:
    def test_prefill_decode_matches_contiguous(self, llm, pool, rng):
        tokens = make_prompt(rng, length=12)
        contiguous = llm.new_cache()
        paged = pool.new_sequence()
        ref = llm.prefill(tokens[:6], contiguous)
        out = llm.prefill(tokens[:6], paged)
        np.testing.assert_allclose(out, ref, atol=1e-12)
        for t in tokens[6:]:
            np.testing.assert_allclose(
                llm.decode(int(t), paged),
                llm.decode(int(t), contiguous),
                atol=1e-12,
            )

    def test_equivalence_with_fragmented_blocks(self, llm, pool, rng):
        """Two sequences interleave allocations, so block tables are
        non-contiguous — outputs must still match exactly."""
        t1 = make_prompt(rng, length=18)
        t2 = make_prompt(rng, length=18)
        c1 = pool.new_sequence()
        c2 = pool.new_sequence()
        # Interleave prefills in chunks to interleave block allocation.
        for i in range(0, 18, 6):
            llm.prefill(t1[i : i + 6], c1)
            llm.prefill(t2[i : i + 6], c2)
        # The two block tables interleave: neither owns a contiguous run.
        assert max(c1.block_table) > min(c2.block_table)
        np.testing.assert_allclose(llm.decode(3, c1),
                                   llm.decode(3, llm_cache_for(llm, t1)),
                                   atol=1e-12)
        np.testing.assert_allclose(llm.decode(3, c2),
                                   llm.decode(3, llm_cache_for(llm, t2)),
                                   atol=1e-12)

    def test_tree_verification_on_paged_cache(self, llm, pool, rng):
        """Tree-parallel decode + greedy verification + path compaction all
        run unmodified on paged storage."""
        prompt = make_prompt(rng, length=6)
        paged = pool.new_sequence()
        contiguous = llm.new_cache()
        llm.prefill(prompt[:-1], paged)
        llm.prefill(prompt[:-1], contiguous)
        tree = TokenTree(int(prompt[-1]))
        a = tree.add_child(0, 5)
        tree.add_child(0, 9)
        tree.add_child(a, 11)
        verifier = TokenTreeVerifier(llm, SamplingConfig(greedy=True))
        result_paged = verifier.verify_step(tree, paged)
        result_contig = verifier.verify_step(tree, contiguous)
        assert result_paged.accepted_tokens == result_contig.accepted_tokens
        # Continue decoding after compaction: still identical.
        np.testing.assert_allclose(
            llm.decode(result_paged.bonus_token, paged),
            llm.decode(result_contig.bonus_token, contiguous),
            atol=1e-12,
        )

    def test_full_engine_on_paged_pool(self, llm, pool, rng):
        """The SpecInfer engine is cache-implementation agnostic."""
        from repro.engine.generation import GenerationConfig
        from repro.engine.incremental import IncrementalEngine

        prompt = make_prompt(rng, length=5)
        config = GenerationConfig(max_new_tokens=10, stop_on_eos=False)
        reference = IncrementalEngine(llm).generate(prompt, config).tokens
        # Drive decoding manually on a paged sequence.
        cache = pool.new_sequence()
        llm.prefill(prompt[:-1], cache)
        pending = int(prompt[-1])
        produced = []
        for _ in range(10):
            logits = llm.decode(pending, cache)
            pending = int(np.argmax(logits))
            produced.append(pending)
        assert produced == reference


def llm_cache_for(llm, tokens):
    """Helper: contiguous cache pre-filled with ``tokens``."""
    cache = llm.new_cache()
    llm.prefill(tokens, cache)
    return cache
