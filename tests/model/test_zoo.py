"""Tests for the model zoo (trained pairs + caching)."""

import os

import numpy as np
import pytest

from repro.model.config import ModelConfig
from repro.model.zoo import ModelZoo, ZooSpec

FAST_SPEC = ZooSpec(llm_steps=40, distill_steps=40)


class TestZooSpec:
    def test_vocab_mismatch_rejected(self):
        with pytest.raises(ValueError, match="vocab"):
            ZooSpec(
                vocab_size=32,
                llm_config=ModelConfig(vocab_size=64, d_model=16, n_heads=2),
            )

    def test_cache_key_deterministic_and_distinct(self):
        a = ZooSpec(llm_steps=10)
        b = ZooSpec(llm_steps=10)
        c = ZooSpec(llm_steps=20)
        assert a.cache_key() == b.cache_key()
        assert a.cache_key() != c.cache_key()

    def test_llm_role_key_ignores_student_fields(self):
        """Specs differing only in SSM fields share a teacher key (the
        pool trains its LLM once) while their pair/ssm keys diverge."""
        a = ZooSpec(distill_steps=10)
        b = ZooSpec(
            distill_steps=99,
            ssm_config=ModelConfig(vocab_size=64, d_model=8, n_layers=1,
                                   n_heads=2, max_seq_len=128),
        )
        assert a.cache_key("llm") == b.cache_key("llm")
        assert a.cache_key() != b.cache_key()
        assert a.cache_key("ssm") != b.cache_key("ssm")

    def test_llm_role_key_tracks_teacher_fields(self):
        a = ZooSpec(llm_steps=10)
        b = ZooSpec(llm_steps=20)
        assert a.cache_key("llm") != b.cache_key("llm")

    def test_roles_never_alias(self):
        spec = ZooSpec()
        assert len({spec.cache_key(), spec.cache_key("llm"),
                    spec.cache_key("ssm")}) == 3


class TestModelZoo:
    @pytest.fixture(scope="class")
    def pair(self, tmp_path_factory):
        cache_dir = str(tmp_path_factory.mktemp("zoo"))
        zoo = ModelZoo(cache_dir=cache_dir)
        llm, ssm = zoo.trained_pair(FAST_SPEC)
        return zoo, cache_dir, llm, ssm

    def test_pair_shapes(self, pair):
        _, _, llm, ssm = pair
        assert llm.config.vocab_size == ssm.config.vocab_size
        assert ssm.num_parameters() < llm.num_parameters()

    def test_checkpoints_written(self, pair):
        _, cache_dir, _, _ = pair
        files = os.listdir(cache_dir)
        assert any("llm" in f for f in files)
        assert any("ssm" in f for f in files)

    def test_reload_identical(self, pair):
        zoo, _, llm, _ = pair
        llm2, _ = zoo.trained_pair(FAST_SPEC)
        np.testing.assert_array_equal(llm.params["lm_head"],
                                      llm2.params["lm_head"])

    def test_distilled_ssm_agrees_with_llm(self, pair):
        """The zoo pair has genuine (trained-in) alignment: SSM top-1
        matches LLM top-1 well above chance on corpus text."""
        zoo, _, llm, ssm = pair
        corpus = zoo.corpus(FAST_SPEC)
        hits = total = 0
        for seq in corpus.sample_many(5, 16):
            llm_logits = llm.logits_for_sequence(seq)
            ssm_logits = ssm.logits_for_sequence(seq)
            hits += int(
                (llm_logits.argmax(-1) == ssm_logits.argmax(-1))[4:].sum()
            )
            total += len(seq) - 4
        chance = 1 / llm.config.vocab_size
        assert hits / total > 10 * chance

    def test_speculation_with_zoo_pair(self, pair):
        """End-to-end: a genuinely trained+distilled pair speeds up the
        engine while staying lossless."""
        from repro.engine.generation import GenerationConfig
        from repro.engine.incremental import IncrementalEngine
        from repro.engine.tree_spec import SpecInferEngine
        from repro.speculate.expansion import ExpansionConfig
        from repro.speculate.speculator import Speculator

        zoo, _, llm, ssm = pair
        prompt = list(zoo.corpus(FAST_SPEC).sample(8))
        config = GenerationConfig(max_new_tokens=20, stop_on_eos=False)
        incremental = IncrementalEngine(llm).generate(prompt, config)
        spec = SpecInferEngine(
            llm, Speculator([ssm], ExpansionConfig.width_sweep(3, depth=6,
                                                               expand_step=0))
        ).generate(prompt, config)
        assert spec.tokens == incremental.tokens
        assert spec.num_llm_steps <= incremental.num_llm_steps

    def test_no_cache_dir_still_works(self):
        zoo = ModelZoo(cache_dir=None)
        tiny = ZooSpec(llm_steps=3, distill_steps=3)
        llm, ssm = zoo.trained_pair(tiny)
        assert llm.num_parameters() > 0

    def test_checkpoint_names_carry_schema_version(self, pair):
        from repro.model.zoo import ZOO_SCHEMA_VERSION

        _, cache_dir, _, _ = pair
        for name in os.listdir(cache_dir):
            assert name.startswith(f"zoo-v{ZOO_SCHEMA_VERSION}-")

    def test_stale_schema_checkpoints_are_ignored(self, tmp_path):
        """A checkpoint written under an older key scheme (pre-versioned
        filename, repr-based digest) must never satisfy a lookup: the zoo
        retrains and writes a fresh versioned file, leaving the stale one
        untouched rather than deserializing it into the new recipe."""
        cache_dir = str(tmp_path)
        tiny = ZooSpec(llm_steps=3, distill_steps=3)
        stale_names = [
            f"zoo-{tiny.cache_key('llm')}-llm.npz",  # unversioned prefix
            "zoo-v1-0011223344556677-llm.npz",       # old schema version
        ]
        for name in stale_names:
            with open(os.path.join(cache_dir, name), "wb") as fh:
                fh.write(b"not a checkpoint")
        zoo = ModelZoo(cache_dir=cache_dir)
        llm, _ = zoo.trained_pair(tiny)  # would crash if it loaded garbage
        assert llm.num_parameters() > 0
        files = set(os.listdir(cache_dir))
        assert set(stale_names) <= files  # left on disk, never matched
        from repro.model.zoo import ZOO_SCHEMA_VERSION

        fresh = [f for f in files - set(stale_names)
                 if f.endswith("-llm.npz")]
        assert fresh == [
            f"zoo-v{ZOO_SCHEMA_VERSION}-{tiny.cache_key('llm')}-llm.npz"
        ]
