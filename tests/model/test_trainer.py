"""Tests for the trainer: optimization actually optimizes."""

import numpy as np
import pytest

from repro.model.config import ModelConfig
from repro.model.trainer import AdamOptimizer, Trainer, TrainingConfig
from repro.model.transformer import TransformerLM
from repro.workloads.corpus import MarkovCorpus

CONFIG = ModelConfig(vocab_size=24, d_model=16, n_layers=2, n_heads=2,
                     max_seq_len=24)


class TestTrainingConfig:
    def test_rejects_bad_lr(self):
        with pytest.raises(ValueError):
            TrainingConfig(learning_rate=0)

    def test_rejects_bad_betas(self):
        with pytest.raises(ValueError):
            TrainingConfig(beta1=1.0)


class TestAdam:
    def test_moves_toward_minimum(self):
        """Adam on f(x) = x^2 converges toward 0."""
        from repro.model.parameters import ParameterStore

        params = ParameterStore({"x": np.array([5.0])})
        opt = AdamOptimizer(TrainingConfig(learning_rate=0.3, grad_clip=0))
        for _ in range(100):
            grads = {"x": 2 * params["x"]}
            opt.apply(params, grads)
        assert abs(params["x"][0]) < 0.5

    def test_clipping_bounds_update(self):
        from repro.model.parameters import ParameterStore

        params = ParameterStore({"x": np.array([0.0])})
        opt = AdamOptimizer(TrainingConfig(learning_rate=1.0, grad_clip=1.0))
        opt.apply(params, {"x": np.array([1e9])})
        assert np.isfinite(params["x"]).all()


class TestLmTraining:
    def test_loss_decreases_on_learnable_data(self):
        corpus = MarkovCorpus(vocab_size=24, branching=2, seed=0)
        sequences = corpus.sample_many(16, 16)
        model = TransformerLM(CONFIG, seed=0)
        trainer = Trainer(model, TrainingConfig(max_steps=60,
                                                learning_rate=3e-3))
        report = trainer.train_lm(sequences)
        first = np.mean(report.losses[:5])
        last = np.mean(report.losses[-5:])
        assert last < first * 0.8, (first, last)

    def test_report_tracks_every_step(self):
        corpus = MarkovCorpus(vocab_size=24, branching=2, seed=1)
        model = TransformerLM(CONFIG, seed=1)
        trainer = Trainer(model, TrainingConfig(max_steps=5))
        report = trainer.train_lm(corpus.sample_many(4, 10))
        assert len(report.losses) == 5
        assert report.initial_loss == report.losses[0]
        assert report.final_loss == report.losses[-1]


class TestDistillation:
    def test_kl_to_teacher_decreases(self):
        teacher = TransformerLM(CONFIG, seed=0)
        student = TransformerLM(CONFIG.scaled(d_model=8, n_heads=2,
                                              n_layers=1), seed=5)
        corpus = MarkovCorpus(vocab_size=24, branching=2, seed=2)
        sequences = corpus.sample_many(8, 12)
        trainer = Trainer(student, TrainingConfig(max_steps=40,
                                                  learning_rate=3e-3))
        report = trainer.distill(teacher, sequences)
        assert np.mean(report.losses[-5:]) < np.mean(report.losses[:5])

    def test_distilled_student_agrees_more_with_teacher(self):
        """Distillation raises greedy top-1 agreement with the teacher."""
        teacher = TransformerLM(CONFIG, seed=0)
        student = TransformerLM(CONFIG.scaled(d_model=8, n_heads=2,
                                              n_layers=1), seed=5)
        corpus = MarkovCorpus(vocab_size=24, branching=2, seed=2)
        sequences = corpus.sample_many(12, 12)

        def agreement():
            hits = total = 0
            for seq in sequences[:6]:
                t = teacher.logits_for_sequence(seq)
                s = student.logits_for_sequence(seq)
                hits += int((t.argmax(-1) == s.argmax(-1)).sum())
                total += len(seq)
            return hits / total

        before = agreement()
        trainer = Trainer(student, TrainingConfig(max_steps=80,
                                                  learning_rate=3e-3))
        trainer.distill(teacher, sequences)
        after = agreement()
        assert after > before
