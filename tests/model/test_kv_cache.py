"""Tests for the KV cache: append, truncate, compaction, snapshots."""

import numpy as np
import pytest

from repro.model.config import ModelConfig
from repro.model.kv_cache import KVCache, LayerKV


CONFIG = ModelConfig(vocab_size=16, d_model=8, n_layers=2, n_heads=2,
                     max_seq_len=32)


def fill(layer: LayerKV, n: int, rng) -> np.ndarray:
    keys = rng.normal(size=(n, 2, 4))
    layer.append(keys, keys * 2)
    return keys


class TestLayerKV:
    def test_append_and_view(self, rng):
        layer = LayerKV(8, 2, 4, "float64")
        keys = fill(layer, 3, rng)
        k, v = layer.view()
        assert k.shape == (3, 2, 4)
        np.testing.assert_array_equal(k, keys)
        np.testing.assert_array_equal(v, keys * 2)

    def test_overflow_raises(self, rng):
        layer = LayerKV(4, 2, 4, "float64")
        fill(layer, 3, rng)
        with pytest.raises(ValueError, match="overflow"):
            fill(layer, 2, rng)

    def test_truncate(self, rng):
        layer = LayerKV(8, 2, 4, "float64")
        keys = fill(layer, 5, rng)
        layer.truncate(2)
        k, _ = layer.view()
        np.testing.assert_array_equal(k, keys[:2])

    def test_truncate_bounds(self, rng):
        layer = LayerKV(8, 2, 4, "float64")
        fill(layer, 3, rng)
        with pytest.raises(ValueError):
            layer.truncate(4)
        with pytest.raises(ValueError):
            layer.truncate(-1)

    def test_keep_rows_compacts(self, rng):
        layer = LayerKV(10, 2, 4, "float64")
        keys = fill(layer, 6, rng)
        # Keep prefix of 2, then rows 1 and 3 of the region past it.
        layer.keep_rows(2, [1, 3])
        k, v = layer.view()
        assert layer.length == 4
        np.testing.assert_array_equal(k[:2], keys[:2])
        np.testing.assert_array_equal(k[2], keys[3])
        np.testing.assert_array_equal(k[3], keys[5])
        np.testing.assert_array_equal(v[3], keys[5] * 2)

    def test_keep_rows_out_of_range(self, rng):
        layer = LayerKV(10, 2, 4, "float64")
        fill(layer, 4, rng)
        with pytest.raises(ValueError, match="out of range"):
            layer.keep_rows(2, [5])

    def test_keep_rows_preserves_order_given(self, rng):
        layer = LayerKV(10, 2, 4, "float64")
        keys = fill(layer, 5, rng)
        layer.keep_rows(0, [2, 0, 4])
        k, _ = layer.view()
        np.testing.assert_array_equal(k[0], keys[2])
        np.testing.assert_array_equal(k[1], keys[0])
        np.testing.assert_array_equal(k[2], keys[4])


class TestKVCache:
    def test_capacity_defaults_to_max_seq_len(self):
        cache = KVCache(CONFIG)
        assert cache.capacity == CONFIG.max_seq_len

    def test_capacity_cannot_exceed_max_seq_len(self):
        with pytest.raises(ValueError, match="exceeds max_seq_len"):
            KVCache(CONFIG, capacity=64)

    def test_length_tracks_all_layers(self, rng):
        cache = KVCache(CONFIG, capacity=16)
        for layer in cache.layers:
            fill(layer, 3, rng)
        assert cache.length == 3

    def test_snapshot_restore(self, rng):
        cache = KVCache(CONFIG, capacity=16)
        for layer in cache.layers:
            fill(layer, 3, rng)
        snap = cache.snapshot()
        for layer in cache.layers:
            fill(layer, 4, rng)
        assert cache.length == 7
        cache.restore(snap)
        assert cache.length == 3

    def test_truncate_applies_to_all_layers(self, rng):
        cache = KVCache(CONFIG, capacity=16)
        for layer in cache.layers:
            fill(layer, 5, rng)
        cache.truncate(2)
        assert all(layer.length == 2 for layer in cache.layers)

    def test_keep_rows_applies_to_all_layers(self, rng):
        cache = KVCache(CONFIG, capacity=16)
        for layer in cache.layers:
            fill(layer, 5, rng)
        cache.keep_rows(1, [0, 2])
        assert cache.length == 3
