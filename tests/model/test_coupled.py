"""Tests for the logit-coupled SSM family."""

import numpy as np
import pytest

from repro.model.coupled import CoupledSSM
from tests.conftest import make_prompt


class TestConstruction:
    def test_rejects_bad_alignment(self, llm):
        with pytest.raises(ValueError, match="alignment"):
            CoupledSSM(llm, alignment=1.5)

    def test_nominal_config_is_smaller(self, llm, ssm):
        assert ssm.num_parameters() < llm.num_parameters()

    def test_perfect_alignment_is_identity(self, llm, rng):
        oracle = CoupledSSM(llm, alignment=1.0)
        prompt = make_prompt(rng)
        lc, sc = llm.new_cache(), oracle.new_cache()
        llm.prefill(prompt[:-1], lc)
        oracle.prefill(prompt[:-1], sc)
        np.testing.assert_allclose(
            llm.decode(int(prompt[-1]), lc),
            oracle.decode(int(prompt[-1]), sc),
        )


class TestDeterminism:
    def test_same_context_same_distribution(self, llm, ssm, rng):
        """The SSM defines a genuine conditional distribution: replaying the
        same context yields identical logits (MSS correctness requires it)."""
        prompt = make_prompt(rng, length=5)
        outs = []
        for _ in range(2):
            cache = ssm.new_cache()
            ssm.prefill(prompt[:-1], cache)
            outs.append(ssm.decode(int(prompt[-1]), cache))
        np.testing.assert_array_equal(outs[0], outs[1])

    def test_different_context_different_noise(self, llm, ssm, rng):
        p1 = make_prompt(rng, length=5)
        p2 = p1.copy()
        p2[0] = (p2[0] % 62) + 1 if p2[0] != p1[0] else p2[0] + 1
        c1, c2 = ssm.new_cache(), ssm.new_cache()
        ssm.prefill(p1[:-1], c1)
        ssm.prefill(p2[:-1], c2)
        o1 = ssm.decode(int(p1[-1]), c1)
        o2 = ssm.decode(int(p2[-1]), c2)
        assert not np.allclose(o1, o2)

    def test_seed_changes_perturbation(self, llm, rng):
        prompt = make_prompt(rng, length=4)
        a = CoupledSSM(llm, alignment=0.5, seed=1)
        b = CoupledSSM(llm, alignment=0.5, seed=2)
        ca, cb = a.new_cache(), b.new_cache()
        a.prefill(prompt[:-1], ca)
        b.prefill(prompt[:-1], cb)
        assert not np.allclose(
            a.decode(int(prompt[-1]), ca), b.decode(int(prompt[-1]), cb)
        )


class TestAlignmentKnob:
    def test_agreement_monotone_in_alignment(self, llm):
        """Higher alignment -> higher top-1 agreement with the base model."""
        rng = np.random.default_rng(0)
        rates = []
        for alignment in (0.3, 0.7, 0.95):
            ssm = CoupledSSM(llm, alignment=alignment, seed=3, noise_scale=2.0)
            hits = trials = 0
            for _ in range(40):
                prompt = make_prompt(rng, length=6)
                lc, sc = llm.new_cache(), ssm.new_cache()
                llm.prefill(prompt[:-1], lc)
                ssm.prefill(prompt[:-1], sc)
                llm_top = int(np.argmax(llm.decode(int(prompt[-1]), lc)))
                ssm_top = int(np.argmax(ssm.decode(int(prompt[-1]), sc)))
                hits += llm_top == ssm_top
                trials += 1
            rates.append(hits / trials)
        assert rates[0] < rates[2]
        assert rates[1] <= rates[2] + 0.1  # allow small noise, trend holds


class TestCacheProtocol:
    def test_snapshot_restore(self, ssm, rng):
        prompt = make_prompt(rng, length=4)
        cache = ssm.new_cache()
        ssm.prefill(prompt, cache)
        snap = cache.snapshot()
        ssm.decode(5, cache)
        ssm.decode(6, cache)
        assert cache.length == 6
        cache.restore(snap)
        assert cache.length == 4
        # After restore, decoding the same token reproduces the original.
        a = ssm.decode(7, cache)
        cache.restore(snap)
        b = ssm.decode(7, cache)
        np.testing.assert_array_equal(a, b)

    def test_prefill_tracks_context(self, ssm, rng):
        prompt = make_prompt(rng, length=4)
        cache = ssm.new_cache()
        ssm.prefill(prompt, cache)
        assert cache.context == [int(t) for t in prompt]
