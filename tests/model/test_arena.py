"""Tests for the shared KV arena (slab allocation + zero-copy cache views)."""

import numpy as np
import pytest

from repro.model.arena import ArenaKVCache, BatchArena
from repro.model.kv_cache import KVCache
from tests.conftest import SMALL_CONFIG, make_prompt


def make_arena(capacity=0, max_requests=4):
    return BatchArena(SMALL_CONFIG, capacity=capacity,
                      max_requests=max_requests)


class TestAllocation:
    def test_new_sequence_carves_disjoint_ranges(self):
        arena = make_arena(capacity=64)
        a = arena.new_sequence(16)
        b = arena.new_sequence(16)
        assert a.row_range == (0, 16)
        assert b.row_range == (16, 32)
        assert arena.used_rows == 32
        assert arena.free_rows == 32

    def test_default_capacity_is_max_seq_len(self):
        arena = make_arena(max_requests=2)
        cache = arena.new_sequence()
        assert cache.capacity == SMALL_CONFIG.max_seq_len

    def test_exhaustion_raises(self):
        arena = make_arena(capacity=16)
        arena.new_sequence(16)
        with pytest.raises(MemoryError, match="exhausted"):
            arena.new_sequence(1)

    def test_over_max_seq_len_raises(self):
        arena = make_arena(capacity=512)
        with pytest.raises(ValueError, match="max_seq_len"):
            arena.new_sequence(SMALL_CONFIG.max_seq_len + 1)

    def test_free_returns_and_coalesces(self):
        arena = make_arena(capacity=48)
        a = arena.new_sequence(16)
        b = arena.new_sequence(16)
        c = arena.new_sequence(16)
        assert arena.free_rows == 0
        a.free()
        c.free()
        b.free()
        # All three ranges coalesce back to one full-capacity range, so a
        # full-size request fits again.
        assert arena.free_rows == 48
        assert arena.new_sequence(48).row_range == (0, 48)

    def test_free_is_idempotent(self):
        arena = make_arena(capacity=32)
        cache = arena.new_sequence(16)
        cache.free()
        cache.free()
        assert arena.free_rows == 32

    def test_double_release_raises(self):
        arena = make_arena(capacity=32)
        cache = arena.new_sequence(16)
        cache.free()
        with pytest.raises(ValueError, match="double free"):
            arena.release(0, 16)

    def test_reuse_after_free(self):
        arena = make_arena(capacity=32)
        a = arena.new_sequence(16)
        arena.new_sequence(16)
        a.free()
        again = arena.new_sequence(16)
        assert again.row_range == (0, 16)

    def test_utilization(self):
        arena = make_arena(capacity=32)
        assert arena.utilization() == 0.0
        arena.new_sequence(16)
        assert arena.utilization() == pytest.approx(0.5)


class TestCacheSemantics:
    """ArenaKVCache must be indistinguishable from a private KVCache."""

    def _fill(self, cache, rng):
        n_heads, d_head = SMALL_CONFIG.n_heads, SMALL_CONFIG.d_head
        for layer in cache.layers:
            layer.append(
                rng.normal(size=(5, n_heads, d_head)),
                rng.normal(size=(5, n_heads, d_head)),
            )

    def test_append_view_roundtrip_matches_kv_cache(self):
        arena = make_arena(capacity=64)
        arena_cache = arena.new_sequence(16)
        plain = KVCache(SMALL_CONFIG, capacity=16)
        self._fill(arena_cache, np.random.default_rng(0))
        self._fill(plain, np.random.default_rng(0))
        assert arena_cache.length == plain.length == 5
        for la, lp in zip(arena_cache.layers, plain.layers):
            np.testing.assert_array_equal(la.view()[0], lp.view()[0])
            np.testing.assert_array_equal(la.view()[1], lp.view()[1])

    def test_views_are_zero_copy_slab_slices(self):
        arena = make_arena(capacity=64)
        cache = arena.new_sequence(16)
        self._fill(cache, np.random.default_rng(1))
        keys, _ = cache.layers[0].view()
        assert keys.base is arena._keys[0]
        np.testing.assert_array_equal(keys, arena._keys[0][:5])

    def test_truncate_and_keep_rows(self):
        arena = make_arena(capacity=64)
        cache = arena.new_sequence(16)
        plain = KVCache(SMALL_CONFIG, capacity=16)
        self._fill(cache, np.random.default_rng(2))
        self._fill(plain, np.random.default_rng(2))
        cache.keep_rows(2, [2, 0])
        plain.keep_rows(2, [2, 0])
        assert cache.length == plain.length == 4
        for la, lp in zip(cache.layers, plain.layers):
            np.testing.assert_array_equal(la.view()[0], lp.view()[0])
        cache.truncate(1)
        assert cache.length == 1

    def test_snapshot_restore(self):
        arena = make_arena(capacity=64)
        cache = arena.new_sequence(16)
        self._fill(cache, np.random.default_rng(3))
        snap = cache.snapshot()
        for layer in cache.layers:
            layer.append(np.zeros((1, SMALL_CONFIG.n_heads,
                                   SMALL_CONFIG.d_head)),
                         np.zeros((1, SMALL_CONFIG.n_heads,
                                   SMALL_CONFIG.d_head)))
        cache.restore(snap)
        assert cache.length == snap

    def test_overflow_raises(self):
        arena = make_arena(capacity=8)
        cache = arena.new_sequence(8)
        big = np.zeros((9, SMALL_CONFIG.n_heads, SMALL_CONFIG.d_head))
        with pytest.raises(ValueError, match="overflow"):
            cache.layers[0].append(big, big)

    def test_neighbours_do_not_interfere(self):
        """Appends to one request never touch a neighbour's rows."""
        arena = make_arena(capacity=32)
        a = arena.new_sequence(16)
        b = arena.new_sequence(16)
        self._fill(a, np.random.default_rng(4))
        before_b = arena._keys[0][16:32].copy()
        self._fill(a, np.random.default_rng(5))
        np.testing.assert_array_equal(arena._keys[0][16:32], before_b)
        self._fill(b, np.random.default_rng(6))
        keys_a, _ = a.layers[0].view()
        assert keys_a.shape[0] == 10


class TestModelIntegration:
    def test_prefill_and_decode_match_private_cache(self, llm, rng):
        prompt = make_prompt(rng, length=8)
        arena = BatchArena(SMALL_CONFIG, max_requests=2)
        arena_cache = arena.new_sequence()
        plain_cache = llm.new_cache()
        logits_arena = llm.prefill(prompt, arena_cache)
        logits_plain = llm.prefill(prompt, plain_cache)
        np.testing.assert_allclose(logits_arena, logits_plain, atol=1e-12)
        np.testing.assert_allclose(
            llm.decode(3, arena_cache), llm.decode(3, plain_cache),
            atol=1e-12,
        )
