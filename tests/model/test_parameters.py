"""Tests for the parameter store."""

import numpy as np
import pytest

from repro.model.config import ModelConfig
from repro.model.parameters import ParameterStore

CONFIG = ModelConfig(vocab_size=16, d_model=8, n_layers=2, n_heads=2,
                     max_seq_len=12)


@pytest.fixture()
def store():
    return ParameterStore.initialize(CONFIG, seed=0)


class TestInitialization:
    def test_expected_names_present(self, store):
        assert "tok_embed" in store
        assert "layer0.attn.wq" in store
        assert "layer1.mlp.w2" in store
        assert "final_ln.scale" in store
        assert "lm_head" in store

    def test_shapes(self, store):
        assert store["tok_embed"].shape == (16, 8)
        assert store["pos_embed"].shape == (12, 8)
        assert store["layer0.attn.wq"].shape == (8, 8)
        assert store["layer0.mlp.w1"].shape == (8, 32)
        assert store["lm_head"].shape == (8, 16)

    def test_deterministic_by_seed(self):
        a = ParameterStore.initialize(CONFIG, seed=5)
        b = ParameterStore.initialize(CONFIG, seed=5)
        c = ParameterStore.initialize(CONFIG, seed=6)
        np.testing.assert_array_equal(a["lm_head"], b["lm_head"])
        assert not np.array_equal(a["lm_head"], c["lm_head"])

    def test_layernorms_start_identity(self, store):
        np.testing.assert_array_equal(store["layer0.ln1.scale"], np.ones(8))
        np.testing.assert_array_equal(store["layer0.ln1.bias"], np.zeros(8))


class TestMutation:
    def test_setitem_shape_guard(self, store):
        with pytest.raises(ValueError, match="shape mismatch"):
            store["lm_head"] = np.zeros((3, 3))

    def test_copy_is_deep(self, store):
        clone = store.copy()
        clone["lm_head"][0, 0] = 999.0
        assert store["lm_head"][0, 0] != 999.0

    def test_zeros_like(self, store):
        zeros = store.zeros_like()
        assert set(zeros.names()) == set(store.names())
        assert all(np.all(zeros[n] == 0) for n in zeros)

    def test_add_scaled(self, store):
        before = store["lm_head"].copy()
        delta = store.zeros_like()
        delta["lm_head"] = np.ones_like(before)
        store.add_scaled(delta, 0.5)
        np.testing.assert_allclose(store["lm_head"], before + 0.5)

    def test_global_norm(self):
        store = ParameterStore({"a": np.array([3.0]), "b": np.array([4.0])})
        assert store.global_norm() == pytest.approx(5.0)


class TestSerialization:
    def test_npz_roundtrip(self, store, tmp_path):
        path = str(tmp_path / "ckpt.npz")
        store.save(path)
        loaded = ParameterStore.load(path)
        assert set(loaded.names()) == set(store.names())
        for name in store:
            np.testing.assert_array_equal(loaded[name], store[name])

    def test_bytes_roundtrip(self, store):
        raw = store.to_bytes()
        loaded = ParameterStore.from_bytes(raw)
        np.testing.assert_array_equal(loaded["lm_head"], store["lm_head"])

    def test_num_bytes(self, store):
        assert store.num_bytes(2) == 2 * store.num_parameters()


class TestPackedQKV:
    def test_packed_matches_concatenation(self, store):
        w, b = store.packed_qkv("layer0.attn")
        np.testing.assert_array_equal(
            w,
            np.concatenate([store["layer0.attn.wq"], store["layer0.attn.wk"],
                            store["layer0.attn.wv"]], axis=1),
        )
        np.testing.assert_array_equal(
            b,
            np.concatenate([store["layer0.attn.bq"], store["layer0.attn.bk"],
                            store["layer0.attn.bv"]]),
        )

    def test_packed_is_memoized(self, store):
        w1, _ = store.packed_qkv("layer0.attn")
        w2, _ = store.packed_qkv("layer0.attn")
        assert w1 is w2

    def test_setitem_invalidates_memo(self, store):
        w_before, _ = store.packed_qkv("layer0.attn")
        store["layer0.attn.wq"] = store["layer0.attn.wq"] + 1.0
        w_after, _ = store.packed_qkv("layer0.attn")
        assert w_after is not w_before
        np.testing.assert_array_equal(
            w_after[:, : CONFIG.d_model], store["layer0.attn.wq"]
        )

    def test_add_scaled_invalidates_memo(self, store):
        w_before, _ = store.packed_qkv("layer0.attn")
        delta = store.zeros_like()
        delta["layer0.attn.wk"] = np.ones_like(store["layer0.attn.wk"])
        store.add_scaled(delta, 1.0)
        w_after, _ = store.packed_qkv("layer0.attn")
        np.testing.assert_array_equal(
            w_after[:, CONFIG.d_model : 2 * CONFIG.d_model],
            store["layer0.attn.wk"],
        )

    def test_fused_checkpoint_loads_via_shim(self, store):
        """Checkpoints storing packed wqkv/bqkv tensors split on load."""
        packed = {}
        for name, value in store.items():
            packed[name] = value
        for i in range(CONFIG.n_layers):
            pre = f"layer{i}.attn"
            w, b = store.packed_qkv(pre)
            for suffix in ("wq", "wk", "wv"):
                del packed[f"{pre}.{suffix}"]
            for suffix in ("bq", "bk", "bv"):
                del packed[f"{pre}.{suffix}"]
            packed[f"{pre}.wqkv"] = w
            packed[f"{pre}.bqkv"] = b
        loaded = ParameterStore(packed)
        assert set(loaded.names()) == set(store.names())
        for name in store:
            np.testing.assert_array_equal(loaded[name], store[name])
