"""Tests for the transformer LM: cache equivalence, training, gradients."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model.config import ModelConfig
from repro.model.layers import softmax_cross_entropy
from repro.model.transformer import TransformerLM

CONFIG = ModelConfig(vocab_size=32, d_model=16, n_layers=2, n_heads=2,
                     max_seq_len=48)


@pytest.fixture(scope="module")
def model():
    return TransformerLM(CONFIG, seed=3)


class TestInference:
    def test_prefill_shape(self, model):
        cache = model.new_cache()
        logits = model.prefill(np.array([1, 2, 3]), cache)
        assert logits.shape == (3, 32)
        assert cache.length == 3

    def test_decode_shape(self, model):
        cache = model.new_cache()
        model.prefill(np.array([1, 2]), cache)
        logits = model.decode(5, cache)
        assert logits.shape == (32,)
        assert cache.length == 3

    def test_cache_equals_scratch(self, model, rng):
        """Incremental decoding with a cache reproduces from-scratch logits."""
        tokens = rng.integers(1, 32, size=10)
        full = model.logits_for_sequence(tokens)
        cache = model.new_cache()
        prefill_logits = model.prefill(tokens[:4], cache)
        np.testing.assert_allclose(prefill_logits, full[:4], atol=1e-10)
        for i in range(4, 10):
            step = model.decode(int(tokens[i]), cache)
            np.testing.assert_allclose(step, full[i], atol=1e-10)

    def test_prefill_in_chunks_matches(self, model, rng):
        tokens = rng.integers(1, 32, size=8)
        full = model.logits_for_sequence(tokens)
        cache = model.new_cache()
        a = model.prefill(tokens[:3], cache)
        b = model.prefill(tokens[3:], cache)
        np.testing.assert_allclose(np.vstack([a, b]), full, atol=1e-10)

    def test_position_overflow_raises(self, model):
        cache = model.new_cache()
        with pytest.raises(ValueError, match="max_seq_len"):
            model.prefill(np.ones(49, dtype=np.intp), cache)

    def test_mask_shape_mismatch_raises(self, model):
        cache = model.new_cache()
        with pytest.raises(ValueError, match="mask shape"):
            model.forward_masked(
                np.array([1]), np.array([0]), np.zeros((1, 5)), cache
            )

    def test_next_distribution_sums_to_one(self, model):
        cache = model.new_cache()
        model.prefill(np.array([1, 2]), cache)
        probs = model.next_distribution(3, cache)
        assert probs.sum() == pytest.approx(1.0)
        assert (probs >= 0).all()

    def test_determinism(self, model, rng):
        tokens = rng.integers(1, 32, size=6)
        a = model.logits_for_sequence(tokens)
        b = model.logits_for_sequence(tokens)
        np.testing.assert_array_equal(a, b)


class TestTrainingPath:
    def test_train_forward_matches_inference(self, model, rng):
        tokens = rng.integers(1, 32, size=7)
        train_logits, _ = model.forward_train(tokens)
        infer_logits = model.logits_for_sequence(tokens)
        np.testing.assert_allclose(train_logits, infer_logits, atol=1e-10)

    def test_sequence_too_long_raises(self, model):
        with pytest.raises(ValueError, match="max_seq_len"):
            model.forward_train(np.ones(49, dtype=np.intp))

    def test_full_gradient_check(self, rng):
        """Analytic gradients match finite differences for every tensor."""
        config = ModelConfig(vocab_size=12, d_model=8, n_layers=2, n_heads=2,
                             max_seq_len=12)
        model = TransformerLM(config, seed=1)
        tokens = rng.integers(1, 12, size=5)
        targets = np.concatenate([tokens[1:], [-1]])

        def loss():
            logits, _ = model.forward_train(tokens)
            return softmax_cross_entropy(logits, targets)[0]

        logits, caches = model.forward_train(tokens)
        _, dlogits = softmax_cross_entropy(logits, targets)
        grads = model.backward(dlogits, caches)

        eps = 1e-6
        for name in model.params.names():
            p = model.params[name]
            # Check a handful of entries per tensor to keep runtime sane.
            flat = p.reshape(-1)
            indices = rng.choice(flat.size, size=min(3, flat.size),
                                 replace=False)
            for i in indices:
                orig = flat[i]
                flat[i] = orig + eps
                fp = loss()
                flat[i] = orig - eps
                fm = loss()
                flat[i] = orig
                numerical = (fp - fm) / (2 * eps)
                analytic = grads[name].reshape(-1)[i]
                assert analytic == pytest.approx(numerical, abs=2e-6), name

    @given(st.integers(min_value=2, max_value=12))
    @settings(max_examples=10, deadline=None)
    def test_backward_produces_grad_for_every_param(self, seq_len):
        config = ModelConfig(vocab_size=12, d_model=8, n_layers=1, n_heads=2,
                             max_seq_len=16)
        model = TransformerLM(config, seed=2)
        tokens = (np.arange(seq_len) % 11) + 1
        logits, caches = model.forward_train(tokens)
        targets = np.concatenate([tokens[1:], [-1]])
        _, dlogits = softmax_cross_entropy(logits, targets)
        grads = model.backward(dlogits, caches)
        assert set(grads) == set(model.params.names())
        for name, grad in grads.items():
            assert grad.shape == model.params[name].shape, name
            assert np.isfinite(grad).all(), name
