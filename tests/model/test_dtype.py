"""Tests for reduced-precision (float32) operation.

Production serving runs FP16; the closest NumPy analogue is float32.  The
substrate must stay consistent (cache == scratch) at lower precision, and
the speculative engines must remain lossless — acceptance decisions compare
tokens, not floats, so precision affects *which* tokens get speculated but
never output correctness.
"""

import numpy as np
import pytest

from repro.model.config import ModelConfig
from repro.model.coupled import CoupledSSM
from repro.model.transformer import TransformerLM

F32_CONFIG = ModelConfig(vocab_size=32, d_model=16, n_layers=2, n_heads=2,
                         max_seq_len=48, dtype="float32", name="f32-lm")


@pytest.fixture(scope="module")
def model():
    return TransformerLM(F32_CONFIG, seed=11)


class TestFloat32:
    def test_parameters_are_float32(self, model):
        for name in model.params.names():
            assert model.params[name].dtype == np.float32, name

    def test_cache_storage_is_float32(self, model):
        cache = model.new_cache()
        model.prefill(np.array([1, 2, 3]), cache)
        keys, values = cache.layers[0].view()
        assert keys.dtype == np.float32
        assert values.dtype == np.float32

    def test_cache_equals_scratch_within_tolerance(self, model, rng):
        tokens = rng.integers(1, 32, size=8)
        full = model.logits_for_sequence(tokens)
        cache = model.new_cache()
        model.prefill(tokens[:4], cache)
        for i in range(4, 8):
            step = model.decode(int(tokens[i]), cache)
            np.testing.assert_allclose(step, full[i], atol=1e-4)

    def test_tree_decode_matches_per_path(self, model, rng):
        from repro.tree.token_tree import TokenTree
        from repro.verify.decode import (
            sequence_parallel_decode,
            tree_parallel_decode,
        )

        prompt = rng.integers(1, 32, size=4)
        tree = TokenTree(5)
        a = tree.add_child(0, 6)
        tree.add_child(0, 7)
        tree.add_child(a, 8)
        cache = model.new_cache()
        model.prefill(prompt, cache)
        snap = cache.snapshot()
        out = tree_parallel_decode(model, cache, tree)
        cache.restore(snap)
        seq_out, _ = sequence_parallel_decode(model, cache, tree)
        for node in range(len(tree)):
            np.testing.assert_allclose(
                out.logits_for_node(node), seq_out[node], atol=1e-4
            )

    def test_lossless_speculation_at_float32(self, model, rng):
        from repro.engine.generation import GenerationConfig
        from repro.engine.incremental import IncrementalEngine
        from repro.engine.tree_spec import SpecInferEngine
        from repro.speculate.expansion import ExpansionConfig
        from repro.speculate.speculator import Speculator

        prompt = list(rng.integers(1, 32, size=5))
        config = GenerationConfig(max_new_tokens=12)
        reference = IncrementalEngine(model).generate(prompt, config)
        ssm = CoupledSSM(model, alignment=0.9, seed=2, noise_scale=2.0)
        engine = SpecInferEngine(
            model, Speculator([ssm], ExpansionConfig((2, 2, 1)))
        )
        assert engine.generate(prompt, config).tokens == reference.tokens

    def test_training_step_at_float32(self, model, rng):
        """Forward/backward runs and produces finite float32 grads."""
        from repro.model.layers import softmax_cross_entropy

        tokens = rng.integers(1, 32, size=6)
        logits, caches = model.forward_train(tokens)
        targets = np.concatenate([tokens[1:], [-1]])
        _, dlogits = softmax_cross_entropy(logits, targets)
        grads = model.backward(dlogits, caches)
        for name, grad in grads.items():
            assert np.isfinite(grad).all(), name
