"""Tests for rotary position embeddings and their transformer integration."""

import numpy as np
import pytest

from repro.model.config import ModelConfig
from repro.model.layers import softmax_cross_entropy
from repro.model.rope import relative_score_invariance_check, rope_rotate
from repro.model.transformer import TransformerLM
from repro.tree.token_tree import TokenTree
from repro.verify.decode import sequence_parallel_decode, tree_parallel_decode

ROPE_CONFIG = ModelConfig(
    vocab_size=32, d_model=16, n_layers=2, n_heads=2, max_seq_len=48,
    position_encoding="rope", name="rope-lm",
)


class TestRotation:
    def test_position_zero_is_identity(self, rng):
        x = rng.normal(size=(3, 2, 8))
        out = rope_rotate(x, np.zeros(3, dtype=np.intp))
        np.testing.assert_allclose(out, x)

    def test_rotation_preserves_norm(self, rng):
        x = rng.normal(size=(4, 2, 8))
        out = rope_rotate(x, np.array([0, 5, 17, 40]))
        np.testing.assert_allclose(
            np.linalg.norm(out, axis=-1), np.linalg.norm(x, axis=-1)
        )

    def test_inverse_undoes_rotation(self, rng):
        x = rng.normal(size=(4, 2, 8))
        positions = np.array([1, 9, 3, 27])
        roundtrip = rope_rotate(
            rope_rotate(x, positions), positions, inverse=True
        )
        np.testing.assert_allclose(roundtrip, x, atol=1e-12)

    def test_relative_invariance(self, rng):
        """Scores depend only on relative positions (RoPE's defining
        property) — a global shift leaves all dot products unchanged."""
        q = rng.normal(size=(5, 2, 8))
        k = rng.normal(size=(5, 2, 8))
        assert relative_score_invariance_check(q, k, shift=7) < 1e-9

    def test_odd_head_dim_rejected(self, rng):
        with pytest.raises(ValueError, match="even"):
            rope_rotate(rng.normal(size=(2, 1, 7)), np.array([0, 1]))

    def test_position_shape_checked(self, rng):
        with pytest.raises(ValueError, match="positions"):
            rope_rotate(rng.normal(size=(2, 1, 8)), np.array([0, 1, 2]))


class TestConfig:
    def test_rejects_unknown_encoding(self):
        with pytest.raises(ValueError, match="position_encoding"):
            ModelConfig(position_encoding="alibi")

    def test_rejects_odd_head_dim_with_rope(self):
        with pytest.raises(ValueError, match="even"):
            ModelConfig(d_model=6, n_heads=2, position_encoding="rope")

    def test_rope_model_has_no_pos_embed(self):
        model = TransformerLM(ROPE_CONFIG, seed=0)
        assert "pos_embed" not in model.params
        assert ROPE_CONFIG.num_parameters() == model.params.num_parameters()


class TestRopeTransformer:
    @pytest.fixture(scope="class")
    def model(self):
        return TransformerLM(ROPE_CONFIG, seed=3)

    def test_cache_equals_scratch(self, model, rng):
        tokens = rng.integers(1, 32, size=9)
        full = model.logits_for_sequence(tokens)
        cache = model.new_cache()
        prefill = model.prefill(tokens[:4], cache)
        np.testing.assert_allclose(prefill, full[:4], atol=1e-10)
        for i in range(4, 9):
            np.testing.assert_allclose(
                model.decode(int(tokens[i]), cache), full[i], atol=1e-10
            )

    def test_train_matches_inference(self, model, rng):
        tokens = rng.integers(1, 32, size=7)
        train_logits, _ = model.forward_train(tokens)
        np.testing.assert_allclose(
            train_logits, model.logits_for_sequence(tokens), atol=1e-10
        )

    def test_gradient_check(self, rng):
        model = TransformerLM(ROPE_CONFIG, seed=5)
        tokens = rng.integers(1, 32, size=5)
        targets = np.concatenate([tokens[1:], [-1]])

        def loss():
            logits, _ = model.forward_train(tokens)
            return softmax_cross_entropy(logits, targets)[0]

        logits, caches = model.forward_train(tokens)
        _, dlogits = softmax_cross_entropy(logits, targets)
        grads = model.backward(dlogits, caches)
        eps = 1e-6
        for name in ("layer0.attn.wq", "layer0.attn.wk", "tok_embed",
                     "layer1.mlp.w1"):
            p = model.params[name]
            flat = p.reshape(-1)
            for i in (0, flat.size // 2):
                orig = flat[i]
                flat[i] = orig + eps
                fp = loss()
                flat[i] = orig - eps
                fm = loss()
                flat[i] = orig
                numerical = (fp - fm) / (2 * eps)
                assert grads[name].reshape(-1)[i] == pytest.approx(
                    numerical, abs=2e-6
                ), name

    def test_tree_decode_equivalence_with_rope(self, model, rng):
        """The headline interaction: tree attention + RoPE must still be
        bit-identical to per-path decoding (depth-based positions rotate
        sibling candidates identically)."""
        prompt = rng.integers(1, 32, size=5)
        tree = TokenTree(6)
        a = tree.add_child(0, 7)
        tree.add_child(0, 8)
        tree.add_child(a, 9)
        tree.add_child(a, 10)
        cache = model.new_cache()
        model.prefill(prompt, cache)
        snap = cache.snapshot()
        out = tree_parallel_decode(model, cache, tree)
        cache.restore(snap)
        seq_out, _ = sequence_parallel_decode(model, cache, tree)
        for node in range(len(tree)):
            np.testing.assert_allclose(
                out.logits_for_node(node), seq_out[node], atol=1e-10
            )

    def test_full_engine_lossless_with_rope(self, model, rng):
        from repro.engine.generation import GenerationConfig
        from repro.engine.incremental import IncrementalEngine
        from repro.engine.tree_spec import SpecInferEngine
        from repro.model.coupled import CoupledSSM
        from repro.speculate.expansion import ExpansionConfig
        from repro.speculate.speculator import Speculator

        prompt = list(rng.integers(1, 32, size=5))
        config = GenerationConfig(max_new_tokens=12)
        incremental = IncrementalEngine(model).generate(prompt, config)
        engine = SpecInferEngine(
            model,
            Speculator(
                [CoupledSSM(model, alignment=0.9, seed=2, noise_scale=2.0)],
                ExpansionConfig((2, 2, 1)),
            ),
        )
        assert engine.generate(prompt, config).tokens == incremental.tokens
