"""Tests for the hot-path op counters."""

import numpy as np

from repro.model import perf
from repro.model.attention import scaled_dot_attention
from repro.model.layers import linear_forward


class TestTrack:
    def test_track_measures_delta_only(self):
        perf.add_gemm(1, 1, 1)  # unrelated background accumulation
        with perf.track() as c:
            perf.add_gemm(2, 3, 4)
        assert c.gemm_flops == 2 * 2 * 3 * 4
        with perf.track() as c2:
            pass
        assert c2.gemm_flops == 0

    def test_nested_tracking(self):
        with perf.track() as outer:
            perf.add_kv_copy(10)
            with perf.track() as inner:
                perf.add_kv_copy(5)
        assert inner.kv_bytes_copied == 5
        assert outer.kv_bytes_copied == 15

    def test_reset_zeroes_globals(self):
        perf.add_mask_alloc(7)
        perf.reset()
        assert perf.COUNTERS.mask_cells_allocated == 0


class TestPrimitiveCounting:
    def test_linear_forward_counts_gemm_flops(self):
        x = np.zeros((5, 8))
        w = np.zeros((8, 3))
        b = np.zeros(3)
        with perf.track() as c:
            linear_forward(x, w, b)
        assert c.gemm_flops == 2 * 5 * 8 * 3

    def test_attention_counts_score_flops(self):
        q = np.zeros((2, 4, 8))
        k = np.zeros((6, 4, 8))
        v = np.zeros((6, 4, 8))
        mask = np.zeros((2, 6))
        with perf.track() as c:
            scaled_dot_attention(q, k, v, mask)
        assert c.attn_score_flops == 2 * 2 * 4 * 2 * 6 * 8
        assert c.cross_request_score_flops == 0

    def test_fresh_mask_allocation_is_counted(self):
        from repro.model.attention import causal_mask

        with perf.track() as c:
            causal_mask(5)
        assert c.mask_cells_allocated == 25
        buf = np.empty((5, 5))
        with perf.track() as c2:
            causal_mask(5, out=buf)
        assert c2.mask_cells_allocated == 0
