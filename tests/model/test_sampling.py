"""Tests for sampling utilities (greedy / top-k / top-p / configs)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model.sampling import (
    SamplingConfig,
    distribution_from_logits,
    entropy,
    greedy_token,
    sample_from_probs,
    sample_token,
    softmax,
    top_k_filter,
    top_k_tokens,
    top_p_filter,
)


class TestSamplingConfig:
    def test_defaults_valid(self):
        SamplingConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"temperature": 0.0},
            {"temperature": -1.0},
            {"top_k": -1},
            {"top_p": 0.0},
            {"top_p": 1.5},
        ],
    )
    def test_rejects_invalid(self, kwargs):
        with pytest.raises(ValueError):
            SamplingConfig(**kwargs)


class TestTopK:
    def test_keeps_k_largest(self):
        probs = np.array([0.1, 0.4, 0.2, 0.3])
        out = top_k_filter(probs, 2)
        assert out[0] == 0.0 and out[2] == 0.0
        assert out.sum() == pytest.approx(1.0)
        assert out[1] > out[3]

    def test_k_zero_or_large_is_identity(self):
        probs = np.array([0.25, 0.25, 0.5])
        np.testing.assert_array_equal(top_k_filter(probs, 0), probs)
        np.testing.assert_array_equal(top_k_filter(probs, 10), probs)

    @given(st.integers(min_value=1, max_value=8))
    @settings(max_examples=30, deadline=None)
    def test_result_has_at_most_k_nonzero(self, k):
        rng = np.random.default_rng(k)
        probs = softmax(rng.normal(size=8))
        out = top_k_filter(probs, k)
        assert (out > 0).sum() <= k
        assert out.sum() == pytest.approx(1.0)


class TestTopP:
    def test_keeps_smallest_covering_set(self):
        probs = np.array([0.5, 0.3, 0.15, 0.05])
        out = top_p_filter(probs, 0.7)
        assert out[0] > 0 and out[1] > 0
        assert out[2] == 0.0 and out[3] == 0.0
        assert out.sum() == pytest.approx(1.0)

    def test_p_one_is_identity(self):
        probs = np.array([0.5, 0.5])
        np.testing.assert_array_equal(top_p_filter(probs, 1.0), probs)

    def test_always_keeps_at_least_one(self):
        probs = np.array([0.9, 0.1])
        out = top_p_filter(probs, 0.01)
        assert (out > 0).sum() == 1
        assert out[0] == pytest.approx(1.0)


class TestDistributionFromLogits:
    def test_greedy_is_one_hot(self, rng):
        logits = rng.normal(size=10)
        probs = distribution_from_logits(logits, SamplingConfig(greedy=True))
        assert probs[np.argmax(logits)] == 1.0
        assert probs.sum() == pytest.approx(1.0)

    def test_temperature_sharpens(self, rng):
        logits = rng.normal(size=10)
        hot = distribution_from_logits(logits, SamplingConfig(temperature=2.0))
        cold = distribution_from_logits(logits, SamplingConfig(temperature=0.25))
        assert entropy(cold) < entropy(hot)

    def test_filters_compose(self, rng):
        logits = rng.normal(size=20)
        probs = distribution_from_logits(
            logits, SamplingConfig(top_k=5, top_p=0.9)
        )
        assert (probs > 0).sum() <= 5
        assert probs.sum() == pytest.approx(1.0)


class TestSampling:
    def test_greedy_token(self):
        assert greedy_token(np.array([0.1, 5.0, 2.0])) == 1

    def test_sample_token_greedy_config(self, rng):
        logits = np.array([0.0, 10.0, 0.0])
        token = sample_token(logits, SamplingConfig(greedy=True), rng)
        assert token == 1

    def test_sample_matches_distribution(self):
        rng = np.random.default_rng(0)
        logits = np.log(np.array([0.7, 0.2, 0.1]))
        counts = np.zeros(3)
        for _ in range(3000):
            counts[sample_token(logits, SamplingConfig(), rng)] += 1
        freqs = counts / counts.sum()
        np.testing.assert_allclose(freqs, [0.7, 0.2, 0.1], atol=0.03)

    def test_sample_from_probs_rejects_invalid(self, rng):
        with pytest.raises(ValueError):
            sample_from_probs(np.zeros(4), rng)
        with pytest.raises(ValueError):
            sample_from_probs(np.array([np.nan, 1.0]), rng)

    def test_top_k_tokens_ordering(self):
        probs = np.array([0.1, 0.5, 0.15, 0.25])
        np.testing.assert_array_equal(top_k_tokens(probs, 3), [1, 3, 2])

    def test_top_k_tokens_edge_cases(self):
        probs = np.array([0.6, 0.4])
        assert top_k_tokens(probs, 0).size == 0
        np.testing.assert_array_equal(top_k_tokens(probs, 5), [0, 1])


class TestEntropy:
    def test_uniform_maximal(self):
        uniform = np.full(8, 1 / 8)
        assert entropy(uniform) == pytest.approx(np.log(8))

    def test_point_mass_zero(self):
        point = np.zeros(8)
        point[3] = 1.0
        assert entropy(point) == pytest.approx(0.0, abs=1e-9)
