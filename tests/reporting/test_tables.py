"""Tests for the ASCII table renderer."""

import pytest

from repro.reporting.tables import AsciiTable, format_float, render_series


class TestAsciiTable:
    def test_render_alignment(self):
        table = AsciiTable(["name", "value"], title="T")
        table.add_row("a", 1)
        table.add_row("longer", 22)
        out = table.render()
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "value" in lines[1]
        # All data rows have the same width.
        assert len(lines[3]) == len(lines[4])

    def test_cell_count_checked(self):
        table = AsciiTable(["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_empty_headers_rejected(self):
        with pytest.raises(ValueError):
            AsciiTable([])

    def test_str_matches_render(self):
        table = AsciiTable(["x"])
        table.add_row(3)
        assert str(table) == table.render()


class TestHelpers:
    def test_format_float(self):
        assert format_float(1.23456) == "1.23"
        assert format_float(1.23456, 3) == "1.235"

    def test_render_series(self):
        out = render_series("w=2", ["BS1", "BS2"], [1.5, 2.25])
        assert out == "w=2: BS1=1.50, BS2=2.25"
