"""Tests for the ASCII table renderer."""

import pytest

from repro.reporting.tables import (
    AsciiTable,
    _wrap_cell,
    format_float,
    render_series,
)


class TestAsciiTable:
    def test_render_alignment(self):
        table = AsciiTable(["name", "value"], title="T")
        table.add_row("a", 1)
        table.add_row("longer", 22)
        out = table.render()
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "value" in lines[1]
        # All data rows have the same width.
        assert len(lines[3]) == len(lines[4])

    def test_cell_count_checked(self):
        table = AsciiTable(["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_empty_headers_rejected(self):
        with pytest.raises(ValueError):
            AsciiTable([])

    def test_str_matches_render(self):
        table = AsciiTable(["x"])
        table.add_row(3)
        assert str(table) == table.render()


class TestColumnWrapping:
    def test_wrap_cell_prefers_segment_boundaries(self):
        assert _wrap_cell("repro.gateway.queue_depth", 24) == \
            ["repro.gateway.queue", "_depth"]

    def test_wrap_cell_hard_breaks_without_separator(self):
        assert _wrap_cell("abcdefgh", 3) == ["abc", "def", "gh"]

    def test_wrap_cell_short_cell_untouched(self):
        assert _wrap_cell("short", 24) == ["short"]

    def test_long_cells_wrap_and_stay_aligned(self):
        table = AsciiTable(["name", "value"], max_col_width=10)
        table.add_row("a" * 25, 1)
        table.add_row("b", 2)
        lines = table.render().splitlines()
        # Every physical line has the same width; none exceeds the cap
        # plus the second column and separator.
        assert len({len(line) for line in lines}) == 1
        assert all(len(line) <= 10 + 3 + 5 for line in lines)

    def test_continuation_lines_blank_other_columns(self):
        table = AsciiTable(["name", "val"], max_col_width=4)
        table.add_row("abcdefgh", 7)
        lines = table.render().splitlines()
        assert lines[2].startswith("abcd")
        assert "7" in lines[2]
        assert lines[3].startswith("efgh")
        assert "7" not in lines[3]

    def test_long_headers_wrap_too(self):
        table = AsciiTable(["name", "value"], max_col_width=4)
        table.add_row("x", 7)
        lines = table.render().splitlines()
        assert lines[0].startswith("name") and "valu" in lines[0]
        assert "e" in lines[1]

    def test_zero_cap_renders_as_before(self):
        capped = AsciiTable(["h"], max_col_width=0)
        plain = AsciiTable(["h"])
        for t in (capped, plain):
            t.add_row("a-very-long-single-cell")
        assert capped.render() == plain.render()

    def test_rejects_negative_cap(self):
        with pytest.raises(ValueError):
            AsciiTable(["h"], max_col_width=-1)


class TestMetricsTableGolden:
    def test_gateway_names_wrap_golden(self):
        """Golden output: long ``repro.gateway.*`` names wrap onto
        continuation lines at segment boundaries and every row stays
        aligned with the header."""
        from repro.obs import MetricsRegistry
        from repro.reporting.metrics import render_metrics_table

        registry = MetricsRegistry()
        registry.gauge("repro.gateway.queue_depth").set(3)
        hist = registry.histogram(
            "repro.gateway.ttft_seconds.interactive",
            buckets=(0.001, 0.01, 0.1, 1.0))
        hist.observe(0.005)
        hist.observe(0.02)
        registry.counter("repro.gateway.rejected_queue_full").inc(2)
        out = render_metrics_table(registry.snapshot(),
                                   title="gateway metrics",
                                   max_col_width=24)
        assert out == (
            "gateway metrics\n"
            "metric                 | kind      | value           | detail            \n"
            "-----------------------+-----------+-----------------+-------------------\n"
            "repro.gateway.queue    | gauge     | 3               | -                 \n"
            "_depth                 |           |                 |                   \n"
            "repro.gateway.rejected | counter   | 2               | -                 \n"
            "_queue_full            |           |                 |                   \n"
            "repro.gateway.ttft     | histogram | n=2 mean=0.0125 | le=0.01:1 le=0.1:1\n"
            "_seconds.interactive   |           |                 |                   "
        )

    def test_default_cap_keeps_short_names_on_one_line(self):
        from repro.obs import MetricsRegistry
        from repro.reporting.metrics import render_metrics_table

        registry = MetricsRegistry()
        registry.counter("repro.serving.iterations").inc(5)
        out = render_metrics_table(registry.snapshot())
        assert "repro.serving.iterations" in out.splitlines()[3]


class TestHelpers:
    def test_format_float(self):
        assert format_float(1.23456) == "1.23"
        assert format_float(1.23456, 3) == "1.235"

    def test_render_series(self):
        out = render_series("w=2", ["BS1", "BS2"], [1.5, 2.25])
        assert out == "w=2: BS1=1.50, BS2=2.25"
