"""Tests for output-quality metrics."""

import numpy as np
import pytest

from repro.metrics.quality import (
    compare_outputs,
    perplexity,
    sequence_log_likelihood,
)
from tests.conftest import make_prompt


class TestLogLikelihood:
    def test_greedy_continuation_is_most_likely_stepwise(self, llm, rng):
        """The greedy continuation's likelihood >= any single-token
        deviation of it."""
        prompt = list(make_prompt(rng, length=4))
        cache = llm.new_cache()
        llm.prefill(np.asarray(prompt[:-1]), cache)
        t = prompt[-1]
        greedy = []
        for _ in range(4):
            t = int(np.argmax(llm.decode(t, cache)))
            greedy.append(t)
        ll_greedy = sequence_log_likelihood(llm, prompt, greedy)
        perturbed = list(greedy)
        perturbed[0] = (perturbed[0] + 1) % llm.config.vocab_size
        ll_perturbed = sequence_log_likelihood(llm, prompt, perturbed[:1])
        assert ll_greedy / len(greedy) >= ll_perturbed - 1e-9 or \
            sequence_log_likelihood(llm, prompt, greedy[:1]) >= ll_perturbed

    def test_additivity(self, llm, rng):
        """ll(prompt, a+b) = ll(prompt, a) + ll(prompt+a, b)."""
        prompt = list(make_prompt(rng, length=4))
        a = [5, 9]
        b = [11]
        combined = sequence_log_likelihood(llm, prompt, a + b)
        split = (
            sequence_log_likelihood(llm, prompt, a)
            + sequence_log_likelihood(llm, prompt + a, b)
        )
        assert combined == pytest.approx(split, abs=1e-9)

    def test_validation(self, llm):
        with pytest.raises(ValueError):
            sequence_log_likelihood(llm, [], [1])
        with pytest.raises(ValueError):
            sequence_log_likelihood(llm, [1], [])


class TestPerplexity:
    def test_positive_and_bounded_by_vocab(self, llm, rng):
        prompt = list(make_prompt(rng, length=4))
        ppl = perplexity(llm, prompt, [3, 7, 12])
        assert 1.0 <= ppl

    def test_likely_text_has_lower_perplexity(self, llm, rng):
        """The model's own greedy continuation scores better than random
        tokens."""
        prompt = list(make_prompt(rng, length=4))
        cache = llm.new_cache()
        llm.prefill(np.asarray(prompt[:-1]), cache)
        t = prompt[-1]
        greedy = []
        for _ in range(5):
            t = int(np.argmax(llm.decode(t, cache)))
            greedy.append(t)
        random_tokens = list(rng.integers(1, 64, size=5))
        assert perplexity(llm, prompt, greedy) < \
            perplexity(llm, prompt, random_tokens)


class TestCompareOutputs:
    def test_identical_outputs(self, llm, rng):
        prompts = [list(make_prompt(rng, length=4)) for _ in range(3)]
        outputs = [[1, 2], [3, 4], [5, 6]]
        comparison = compare_outputs(llm, prompts, outputs, outputs)
        assert comparison.exact_match_rate == 1.0
        assert comparison.perplexity_gap == pytest.approx(0.0)

    def test_speculative_vs_incremental_quality(self, llm, ssm, rng):
        """The paper's quality claim, measured: identical outputs, zero
        perplexity gap."""
        from repro.engine.generation import GenerationConfig
        from repro.engine.incremental import IncrementalEngine
        from repro.engine.tree_spec import SpecInferEngine
        from repro.speculate.expansion import ExpansionConfig
        from repro.speculate.speculator import Speculator

        prompts = [list(make_prompt(rng, length=5)) for _ in range(3)]
        config = GenerationConfig(max_new_tokens=10, stop_on_eos=False)
        inc = [IncrementalEngine(llm).generate(p, config).tokens
               for p in prompts]
        engine = SpecInferEngine(
            llm, Speculator([ssm], ExpansionConfig((2, 2, 1)))
        )
        spec = [engine.generate(p, config).tokens for p in prompts]
        comparison = compare_outputs(llm, prompts, inc, spec)
        assert comparison.exact_match_rate == 1.0
        assert comparison.perplexity_gap == pytest.approx(0.0)

    def test_validation(self, llm):
        with pytest.raises(ValueError):
            compare_outputs(llm, [[1]], [[1]], [])
        with pytest.raises(ValueError):
            compare_outputs(llm, [], [], [])
