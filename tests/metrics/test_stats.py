"""Tests for metrics helpers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics.stats import (
    empirical_cdf,
    speedup,
    summarize,
    total_variation_distance,
)


class TestSummarize:
    def test_basic(self):
        stats = summarize([1, 2, 3, 4, 5])
        assert stats.mean == 3.0
        assert stats.minimum == 1.0
        assert stats.maximum == 5.0
        assert stats.p50 == 3.0
        assert stats.count == 5

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            summarize([])


class TestCdf:
    def test_values(self):
        cdf = empirical_cdf([1.0, 2.0, 3.0, 4.0])
        assert cdf.at(2.0) == pytest.approx(0.5)
        assert cdf.at(0.5) == 0.0
        assert cdf.at(10.0) == 1.0

    def test_quantile(self):
        cdf = empirical_cdf([1.0, 2.0, 3.0, 4.0])
        assert cdf.quantile(0.5) == 2.0
        assert cdf.quantile(1.0) == 4.0

    def test_quantile_bounds(self):
        cdf = empirical_cdf([1.0])
        with pytest.raises(ValueError):
            cdf.quantile(1.5)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            empirical_cdf([])

    @given(st.lists(st.floats(min_value=-100, max_value=100), min_size=1,
                    max_size=50))
    @settings(max_examples=50, deadline=None)
    def test_cdf_monotone_and_bounded(self, values):
        cdf = empirical_cdf(values)
        assert (np.diff(cdf.ps) >= 0).all()
        assert (np.diff(cdf.xs) >= 0).all()
        assert cdf.ps[-1] == pytest.approx(1.0)


class TestSpeedup:
    def test_speedup(self):
        assert speedup(10.0, 5.0) == 2.0

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            speedup(1.0, 0.0)


class TestTvDistance:
    def test_identical_is_zero(self):
        p = np.array([0.5, 0.5])
        assert total_variation_distance(p, p) == 0.0

    def test_disjoint_is_one(self):
        assert total_variation_distance(
            np.array([1.0, 0.0]), np.array([0.0, 1.0])
        ) == 1.0

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            total_variation_distance(np.ones(2), np.ones(3))

    def test_symmetry(self, rng):
        p = rng.dirichlet(np.ones(6))
        q = rng.dirichlet(np.ones(6))
        assert total_variation_distance(p, q) == pytest.approx(
            total_variation_distance(q, p)
        )
