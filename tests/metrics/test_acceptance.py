"""Tests for acceptance-rate analytics."""

import numpy as np
import pytest

from repro.engine.generation import GenerationResult, StepTrace
from repro.metrics.acceptance import (
    acceptance_distribution,
    best_depth,
    effective_tree_alpha,
    estimate_alpha,
    expected_tokens_per_step,
    predict_speedup,
)


class TestClosedForms:
    def test_alpha_zero_gives_one_token(self):
        assert expected_tokens_per_step(0.0, 8) == 1.0

    def test_alpha_one_accepts_everything(self):
        assert expected_tokens_per_step(1.0, 8) == 9.0

    def test_matches_geometric_sum(self):
        alpha, depth = 0.7, 5
        expected = sum(alpha**k for k in range(depth + 1))
        assert expected_tokens_per_step(alpha, depth) == \
            pytest.approx(expected)

    def test_distribution_sums_to_one(self):
        probs = acceptance_distribution(0.6, 8)
        assert probs.sum() == pytest.approx(1.0)
        assert len(probs) == 9

    def test_distribution_mean_matches_expected_tokens(self):
        alpha, depth = 0.65, 6
        probs = acceptance_distribution(alpha, depth)
        mean_accepted = float((np.arange(depth + 1) * probs).sum())
        # Tokens per step = accepted + 1 bonus.
        assert mean_accepted + 1 == pytest.approx(
            expected_tokens_per_step(alpha, depth)
        )

    def test_monte_carlo_agreement(self):
        """Closed form matches direct simulation of the acceptance chain."""
        rng = np.random.default_rng(0)
        alpha, depth = 0.6, 8
        emitted = []
        for _ in range(20000):
            k = 0
            while k < depth and rng.uniform() < alpha:
                k += 1
            emitted.append(k + 1)
        assert np.mean(emitted) == pytest.approx(
            expected_tokens_per_step(alpha, depth), abs=0.03
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            expected_tokens_per_step(1.5, 4)
        with pytest.raises(ValueError):
            expected_tokens_per_step(0.5, -1)


class TestTreeAlpha:
    def test_width_one_is_identity(self):
        assert effective_tree_alpha(0.6, 1) == pytest.approx(0.6)

    def test_width_grows_alpha(self):
        assert effective_tree_alpha(0.6, 3) > 0.6

    def test_paper_magnitude(self):
        """Top-5 boosts ~55% to ~90%+ (Table 1 stochastic shape)."""
        assert effective_tree_alpha(0.55, 5) > 0.9


class TestEstimateAlpha:
    def _trace(self, emitted_per_step, depth):
        result = GenerationResult(prompt=np.array([1]))
        result.steps = [
            StepTrace(llm_tokens_scored=depth + 1, tokens_emitted=e,
                      tree_depth=depth, tree_size=depth + 1)
            for e in emitted_per_step
        ]
        result.tokens = list(range(sum(emitted_per_step)))
        return result

    def test_perfect_acceptance(self):
        trace = self._trace([9, 9], depth=8)
        assert estimate_alpha([trace]) == 1.0

    def test_zero_acceptance(self):
        trace = self._trace([1, 1], depth=8)
        assert estimate_alpha([trace]) == 0.0

    def test_no_speculation_raises(self):
        result = GenerationResult(prompt=np.array([1]))
        result.steps = [StepTrace(llm_tokens_scored=1, tokens_emitted=1)]
        with pytest.raises(ValueError):
            estimate_alpha([result])

    def test_recovers_alpha_from_real_engine(self, llm, ssm, rng):
        """Estimated alpha plugged into the closed form predicts the
        engine's measured tokens/step within tolerance."""
        from repro.engine.generation import GenerationConfig
        from repro.engine.sequence_spec import make_sequence_spec_engine
        from tests.conftest import make_prompt

        engine = make_sequence_spec_engine(llm, ssm, depth=6)
        traces = [
            engine.generate(make_prompt(rng, length=5),
                            GenerationConfig(max_new_tokens=24,
                                             stop_on_eos=False))
            for _ in range(4)
        ]
        alpha = estimate_alpha(traces)
        predicted = expected_tokens_per_step(alpha, 6)
        measured = float(np.mean(
            [t.mean_tokens_per_step for t in traces]
        ))
        assert predicted == pytest.approx(measured, rel=0.25)


class TestPlanning:
    def test_speedup_positive(self):
        assert predict_speedup(0.7, 8) > 1.0

    def test_free_ssm_prefers_max_depth(self):
        assert best_depth(0.9, ssm_cost_ratio=0.0, max_depth=16) == 16

    def test_costly_ssm_prefers_shallow(self):
        deep_cheap = best_depth(0.7, ssm_cost_ratio=0.0)
        shallow_costly = best_depth(0.7, ssm_cost_ratio=0.3)
        assert shallow_costly < deep_cheap

    def test_paper_depth8_is_reasonable(self):
        """With Table 1-style alpha ~0.7 and a 100x-smaller SSM, the optimal
        planned depth is in the neighborhood of the paper's choice of 8."""
        depth = best_depth(0.7, ssm_cost_ratio=0.02)
        assert 4 <= depth <= 16
