"""Tests for the seeded fault-injection layer (plan + injector)."""

import pytest

from repro.faults import (
    FaultError,
    FaultInjector,
    FaultKind,
    FaultPlan,
    KvPressureFault,
    SpeculationFault,
    TransientSessionFault,
    VerificationFault,
    exception_for,
)
from repro.obs import REGISTRY


class TestFaultPlan:
    def test_rate_for_uses_base_rate(self):
        plan = FaultPlan(rate=0.25)
        assert all(plan.rate_for(k) == 0.25 for k in FaultKind)

    def test_rate_for_per_kind_override(self):
        plan = FaultPlan(rate=0.1, rates={FaultKind.SESSION: 0.9})
        assert plan.rate_for(FaultKind.SESSION) == 0.9
        assert plan.rate_for(FaultKind.SPECULATION) == 0.1

    @pytest.mark.parametrize("bad", [-0.1, 1.5])
    def test_invalid_rates_rejected(self, bad):
        with pytest.raises(ValueError):
            FaultPlan(rate=bad)
        with pytest.raises(ValueError):
            FaultPlan(rates={FaultKind.KV_PRESSURE: bad})

    def test_streams_are_deterministic(self):
        plan = FaultPlan(rate=0.5, seed=17)
        a = plan.stream(FaultKind.SESSION).random(8)
        b = plan.stream(FaultKind.SESSION).random(8)
        assert list(a) == list(b)

    def test_streams_are_independent_across_kinds(self):
        plan = FaultPlan(rate=0.5, seed=17)
        a = plan.stream(FaultKind.SESSION).random(8)
        b = plan.stream(FaultKind.VERIFICATION).random(8)
        assert list(a) != list(b)

    def test_exception_for_maps_every_kind(self):
        assert exception_for(FaultKind.SPECULATION) is SpeculationFault
        assert exception_for(FaultKind.VERIFICATION) is VerificationFault
        assert exception_for(FaultKind.SESSION) is TransientSessionFault
        assert exception_for(FaultKind.KV_PRESSURE) is KvPressureFault
        for kind in FaultKind:
            assert issubclass(exception_for(kind), FaultError)


class TestFaultInjector:
    def test_zero_rate_never_fires_and_draws_nothing(self):
        injector = FaultInjector(rate=0.0, seed=1)
        for _ in range(50):
            assert not injector.should_fire(FaultKind.SESSION)
        # rate 0 short-circuits before touching the stream, so attaching a
        # default injector perturbs no RNG state anywhere.
        assert list(injector._streams[FaultKind.SESSION].random(4)) == list(
            FaultPlan(seed=1).stream(FaultKind.SESSION).random(4)
        )
        assert injector.total_injected == 0
        assert injector.checks[FaultKind.SESSION] == 50

    def test_rate_one_always_fires(self):
        injector = FaultInjector(rate=1.0, seed=1)
        assert all(injector.should_fire(FaultKind.KV_PRESSURE)
                   for _ in range(10))
        assert injector.injected[FaultKind.KV_PRESSURE] == 10

    def test_same_seed_same_decisions(self):
        a = FaultInjector(rate=0.3, seed=5)
        b = FaultInjector(rate=0.3, seed=5)
        seq_a = [a.should_fire(FaultKind.SESSION) for _ in range(64)]
        seq_b = [b.should_fire(FaultKind.SESSION) for _ in range(64)]
        assert seq_a == seq_b
        assert any(seq_a) and not all(seq_a)

    def test_decisions_independent_across_kinds(self):
        """Draining one kind's stream never shifts another's decisions."""
        a = FaultInjector(rate=0.3, seed=5)
        for _ in range(100):
            a.should_fire(FaultKind.SPECULATION)
        after_drain = [a.should_fire(FaultKind.SESSION) for _ in range(32)]
        b = FaultInjector(rate=0.3, seed=5)
        fresh = [b.should_fire(FaultKind.SESSION) for _ in range(32)]
        assert after_drain == fresh

    def test_maybe_fail_raises_matching_exception(self):
        injector = FaultInjector(rates={FaultKind.VERIFICATION: 1.0})
        with pytest.raises(VerificationFault):
            injector.maybe_fail(FaultKind.VERIFICATION, iteration=3)
        # Other kinds stay at rate 0 and pass through.
        injector.maybe_fail(FaultKind.SESSION)

    def test_metrics_count_checks_and_injections(self):
        REGISTRY.reset()
        injector = FaultInjector(rates={FaultKind.SESSION: 1.0})
        injector.should_fire(FaultKind.SESSION)
        injector.should_fire(FaultKind.SPECULATION)
        assert REGISTRY.get("repro.faults.checks").value == 2
        assert REGISTRY.get("repro.faults.injected").value == 1
        assert REGISTRY.get("repro.faults.session").value == 1
        assert REGISTRY.get("repro.faults.speculation").value == 0

    def test_explicit_plan_wins(self):
        plan = FaultPlan(rate=1.0, seed=3)
        injector = FaultInjector(rate=0.0, seed=99, plan=plan)
        assert injector.plan is plan
        assert injector.should_fire(FaultKind.SESSION)
