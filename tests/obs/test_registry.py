"""Unit suite for the metrics registry (counters, gauges, histograms)."""

import pytest

from repro.obs.registry import (
    DEFAULT_COUNT_BUCKETS,
    DEFAULT_TIME_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


@pytest.fixture()
def registry():
    return MetricsRegistry()


class TestNaming:
    def test_layered_names_accepted(self, registry):
        registry.counter("repro.engine.ticks")
        registry.gauge("repro.serving.running")
        registry.histogram("repro.engine.tick.host_seconds")
        assert len(registry) == 3

    @pytest.mark.parametrize("bad", [
        "ticks",                # no layer
        "repro.Engine.ticks",   # uppercase
        "repro..ticks",         # empty segment
        "1repro.engine.ticks",  # leading digit
        "repro.engine.ticks.",  # trailing dot
    ])
    def test_malformed_names_rejected(self, registry, bad):
        with pytest.raises(ValueError, match="convention"):
            registry.counter(bad)


class TestCounter:
    def test_accumulates(self, registry):
        c = registry.counter("repro.t.hits")
        c.inc()
        c.inc(41)
        assert c.value == 42

    def test_rejects_negative(self, registry):
        c = registry.counter("repro.t.hits")
        with pytest.raises(ValueError, match="cannot decrease"):
            c.inc(-1)

    def test_interned(self, registry):
        assert registry.counter("repro.t.hits") is \
            registry.counter("repro.t.hits")

    def test_kind_mismatch_fails_loudly(self, registry):
        registry.counter("repro.t.hits")
        with pytest.raises(TypeError, match="is a counter"):
            registry.gauge("repro.t.hits")


class TestGauge:
    def test_set_add(self, registry):
        g = registry.gauge("repro.t.depth")
        g.set(10)
        g.add(-3)
        assert g.value == 7

    def test_set_max_is_high_water(self, registry):
        g = registry.gauge("repro.t.high_water")
        for v in (5, 12, 3, 12, 9):
            g.set_max(v)
        assert g.value == 12


class TestHistogramBucketEdges:
    """le-semantics: an observation lands in the first bucket with
    ``value <= bound``; above the last bound is the overflow slot."""

    def test_exact_bound_lands_in_that_bucket(self, registry):
        h = registry.histogram("repro.t.sizes", buckets=(1, 2, 4))
        h.observe(2)
        assert h.counts == [0, 1, 0, 0]

    def test_between_bounds_rounds_up(self, registry):
        h = registry.histogram("repro.t.sizes", buckets=(1, 2, 4))
        h.observe(3)
        assert h.counts == [0, 0, 1, 0]

    def test_above_last_bound_overflows(self, registry):
        h = registry.histogram("repro.t.sizes", buckets=(1, 2, 4))
        h.observe(4.0001)
        h.observe(1e9)
        assert h.counts == [0, 0, 0, 2]

    def test_sum_count_mean(self, registry):
        h = registry.histogram("repro.t.sizes", buckets=(1, 2, 4))
        for v in (1, 2, 3):
            h.observe(v)
        assert h.count == 3
        assert h.total == 6.0
        assert h.mean == 2.0

    def test_empty_mean_is_zero(self, registry):
        assert registry.histogram("repro.t.sizes", buckets=(1,)).mean == 0.0

    def test_buckets_fixed_at_registration(self, registry):
        registry.histogram("repro.t.sizes", buckets=(1, 2, 4))
        with pytest.raises(ValueError, match="already registered"):
            registry.histogram("repro.t.sizes", buckets=(1, 2, 8))
        # Same bounds (or omitting them) returns the interned object.
        h = registry.histogram("repro.t.sizes", buckets=(1, 2, 4))
        assert h.bounds == (1.0, 2.0, 4.0)

    def test_unsorted_bounds_rejected(self, registry):
        with pytest.raises(ValueError, match="strictly increasing"):
            registry.histogram("repro.t.sizes", buckets=(4, 2, 1))
        with pytest.raises(ValueError, match="strictly increasing"):
            registry.histogram("repro.t.dups", buckets=(1, 1, 2))

    def test_default_bucket_families(self, registry):
        time_h = registry.histogram("repro.t.host_seconds")
        count_h = registry.histogram("repro.t.tokens",
                                     buckets=DEFAULT_COUNT_BUCKETS)
        assert time_h.bounds == DEFAULT_TIME_BUCKETS
        assert count_h.bounds == tuple(float(b)
                                       for b in DEFAULT_COUNT_BUCKETS)


class TestSnapshotDeltaReset:
    def _populate(self, registry):
        registry.counter("repro.t.hits").inc(10)
        registry.gauge("repro.t.depth").set(4)
        h = registry.histogram("repro.t.sizes", buckets=(1, 2))
        h.observe(1)
        h.observe(2)

    def test_snapshot_is_a_copy(self, registry):
        self._populate(registry)
        snap = registry.snapshot()
        registry.counter("repro.t.hits").inc(5)
        assert snap["repro.t.hits"]["value"] == 10

    def test_delta_subtracts_counters_and_histograms(self, registry):
        self._populate(registry)
        snap = registry.snapshot()
        registry.counter("repro.t.hits").inc(7)
        registry.gauge("repro.t.depth").set(99)
        registry.histogram("repro.t.sizes").observe(2)
        delta = registry.delta(snap)
        assert delta["repro.t.hits"]["value"] == 7
        # Gauges are point-in-time: delta carries the current value.
        assert delta["repro.t.depth"]["value"] == 99
        assert delta["repro.t.sizes"]["count"] == 1
        assert delta["repro.t.sizes"]["counts"] == [0, 1, 0]
        assert delta["repro.t.sizes"]["sum"] == 2.0

    def test_delta_treats_new_metrics_as_from_zero(self, registry):
        snap = registry.snapshot()
        registry.counter("repro.t.hits").inc(3)
        assert registry.delta(snap)["repro.t.hits"]["value"] == 3

    def test_reset_zeroes_in_place(self, registry):
        self._populate(registry)
        c = registry.counter("repro.t.hits")
        h = registry.histogram("repro.t.sizes")
        registry.reset()
        # The interned references survive reset and keep accumulating.
        assert c.value == 0
        assert h.count == 0 and h.counts == [0, 0, 0]
        c.inc()
        assert registry.counter("repro.t.hits").value == 1

    def test_to_json_is_deterministic(self, registry):
        self._populate(registry)
        assert registry.to_json() == registry.to_json()


class TestThreadSafetyContract:
    """The registry is deliberately not thread-safe; the contract is the
    docstring (single-threaded decode loop, no locks on the hot path).
    Keep the warning where the next reader will see it."""

    def test_unsafety_is_documented(self):
        import repro.obs.registry as module

        assert "not thread-safe" in module.__doc__
        assert "not thread-safe" in MetricsRegistry.__doc__.lower()

    def test_no_locks_on_the_hot_path(self):
        # A lock acquire per counter-inc would dwarf the accounting itself;
        # the classes stay plain-attribute on purpose.
        import inspect

        for cls in (Counter, Gauge, Histogram):
            assert "Lock" not in inspect.getsource(cls)
