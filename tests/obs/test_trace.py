"""Tracer unit + schema golden tests.

The JSONL schema is a contract with external consumers (CI trace diffs,
``docs/observability.md``): key set, key order (sorted), separators, and
the seq/id/parent numbering discipline are all pinned here.
"""

import io
import json

import pytest

from repro.obs.registry import MetricsRegistry
from repro.obs.trace import Tracer, tracing


@pytest.fixture()
def tracer():
    return Tracer(registry=MetricsRegistry())


class TestRecording:
    def test_disabled_by_default_records_nothing(self, tracer):
        with tracer.span("repro.t.phase") as span:
            span.set(tokens=3)
            tracer.event("repro.t.mark")
        assert tracer.records() == []

    def test_disabled_spans_still_time_into_registry(self, tracer):
        with tracer.span("repro.t.phase"):
            pass
        hist = tracer.registry.get("repro.t.phase.host_seconds")
        assert hist is not None and hist.count == 1

    def test_span_nesting_and_parent_ids(self, tracer):
        tracer.enable()
        with tracer.span("repro.t.outer"):
            with tracer.span("repro.t.inner"):
                tracer.event("repro.t.mark")
        records = {r["name"]: r for r in tracer.records()}
        assert records["repro.t.outer"]["parent"] is None
        assert records["repro.t.inner"]["parent"] == \
            records["repro.t.outer"]["id"]
        assert records["repro.t.mark"]["span"] == \
            records["repro.t.inner"]["id"]

    def test_records_sorted_by_start_seq(self, tracer):
        tracer.enable()
        with tracer.span("repro.t.outer"):   # opens first, closes last
            with tracer.span("repro.t.inner"):
                pass
        assert [r["name"] for r in tracer.records()] == \
            ["repro.t.outer", "repro.t.inner"]

    def test_set_amends_attrs_before_close(self, tracer):
        tracer.enable()
        with tracer.span("repro.t.phase", requests=2) as span:
            span.set(tokens=9)
        (record,) = tracer.records()
        assert record["attrs"] == {"requests": 2, "tokens": 9}

    def test_reset_restarts_ids(self, tracer):
        tracer.enable()
        with tracer.span("repro.t.phase"):
            pass
        tracer.reset()
        tracer.enable()
        with tracer.span("repro.t.phase"):
            pass
        (record,) = tracer.records()
        assert record["id"] == 0 and record["seq"] == 0


class TestSchemaGolden:
    """Byte-exact golden lines for both record kinds."""

    def test_jsonl_golden(self, tracer):
        tracer.enable()
        with tracer.span("repro.t.tick", iteration=1) as span:
            tracer.event("repro.t.admit", request=0)
            span.set(batch=2)
        expected = "\n".join([
            '{"attrs":{"batch":2,"iteration":1},"end":2,"id":0,'
            '"kind":"span","name":"repro.t.tick","parent":null,"seq":0}',
            '{"attrs":{"request":0},"kind":"event","name":"repro.t.admit",'
            '"seq":1,"span":0}',
        ])
        assert tracer.to_jsonl() == expected

    def test_span_key_set_is_pinned(self, tracer):
        tracer.enable()
        with tracer.span("repro.t.tick"):
            tracer.event("repro.t.mark")
        span, event = (r for r in tracer.records())
        assert sorted(span) == \
            ["attrs", "end", "id", "kind", "name", "parent", "seq"]
        assert sorted(event) == ["attrs", "kind", "name", "seq", "span"]

    def test_export_jsonl_newline_terminated(self, tracer):
        tracer.enable()
        with tracer.span("repro.t.tick"):
            pass
        buf = io.StringIO()
        assert tracer.export_jsonl(buf) == 1
        text = buf.getvalue()
        assert text.endswith("\n") and not text.endswith("\n\n")
        assert json.loads(text) == tracer.records()[0]

    def test_empty_export_writes_nothing(self, tracer):
        buf = io.StringIO()
        assert tracer.export_jsonl(buf) == 0
        assert buf.getvalue() == ""


class TestTracingContext:
    def test_enables_and_restores(self, tracer):
        assert not tracer.enabled
        with tracing(tracer):
            assert tracer.enabled
            with tracer.span("repro.t.phase"):
                pass
        assert not tracer.enabled
        assert len(tracer.records()) == 1

    def test_starts_from_clean_slate(self, tracer):
        tracer.enable()
        with tracer.span("repro.t.stale"):
            pass
        with tracing(tracer):
            assert tracer.records() == []
