"""Regression: the traced seeded workload is byte-deterministic.

This is the observability layer's headline guarantee (and what lets CI
diff traces): for a fixed :class:`WorkloadSpec`, two fresh runs export
*identical* JSONL — no wall-clock leaks into any record — and every
pipeline iteration is covered by all four phase spans.
"""

import collections

import pytest

from repro.obs import REGISTRY, TRACER, reset_observability, tracing
from repro.obs.workload import WorkloadSpec, run_observed_workload

PHASES = ("repro.engine.speculate", "repro.engine.fit",
          "repro.engine.verify", "repro.engine.commit")


def traced_run(spec):
    reset_observability()
    with tracing():
        run_observed_workload(spec)
        return TRACER.to_jsonl(), [dict(r) for r in TRACER.records()]


@pytest.fixture(scope="module")
def workload():
    spec = WorkloadSpec(requests=4, seed=7)
    jsonl, records = traced_run(spec)
    return spec, jsonl, records


class TestByteDeterminism:
    def test_two_runs_identical_jsonl(self, workload):
        spec, first, _ = workload
        second, _ = traced_run(spec)
        assert second == first

    def test_trace_is_nonempty(self, workload):
        _, jsonl, records = workload
        assert records
        assert len(jsonl.splitlines()) == len(records)


class TestPhaseCoverage:
    def test_every_tick_has_all_four_phases(self, workload):
        _, _, records = workload
        ticks = [r for r in records
                 if r["kind"] == "span" and r["name"] == "repro.engine.tick"]
        assert ticks, "no pipeline ticks traced"
        phase_parents = collections.defaultdict(set)
        for r in records:
            if r["kind"] == "span" and r["name"] in PHASES:
                phase_parents[r["parent"]].add(r["name"])
        for tick in ticks:
            assert phase_parents[tick["id"]] == set(PHASES), (
                f"tick {tick['id']} missing phases"
            )

    def test_serving_and_verify_layers_traced(self, workload):
        _, _, records = workload
        names = {r["name"] for r in records}
        assert "repro.serving.iteration" in names
        assert "repro.serving.admit" in names
        assert "repro.serving.retire" in names
        assert any(n.startswith("repro.verify.") for n in names)
        assert "repro.cluster.replay" in names

    def test_registry_populated_alongside_trace(self, workload):
        # The same run fills the always-on metrics side: phase latencies
        # (host time, non-deterministic) and token accounting
        # (deterministic).  Only presence/counts are asserted for the
        # former.
        spec, _, _ = workload
        reset_observability()
        run_observed_workload(spec)
        snap = REGISTRY.snapshot()
        ticks = snap["repro.engine.ticks"]["value"]
        assert ticks > 0
        for phase in PHASES:
            assert snap[f"{phase}.host_seconds"]["count"] == ticks
        assert snap["repro.serving.retired"]["value"] == spec.requests
        assert snap["repro.engine.tokens_per_step"]["count"] > 0
