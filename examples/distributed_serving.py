#!/usr/bin/env python
"""Distributed serving: LLaMA-65B across two nodes, Figure-7 style.

Shows the full serving stack for the paper's largest configuration:
tensor parallelism within each 4-GPU node, pipeline parallelism across the
two nodes, SSMs replicated data-parallel — with SpecInfer's tree
verification amortizing the expensive multi-node decoding steps.

Run:  python examples/distributed_serving.py
"""

import numpy as np

from repro import (
    CoupledSSM,
    ExpansionConfig,
    GenerationConfig,
    IncrementalEngine,
    ModelConfig,
    SpecInferEngine,
    Speculator,
    TransformerLM,
)
from repro.cluster.cost_model import LatencyModel
from repro.cluster.hardware import single_node_cluster, two_node_cluster
from repro.cluster.models import paper_model
from repro.cluster.parallel import ParallelPlan
from repro.cluster.simulator import ServingSimulator


def main() -> None:
    cluster = two_node_cluster()
    llama65b = paper_model("llama-65b")

    # Placement: the auto-planner reproduces the paper's TP=4 x PP=2.
    plan = ParallelPlan.for_model(llama65b, cluster)
    print(f"cluster: {cluster.num_nodes} nodes x "
          f"{cluster.node.gpus_per_node} {cluster.gpu.name} GPUs")
    print(f"placement for {llama65b.name}: tensor-parallel="
          f"{plan.tensor_parallel}, pipeline-stages={plan.pipeline_stages} "
          f"({plan.weight_bytes_per_gpu(llama65b) / 1e9:.1f} GB weights/GPU)\n")

    # Algorithm layer at toy scale.
    llm = TransformerLM(
        ModelConfig(vocab_size=96, d_model=48, n_layers=3, n_heads=4,
                    max_seq_len=160, name="sub-llm"),
        seed=7,
    )
    ssm = CoupledSSM(llm, alignment=0.84, seed=3, noise_scale=2.0)
    rng = np.random.default_rng(2)
    prompts = [list(rng.integers(1, 96, size=10)) for _ in range(3)]
    config = GenerationConfig(max_new_tokens=24, stop_on_eos=False)
    inc_traces = [IncrementalEngine(llm).generate(p, config)
                  for p in prompts]
    engine = SpecInferEngine(
        llm, Speculator([ssm], ExpansionConfig.paper_default())
    )
    spec_traces = [engine.generate(p, config) for p in prompts]

    # Hardware layer: replay at LLaMA-65B scale.
    simulator = ServingSimulator(
        LatencyModel(llama65b, plan, cluster),
        LatencyModel(paper_model("llama-68m"), ParallelPlan(),
                     single_node_cluster()),
    )
    print(f"{'batch size':>10} {'incremental':>12} {'SpecInfer':>10} "
          f"{'speedup':>8}")
    for batch_size in (1, 2, 4, 8, 16):
        inc = simulator.replay_many(inc_traces, batch_size=batch_size)
        spec = simulator.replay_many(spec_traces, batch_size=batch_size)
        print(f"{batch_size:>10} {inc.per_token_ms:>10.1f}ms "
              f"{spec.per_token_ms:>8.1f}ms "
              f"{inc.per_token_ms / spec.per_token_ms:>7.2f}x")
    print("\npaper Figure 7 (LLaMA-65B, 2 nodes): 2.4-2.8x at small batch, "
          "narrowing as the batch grows")


if __name__ == "__main__":
    main()
