#!/usr/bin/env python
"""Offloading-based inference: serving a model bigger than the GPU.

Reproduces the paper's section 6.3 scenario: OPT-30B weights live in CPU
DRAM and stream over PCIe to a single 24GB A10 every decoding step, so the
step cost is the weight stream — independent of how many tokens the step
scores.  SpecInfer's token tree verification turns each stream into several
committed tokens; FlexGen-style incremental decoding gets one.

The acceptance statistics come from a real run of the algorithm on the toy
substrate; the OPT-30B/A10 timing comes from the offload cost model.

Run:  python examples/offloading_inference.py
"""

import numpy as np

from repro import (
    CoupledSSM,
    ExpansionConfig,
    GenerationConfig,
    IncrementalEngine,
    ModelConfig,
    SpecInferEngine,
    Speculator,
    TransformerLM,
)
from repro.cluster.cost_model import LatencyModel
from repro.cluster.hardware import AWS_G5_NODE, single_node_cluster
from repro.cluster.models import paper_model
from repro.cluster.offload import OffloadLatencyModel, OffloadSpec
from repro.cluster.parallel import ParallelPlan
from repro.cluster.simulator import ServingSimulator


def main() -> None:
    llm = TransformerLM(
        ModelConfig(vocab_size=96, d_model=48, n_layers=3, n_heads=4,
                    max_seq_len=160, name="sub-llm"),
        seed=7,
    )
    ssm = CoupledSSM(llm, alignment=0.88, seed=3, noise_scale=2.0)
    prompt = list(np.random.default_rng(1).integers(1, 96, size=10))
    config = GenerationConfig(max_new_tokens=24, stop_on_eos=False)

    # Algorithm layer: measure how many tokens each step commits.
    flexgen_trace = IncrementalEngine(llm).generate(prompt, config)
    spec_trace = SpecInferEngine(
        llm, Speculator([ssm], ExpansionConfig.paper_default())
    ).generate(prompt, config)

    # Hardware layer: OPT-30B offloaded onto one A10.
    opt30b = paper_model("opt-30b")
    offload = OffloadLatencyModel(opt30b, OffloadSpec(AWS_G5_NODE))
    ssm_latency = LatencyModel(paper_model("opt-125m"), ParallelPlan(),
                               single_node_cluster())
    simulator = ServingSimulator(offload, ssm_latency)

    weights_gb = opt30b.num_parameters() * 2 / 1e9
    print(f"model: {opt30b.name} ({weights_gb:.0f} GB FP16 weights, "
          f"A10 has 24 GB) -> offloading required")
    print(f"weight stream per decoding step: "
          f"{offload.weight_stream_time():.2f} s\n")

    flexgen = simulator.replay(flexgen_trace)
    specinfer = simulator.replay(spec_trace)
    print(f"{'system':<12} {'LLM steps':>9} {'tokens':>7} "
          f"{'per-token latency':>18}")
    print(f"{'FlexGen':<12} {flexgen_trace.num_llm_steps:>9} "
          f"{flexgen.tokens:>7} {flexgen.per_token_seconds:>16.2f} s")
    print(f"{'SpecInfer':<12} {spec_trace.num_llm_steps:>9} "
          f"{specinfer.tokens:>7} {specinfer.per_token_seconds:>16.2f} s")
    print(f"\nspeedup: {flexgen.per_token_seconds / specinfer.per_token_seconds:.1f}x "
          f"(paper reports 2.6-3.5x for OPT-30B on this hardware)")


if __name__ == "__main__":
    main()
