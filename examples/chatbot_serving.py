#!/usr/bin/env python
"""Chatbot serving: continuous batching over a stream of chat prompts.

Simulates the workload the paper's intro motivates — a chatbot endpoint
receiving requests over time — served by the request manager with
iteration-level (Orca-style) scheduling and SpecInfer sessions.  Requests
arrive mid-flight and join the running batch as slots free up.

Run:  python examples/chatbot_serving.py
"""

from repro import (
    CoupledSSM,
    ExpansionConfig,
    GenerationConfig,
    ModelConfig,
    Speculator,
    TransformerLM,
)
from repro.serving import RequestManager, SpeculativeSession
from repro.workloads.datasets import make_dataset


def main() -> None:
    llm = TransformerLM(
        ModelConfig(vocab_size=96, d_model=48, n_layers=3, n_heads=4,
                    max_seq_len=160, name="chat-llm"),
        seed=7,
    )

    def session_factory(request):
        # Each request gets its own speculator (it owns per-request caches).
        return SpeculativeSession(
            request,
            llm,
            lambda: Speculator(
                [CoupledSSM(llm, alignment=0.88, seed=3, noise_scale=2.0)],
                ExpansionConfig.paper_default(),
            ),
        )

    manager = RequestManager(session_factory, max_batch_size=4)
    dataset = make_dataset("CIP", vocab_size=96)

    # First wave of requests.
    for prompt in dataset.sample_prompts(4, max_len=16):
        manager.submit(prompt, GenerationConfig(max_new_tokens=24,
                                                stop_on_eos=False))
    # Run a few iterations, then a second wave arrives mid-flight.
    for _ in range(3):
        manager.run_iteration()
    for prompt in dataset.sample_prompts(4, max_len=16):
        manager.submit(prompt, GenerationConfig(max_new_tokens=24,
                                                stop_on_eos=False))
    outputs = manager.run_until_complete()

    print(f"served {len(outputs)} requests in {manager.iteration} "
          f"scheduler iterations\n")
    print(f"{'request':>7} {'arrived':>8} {'first tok':>10} {'done':>6} "
          f"{'tokens':>7} {'LLM steps':>10}")
    for output in outputs:
        print(
            f"{output.request_id:>7} "
            f"{manager._tracked[output.request_id].request.arrival_iteration:>8} "
            f"{output.first_token_iteration:>10} "
            f"{output.finish_iteration:>6} "
            f"{len(output.tokens):>7} "
            f"{output.num_llm_steps:>10}"
        )
    total_tokens = sum(len(o.tokens) for o in outputs)
    total_steps = sum(o.num_llm_steps for o in outputs)
    print(
        f"\naggregate: {total_tokens} tokens in {total_steps} request-steps "
        f"({total_tokens / total_steps:.2f} tokens per LLM step; "
        f"incremental decoding would need {total_tokens})"
    )
    busy = [s for s in manager.iteration_stats if s.batch_size > 0]
    print(
        "mean batch occupancy: "
        f"{sum(s.batch_size for s in busy) / len(busy):.2f} / 4"
    )


if __name__ == "__main__":
    main()
