#!/usr/bin/env python
"""Dynamic tree expansion + a genuinely trained model pair.

Combines two extensions of the base reproduction:

1. a model-zoo pair — a toy LLM *trained* on a corpus and an SSM
   *distilled* from it (the honest version of the paper's
   pretrained-on-the-same-data alignment), and
2. the dynamic (best-first) tree expansion policy the paper leaves as
   future work, compared against the paper's static configuration at a
   matched speculation budget.

Run:  python examples/adaptive_speculation.py   (trains once, ~1 minute;
      cached under examples/.zoo_cache for subsequent runs)
"""

import os

from repro import (
    AdaptiveConfig,
    ExpansionConfig,
    GenerationConfig,
    IncrementalEngine,
    SpecInferEngine,
    Speculator,
)
from repro.model.zoo import ModelZoo, ZooSpec
from repro.tree.render import render_tree, tree_stats_line

CACHE_DIR = os.path.join(os.path.dirname(__file__), ".zoo_cache")


def main() -> None:
    print("building trained LLM + distilled SSM (cached after first run)...")
    zoo = ModelZoo(cache_dir=CACHE_DIR)
    spec = ZooSpec()
    llm, ssm = zoo.trained_pair(spec)
    corpus = zoo.corpus(spec)
    prompt = list(corpus.sample(10))
    config = GenerationConfig(max_new_tokens=24, stop_on_eos=False)

    reference = IncrementalEngine(llm).generate(prompt, config)

    static = SpecInferEngine(
        llm, Speculator([ssm], ExpansionConfig.paper_default())
    ).generate(prompt, config)

    adaptive_speculator = Speculator(
        [ssm],
        adaptive=AdaptiveConfig(max_tokens=12, max_depth=8, max_width=4,
                                coverage=0.85, min_path_prob=0.01),
    )
    adaptive = SpecInferEngine(llm, adaptive_speculator).generate(
        prompt, config
    )

    assert reference.tokens == static.tokens == adaptive.tokens

    print("\none adaptively-expanded token tree (next step's speculation):")
    tree = adaptive_speculator.speculate(int(reference.tokens[-1]))
    print(tree_stats_line(tree))
    print(render_tree(tree))

    print(f"\n{'engine':<30} {'LLM steps':>9} {'tokens/step':>12} "
          f"{'avg tree size':>14}")
    for name, result in (
        ("incremental", reference),
        ("static <1,1,3,1,1,1,1,1>", static),
        ("adaptive (budget 12)", adaptive),
    ):
        sizes = [s.tree_size for s in result.steps if s.tree_size]
        mean_size = sum(sizes) / len(sizes) if sizes else 0.0
        print(f"{name:<30} {result.num_llm_steps:>9} "
              f"{result.mean_tokens_per_step:>12.2f} {mean_size:>14.1f}")
    print("\nall three outputs identical (lossless); the adaptive policy "
          "matches the static tree with a smaller token budget")


if __name__ == "__main__":
    main()
