#!/usr/bin/env python
"""Quickstart: tree-based speculative inference in ~60 lines.

Builds a toy LLM, couples a small speculative model (SSM) to it, and
compares three ways to serve the same prompt:

1. incremental decoding (Algorithm 1 — what vLLM/TGI do),
2. sequence-based speculative decoding (prior speculative systems),
3. SpecInfer's tree-based speculative inference (Algorithm 2).

All three emit the *identical* greedy token sequence; the speculative
engines just reach it in fewer LLM decoding steps.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    CoupledSSM,
    ExpansionConfig,
    GenerationConfig,
    IncrementalEngine,
    ModelConfig,
    SpecInferEngine,
    Speculator,
    TransformerLM,
    make_sequence_spec_engine,
)


def main() -> None:
    # 1. The "large" language model (the verifier).
    llm = TransformerLM(
        ModelConfig(vocab_size=96, d_model=48, n_layers=3, n_heads=4,
                    max_seq_len=160, name="demo-llm"),
        seed=7,
    )

    # 2. A small speculative model aligned with the LLM.  (Offline we use a
    #    logit-coupled SSM; swap in any trained TransformerLM if you have
    #    one — the interfaces are identical.)
    ssm = CoupledSSM(llm, alignment=0.88, seed=3, noise_scale=2.0)

    prompt = [int(t) for t in np.random.default_rng(0).integers(1, 96, size=8)]
    config = GenerationConfig(max_new_tokens=32, stop_on_eos=False)

    # 3. Three engines, one output.
    incremental = IncrementalEngine(llm).generate(prompt, config)
    sequence = make_sequence_spec_engine(llm, ssm, depth=8).generate(
        prompt, config
    )
    tree = SpecInferEngine(
        llm,
        Speculator([ssm], ExpansionConfig.paper_default()),
    ).generate(prompt, config)

    assert incremental.tokens == sequence.tokens == tree.tokens, (
        "speculative decoding must be lossless"
    )

    print(f"prompt tokens      : {prompt}")
    print(f"generated tokens   : {tree.tokens}")
    print()
    print(f"{'engine':<28} {'LLM steps':>9} {'tokens/step':>12}")
    for name, result in (
        ("incremental decoding", incremental),
        ("sequence-based speculation", sequence),
        ("tree-based SpecInfer", tree),
    ):
        print(f"{name:<28} {result.num_llm_steps:>9} "
              f"{result.mean_tokens_per_step:>12.2f}")
    print()
    print(
        "identical output, "
        f"{incremental.num_llm_steps / tree.num_llm_steps:.2f}x fewer LLM "
        "steps with tree-based speculation"
    )


if __name__ == "__main__":
    main()
