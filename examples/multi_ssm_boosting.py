#!/usr/bin/env python
"""Merge-based speculation with a boost-tuned SSM pool (paper section 3).

End-to-end demonstration of the learning-based speculator's training path:

1. train a teacher LLM on a synthetic corpus (genuine NumPy backprop),
2. boost-tune a pool of smaller student SSMs against it — each SSM is
   fine-tuned, the prompts it now covers are filtered out, and the next
   SSM specializes on the remainder,
3. serve with merge-based speculation: each SSM speculates a sequence,
   the sequences merge into one token tree (Definition 3.2), and the tree
   verifies in a single LLM pass.

Run:  python examples/multi_ssm_boosting.py   (takes ~1 minute: it trains)
"""

import numpy as np

from repro import (
    ExpansionConfig,
    GenerationConfig,
    IncrementalEngine,
    ModelConfig,
    SpecInferEngine,
    Speculator,
)
from repro.model.trainer import Trainer, TrainingConfig
from repro.model.transformer import TransformerLM
from repro.speculate.boost import BoostTuner
from repro.workloads.corpus import MarkovCorpus


def main() -> None:
    vocab = 48
    corpus = MarkovCorpus(vocab_size=vocab, branching=3, exponent=0.8,
                          seed=0)

    # 1. Teacher LLM.
    teacher = TransformerLM(
        ModelConfig(vocab_size=vocab, d_model=32, n_layers=2, n_heads=4,
                    max_seq_len=96, name="teacher"),
        seed=0,
    )
    print("training teacher LLM on the corpus ...")
    Trainer(teacher, TrainingConfig(max_steps=250,
                                    learning_rate=3e-3)).train_lm(
        corpus.sample_many(32, 32)
    )

    # 2. Boost-tune a pool of students.
    students = [
        TransformerLM(
            ModelConfig(vocab_size=vocab, d_model=16, n_layers=1, n_heads=2,
                        max_seq_len=96, name=f"student-{i}"),
            seed=10 + i,
        )
        for i in range(2)
    ]
    tuner = BoostTuner(
        teacher,
        continuation_len=3,
        match_len=1,
        training=TrainingConfig(max_steps=120, learning_rate=3e-3),
    )
    prompts = corpus.sample_many(16, 12)
    print("boost-tuning the SSM pool ...")
    report = tuner.tune(students, prompts)
    print(f"per-SSM newly covered prompts: {report.per_ssm_covered}")
    print(f"aggregate pool coverage: {report.coverage:.0%}\n")

    # 3. Merge-based serving.
    prompt = list(corpus.sample(10))
    config = GenerationConfig(max_new_tokens=24, stop_on_eos=False)
    incremental = IncrementalEngine(teacher).generate(prompt, config)
    merged = SpecInferEngine(
        teacher,
        Speculator(students, ExpansionConfig.sequence(6)),
    ).generate(prompt, config)

    assert merged.tokens == incremental.tokens
    print(f"{'engine':<24} {'LLM steps':>9} {'tokens/step':>12}")
    print(f"{'incremental':<24} {incremental.num_llm_steps:>9} "
          f"{incremental.mean_tokens_per_step:>12.2f}")
    print(f"{'merge-based (2 SSMs)':<24} {merged.num_llm_steps:>9} "
          f"{merged.mean_tokens_per_step:>12.2f}")
    print("\noutputs identical; the boost-tuned pool cut LLM steps by "
          f"{incremental.num_llm_steps / merged.num_llm_steps:.2f}x")


if __name__ == "__main__":
    main()
