"""SpecInfer reproduction: tree-based speculative inference and verification.

A from-scratch, NumPy-based reproduction of *SpecInfer: Accelerating Large
Language Model Serving with Tree-based Speculative Inference and
Verification* (Miao et al., ASPLOS 2024).

Public API tour::

    from repro import (
        ModelConfig, TransformerLM, CoupledSSM,       # model substrate
        TokenTree, ExpansionConfig, Speculator,       # speculation
        TokenTreeVerifier, SamplingConfig,            # verification
        IncrementalEngine, SpecInferEngine,           # decoding engines
        GenerationConfig,
    )

See ``examples/quickstart.py`` for an end-to-end walkthrough, DESIGN.md for
the system inventory, and EXPERIMENTS.md for the paper-vs-measured record.
"""

from repro.engine import (
    BatchedTreeVerifier,
    BeamSearchEngine,
    DecodePipeline,
    DecodeState,
    FusedBackend,
    GenerationConfig,
    GenerationResult,
    IncrementalBackend,
    IncrementalEngine,
    PerRequestBackend,
    SpecInferEngine,
    StepTrace,
    VerificationBackend,
    make_sequence_spec_engine,
)
from repro.model import (
    CoupledSSM,
    KVCache,
    ModelConfig,
    PagedKVPool,
    SamplingConfig,
    TransformerLM,
)
from repro.speculate import (
    AdaptiveConfig,
    BoostTuner,
    ExpansionConfig,
    Speculator,
)
from repro.tree import TokenTree, merge_trees
from repro.verify import TokenTreeVerifier, VerificationResult

__version__ = "0.1.0"

__all__ = [
    "ModelConfig",
    "TransformerLM",
    "CoupledSSM",
    "KVCache",
    "PagedKVPool",
    "SamplingConfig",
    "TokenTree",
    "merge_trees",
    "ExpansionConfig",
    "AdaptiveConfig",
    "Speculator",
    "BoostTuner",
    "TokenTreeVerifier",
    "VerificationResult",
    "IncrementalEngine",
    "SpecInferEngine",
    "make_sequence_spec_engine",
    "DecodePipeline",
    "DecodeState",
    "VerificationBackend",
    "PerRequestBackend",
    "FusedBackend",
    "IncrementalBackend",
    "BatchedTreeVerifier",
    "BeamSearchEngine",
    "GenerationConfig",
    "GenerationResult",
    "StepTrace",
    "__version__",
]
