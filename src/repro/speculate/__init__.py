"""Learning-based speculator (paper section 3).

* :mod:`repro.speculate.expansion` -- expansion configurations ⟨k1…km⟩ and
  expansion-based token tree construction from a single SSM.
* :mod:`repro.speculate.speculator` -- the :class:`Speculator` façade: drives
  one or more SSMs, merges their trees (merge-based construction), and keeps
  SSM KV caches synchronized with the verified sequence.
* :mod:`repro.speculate.boost` -- adaptive boost-tuning of an SSM pool
  against the LLM on an unlabeled corpus.
* :mod:`repro.speculate.planner` -- hardware-aware per-tick tree planning:
  budget/shape solved against the cost model and measured acceptance.
* :mod:`repro.speculate.pool` -- heterogeneous speculator pool: N draft
  models, each with its own acceptance estimator.
* :mod:`repro.speculate.router` -- per-request routing over the pool: an
  acceptance-history bandit with a deterministic cold-start fallback.
"""

from repro.speculate.adaptive import AdaptiveConfig, expand_token_tree_adaptive
from repro.speculate.expansion import ExpansionConfig, expand_token_tree
from repro.speculate.planner import (
    AcceptanceEstimator,
    PlannerConfig,
    TreePlan,
    TreePlanner,
    optimal_widths,
)
from repro.speculate.speculator import Speculator
from repro.speculate.boost import BoostTuner, BoostTuningReport
from repro.speculate.pool import PoolMember, SpeculatorPool
from repro.speculate.router import (
    RouteAssignment,
    RouterConfig,
    SpeculatorRouter,
)

__all__ = [
    "ExpansionConfig",
    "expand_token_tree",
    "AdaptiveConfig",
    "expand_token_tree_adaptive",
    "Speculator",
    "BoostTuner",
    "BoostTuningReport",
    "AcceptanceEstimator",
    "PlannerConfig",
    "TreePlan",
    "TreePlanner",
    "optimal_widths",
    "PoolMember",
    "SpeculatorPool",
    "RouteAssignment",
    "RouterConfig",
    "SpeculatorRouter",
]
