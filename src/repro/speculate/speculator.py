"""The learning-based speculator façade (paper sections 2-3).

A :class:`Speculator` owns one or more SSMs plus their KV caches and turns
the current generation state into a speculated token tree each iteration:

* one SSM  -> expansion-based construction (top-k tree under ⟨k1…km⟩),
* many SSMs -> merge-based construction: each SSM expands its own tree
  (typically a narrow one) and the trees are merged per Definition 3.2.

The speculator mirrors the verified sequence in every SSM's cache.  The
engine protocol is::

    spec.prefill(prompt_prefix)          # verified prefix, pending excluded
    tree = spec.speculate(pending)       # caches restored afterwards
    ... verifier accepts some tokens ...
    spec.advance([pending] + accepted)   # extend the mirrored prefix
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.model.scratch import ScratchArena
from repro.speculate.expansion import ExpansionConfig, expand_token_tree
from repro.tree.token_tree import TokenTree, merge_trees


class Speculator:
    """Drives SSMs to produce speculated token trees.

    Args:
        ssms: One or more small speculative models (``TransformerLM`` or
            ``CoupledSSM``).  With several SSMs, per-SSM trees are merged.
        config: Expansion configuration applied to each SSM.
        per_ssm_configs: Optional per-SSM override of ``config`` (merge-based
            speculation often gives each boost-tuned SSM a plain sequence).
        temperature: Temperature of the recorded SSM proposal distributions.
    """

    def __init__(
        self,
        ssms: Sequence,
        config: Optional[ExpansionConfig] = None,
        per_ssm_configs: Optional[Sequence[ExpansionConfig]] = None,
        temperature: float = 1.0,
        adaptive: Optional["AdaptiveConfig"] = None,
    ):
        if not ssms:
            raise ValueError("speculator needs at least one SSM")
        self.ssms = list(ssms)
        self.adaptive = adaptive
        self.config = config or ExpansionConfig.paper_default()
        if per_ssm_configs is not None and len(per_ssm_configs) != len(self.ssms):
            raise ValueError(
                f"per_ssm_configs has {len(per_ssm_configs)} entries for "
                f"{len(self.ssms)} SSMs"
            )
        self.per_ssm_configs = (
            list(per_ssm_configs)
            if per_ssm_configs is not None
            else [self.config] * len(self.ssms)
        )
        self.temperature = temperature
        # Depth of the most recent speculation (per-call plans change it
        # tick-to-tick; ``speculation_latency_steps`` reports it).
        self._last_depth: Optional[int] = None
        self._caches = [ssm.new_cache() for ssm in self.ssms]
        # Per-SSM staging arenas for the per-tick mirror prefill
        # (:meth:`advance`): without them, every committed step allocates a
        # fresh cross mask and forward buffers inside each SSM.
        self._arenas = [ScratchArena() for _ in self.ssms]
        self._prefix_len = 0
        # Cost accounting for the cluster model: SSM decode steps issued in
        # the most recent speculate() call (all SSMs run in data parallel, so
        # the latency-relevant figure is the max over SSMs).
        self.last_ssm_steps: List[int] = [0] * len(self.ssms)

    # -- cache mirroring -----------------------------------------------------------

    def reset(self) -> None:
        """Drop all mirrored state (new request)."""
        self._caches = [ssm.new_cache() for ssm in self.ssms]
        self._prefix_len = 0

    def prefill(self, tokens: Sequence[int]) -> None:
        """Mirror the verified prompt prefix into every SSM cache."""
        arr = np.asarray(list(tokens), dtype=np.intp)
        if arr.size == 0:
            return
        for ssm, cache, arena in zip(self.ssms, self._caches, self._arenas):
            ssm.prefill(arr, cache, scratch=arena)
        self._prefix_len += int(arr.size)

    def advance(self, tokens: Sequence[int]) -> None:
        """Extend the mirrored verified prefix by newly accepted tokens."""
        self.prefill(tokens)

    @property
    def prefix_len(self) -> int:
        """Number of verified tokens mirrored into the SSM caches."""
        return self._prefix_len

    # -- packed (cross-request) expansion seam -----------------------------------------

    def packed_expansion_state(self, plan=None):
        """``(ssm, cache, config)`` when packed expansion may drive this
        speculator, else ``None``.

        Packed draft scoring (:mod:`repro.speculate.packed`) replays the
        deterministic expansion of a *single* statically-configured SSM as
        level-synchronous tree-parallel decode; merge-based (multi-SSM) and
        adaptive speculators keep their own loop.

        Args:
            plan: Optional per-tick :class:`~repro.speculate.planner.
                TreePlan`; its expansion profile replaces the static config
                for this tick (exactly as :meth:`speculate` would apply it,
                so packed and per-session trees stay bit-identical).
        """
        if self.adaptive is not None or len(self.ssms) != 1:
            return None
        config = self._effective_config(self.per_ssm_configs[0], plan)
        self._last_depth = (
            config.depth
            if plan is not None and getattr(plan, "speculative", False)
            else None
        )
        return self.ssms[0], self._caches[0], config

    @staticmethod
    def _effective_config(config: ExpansionConfig, plan) -> ExpansionConfig:
        """The static config, unless a per-tick plan overrides the shape."""
        if plan is None or not getattr(plan, "speculative", False):
            return config
        return ExpansionConfig(tuple(plan.widths))

    def record_packed_speculation(self, tree: TokenTree) -> None:
        """Update cost accounting after packed expansion built ``tree``.

        Mirrors :meth:`speculate`'s bookkeeping: one SSM decode step per
        internal node, so the cluster cost model prices a packed tick
        identically to the per-session loop it replaced.
        """
        self.last_ssm_steps[0] = sum(
            1 for n in range(len(tree)) if tree.nodes[n].children
        )

    # -- speculation ------------------------------------------------------------------

    def speculate(
        self,
        pending_token: int,
        stochastic: bool = False,
        rng: "np.random.Generator" = None,
        plan: Optional["TreePlan"] = None,
    ) -> TokenTree:
        """Produce a speculated token tree rooted at ``pending_token``.

        SSM caches are left unchanged (snapshot/restore inside expansion);
        only :meth:`advance` moves them forward.

        Args:
            pending_token: The tree root (last generated token).
            stochastic: Sample proposals from the SSM distributions instead
                of taking top-k — required for distribution-preserving
                stochastic decoding (see :func:`expand_token_tree`).
            rng: Randomness for stochastic proposals.
            plan: Optional per-tick :class:`~repro.speculate.planner.
                TreePlan`.  The plan's shape/budget overrides the
                construction-time configuration *for this call only* —
                the planner re-sizes speculation tick-to-tick without
                rebuilding the speculator or disturbing its caches.
        """
        planned = plan is not None and getattr(plan, "speculative", False)
        plan_budget = int(plan.budget) if planned else None
        trees: List[TokenTree] = []
        for ssm_id, (ssm, cache, cfg) in enumerate(
            zip(self.ssms, self._caches, self.per_ssm_configs)
        ):
            if self.adaptive is not None:
                from repro.speculate.adaptive import expand_token_tree_adaptive

                tree = expand_token_tree_adaptive(
                    ssm,
                    pending_token,
                    cache,
                    self.adaptive,
                    ssm_id=ssm_id,
                    temperature=self.temperature,
                    stochastic=stochastic,
                    rng=rng,
                    max_tokens=plan_budget,
                )
            else:
                tree = expand_token_tree(
                    ssm,
                    pending_token,
                    cache,
                    self._effective_config(cfg, plan),
                    ssm_id=ssm_id,
                    temperature=self.temperature,
                    stochastic=stochastic,
                    rng=rng,
                )
            # Internal nodes each cost one SSM decode step.
            self.last_ssm_steps[ssm_id] = sum(
                1 for n in range(len(tree)) if tree.nodes[n].children
            )
            trees.append(tree)
        if planned:
            self._last_depth = (
                min(plan.depth, self.adaptive.max_depth)
                if self.adaptive is not None
                else plan.depth
            )
        else:
            self._last_depth = None
        if len(trees) == 1:
            return trees[0]
        return merge_trees(trees)

    def speculation_latency_steps(self) -> int:
        """Sequential SSM decode steps of the last speculation.

        SSMs run data-parallel on different GPUs (section 5.1), so latency is
        governed by the *deepest* single-SSM expansion, which for a static
        config is its depth; the width-k branching at one level is served by
        batching candidate branches, and the dominant term is tree depth.
        When a per-tick plan drove the last speculation, its depth governs.
        """
        if self._last_depth is not None:
            return self._last_depth
        if self.adaptive is not None:
            return self.adaptive.max_depth
        return max(
            (cfg.depth for cfg in self.per_ssm_configs),
            default=0,
        )
