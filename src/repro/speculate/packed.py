"""Packed cross-request draft scoring (level-synchronous tree expansion).

The per-session speculation loop (:func:`repro.speculate.expansion.
expand_token_tree`) drives its SSM depth-first: one ``decode`` call — one
``(1, d) @ (d, 3d)`` GEMM per layer — per tree node per request, with cache
snapshot/restore around every branch.  On a serving batch this is the last
per-session hot loop left: a batch of ``B`` requests speculating ``m``-deep
trees issues ``O(B · nodes)`` tiny GEMMs per tick.

This module replaces that loop with **level-synchronous packed expansion**
for the deterministic (greedy/top-k) case:

* every request's frontier at depth ``d`` is scored in **one**
  :meth:`~repro.model.transformer.TransformerLM.forward_masked_blocks` call
  over the shared SSM — the QKV/MLP/LM-head GEMMs batch across all live
  requests and all sibling branches, so a tick issues ``O(depth)`` GEMM
  rounds instead of ``O(B · nodes)``;
* instead of snapshot/restore replay, all tree rows stay in the SSM cache
  under a per-level topology mask (each frontier node attends to the
  verified prefix plus its own ancestors), and the cache is truncated back
  to the prefix once the tree is built.

Bit-equivalence rests on the tree-attention property the repo already
tests (Definition 4.1): scoring a node under the topology-aware causal
mask is bit-identical to sequentially decoding its root-to-node path, and
total GEMM FLOPs are unchanged (the packing is over the ``m`` axis, which
:func:`repro.model.perf.add_gemm` is linear in).  Proposal distributions,
tree shape, and child ordering therefore match the depth-first loop
exactly; only node *numbering* differs (BFS insertion order), which no
consumer observes — verification runs over the structural DFS
linearization.

Scope (everything else falls back to the per-session loop, counted by
``repro.speculate.packed.fallbacks``):

* deterministic expansion only (stochastic proposals consume per-request
  RNG draws in DFS order; replaying that order defeats the packing);
* single static-config SSM per speculator (no merge/adaptive);
* SSMs that are a :class:`TransformerLM` or a
  :class:`~repro.model.coupled.CoupledSSM` (whose perturbation is a pure
  function of the path context and is replayed per node);
* requests whose SSM cache can hold the whole scored frontier at once
  (``prefix + scored-node bound <= capacity``); near end-of-context the
  depth-first loop's per-branch capacity check is the right tool.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple
from weakref import WeakKeyDictionary

import numpy as np

from repro.model.attention import NEG_INF, MaskScratch
from repro.model.coupled import CoupledSSM
from repro.model.layers import stable_softmax
from repro.model.sampling import top_k_tokens
from repro.model.scratch import ScratchArena
from repro.model.transformer import TransformerLM
from repro.obs import REGISTRY
from repro.speculate.expansion import ExpansionConfig
from repro.tree.token_tree import TokenTree

_PACKED_REQUESTS = REGISTRY.counter(
    "repro.speculate.packed.requests",
    help="requests speculated via packed cross-request expansion")
_PACKED_LEVELS = REGISTRY.counter(
    "repro.speculate.packed.levels",
    help="fused level-expansion passes issued")
_PACKED_FALLBACKS = REGISTRY.counter(
    "repro.speculate.packed.fallbacks",
    help="requests that fell back to the per-session expansion loop")


def scored_node_bound(config: ExpansionConfig) -> int:
    """Upper bound on nodes packed expansion scores (appends) for ``config``.

    Nodes at depths ``0 .. m-1`` are scored (the deepest level is proposed
    but never expanded): ``1 + k1 + k1·k2 + … + k1⋯k_{m-1}``.
    """
    total = 1
    frontier = 1
    for width in config.widths[:-1]:
        frontier *= width
        total += frontier
    return total


class _Slot:
    """Per-request expansion state inside one packed group."""

    def __init__(self, state, ssm, cache, config: ExpansionConfig,
                 temperature: float):
        self.state = state
        self.ssm = ssm
        self.config = config
        self.temperature = temperature
        if isinstance(ssm, CoupledSSM):
            self.base_cache = cache.base_cache
            self.entry_context: Optional[List[int]] = list(cache.context)
        else:
            self.base_cache = cache
            self.entry_context = None
        self.prefix = self.base_cache.length
        self.tree = TokenTree(state.pending)
        # Cache row (0-based among appended tree rows) of each scored node.
        self.row_of: Dict[int, int] = {}
        self.appended = 0
        # Nodes to score at the current level (all share depth == level).
        self.frontier: List[int] = [0]

    def live_at(self, level: int) -> bool:
        return bool(self.frontier) and level < self.config.depth

    def path_rows(self, node: int) -> List[int]:
        """Appended-row indices of ``node``'s scored ancestors (root..parent)."""
        return [self.row_of[n] for n in self.tree.path_to(node)[:-1]]

    def context_for(self, node: int) -> List[int]:
        """Token context the coupled perturbation is keyed by at ``node``."""
        path = self.tree.path_to(node)
        return self.entry_context + [self.tree.nodes[n].token for n in path]

    def finish(self) -> TokenTree:
        """Truncate the SSM cache back to the verified prefix."""
        self.base_cache.truncate(self.prefix)
        return self.tree


class PackedSpeculator:
    """Cross-request packed draft scoring with per-request fallback.

    One instance lives on the :class:`~repro.engine.pipeline.DecodePipeline`
    and persists its scratch arenas across ticks, so the steady-state
    speculate phase allocates no tracked buffers (masks and index vectors
    come from the same grow-once :class:`ScratchArena` discipline as the
    verify phase).
    """

    def __init__(self):
        self._arenas: "WeakKeyDictionary[TransformerLM, ScratchArena]" = (
            WeakKeyDictionary()
        )
        self._mask_scratches: (
            "WeakKeyDictionary[TransformerLM, List[MaskScratch]]"
        ) = WeakKeyDictionary()

    # -- eligibility -----------------------------------------------------------------

    def _slot_for(self, state, plan=None) -> Optional[
            Tuple[TransformerLM, _Slot]]:
        """``(base model, slot)`` when ``state`` is packed-eligible."""
        spec = state.speculator
        if spec is None or not state.sampling.greedy:
            return None
        packed = spec.packed_expansion_state(plan)
        if packed is None:
            return None
        ssm, cache, config = packed
        if isinstance(ssm, CoupledSSM):
            base = ssm.base
        elif isinstance(ssm, TransformerLM):
            base = ssm
        else:
            return None
        slot = _Slot(state, ssm, cache, config, spec.temperature)
        if slot.prefix + scored_node_bound(config) > slot.base_cache.capacity:
            return None
        return base, slot

    # -- the packed loop -------------------------------------------------------------

    def speculate_batch(self, states: Sequence, fallback,
                        plan=None) -> List[TokenTree]:
        """One tree per state; ineligible states run ``fallback(state)``.

        Args:
            states: Unfinished decode states to speculate for.
            fallback: ``state -> TokenTree`` — the per-session path
                (also used for incremental states' one-node trees).
            plan: Optional per-tick :class:`~repro.speculate.planner.
                TreePlan` applied to every packed slot (the fallback path
                applies the same plan inside ``Speculator.speculate``, so
                both paths build identical trees).
        """
        trees: List[Optional[TokenTree]] = [None] * len(states)
        groups: Dict[int, Tuple[TransformerLM, List[Tuple[int, _Slot]]]] = {}
        for i, state in enumerate(states):
            eligible = self._slot_for(state, plan)
            if eligible is None:
                if state.speculator is not None:
                    _PACKED_FALLBACKS.inc()
                trees[i] = fallback(state)
                continue
            base, slot = eligible
            groups.setdefault(id(base), (base, []))[1].append((i, slot))
        for base, members in groups.values():
            self._expand_group(base, [slot for _, slot in members])
            for i, slot in members:
                trees[i] = slot.tree
                slot.state.speculator.record_packed_speculation(slot.tree)
            _PACKED_REQUESTS.inc(len(members))
        return trees

    def _expand_group(self, base: TransformerLM,
                      slots: List[_Slot]) -> None:
        """Level-synchronous expansion of every slot against ``base``."""
        arena = self._arenas.get(base)
        if arena is None:
            arena = ScratchArena()
            self._arenas[base] = arena
            self._mask_scratches[base] = []
        scratches = self._mask_scratches[base]
        level = 0
        while True:
            live = [slot for slot in slots if slot.live_at(level)]
            if not live:
                break
            self._score_level(base, arena, scratches, live, level)
            level += 1
        for slot in slots:
            slot.finish()

    def _score_level(self, base: TransformerLM, arena: ScratchArena,
                     scratches: List[MaskScratch], live: List[_Slot],
                     level: int) -> None:
        """Score every live slot's frontier in one fused pass, then expand."""
        _PACKED_LEVELS.inc()
        counts = [len(slot.frontier) for slot in live]
        offsets = [0]
        for count in counts:
            offsets.append(offsets[-1] + count)
        n_total = offsets[-1]
        tokens = arena.take("pk.tokens", (n_total,), np.intp)
        positions = arena.take("pk.positions", (n_total,), np.intp)
        while len(scratches) < len(live):
            scratches.append(MaskScratch(
                base.config.dtype, arena=arena,
                tag=f"pk.mask{len(scratches)}",
                bound=(0, base.config.max_seq_len),
            ))
        masks = []
        priors = []
        for b, slot in enumerate(live):
            lo = offsets[b]
            prior = slot.base_cache.length
            priors.append(prior)
            n_f = counts[b]
            mask = scratches[b].take(n_f, prior + n_f)
            # Frontier node j attends to the verified prefix, its scored
            # ancestors' rows, and itself — never to siblings or to other
            # branches' rows (the per-level topology-aware causal mask).
            mask[:, : slot.prefix] = 0.0
            mask[:, slot.prefix:] = NEG_INF
            for j, node in enumerate(slot.frontier):
                tokens[lo + j] = slot.tree.nodes[node].token
                positions[lo + j] = slot.prefix + level
                for row in slot.path_rows(node):
                    mask[j, slot.prefix + row] = 0.0
                mask[j, prior + j] = 0.0
            masks.append(mask)
        logits = base.forward_masked_blocks(
            tokens, positions, masks, [slot.base_cache for slot in live],
            priors=priors, scratch=arena,
        )
        for b, slot in enumerate(live):
            lo = offsets[b]
            next_frontier: List[int] = []
            width = slot.config.widths[level]
            expandable = level + 1 < slot.config.depth
            for j, node in enumerate(slot.frontier):
                row = logits[lo + j]
                if slot.entry_context is not None:
                    # Replay the coupled perturbation the sequential loop
                    # applies inside decode(); it is a pure function of
                    # (seed, token context), so per-node replay is exact.
                    row = slot.ssm._perturb(row, slot.context_for(node))
                probs = stable_softmax(
                    np.asarray(row, dtype=np.float64)
                    / max(slot.temperature, 1e-8)
                )
                slot.tree.set_proposal(node, 0, probs)
                slot.row_of[node] = slot.appended + j
                for candidate in top_k_tokens(probs, width):
                    child = slot.tree.add_child(node, int(candidate),
                                                ssm_id=0)
                    if expandable:
                        next_frontier.append(child)
            slot.appended += counts[b]
            slot.frontier = next_frontier
