"""Adaptive boost-tuning of an SSM pool (paper section 3, merge-based method).

SpecInfer aligns a *pool* of SSMs with the LLM in a fully unsupervised
fashion, inspired by adaptive boosting: convert a text corpus into prompt
samples, let the LLM generate a continuation for each, then

1. fine-tune the first SSM to the fullest on all samples,
2. mark every sample where the SSM now reproduces the LLM's continuation,
3. filter the marked samples out and fine-tune the next SSM on the rest,

so that later SSMs specialize on the prompts earlier ones get wrong and the
pool's *aggregate* coverage of the LLM's output greatly exceeds any single
SSM's.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.model.sampling import greedy_token
from repro.model.trainer import Trainer, TrainingConfig
from repro.model.transformer import TransformerLM


@dataclass
class BoostTuningReport:
    """Outcome of one boost-tuning run.

    Attributes:
        per_ssm_covered: Samples newly covered by each SSM, in tuning order
            (marginal counts: a sample multiple SSMs reproduce is credited
            only to its first coverer, so ``sum(per_ssm_covered) +
            uncovered == total_samples`` even for overlapping pools).
        per_ssm_losses: Final distillation loss of each SSM's fine-tune.
        uncovered: Samples no SSM covers after tuning.
        total_samples: Corpus size.
    """

    per_ssm_covered: List[int] = field(default_factory=list)
    per_ssm_losses: List[float] = field(default_factory=list)
    uncovered: int = 0
    total_samples: int = 0

    @property
    def coverage(self) -> float:
        """Fraction of samples covered by the aggregated pool."""
        if self.total_samples == 0:
            return 0.0
        return 1.0 - self.uncovered / self.total_samples


class BoostTuner:
    """Boost-tunes a pool of student SSMs against a teacher LLM.

    Args:
        teacher: The LLM whose output the pool must cover.
        continuation_len: Tokens the LLM generates per prompt sample; a
            sample counts as covered when the SSM reproduces the first
            ``match_len`` of them greedily.
        match_len: Matching horizon for the mark step.
        training: Per-SSM fine-tuning configuration.
    """

    def __init__(
        self,
        teacher: TransformerLM,
        continuation_len: int = 4,
        match_len: int = 1,
        training: Optional[TrainingConfig] = None,
    ):
        if match_len > continuation_len:
            raise ValueError(
                f"match_len ({match_len}) cannot exceed continuation_len "
                f"({continuation_len})"
            )
        self.teacher = teacher
        self.continuation_len = continuation_len
        self.match_len = match_len
        self.training = training or TrainingConfig(max_steps=50)

    def generate_targets(
        self, prompts: Sequence[np.ndarray]
    ) -> List[np.ndarray]:
        """LLM greedy continuations: one full (prompt + continuation) per sample."""
        samples = []
        for prompt in prompts:
            prompt = np.asarray(prompt, dtype=np.intp)
            budget = self.teacher.config.max_seq_len - self.continuation_len - 1
            prompt = prompt[: max(1, budget)]
            cache = self.teacher.new_cache()
            logits = self.teacher.prefill(prompt, cache)
            tokens = list(prompt)
            next_token = greedy_token(logits[-1])
            for _ in range(self.continuation_len):
                tokens.append(next_token)
                next_token = greedy_token(self.teacher.decode(next_token, cache))
            samples.append(np.asarray(tokens, dtype=np.intp))
        return samples

    def ssm_matches(
        self, ssm: TransformerLM, prompt_len: int, sample: np.ndarray
    ) -> bool:
        """Does the SSM greedily reproduce the sample's first ``match_len``
        continuation tokens?"""
        prompt = sample[:prompt_len]
        target = sample[prompt_len : prompt_len + self.match_len]
        cache = ssm.new_cache()
        logits = ssm.prefill(prompt, cache)
        next_token = greedy_token(logits[-1])
        for expected in target:
            if next_token != int(expected):
                return False
            next_token = greedy_token(ssm.decode(next_token, cache))
        return True

    def tune(
        self,
        ssms: Sequence[TransformerLM],
        prompts: Sequence[np.ndarray],
        rng: Optional[np.random.Generator] = None,
    ) -> BoostTuningReport:
        """Run the mark-and-filter boosting loop over ``ssms`` in order.

        SSMs are fine-tuned *in place* (their parameter stores mutate).
        """
        rng = rng or np.random.default_rng(0)
        samples = self.generate_targets(prompts)
        # The prompt/continuation split must come from the generated samples
        # themselves — the continuation is always the last
        # ``continuation_len`` tokens.  Re-deriving the truncation rule here
        # (as this used to) diverged from ``generate_targets`` for
        # degenerate budgets, silently mis-splitting the sample inside
        # ``ssm_matches``.
        prompt_lens = [len(s) - self.continuation_len for s in samples]
        remaining = list(range(len(samples)))
        covered_by_any: set = set()
        report = BoostTuningReport(total_samples=len(samples))
        for ssm in ssms:
            if not remaining:
                report.per_ssm_covered.append(0)
                report.per_ssm_losses.append(0.0)
                continue
            trainer = Trainer(ssm, self.training)
            train_seqs = [samples[i] for i in remaining]
            run = trainer.distill(self.teacher, train_seqs, rng=rng)
            # Marginal coverage only: a sample several SSMs can reproduce is
            # credited to its first coverer and filtered from every later
            # SSM's mark step, so overlapping pools cannot double-count —
            # ``sum(per_ssm_covered) + uncovered == total_samples`` holds by
            # construction against the union set.
            newly_covered = [
                i
                for i in remaining
                if self.ssm_matches(ssm, prompt_lens[i], samples[i])
            ]
            report.per_ssm_covered.append(len(newly_covered))
            report.per_ssm_losses.append(run.final_loss)
            covered_by_any.update(newly_covered)
            remaining = [i for i in remaining if i not in covered_by_any]
        report.uncovered = report.total_samples - len(covered_by_any)
        return report
