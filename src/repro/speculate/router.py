"""Per-request speculator routing: an acceptance-history bandit.

SPIN-style request-level routing over a heterogeneous draft pool: each
arriving request is assigned one :class:`~repro.speculate.pool.PoolMember`
for its whole lifetime, and the verified acceptance outcome of every tick
flows back into a per-``(member, workload-feature)`` arm.  The workload
feature is the prompt-length bucket — the one request property the five
dataset generators actually differ on — so the bandit learns *which member
accepts best for which kind of request*, not just a global ranking.

Policies (``RouterConfig.policy``):

* ``"ucb"`` (default) — prior-smoothed acceptance mean plus an
  exploration bonus shrinking with per-arm route counts.
* ``"thompson"`` — one seeded Beta(1+accepted, 1+stops) draw per arm,
  draws consumed in pool order so replays are deterministic.
* ``"round_robin"`` — cycles the pool (the ablation baseline).
* ``"fixed:<member>"`` — constant assignment (the parity baseline).

Determinism contract: routing is a pure function of the construction
arguments and the route/observe call sequence.  Cold-start assignments
(no acceptance history in the request's bucket yet) come from a
``blake2b`` hash of ``(seed, feature)`` rather than the RNG, so the first
request of each bucket routes identically across runs regardless of how
many Thompson draws preceded it.  Assignments are *sticky*: re-routing a
known ``request_id`` (preemption re-admission) returns the pinned
assignment without consuming randomness or mutating arm state.

Fault interaction mirrors the planner's: the pipeline only calls
:meth:`SpeculatorRouter.observe` for ticks that actually speculated, and
``observe`` with zero trials is a no-op, so fallback/suppressed ticks
neither move member estimators nor touch routing history.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.obs import REGISTRY, TRACER
from repro.speculate.pool import SpeculatorPool

_ASSIGNMENTS = REGISTRY.counter(
    "repro.router.assignments",
    help="requests assigned a pool member (sticky re-routes excluded)")
_COLD_STARTS = REGISTRY.counter(
    "repro.router.cold_starts",
    help="assignments made by the prompt-feature fallback (no acceptance "
         "history in the request's bucket yet)")
_OBSERVATIONS = REGISTRY.counter(
    "repro.router.observations",
    help="per-request acceptance outcomes fed back into routing arms")
_REGRET = REGISTRY.gauge(
    "repro.router.regret_proxy",
    help="cumulative gap between the chosen arm's acceptance estimate and "
         "the bucket's best estimate at assignment time (0 = always "
         "picked the current-best member)")

_POLICIES = ("ucb", "thompson", "round_robin")


@dataclass(frozen=True)
class RouterConfig:
    """Routing policy and feature-space knobs.

    Attributes:
        policy: ``"ucb"``, ``"thompson"``, ``"round_robin"``, or
            ``"fixed:<member>"``.
        exploration: UCB bonus scale (ignored by the other policies).
        length_buckets: Ascending prompt-length boundaries; ``(16, 24)``
            splits requests into short/medium/long around the dataset
            generators' mean prompt lengths.
        seed: Seeds the Thompson RNG and the cold-start hash.
    """

    policy: str = "ucb"
    exploration: float = 0.35
    length_buckets: Tuple[int, ...] = (16, 24)
    seed: int = 0

    def __post_init__(self) -> None:
        base = self.policy.split(":", 1)[0]
        if base not in _POLICIES and base != "fixed":
            raise ValueError(
                f"unknown routing policy {self.policy!r}; expected one of "
                f"{_POLICIES} or 'fixed:<member>'"
            )
        if base == "fixed" and ":" not in self.policy:
            raise ValueError("fixed policy must name a member: 'fixed:<name>'")
        if self.exploration < 0:
            raise ValueError("exploration must be >= 0")
        buckets = list(self.length_buckets)
        if buckets != sorted(set(buckets)) or any(b < 1 for b in buckets):
            raise ValueError("length_buckets must be strictly increasing "
                             "positive ints")


@dataclass(frozen=True)
class RouteAssignment:
    """One request's pinned routing decision."""

    request_id: int
    member: str
    feature: str
    cold_start: bool = False


class _ArmStats:
    """Acceptance tallies for one (member, feature) arm."""

    __slots__ = ("routes", "accepted", "stops")

    def __init__(self) -> None:
        self.routes = 0
        self.accepted = 0
        self.stops = 0

    @property
    def trials(self) -> int:
        return self.accepted + self.stops

    def mean(self, prior: float) -> float:
        """Acceptance mean smoothed with one pseudo-trial at ``prior``."""
        return (self.accepted + prior) / (self.trials + 1.0)


class SpeculatorRouter:
    """Routes each request to one pool member and learns from acceptance.

    Args:
        pool: The :class:`~repro.speculate.pool.SpeculatorPool` to route
            over.
        config: Policy and feature knobs; defaults to UCB over
            prompt-length buckets.
    """

    def __init__(self, pool: SpeculatorPool,
                 config: Optional[RouterConfig] = None):
        self.pool = pool
        self.config = config or RouterConfig()
        if self.config.policy.startswith("fixed:"):
            pool.member(self.config.policy.split(":", 1)[1])  # validate
        self._rng = np.random.default_rng(self.config.seed)
        self._arms: Dict[Tuple[str, str], _ArmStats] = {}
        self._assignments: Dict[int, RouteAssignment] = {}
        self._history: List[str] = []
        self._rr_next = 0
        self._regret = 0.0
        self._observations = 0
        #: Exploit-only mode: selection drops exploration bonuses /
        #: posterior sampling and arms stop accumulating evidence, so a
        #: converged router can be measured at its steady state.
        self.frozen = False
        self._alpha_gauges = {
            name: REGISTRY.gauge(
                f"repro.router.alpha.{name}",
                help=f"acceptance estimate of pool member {name}")
            for name in pool.names
        }
        self._assigned_counters = {
            name: REGISTRY.counter(
                f"repro.router.assigned.{name}",
                help=f"requests routed to pool member {name}")
            for name in pool.names
        }

    # -- features ----------------------------------------------------------------

    def feature_key(self, prompt: Sequence[int]) -> str:
        """The request's workload-feature key (prompt-length bucket)."""
        length = len(prompt)
        bucket = 0
        for boundary in self.config.length_buckets:
            if length >= boundary:
                bucket += 1
        return f"len{bucket}"

    # -- routing -----------------------------------------------------------------

    def route(self, request_id: int,
              prompt: Sequence[int]) -> RouteAssignment:
        """Assign (or return the pinned) member for ``request_id``.

        Sticky: a request re-routed after preemption gets its original
        assignment back, with no arm/RNG side effects.
        """
        existing = self._assignments.get(request_id)
        if existing is not None:
            return existing
        feature = self.feature_key(prompt)
        member, cold = self._select(feature)
        assignment = RouteAssignment(
            request_id=request_id, member=member, feature=feature,
            cold_start=cold,
        )
        self._assignments[request_id] = assignment
        self._history.append(member)
        arm = self._arms.setdefault((member, feature), _ArmStats())
        arm.routes += 1
        prior = self.pool.estimator_for(member).prior
        means = {
            name: self._arm_mean(name, feature, prior)
            for name in self.pool.names
        }
        self._regret += max(means.values()) - means[member]
        _REGRET.set(round(self._regret, 6))
        _ASSIGNMENTS.inc()
        self._assigned_counters[member].inc()
        if cold:
            _COLD_STARTS.inc()
        TRACER.event(
            "repro.router.route", request=request_id, member=member,
            feature=feature, cold_start=cold,
        )
        return assignment

    def _arm_mean(self, member: str, feature: str, prior: float) -> float:
        arm = self._arms.get((member, feature))
        return arm.mean(prior) if arm is not None else prior

    def _select(self, feature: str) -> Tuple[str, bool]:
        policy = self.config.policy
        if policy.startswith("fixed:"):
            return policy.split(":", 1)[1], False
        names = self.pool.names
        if policy == "round_robin":
            member = names[self._rr_next % len(names)]
            self._rr_next += 1
            return member, False
        arms = [self._arms.get((name, feature)) for name in names]
        if all(arm is None or arm.trials == 0 for arm in arms):
            return self._cold_member(feature), True
        best_name = names[0]
        best_score = -math.inf
        total_routes = sum(arm.routes for arm in arms if arm is not None)
        for name, arm in zip(names, arms):
            prior = self.pool.estimator_for(name).prior
            mean = arm.mean(prior) if arm is not None else prior
            if policy == "thompson":
                accepted = arm.accepted if arm is not None else 0
                stops = arm.stops if arm is not None else 0
                if self.frozen:
                    # Posterior mean: deterministic exploit-only ranking.
                    score = (1.0 + accepted) / (2.0 + accepted + stops)
                else:
                    score = float(self._rng.beta(1.0 + accepted,
                                                 1.0 + stops))
            else:  # ucb
                routes = arm.routes if arm is not None else 0
                bonus = 0.0 if self.frozen else (
                    self.config.exploration
                    * math.sqrt(math.log(total_routes + 1.0)
                                / (routes + 1.0))
                )
                score = mean + bonus
            # Strict improvement only: ties break to pool order.
            if score > best_score + 1e-12:
                best_name, best_score = name, score
        return best_name, False

    def _cold_member(self, feature: str) -> str:
        """Prompt-feature fallback: a pure hash of ``(seed, feature)``.

        Independent of the RNG stream and of arrival order, so the first
        request of each bucket routes identically across runs; distinct
        buckets spread across the pool instead of all hitting member 0.
        """
        names = self.pool.names
        digest = hashlib.blake2b(
            f"{self.config.seed}:{feature}".encode(), digest_size=8
        ).digest()
        return names[int.from_bytes(digest, "big") % len(names)]

    # -- feedback ----------------------------------------------------------------

    def observe(self, assignment: RouteAssignment, accepted: int,
                stops: int) -> None:
        """Feed one tick's acceptance outcome back into the routing arm
        and the member's estimator.

        Zero-trial calls are no-ops (mirroring
        :meth:`~repro.speculate.planner.AcceptanceEstimator.observe`), and
        a frozen router records nothing — measurement runs leave the
        learned state untouched.
        """
        if accepted < 0 or stops < 0:
            raise ValueError("accepted/stops must be >= 0")
        if accepted + stops == 0 or self.frozen:
            return
        arm = self._arms.setdefault(
            (assignment.member, assignment.feature), _ArmStats()
        )
        arm.accepted += accepted
        arm.stops += stops
        self.pool.estimator_for(assignment.member).observe(accepted, stops)
        self._observations += 1
        _OBSERVATIONS.inc()
        self._alpha_gauges[assignment.member].set(
            round(self.pool.alpha_for(assignment.member), 6)
        )

    def alpha_for(self, member: str) -> float:
        """The member's current acceptance estimate (for planner input)."""
        return self.pool.alpha_for(member)

    # -- lifecycle ---------------------------------------------------------------

    def freeze(self) -> None:
        """Enter exploit-only mode (no exploration, no learning)."""
        self.frozen = True

    def unfreeze(self) -> None:
        self.frozen = False

    def forget(self, request_id: int) -> None:
        """Drop a finished request's pinned assignment (bounded memory for
        long-lived routers); learned arm state is kept."""
        self._assignments.pop(request_id, None)

    # -- introspection -----------------------------------------------------------

    @property
    def assignment_history(self) -> Tuple[str, ...]:
        """Member names in assignment order (sticky re-routes excluded)."""
        return tuple(self._history)

    @property
    def observations(self) -> int:
        """Ticks of acceptance evidence recorded so far."""
        return self._observations

    @property
    def regret_proxy(self) -> float:
        return self._regret

    def assignment_for(self, request_id: int) -> Optional[RouteAssignment]:
        return self._assignments.get(request_id)
