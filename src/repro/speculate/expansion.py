"""Expansion-based token tree construction (paper section 3, Figure 3).

A static *expansion configuration* ⟨k1, …, km⟩ fixes the tree shape: ``m`` is
the maximum number of speculative decoding steps and ``k_i`` is how many
top-k tokens each frontier node expands into at step ``i``.  The paper's
main experiments use ⟨1,1,3,1,1,1,1,1⟩ (depth 8, expanding at the third
token); Table 2 and Figures 9/10 sweep ⟨1,1,k,1,1,1,1,1⟩ for k = 1..5.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.model.layers import stable_softmax
from repro.model.sampling import top_k_tokens
from repro.tree.token_tree import TokenTree


@dataclass(frozen=True)
class ExpansionConfig:
    """A static expansion configuration ⟨k1, …, km⟩.

    Attributes:
        widths: ``widths[i]`` is the branching factor applied at speculative
            step ``i`` (1-indexed ``k_{i+1}`` in the paper's notation).
    """

    widths: Tuple[int, ...] = (1, 1, 3, 1, 1, 1, 1, 1)

    def __post_init__(self) -> None:
        if not self.widths:
            raise ValueError("expansion configuration must be non-empty")
        if any(k < 1 for k in self.widths):
            raise ValueError(f"all widths must be >= 1, got {self.widths}")

    @property
    def depth(self) -> int:
        """Maximum number of speculative steps ``m``."""
        return len(self.widths)

    @property
    def num_sequences(self) -> int:
        """Number of root-to-leaf sequences the expanded tree contains."""
        product = 1
        for k in self.widths:
            product *= k
        return product

    def max_tree_tokens(self) -> int:
        """Upper bound on speculated tokens (exact when no dedup occurs)."""
        total = 0
        frontier = 1
        for k in self.widths:
            frontier *= k
            total += frontier
        return total

    @classmethod
    def paper_default(cls) -> "ExpansionConfig":
        """⟨1,1,3,1,1,1,1,1⟩ — the configuration used in sections 6.2/6.3."""
        return cls((1, 1, 3, 1, 1, 1, 1, 1))

    @classmethod
    def width_sweep(cls, width: int, depth: int = 8,
                    expand_step: int = 2) -> "ExpansionConfig":
        """⟨1,1,k,1,…⟩ used by the section 6.4 tree-width study."""
        if not 0 <= expand_step < depth:
            raise ValueError(f"expand_step {expand_step} out of range")
        widths = [1] * depth
        widths[expand_step] = width
        return cls(tuple(widths))

    @classmethod
    def sequence(cls, depth: int = 8) -> "ExpansionConfig":
        """All-ones configuration: sequence-based speculation baseline."""
        return cls((1,) * depth)


def expand_token_tree(
    ssm,
    root_token: int,
    cache,
    config: ExpansionConfig,
    ssm_id: int = 0,
    temperature: float = 1.0,
    stochastic: bool = False,
    rng: "np.random.Generator" = None,
    max_tokens: Optional[int] = None,
) -> TokenTree:
    """Build a token tree from one SSM under a static expansion config.

    The SSM is driven depth-first with cache snapshot/restore, so on return
    ``cache`` is exactly as it was on entry (the engine then advances it by
    whatever tokens the verifier accepts).

    Two proposal modes:

    * deterministic (default): each node expands into the SSM's top-``k_i``
      tokens — the right choice for greedy decoding, where verification
      compares against the LLM's argmax;
    * ``stochastic=True``: each node expands into ``k_i`` tokens drawn
      i.i.d. from the SSM's distribution (duplicates merge).  Multi-step
      speculative sampling is only distribution-preserving (Theorem 4.2)
      when candidates are *samples* from the recorded proposal
      distribution, so stochastic decoding must use this mode.

    Args:
        ssm: Any model exposing ``decode(token, cache) -> logits`` and a
            snapshot/restore-capable cache (``TransformerLM`` or
            ``CoupledSSM``).
        root_token: The pending token — the last generated token, which
            becomes the tree root.
        cache: SSM cache holding the verified prefix (excluding the root).
        config: Expansion configuration ⟨k1…km⟩.
        ssm_id: Attribution id recorded on proposed nodes.
        temperature: Softmax temperature for the recorded SSM distributions
            (MSS divides by these, so they must match what speculation used).
        stochastic: Sample candidates instead of taking top-k.
        rng: Randomness for stochastic proposals (required when
            ``stochastic=True``).
        max_tokens: Optional per-call cap on speculated tokens (root
            excluded).  The tree planner changes its budget tick-to-tick,
            so the cap is a *call* parameter — the construction-time
            ``config`` keeps describing the shape, and no speculator
            rebuild is needed to shrink a tick's tree.

    Returns:
        The expanded :class:`TokenTree` with per-node proposal distributions.
    """
    if stochastic and rng is None:
        raise ValueError("stochastic expansion requires an rng")
    if max_tokens is not None and max_tokens < 0:
        raise ValueError("max_tokens must be >= 0")
    tree = TokenTree(root_token)
    entry_snapshot = cache.snapshot()

    def candidates(probs: np.ndarray, width: int) -> list:
        if stochastic:
            return [int(t) for t in
                    rng.choice(probs.shape[-1], size=width, p=probs)]
        return [int(t) for t in top_k_tokens(probs, width)]

    def expand(node_idx: int, token: int, step: int) -> None:
        if step >= config.depth:
            return
        if max_tokens is not None and tree.num_speculated() >= max_tokens:
            return  # per-call budget exhausted
        if cache.length + 1 > cache.capacity:
            return  # SSM context limit reached; stop this branch
        logits = ssm.decode(token, cache)
        probs = stable_softmax(np.asarray(logits, dtype=np.float64)
                               / max(temperature, 1e-8))
        tree.set_proposal(node_idx, ssm_id, probs)
        for candidate in candidates(probs, config.widths[step]):
            if (max_tokens is not None
                    and tree.num_speculated() >= max_tokens):
                break
            child_idx = tree.add_child(node_idx, candidate, ssm_id=ssm_id)
            if tree.nodes[child_idx].children:
                continue  # duplicate sample already expanded
            snap = cache.snapshot()
            expand(child_idx, candidate, step + 1)
            cache.restore(snap)

    if max_tokens != 0:
        expand(0, int(root_token), 0)
    cache.restore(entry_snapshot)
    return tree
