"""Heterogeneous speculator pool: N draft models, one estimator each.

SpecInfer's collective-boosting argument (paper section 2.2) trains a
*pool* of small speculative models so their aggregate coverage of the LLM
output distribution exceeds any single SSM's.  This module gives that pool
a serving-side identity: each :class:`PoolMember` couples a draft-model
factory with its own private
:class:`~repro.speculate.planner.AcceptanceEstimator`, so acceptance
evidence from requests served by one member never biases the estimate for
another — the per-member alphas are exactly what the
:class:`~repro.speculate.router.SpeculatorRouter` ranks and what the
:class:`~repro.speculate.planner.TreePlanner` consumes for routed batches.

Construction paths:

* :meth:`SpeculatorPool.from_coupled` — alignment-knob variants of one LLM
  (:class:`~repro.model.coupled.CoupledSSM`), the cheap substrate the CLI
  and the observed workload use.
* :meth:`SpeculatorPool.from_zoo` — genuinely trained members via
  :class:`~repro.model.zoo.ModelZoo` (one shared teacher, per-member
  distilled students) with an optional
  :class:`~repro.speculate.boost.BoostTuner` pass that specializes later
  members on the samples earlier ones miss.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, Mapping, Optional, Sequence, Tuple

from repro.speculate.expansion import ExpansionConfig
from repro.speculate.planner import AcceptanceEstimator
from repro.speculate.speculator import Speculator

#: Member names become metric-name components (``repro.router.alpha.<name>``),
#: so they must be lowercase dotless slugs.
_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*$")


@dataclass
class PoolMember:
    """One speculator in the pool.

    Attributes:
        name: Lowercase slug identifying the member (metric/trace key).
        ssm_factory: Builds a fresh draft model (per-request SSM caches
            mean speculators cannot be shared across live requests).
        config: Expansion profile this member speculates with.
        estimator: The member's private acceptance estimator.
    """

    name: str
    ssm_factory: Callable[[], object]
    config: ExpansionConfig = field(
        default_factory=ExpansionConfig.paper_default
    )
    estimator: AcceptanceEstimator = field(
        default_factory=AcceptanceEstimator
    )

    def __post_init__(self) -> None:
        if not _NAME_RE.match(self.name):
            raise ValueError(
                f"pool member name {self.name!r} must match "
                f"{_NAME_RE.pattern} (it becomes a metric-name component)"
            )


class SpeculatorPool:
    """An ordered, named collection of heterogeneous speculators.

    Member order is the deterministic tie-break order routers iterate in,
    so two pools constructed from the same sequence behave identically.

    Args:
        members: At least one :class:`PoolMember`; names must be unique.
    """

    def __init__(self, members: Sequence[PoolMember]):
        if not members:
            raise ValueError("pool needs at least one member")
        names = [m.name for m in members]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate pool member names: {names}")
        self._members: Dict[str, PoolMember] = {m.name: m for m in members}
        #: The shared teacher LLM, when the construction path trained one
        #: (``from_zoo``); ``None`` for externally-built members.
        self.llm = None
        #: The :class:`~repro.speculate.boost.BoostTuningReport` from the
        #: optional boost pass, when ``from_zoo`` ran one.
        self.boost_report = None

    # -- access ------------------------------------------------------------------

    @property
    def names(self) -> Tuple[str, ...]:
        return tuple(self._members)

    def __len__(self) -> int:
        return len(self._members)

    def __iter__(self) -> Iterator[PoolMember]:
        return iter(self._members.values())

    def member(self, name: str) -> PoolMember:
        try:
            return self._members[name]
        except KeyError:
            raise KeyError(
                f"unknown pool member {name!r}; pool has {self.names}"
            ) from None

    def make_speculator(self, name: str) -> Speculator:
        """A fresh :class:`Speculator` for one request, drafted by ``name``."""
        member = self.member(name)
        return Speculator([member.ssm_factory()], member.config)

    def estimator_for(self, name: str) -> AcceptanceEstimator:
        return self.member(name).estimator

    def alpha_for(self, name: str) -> float:
        """The member's current acceptance-rate estimate."""
        return self.member(name).estimator.alpha

    def reset_estimators(self) -> None:
        """Forget all acceptance evidence (back to each member's prior)."""
        for member in self:
            member.estimator.reset()

    # -- construction ------------------------------------------------------------

    @classmethod
    def from_coupled(
        cls,
        llm,
        alignments: Sequence[float],
        names: Optional[Sequence[str]] = None,
        config: Optional[ExpansionConfig] = None,
        seed: int = 0,
        noise_scale: float = 2.0,
    ) -> "SpeculatorPool":
        """A pool of alignment-knob coupled views of one LLM.

        Member ``i`` drafts with ``CoupledSSM(llm, alignments[i],
        seed=seed + i)`` — deterministic, distinct draft distributions at
        zero training cost.  Default names are ``coupled_a<alignment>``
        style slugs (``coupled_a88`` for 0.88).
        """
        from repro.model.coupled import CoupledSSM

        if not alignments:
            raise ValueError("from_coupled needs at least one alignment")
        if names is None:
            names = [
                f"coupled_{i}_a{int(round(a * 100)):02d}"
                for i, a in enumerate(alignments)
            ]
        if len(names) != len(alignments):
            raise ValueError("names and alignments must pair up")
        members = []
        for i, (name, alignment) in enumerate(zip(names, alignments)):
            def ssm_factory(a=alignment, s=seed + i):
                return CoupledSSM(llm, alignment=a, seed=s,
                                  noise_scale=noise_scale)

            members.append(PoolMember(
                name=name,
                ssm_factory=ssm_factory,
                config=config or ExpansionConfig.paper_default(),
            ))
        pool = cls(members)
        pool.llm = llm
        return pool

    @classmethod
    def coupled_spread(
        cls,
        llm,
        size: int,
        base_alignment: float,
        seed: int = 0,
        config: Optional[ExpansionConfig] = None,
        step: float = 0.15,
        floor: float = 0.3,
    ) -> "SpeculatorPool":
        """``size`` coupled members stepping down in alignment from
        ``base_alignment`` — the shared recipe behind the ``--pool N``
        CLI flags and the observed workload's routed mode."""
        if size < 1:
            raise ValueError("pool size must be >= 1")
        alignments = tuple(
            round(max(floor, base_alignment - step * i), 6)
            for i in range(size)
        )
        return cls.from_coupled(llm, alignments, config=config, seed=seed)

    @classmethod
    def from_zoo(
        cls,
        specs: Mapping[str, "ZooSpec"],
        cache_dir: Optional[str] = None,
        configs: Optional[Mapping[str, ExpansionConfig]] = None,
        boost_prompts: Optional[Sequence] = None,
        tuner: Optional["BoostTuner"] = None,
    ) -> "SpeculatorPool":
        """Train a pool through the :class:`~repro.model.zoo.ModelZoo`.

        Every spec must describe the *same* teacher (identical
        ``cache_key("llm")``): the LLM is trained once and each member's
        student is distilled from it, so differently-sized/seeded students
        share one teacher exactly like the paper's pool.  With
        ``boost_prompts``, a :class:`~repro.speculate.boost.BoostTuner`
        pass then specializes members in mapping order (later members
        fine-tune on the samples earlier ones miss); the resulting
        :class:`~repro.speculate.boost.BoostTuningReport` lands on
        ``pool.boost_report``.
        """
        from repro.model.zoo import ModelZoo

        if not specs:
            raise ValueError("from_zoo needs at least one spec")
        zoo = ModelZoo(cache_dir=cache_dir)
        spec_list = list(specs.items())
        llm_keys = {spec.cache_key("llm") for _, spec in spec_list}
        if len(llm_keys) > 1:
            raise ValueError(
                "all pool specs must share one teacher (identical "
                "llm-role cache keys); got multiple distinct teachers"
            )
        llm = zoo.trained_llm(spec_list[0][1])
        ssms = {name: zoo.distilled_ssm(spec, llm)
                for name, spec in spec_list}
        report = None
        if boost_prompts is not None:
            from repro.speculate.boost import BoostTuner

            active_tuner = tuner or BoostTuner(llm)
            report = active_tuner.tune(list(ssms.values()), boost_prompts)
        members = []
        for name, ssm in ssms.items():
            config = (configs or {}).get(name)
            members.append(PoolMember(
                name=name,
                # The zoo's students are plain models (no per-request
                # state), so one instance serves every request.
                ssm_factory=lambda model=ssm: model,
                config=config or ExpansionConfig.paper_default(),
            ))
        pool = cls(members)
        pool.llm = llm
        pool.boost_report = report
        return pool
