"""Hardware-aware dynamic tree planning (Sequoia-style, per tick).

The static expansion configuration ⟨k1…km⟩ and the adaptive best-first
policy both shape a tree *within* a fixed speculation budget; nothing in
the system chooses the budget itself.  Sequoia (PAPERS.md) shows that the
optimal tree size and depth depend on three things that change at run time:

* the **batch size** — verification amortizes weight traffic across the
  batch, so the verify-side marginal cost of a tree token shrinks as the
  batch grows until compute takes over (the roofline knee);
* the **hardware** — where that knee sits is a property of the machine,
  which the :class:`~repro.cluster.cost_model.LatencyModel` roofline
  already knows;
* the **measured acceptance rate** — speculated tokens only pay for their
  verify cost in proportion to how often they are accepted, and acceptance
  drifts across a session as the workload moves on and off the SSM's
  competence.

This module closes the loop.  A :class:`TreePlanner` consulted once per
pipeline tick:

1. estimates the per-token acceptance rate ``alpha`` from an EWMA over
   recent ticks (censored-geometric per-tick estimates, seeded with a
   cold-start prior),
2. solves for the expansion profile ⟨k1…kd⟩ maximizing expected accepted
   tokens per tree under every candidate token budget, by dynamic
   programming (:func:`optimal_widths`),
3. prices each candidate plan with the hardware cost model
   (:meth:`~repro.cluster.cost_model.LatencyModel.verify_seconds` plus a
   draft-model term per speculation level) and picks the budget with the
   best expected committed tokens per second,
4. **degrades to incremental decoding** (budget 0) when no speculative
   plan beats the Algorithm-1 baseline, re-probing speculation with a
   minimal tree every ``probe_cooldown`` ticks so a recovery in acceptance
   is noticed.

Everything is deterministic: the estimate is a pure function of the
observation history, and the DP breaks ties lexicographically (smallest
width first), so a seeded run re-plans identically every time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.obs import REGISTRY

_PLANS = REGISTRY.counter(
    "repro.planner.plans", help="per-tick tree plans produced")
_REPLANS = REGISTRY.counter(
    "repro.planner.replans",
    help="plans whose expansion profile changed from the previous tick")
_DEGRADED = REGISTRY.counter(
    "repro.planner.degraded_ticks",
    help="budget-0 plans (tick served by Algorithm-1 incremental decoding)")
_PROBES = REGISTRY.counter(
    "repro.planner.probes",
    help="minimal speculative plans issued on cooldown while degraded")
_BUDGET = REGISTRY.gauge(
    "repro.planner.budget",
    help="speculated-token budget of the most recent plan")
_ALPHA = REGISTRY.gauge(
    "repro.planner.alpha",
    help="EWMA per-token acceptance estimate behind the most recent plan")
_EXPECTED = REGISTRY.gauge(
    "repro.planner.expected_tokens_per_step",
    help="committed tokens per request per tick the most recent plan expects")


def tree_tokens(widths: Tuple[int, ...]) -> int:
    """Speculated tokens of the ⟨k1…kd⟩ profile (root excluded)."""
    total = 0
    frontier = 1
    for width in widths:
        frontier *= width
        total += frontier
    return total


def _accept_any(alpha: float, width: int) -> float:
    """P(some one of ``width`` distinct candidates is accepted).

    Independence approximation over candidates (the same first-order tree
    extension :func:`repro.metrics.acceptance.effective_tree_alpha` uses).
    """
    return 1.0 - (1.0 - alpha) ** width


def optimal_widths(
    alpha: float,
    budget: int,
    max_depth: int = 8,
    max_width: int = 4,
) -> Tuple[Tuple[int, ...], float]:
    """Expansion profile maximizing expected accepted tokens under a budget.

    Over profiles ⟨k1…kd⟩ with ``d <= max_depth``, each ``k_i <=
    max_width``, and :func:`tree_tokens` ``<= budget``, maximizes the
    expected number of accepted speculated tokens::

        E(k1…kd) = sum_i  prod_{j<=i} (1 - (1 - alpha)^{k_j})

    — the verifier walks one root-to-leaf path, surviving level ``i`` when
    any of that level's ``k_i`` candidates matches.  Exact dynamic program
    over (depth, remaining budget, frontier size); ties break toward the
    narrowest width, so the result is deterministic and minimal.

    Returns:
        ``(widths, expected_accepted)``; ``((), 0.0)`` when ``budget < 1``.
    """
    if not 0.0 <= alpha <= 1.0:
        raise ValueError(f"alpha must be in [0, 1], got {alpha}")
    if max_depth < 1 or max_width < 1:
        raise ValueError("max_depth and max_width must be >= 1")
    if budget < 1 or alpha == 0.0:
        return (), 0.0

    # value[(level, remaining, frontier)] = (best expected accepted tokens
    # from this level on, best width here or 0 to stop).  The survival
    # probability accumulated above this level multiplies every downstream
    # term equally, so it never needs to be part of the state.
    memo: Dict[Tuple[int, int, int], Tuple[float, int]] = {}

    def solve(level: int, remaining: int, frontier: int) -> Tuple[float, int]:
        if level >= max_depth or remaining < frontier:
            return 0.0, 0
        key = (level, remaining, frontier)
        cached = memo.get(key)
        if cached is not None:
            return cached
        best_value, best_width = 0.0, 0
        for width in range(1, max_width + 1):
            cost = frontier * width
            if cost > remaining:
                break
            below, _ = solve(level + 1, remaining - cost, frontier * width)
            value = _accept_any(alpha, width) * (1.0 + below)
            if value > best_value + 1e-12:
                best_value, best_width = value, width
        memo[key] = (best_value, best_width)
        return best_value, best_width

    expected, _ = solve(0, budget, 1)
    widths = []
    level, remaining, frontier = 0, budget, 1
    while True:
        _, width = solve(level, remaining, frontier)
        if width == 0:
            break
        widths.append(width)
        remaining -= frontier * width
        frontier *= width
        level += 1
    return tuple(widths), expected


class AcceptanceEstimator:
    """EWMA over per-tick censored-geometric acceptance estimates.

    Each speculative tick contributes the maximum-likelihood estimate for a
    geometric acceptance process censored at tree depth: ``accepted /
    (accepted + stops)``, where ``accepted`` counts accepted speculated
    tokens and ``stops`` counts requests whose accepted path ended by
    *rejection* (not by running out of tree).  Before the first
    observation, the estimate is the cold-start ``prior``.

    Args:
        prior: Cold-start acceptance estimate.
        ewma: Weight of the newest tick (0 < ewma <= 1).
        floor: Lower clamp on the estimate (keeps the DP away from the
            degenerate all-reject corner on one unlucky tick).
        ceiling: Upper clamp (speculation never looks infinitely good).
    """

    def __init__(self, prior: float = 0.7, ewma: float = 0.25,
                 floor: float = 0.02, ceiling: float = 0.98):
        if not 0.0 <= prior <= 1.0:
            raise ValueError("prior must be in [0, 1]")
        if not 0.0 < ewma <= 1.0:
            raise ValueError("ewma must be in (0, 1]")
        if not 0.0 <= floor < ceiling <= 1.0:
            raise ValueError("need 0 <= floor < ceiling <= 1")
        self.prior = prior
        self.ewma = ewma
        self.floor = floor
        self.ceiling = ceiling
        self._estimate = prior
        self._observations = 0

    @property
    def alpha(self) -> float:
        """The clamped current acceptance estimate."""
        return min(self.ceiling, max(self.floor, self._estimate))

    @property
    def observations(self) -> int:
        """Speculative ticks folded into the estimate so far."""
        return self._observations

    def observe(self, accepted: int, stops: int) -> None:
        """Fold one speculative tick's outcome into the estimate.

        Args:
            accepted: Accepted speculated tokens, summed over the batch.
            stops: Requests whose accepted path ended in a rejection (a
                request that consumed its whole tree is censored, not a
                stop).  Ticks with no evidence either way are ignored.
        """
        if accepted < 0 or stops < 0:
            raise ValueError("accepted and stops must be >= 0")
        trials = accepted + stops
        if trials == 0:
            return
        tick_alpha = accepted / trials
        self._estimate += self.ewma * (tick_alpha - self._estimate)
        self._observations += 1

    def reset(self) -> None:
        """Return to the cold-start prior (new workload)."""
        self._estimate = self.prior
        self._observations = 0


@dataclass(frozen=True)
class TreePlan:
    """One tick's speculation decision.

    Attributes:
        budget: Speculated-token budget (0 = run the tick incrementally).
        widths: The expansion profile ⟨k1…kd⟩ realizing the budget (empty
            when ``budget`` is 0).
        alpha: Acceptance estimate the plan was solved against.
        expected_tokens: Committed tokens per request per tick the plan
            expects (accepted speculated + the bonus token).
        tick_seconds: Modeled duration of a tick under this plan.
        baseline_seconds: Modeled duration of an incremental tick at the
            same batch size (the degradation comparator).
        probe: True when this is a cooldown re-probe issued while the
            planner is otherwise degraded.
    """

    budget: int
    widths: Tuple[int, ...]
    alpha: float
    expected_tokens: float
    tick_seconds: float
    baseline_seconds: float
    probe: bool = False

    @property
    def speculative(self) -> bool:
        return self.budget > 0

    @property
    def depth(self) -> int:
        return len(self.widths)

    @property
    def goodput(self) -> float:
        """Expected committed tokens per modeled second per request."""
        return self.expected_tokens / self.tick_seconds

    @property
    def baseline_goodput(self) -> float:
        """Incremental decoding's tokens per modeled second per request."""
        return 1.0 / self.baseline_seconds


@dataclass(frozen=True)
class PlannerConfig:
    """Tuning knobs of the per-tick tree planner.

    Attributes:
        max_budget: Largest speculated-token budget the DP may spend.
        max_depth: Deepest expansion profile considered.
        max_width: Widest per-level branching considered.
        prior_alpha: Cold-start acceptance estimate.
        ewma: EWMA weight of the newest tick's acceptance evidence.
        speculation_margin: A speculative plan must beat the incremental
            baseline's goodput by this factor to be issued (> 1 demands
            real headroom; 1.0 takes any modeled win).
        probe_cooldown: Incremental ticks served between speculative
            re-probes while degraded.
        probe_budget: Token budget of a re-probe tree (kept small: the
            probe exists to refresh the acceptance estimate cheaply).
        context_len: Verified-prefix length assumed when the caller does
            not supply one.
    """

    max_budget: int = 24
    max_depth: int = 8
    max_width: int = 4
    prior_alpha: float = 0.7
    ewma: float = 0.25
    speculation_margin: float = 1.0
    probe_cooldown: int = 4
    probe_budget: int = 2
    context_len: int = 128

    def __post_init__(self) -> None:
        if self.max_budget < 1:
            raise ValueError("max_budget must be >= 1")
        if self.probe_cooldown < 1:
            raise ValueError("probe_cooldown must be >= 1")
        if not 1 <= self.probe_budget <= self.max_budget:
            raise ValueError("probe_budget must be in [1, max_budget]")
        if self.speculation_margin <= 0:
            raise ValueError("speculation_margin must be > 0")


class TreePlanner:
    """Per-tick speculation-budget planner over a hardware cost model.

    Args:
        verify_cost: :class:`~repro.cluster.cost_model.LatencyModel` pricing
            the LLM verification pass.
        draft_cost: Optional :class:`LatencyModel` pricing one SSM decode
            level (the draft tree is built level-synchronously, so its
            latency term is ``depth`` draft steps).  ``None`` prices
            drafting as free — budget choices then lean slightly deeper.
        config: Planner tuning knobs.

    Use :meth:`default` for the paper testbed pairing (LLaMA-7B verify,
    LLaMA-68M draft, one g5.12xlarge node).
    """

    def __init__(
        self,
        verify_cost,
        draft_cost=None,
        config: Optional[PlannerConfig] = None,
    ):
        self.config = config or PlannerConfig()
        self.verify_cost = verify_cost
        self.draft_cost = draft_cost
        self.estimator = AcceptanceEstimator(
            prior=self.config.prior_alpha, ewma=self.config.ewma
        )
        self._last_widths: Optional[Tuple[int, ...]] = None
        self._ticks_since_probe = 0

    @classmethod
    def default(cls, config: Optional[PlannerConfig] = None,
                model: str = "llama-7b", ssm: str = "llama-68m",
                ) -> "TreePlanner":
        """Planner priced for the paper's single-node testbed."""
        from repro.cluster.cost_model import LatencyModel
        from repro.cluster.hardware import single_node_cluster
        from repro.cluster.models import paper_model
        from repro.cluster.parallel import ParallelPlan

        cluster = single_node_cluster()
        plan = ParallelPlan(tensor_parallel=1, pipeline_stages=1)
        return cls(
            verify_cost=LatencyModel(paper_model(model), plan, cluster),
            draft_cost=LatencyModel(paper_model(ssm), plan, cluster),
            config=config,
        )

    # -- observation -----------------------------------------------------------------

    def observe(self, accepted: int, stops: int) -> None:
        """Feed one speculative tick's acceptance outcome to the EWMA."""
        self.estimator.observe(accepted, stops)

    # -- pricing ---------------------------------------------------------------------

    def _tick_seconds(self, batch_size: int, budget: int, depth: int,
                      context_len: int) -> float:
        """Modeled duration of one tick: draft levels + fused verify."""
        verify = self.verify_cost.verify_seconds(
            batch_size, 1 + budget, context_len
        )
        if depth == 0 or self.draft_cost is None:
            return verify
        draft_level = self.draft_cost.verify_seconds(
            batch_size, 1, context_len
        )
        return verify + depth * draft_level

    # -- planning --------------------------------------------------------------------

    def _solve(self, batch_size: int, context_len: int,
               alpha: float) -> TreePlan:
        """Best plan over all candidate budgets at the current estimate."""
        baseline = self._tick_seconds(batch_size, 0, 0, context_len)
        best: Optional[TreePlan] = None
        cfg = self.config
        for budget in range(1, cfg.max_budget + 1):
            widths, expected_accepted = optimal_widths(
                alpha, budget, cfg.max_depth, cfg.max_width
            )
            if not widths:
                continue
            tokens = tree_tokens(widths)
            if best is not None and tokens == best.budget:
                continue  # larger cap, same realized tree
            seconds = self._tick_seconds(
                batch_size, tokens, len(widths), context_len
            )
            candidate = TreePlan(
                budget=tokens,
                widths=widths,
                alpha=alpha,
                expected_tokens=1.0 + expected_accepted,
                tick_seconds=seconds,
                baseline_seconds=baseline,
            )
            if best is None or candidate.goodput > best.goodput + 1e-12:
                best = candidate
        if (best is None
                or best.goodput < best.baseline_goodput
                * cfg.speculation_margin):
            return TreePlan(
                budget=0, widths=(), alpha=alpha, expected_tokens=1.0,
                tick_seconds=baseline, baseline_seconds=baseline,
            )
        return best

    def _probe_plan(self, batch_size: int, context_len: int,
                    alpha: float) -> TreePlan:
        """The minimal speculative tree used to refresh the estimate."""
        cfg = self.config
        widths, expected_accepted = optimal_widths(
            alpha, cfg.probe_budget, cfg.max_depth, cfg.max_width
        )
        if not widths:
            widths, expected_accepted = (1,), alpha
        tokens = tree_tokens(widths)
        return TreePlan(
            budget=tokens,
            widths=widths,
            alpha=alpha,
            expected_tokens=1.0 + expected_accepted,
            tick_seconds=self._tick_seconds(
                batch_size, tokens, len(widths), context_len
            ),
            baseline_seconds=self._tick_seconds(
                batch_size, 0, 0, context_len
            ),
            probe=True,
        )

    def plan(self, batch_size: int,
             context_len: Optional[int] = None,
             alpha: Optional[float] = None) -> TreePlan:
        """The speculation decision for the coming tick.

        Args:
            batch_size: Live (unfinished, speculative) requests this tick.
            context_len: Representative verified-prefix length; defaults to
                ``config.context_len``.
            alpha: Acceptance estimate override.  Routed batches pass the
                mean of their assigned speculators' per-member estimates
                here, so planning tracks the speculators actually serving
                this tick instead of the planner's global EWMA.
        """
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        context = (context_len if context_len is not None
                   else self.config.context_len)
        if alpha is None:
            alpha = self.estimator.alpha
        elif not 0.0 <= alpha <= 1.0:
            raise ValueError(f"alpha must be in [0, 1], got {alpha}")
        plan = self._solve(batch_size, context, alpha)
        if not plan.speculative:
            self._ticks_since_probe += 1
            if self._ticks_since_probe >= self.config.probe_cooldown:
                self._ticks_since_probe = 0
                plan = self._probe_plan(batch_size, context, alpha)
                _PROBES.inc()
        else:
            self._ticks_since_probe = 0
        _PLANS.inc()
        if plan.widths != self._last_widths and self._last_widths is not None:
            _REPLANS.inc()
        self._last_widths = plan.widths
        if not plan.speculative:
            _DEGRADED.inc()
        _BUDGET.set(plan.budget)
        _ALPHA.set(round(alpha, 6))
        _EXPECTED.set(round(plan.expected_tokens, 6))
        return plan
