"""Dynamic token tree expansion (the paper's stated future work).

Section 3 of the paper fixes the tree shape with a *static* expansion
configuration and notes that "dynamically expanding a token tree from an
SSM is an open research problem".  This module implements the natural
dynamic policy the paper gestures at (later realized by systems like
Sequoia): spend a fixed speculation budget where the SSM is *confident*,
instead of uniformly.

The algorithm is best-first expansion.  Every candidate token carries the
probability of its root-to-candidate path under the SSM; candidates are
expanded in decreasing path-probability order until the token budget, the
depth limit, or the path-probability floor stops growth.  Per node, the
branching factor adapts to the SSM's local certainty: enough top tokens to
cover ``coverage`` probability mass, capped at ``max_width``.

Under greedy verification the expected number of accepted tokens equals the
sum of path probabilities of tree nodes (when the SSM is calibrated against
the LLM), so best-first expansion maximizes exactly the right objective
given a node budget.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.model.layers import stable_softmax
from repro.tree.token_tree import TokenTree


@dataclass(frozen=True)
class AdaptiveConfig:
    """Policy knobs for dynamic tree expansion.

    Attributes:
        max_tokens: Total speculated-token budget per tree (root excluded).
        max_depth: Maximum speculation depth.
        max_width: Per-node branching cap.
        coverage: Per-node probability mass the expanded children should
            cover (confident nodes expand 1 child, uncertain ones up to
            ``max_width``).
        min_path_prob: Candidates whose path probability falls below this
            floor are never expanded (they would almost surely be rejected).
    """

    max_tokens: int = 16
    max_depth: int = 8
    max_width: int = 4
    coverage: float = 0.85
    min_path_prob: float = 0.02

    def __post_init__(self) -> None:
        if self.max_tokens < 1:
            raise ValueError("max_tokens must be >= 1")
        if self.max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        if self.max_width < 1:
            raise ValueError("max_width must be >= 1")
        if not 0 < self.coverage <= 1:
            raise ValueError("coverage must be in (0, 1]")
        if not 0 <= self.min_path_prob < 1:
            raise ValueError("min_path_prob must be in [0, 1)")


def _adaptive_width(probs: np.ndarray, config: AdaptiveConfig) -> np.ndarray:
    """Top tokens covering ``coverage`` mass, capped at ``max_width``."""
    order = np.argsort(probs)[::-1][: config.max_width]
    cumulative = np.cumsum(probs[order])
    cutoff = int(np.searchsorted(cumulative, config.coverage)) + 1
    return order[: max(1, min(cutoff, config.max_width))]


def expand_token_tree_adaptive(
    ssm,
    root_token: int,
    cache,
    config: AdaptiveConfig,
    ssm_id: int = 0,
    temperature: float = 1.0,
    stochastic: bool = False,
    rng: Optional[np.random.Generator] = None,
    max_tokens: Optional[int] = None,
) -> TokenTree:
    """Best-first dynamic expansion of a token tree from one SSM.

    The SSM cache is restored to its entry state on return, mirroring
    :func:`repro.speculate.expansion.expand_token_tree`.

    Args:
        ssm: Model exposing ``decode(token, cache)`` plus a snapshot/restore
            cache (``TransformerLM`` or ``CoupledSSM``).
        root_token: The pending token (tree root).
        cache: SSM cache holding the verified prefix.
        config: The dynamic expansion policy.
        ssm_id: Attribution recorded on proposed nodes.
        temperature: Softmax temperature of recorded proposals.
        stochastic: Sample candidates from the SSM distribution instead of
            taking the covering top set (required for distribution-
            preserving stochastic verification).
        rng: Randomness for stochastic candidates.
        max_tokens: Optional per-call override of ``config.max_tokens`` —
            the tree planner's tick-to-tick budget, applied without
            rebuilding the speculator or its config.
    """
    if stochastic and rng is None:
        raise ValueError("stochastic expansion requires an rng")
    if max_tokens is not None and max_tokens < 0:
        raise ValueError("max_tokens must be >= 0")
    budget = config.max_tokens if max_tokens is None else max_tokens
    tree = TokenTree(root_token)
    entry = cache.snapshot()
    counter = itertools.count()  # heap tie-breaker
    # Heap of (-path_prob, tiebreak, parent_node_idx, token, path_tokens).
    heap: List[Tuple[float, int, int, int, Tuple[int, ...]]] = []

    def node_distribution(path_tokens: Sequence[int]) -> Optional[np.ndarray]:
        """SSM next-token distribution after decoding ``path_tokens``."""
        if cache.length + len(path_tokens) > cache.capacity:
            return None
        cache.restore(entry)
        logits = None
        for token in path_tokens:
            logits = ssm.decode(int(token), cache)
        return stable_softmax(
            np.asarray(logits, dtype=np.float64) / max(temperature, 1e-8)
        )

    def push_children(node_idx: int, path_tokens: Tuple[int, ...],
                      path_prob: float) -> None:
        depth = len(path_tokens)  # root is 1 token
        if depth > config.max_depth:
            return
        probs = node_distribution(path_tokens)
        if probs is None:
            return
        tree.set_proposal(node_idx, ssm_id, probs)
        if stochastic:
            width = len(_adaptive_width(probs, config))
            candidates = rng.choice(probs.shape[-1], size=width, p=probs)
        else:
            candidates = _adaptive_width(probs, config)
        for token in candidates:
            token = int(token)
            child_prob = path_prob * float(probs[token])
            if child_prob < config.min_path_prob:
                continue
            heapq.heappush(
                heap,
                (-child_prob, next(counter), node_idx, token,
                 path_tokens + (token,)),
            )

    expanded = {0}
    if budget > 0:
        push_children(0, (int(root_token),), 1.0)
    while heap and tree.num_speculated() < budget:
        neg_prob, _, parent, token, path_tokens = heapq.heappop(heap)
        child_idx = tree.add_child(parent, token, ssm_id=ssm_id)
        if child_idx in expanded:
            # Duplicate candidate (stochastic sampling can propose the same
            # token twice) — the node merged; expand it only once.
            continue
        expanded.add(child_idx)
        push_children(child_idx, path_tokens, -neg_prob)
    cache.restore(entry)
    return tree
