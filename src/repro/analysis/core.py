"""Core of the repro static-analysis framework.

The linter exists because the decode hot path's performance and correctness
claims rest on invariants NumPy will not enforce for you: masks must carry
the model dtype (silent float64 upcasts double memory traffic), the steady
state must not allocate (``perf`` counters only catch paths a test drives),
and randomness must flow through explicit :class:`numpy.random.Generator`
objects (or runs stop being reproducible).  Each invariant is an AST *check*
(:mod:`repro.analysis.checks`) run over every file by the
:mod:`~repro.analysis.runner`.

This module holds the pieces every check shares:

* :class:`Finding` — one diagnostic, anchored to a file/line/column;
* :class:`SourceFile` — a parsed file plus its suppression and scope
  pragmas;
* :class:`Check` — the visitor base class checks subclass;
* suppression comments: ``# lint: allow-<tag> [reason]`` silences findings
  of the matching check on the same line (or, for a standalone comment
  line, on the next code line); ``# lint: ignore`` silences every check.
  Suppressed findings are retained (marked ``suppressed=True``) so the
  reporter can audit them;
* scope pragmas: ``# lint: scope <name> [<name> ...]`` near the top of a
  file opts it into path-scoped checks (``model``, ``engine``,
  ``hot-path``) — how fixture corpora and out-of-tree files exercise
  checks that are otherwise keyed off the ``repro`` package layout.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple


#: Scope names a file may belong to.  Path-scoped checks declare which of
#: these they require; see :meth:`SourceFile.scopes`.
KNOWN_SCOPES = ("model", "engine", "hot-path")

#: Files (matched by ``repro``-relative suffix) on the decoding hot path.
#: ``hot-path-alloc`` applies to these plus any function carrying the
#: ``@hot_path`` decorator (:func:`repro.analysis.sanitizer.hot_path`).
HOT_PATH_FILES = (
    "repro/model/transformer.py",
    "repro/model/attention.py",
    "repro/model/kv_cache.py",
    "repro/model/arena.py",
    "repro/model/paged_cache.py",
    "repro/engine/batched.py",
    "repro/speculate/packed.py",
    "repro/verify/decode.py",
    "repro/verify/greedy.py",
    "repro/verify/naive.py",
    "repro/verify/stochastic.py",
)

_SUPPRESS_RE = re.compile(
    r"#\s*lint:\s*(allow-[a-z0-9-]+|ignore)(?:\s+(?P<reason>\S.*))?"
)
_SCOPE_RE = re.compile(r"#\s*lint:\s*scope\s+(?P<names>[a-z -]+)")


@dataclass(frozen=True)
class Finding:
    """One diagnostic produced by a check.

    Attributes:
        check: Name of the producing check (e.g. ``"dtype-drift"``).
        path: File the finding anchors to.
        line: 1-based line number.
        col: 0-based column offset.
        message: Human-readable description of the violation.
        suppressed: True when a matching ``# lint: allow-*`` comment covers
            the line; suppressed findings never affect the exit code.
        suppression_reason: Free text following the suppression tag.
        context: Qualified name of the enclosing function/method
            (``"DecodePipeline.tick"``), ``""`` at module level.  Part of
            the baseline fingerprint, so findings survive line drift.
        evidence: Call chain that makes an interprocedural finding hot
            (``("tick", "_fit_tree")``) — rendered by the reporter, kept
            out of ``message`` so fingerprints stay stable when an
            intermediate call path changes.
        fingerprint: Stable identity assigned by the runner (see
            :mod:`repro.analysis.baseline`); ``""`` until assigned.
        baselined: True when an applied baseline accepts this finding; a
            baselined finding never affects the exit code.
    """

    check: str
    path: str
    line: int
    col: int
    message: str
    suppressed: bool = False
    suppression_reason: str = ""
    context: str = ""
    evidence: Tuple[str, ...] = ()
    fingerprint: str = ""
    baselined: bool = False

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"


@dataclass
class Suppression:
    """A parsed ``# lint: allow-<tag>`` / ``# lint: ignore`` comment."""

    line: int
    tag: str  # "allow-<tag>" or "ignore"
    reason: str
    standalone: bool  # comment is the only thing on its line
    used: bool = False

    def covers(self, check_tag: str, line: int) -> bool:
        """Whether this comment silences ``check_tag`` findings at ``line``.

        A trailing comment covers its own line; a standalone comment line
        covers the *next* line (the usual place for long call expressions).
        """
        target = self.line + 1 if self.standalone else self.line
        if line != target:
            return False
        return self.tag == "ignore" or self.tag == f"allow-{check_tag}"


class SourceFile:
    """A parsed source file with its pragmas, shared by all checks."""

    def __init__(self, path: str, source: str):
        self.path = path
        self.source = source
        self.lines = source.splitlines()
        self.tree = ast.parse(source, filename=path)
        self._comments = self._comment_lines()
        self.suppressions = self._parse_suppressions()
        self._scopes = self._infer_scopes()
        self._function_spans = self._index_function_spans()

    # -- pragmas ---------------------------------------------------------------

    def _comment_lines(self) -> Dict[int, str]:
        """Real ``#`` comments by line, via the tokenizer.

        Regex over raw lines also matches pragma *mentions* inside string
        literals and docstrings (the check sources themselves are full of
        them), which would both mis-suppress findings and flood the
        stale-suppression audit.  Tokenizing is exact; files the tokenizer
        rejects (the AST parse already succeeded, so this is rare) fall
        back to the line scan.
        """
        comments: Dict[int, str] = {}
        try:
            tokens = tokenize.generate_tokens(
                io.StringIO(self.source).readline
            )
            for tok in tokens:
                if tok.type == tokenize.COMMENT:
                    comments[tok.start[0]] = tok.string
        except (tokenize.TokenError, IndentationError):
            for lineno, text in enumerate(self.lines, start=1):
                hash_pos = text.find("#")
                if hash_pos != -1:
                    comments[lineno] = text[hash_pos:]
        return comments

    def _parse_suppressions(self) -> List[Suppression]:
        found: List[Suppression] = []
        for lineno, comment in sorted(self._comments.items()):
            match = _SUPPRESS_RE.search(comment)
            if not match:
                continue
            found.append(
                Suppression(
                    line=lineno,
                    tag=match.group(1),
                    reason=(match.group("reason") or "").strip(),
                    standalone=self.lines[lineno - 1].lstrip()
                    .startswith("#"),
                )
            )
        return found

    def _infer_scopes(self) -> Set[str]:
        """Scopes from the file path plus any ``# lint: scope`` pragma."""
        scopes: Set[str] = set()
        path = self.path.replace("\\", "/")
        if "repro/model/" in path:
            scopes.add("model")
        if "repro/engine/" in path:
            scopes.add("engine")
        if any(path.endswith(hot) for hot in HOT_PATH_FILES):
            scopes.add("hot-path")
        for lineno, comment in sorted(self._comments.items()):
            if lineno > 10:
                break
            match = _SCOPE_RE.search(comment)
            if match:
                for name in match.group("names").split():
                    if name in KNOWN_SCOPES:
                        scopes.add(name)
        return scopes

    @property
    def scopes(self) -> Set[str]:
        return self._scopes

    # -- function index --------------------------------------------------------

    def _index_function_spans(self) -> List[Tuple[int, int, str]]:
        """(first, last, qualname) for every def, innermost-sorted last."""
        spans: List[Tuple[int, int, str]] = []

        def visit(node: ast.AST, prefix: str) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.FunctionDef,
                                      ast.AsyncFunctionDef)):
                    qual = f"{prefix}{child.name}"
                    end = max(getattr(child, "end_lineno", child.lineno),
                              child.lineno)
                    spans.append((child.lineno, end, qual))
                    visit(child, f"{qual}.")
                elif isinstance(child, ast.ClassDef):
                    visit(child, f"{prefix}{child.name}.")
                else:
                    visit(child, prefix)

        visit(self.tree, "")
        return spans

    def enclosing_function(self, line: int) -> str:
        """Qualname of the innermost function containing ``line`` ("" if none)."""
        best = ""
        best_size = None
        for lo, hi, qual in self._function_spans:
            if lo <= line <= hi and (best_size is None
                                     or hi - lo < best_size):
                best, best_size = qual, hi - lo
        return best

    # -- finding assembly ------------------------------------------------------

    def make_finding(self, check: "Check", node: ast.AST, message: str,
                     evidence: Tuple[str, ...] = ()) -> Finding:
        """A :class:`Finding` at ``node``, resolving suppressions."""
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        context = self.enclosing_function(line)
        for supp in self.suppressions:
            if supp.covers(check.tag, line):
                supp.used = True
                return Finding(
                    check=check.name, path=self.path, line=line, col=col,
                    message=message, suppressed=True,
                    suppression_reason=supp.reason,
                    context=context, evidence=tuple(evidence),
                )
        return Finding(check=check.name, path=self.path, line=line,
                       col=col, message=message, context=context,
                       evidence=tuple(evidence))


class Check:
    """Base class for one lint check.

    Subclasses set ``name`` (reported), ``tag`` (the ``allow-<tag>``
    suppression key), ``description`` and ``required_scope`` (``None`` for
    repo-wide checks), then implement :meth:`run`.
    """

    name: str = ""
    tag: str = ""
    description: str = ""
    required_scope: Optional[str] = None

    def applies_to(self, src: SourceFile) -> bool:
        if self.required_scope is None:
            return True
        return self.required_scope in src.scopes

    def run(self, src: SourceFile) -> List[Finding]:  # pragma: no cover
        raise NotImplementedError


class ProjectCheck(Check):
    """A check that needs the whole project, not one file at a time.

    Subclasses implement :meth:`run_project` against a
    :class:`repro.analysis.callgraph.Project` (all parsed files plus the
    call graph) and return findings for any subset of its files.  The
    runner invokes project checks once per run; ``applies_to`` filtering
    happens inside ``run_project`` because hotness may come from a *caller*
    in a different file.  Findings must still be created through the owning
    file's :meth:`SourceFile.make_finding` so suppressions resolve.
    """

    def run(self, src: SourceFile) -> List[Finding]:  # pragma: no cover
        raise NotImplementedError(
            f"{self.name} is interprocedural; run it through the runner "
            f"(or lint_file), which builds the project context"
        )

    def run_project(self, project) -> List[Finding]:  # pragma: no cover
        raise NotImplementedError


# -- shared AST helpers ------------------------------------------------------


def dotted_name(node: ast.AST) -> str:
    """The dotted name of a Name/Attribute chain (``"np.random.rand"``).

    Returns ``""`` for expressions that are not plain attribute chains
    (calls, subscripts, ...), which callers treat as "no name".
    """
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def call_keywords(node: ast.Call) -> Dict[str, ast.expr]:
    """Keyword arguments of a call, ``**kwargs`` entries excluded."""
    return {kw.arg: kw.value for kw in node.keywords if kw.arg is not None}


def has_star_kwargs(node: ast.Call) -> bool:
    return any(kw.arg is None for kw in node.keywords)


def numpy_aliases(tree: ast.AST) -> Set[str]:
    """Module aliases bound to numpy (``import numpy as np`` -> {"np"})."""
    aliases: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "numpy":
                    aliases.add(alias.asname or "numpy")
    return aliases


def decorator_names(node: ast.AST) -> Sequence[str]:
    """Dotted names of a function's decorators (call parens stripped)."""
    names: List[str] = []
    for deco in getattr(node, "decorator_list", []):
        target = deco.func if isinstance(deco, ast.Call) else deco
        name = dotted_name(target)
        if name:
            names.append(name)
    return names


@dataclass
class FileReport:
    """Everything the runner learned about one file."""

    path: str
    findings: List[Finding] = field(default_factory=list)
    error: str = ""  # syntax/read error, reported as its own failure

    @property
    def unsuppressed(self) -> List[Finding]:
        return [f for f in self.findings if not f.suppressed]
