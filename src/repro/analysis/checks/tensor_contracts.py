"""``tensor-contract``: static shape/dtype checking against declared contracts.

:func:`repro.analysis.sanitizer.tensor_contract` declarations are verified
at runtime only when ``REPRO_SANITIZE=1`` — a call site passing a 1-d
buffer where the contract says ``ndim: 2`` sails through every unsanitized
run.  This check closes that gap statically, in two passes:

* **contract propagation** — inside every function a small abstract
  interpreter tracks a :class:`~repro.analysis.dataflow.TensorFact`
  (ndim / dtype / fixed shape) per local variable: facts enter from NumPy
  constructors (``np.zeros((a, b), dtype=...)``), flow through
  ``reshape`` / ``astype`` assignments, and seed from the enclosing
  function's *own* contract parameters.  At each call the graph resolves
  (:class:`~repro.analysis.callgraph.CallGraph`), arguments are bound to
  the callee's parameters and compared against its declared contract;
  a provable mismatch is a finding.  Unknown components compare as
  compatible — the check only reports what it can prove, so it
  under-approximates exactly like the call graph does;
* **coverage** — a *public* function or method in ``repro/model/`` or
  ``repro/verify/`` (or a file scoped ``model``) whose signature takes
  array arguments (``np.ndarray`` annotations or canonical tensor names
  like ``mask`` / ``logits``) must either declare a ``tensor_contract``
  or carry ``# lint: allow-contract <reason>`` — undeclared public
  tensor surfaces are where shape bugs enter.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Tuple

from repro.analysis.callgraph import FunctionInfo, Project
from repro.analysis.core import (
    Finding,
    ProjectCheck,
    SourceFile,
    call_keywords,
    dotted_name,
    numpy_aliases,
)
from repro.analysis.dataflow import TensorFact

#: Parameter names treated as tensors even without an annotation.
CORE_TENSOR_NAMES = ("mask", "logits", "probs", "tokens", "positions",
                     "keys", "values")

#: NumPy constructors whose result shape is the first argument.
_SHAPE_CONSTRUCTORS = ("zeros", "ones", "empty", "full")


def _canon_dtype(node: ast.expr) -> Optional[str]:
    """Canonical dtype string for an expression, if statically known."""
    name = dotted_name(node)
    if name:
        tail = name.rpartition(".")[2]
        if tail == "float":
            return "float64"
        return tail
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def _int_const(node: ast.expr) -> Optional[int]:
    """The integer value of a literal, covering negatives (``-1`` parses
    as ``UnaryOp(USub, Constant(1))``)."""
    if isinstance(node, ast.Constant) and isinstance(node.value, int):
        return node.value
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        inner = node.operand
        if isinstance(inner, ast.Constant) and isinstance(inner.value, int):
            return -inner.value
    return None


def _const_dims(node: ast.expr) -> Optional[Tuple[Optional[int], ...]]:
    """Shape tuple for a shape expression (None entries = unknown size)."""
    if isinstance(node, ast.Tuple):
        dims: List[Optional[int]] = []
        for elt in node.elts:
            if isinstance(elt, ast.Starred):
                return None  # unpacking: even the ndim is unknown
            dims.append(_int_const(elt))
        return tuple(dims)
    value = _int_const(node)
    if value is not None:
        return (value,)
    if isinstance(node, (ast.Name, ast.Attribute, ast.BinOp)):
        return (None,)  # a scalar expression: 1-d of unknown size
    return None


class ContractSpec:
    """One parameter's declared contract, parsed from the decorator AST."""

    def __init__(self, ndim: Optional[int], dtype: Optional[str],
                 shape: Optional[Tuple[Optional[int], ...]]):
        self.ndim = ndim
        self.dtype = dtype
        self.shape = shape

    @classmethod
    def from_dict_literal(cls, node: ast.expr) -> Optional["ContractSpec"]:
        if not isinstance(node, ast.Dict):
            return None
        ndim = dtype = shape = None
        for key, value in zip(node.keys, node.values):
            if not (isinstance(key, ast.Constant)
                    and isinstance(key.value, str)):
                continue
            if key.value == "ndim" and isinstance(value, ast.Constant) \
                    and isinstance(value.value, int):
                ndim = value.value
            elif key.value == "dtype":
                dtype = _canon_dtype(value)
            elif key.value == "shape":
                shape = _const_shape_literal(value)
        return cls(ndim, dtype, shape)

    def conflicts(self, fact: TensorFact) -> List[str]:
        """Provable disagreements between ``fact`` and this spec."""
        problems: List[str] = []
        if self.ndim is not None and fact.ndim is not None \
                and fact.ndim != self.ndim:
            problems.append(f"ndim {fact.ndim} != declared {self.ndim}")
        if self.shape is not None and fact.ndim is not None \
                and fact.ndim != len(self.shape):
            problems.append(
                f"ndim {fact.ndim} != declared shape rank {len(self.shape)}"
            )
        if self.dtype is not None and fact.dtype is not None \
                and fact.dtype != self.dtype:
            problems.append(
                f"dtype {fact.dtype} != declared {self.dtype}"
            )
        if self.shape is not None and fact.shape is not None \
                and len(fact.shape) == len(self.shape):
            for axis, (have, want) in enumerate(zip(fact.shape,
                                                    self.shape)):
                if have is not None and want is not None and have != want:
                    problems.append(
                        f"shape[{axis}] {have} != declared {want}"
                    )
        return problems


def _const_shape_literal(
    node: ast.expr,
) -> Optional[Tuple[Optional[int], ...]]:
    if not isinstance(node, (ast.Tuple, ast.List)):
        return None
    dims: List[Optional[int]] = []
    for elt in node.elts:
        if isinstance(elt, ast.Constant) and isinstance(elt.value, int):
            dims.append(elt.value)
        else:
            dims.append(None)
    return tuple(dims)


def contract_of(fn: FunctionInfo) -> Optional[Dict[str, ContractSpec]]:
    """The parsed ``tensor_contract`` specs of ``fn``, if declared."""
    for deco in getattr(fn.node, "decorator_list", []):
        if not isinstance(deco, ast.Call):
            continue
        if dotted_name(deco.func).rpartition(".")[2] != "tensor_contract":
            continue
        specs: Dict[str, ContractSpec] = {}
        for kw in deco.keywords:
            if kw.arg is None:
                continue
            spec = ContractSpec.from_dict_literal(kw.value)
            if spec is not None:
                specs[kw.arg] = spec
        return specs
    return None


class TensorContractCheck(ProjectCheck):
    name = "tensor-contract"
    tag = "contract"
    description = (
        "call sites must satisfy declared tensor_contract shapes/dtypes, "
        "and public tensor functions in model/ and verify/ must declare one"
    )
    required_scope = None  # path/scope filtering handled per pass

    def run_project(self, project: Project) -> List[Finding]:
        graph = project.callgraph
        contracts = {
            qual: specs
            for qual, fn in graph.functions.items()
            for specs in (contract_of(fn),)
            if specs is not None
        }
        findings: List[Finding] = []
        for qual, fn in sorted(graph.functions.items()):
            src = project.by_path.get(fn.path)
            if src is None:
                continue
            findings.extend(
                self._check_call_sites(graph, fn, src, contracts)
            )
            findings.extend(self._check_coverage(fn, src))
        return findings

    # -- pass 1: call-site contract violations ---------------------------------

    def _check_call_sites(self, graph, fn: FunctionInfo, src: SourceFile,
                          contracts) -> List[Finding]:
        edges = {
            (e.line, e.col): e.callee for e in graph.callees(fn.qualname)
        }
        if not edges or not any(c in contracts for c in edges.values()):
            return []
        facts = _infer_local_facts(fn, src)
        findings: List[Finding] = []
        for node in ast.walk(fn.node):
            if not isinstance(node, ast.Call):
                continue
            callee_qual = edges.get((node.lineno, node.col_offset))
            specs = contracts.get(callee_qual)
            if specs is None:
                continue
            callee = graph.functions[callee_qual]
            for param, arg in _bind_call(callee, node):
                spec = specs.get(param)
                if spec is None or not isinstance(arg, ast.Name):
                    continue
                fact = facts.get(arg.id)
                if fact is None:
                    continue
                problems = spec.conflicts(fact)
                if problems:
                    findings.append(src.make_finding(
                        self, node,
                        f"argument '{param}' of {callee.display}() "
                        f"violates its tensor_contract: "
                        f"{'; '.join(problems)} (inferred for local "
                        f"'{arg.id}'); fix the call or annotate with "
                        f"'# lint: allow-contract <reason>'",
                    ))
        return findings

    # -- pass 2: annotation coverage -------------------------------------------

    def _check_coverage(self, fn: FunctionInfo,
                        src: SourceFile) -> List[Finding]:
        path = fn.path.replace("\\", "/")
        in_scope = ("repro/model/" in path or "repro/verify/" in path
                    or "model" in src.scopes)
        if not in_scope:
            return []
        if fn.name.startswith("_") or not isinstance(
            fn.node, (ast.FunctionDef, ast.AsyncFunctionDef)
        ):
            return []
        short_decorators = {d.rpartition(".")[2] for d in fn.decorators}
        if short_decorators & {"property", "cached_property"}:
            return []  # accessors, not tensor-transforming surfaces
        if contract_of(fn) is not None:
            return []
        tensor_params = _tensor_params(fn.node)
        if not tensor_params:
            return []
        return [src.make_finding(
            self, fn.node,
            f"public tensor function {fn.display}() takes array "
            f"argument(s) {', '.join(tensor_params)} but declares no "
            f"tensor_contract; add @tensor_contract(...) so the "
            f"sanitizer and the static checker can verify its shapes, "
            f"or annotate with '# lint: allow-contract <reason>'",
        )]


def _tensor_params(node: ast.AST) -> List[str]:
    """Parameter names that are statically tensor-like."""
    names: List[str] = []
    args = node.args
    for arg in list(args.posonlyargs) + list(args.args) \
            + list(args.kwonlyargs):
        if arg.arg in ("self", "cls"):
            continue
        annotation = arg.annotation
        annotated_array = (
            annotation is not None
            and dotted_name(annotation).rpartition(".")[2] == "ndarray"
        )
        if annotated_array or (annotation is None
                               and arg.arg in CORE_TENSOR_NAMES):
            names.append(arg.arg)
    return names


def _bind_call(callee: FunctionInfo,
               call: ast.Call) -> List[Tuple[str, ast.expr]]:
    """(param-name, argument-expr) pairs for a resolved call.

    Methods called through an attribute receiver skip the ``self``/``cls``
    slot; ``*args``/``**kwargs`` at the call site abort binding (the
    mapping is no longer static).
    """
    if any(isinstance(a, ast.Starred) for a in call.args):
        return []
    params = [a.arg for a in callee.node.args.posonlyargs] \
        + [a.arg for a in callee.node.args.args]
    if callee.class_name is not None and params \
            and params[0] in ("self", "cls"):
        params = params[1:]
    pairs = list(zip(params, call.args))
    for kw in call.keywords:
        if kw.arg is not None and kw.arg in params:
            pairs.append((kw.arg, kw.value))
    return pairs


def _infer_local_facts(fn: FunctionInfo,
                       src: SourceFile) -> Dict[str, TensorFact]:
    """Flow-insensitive tensor facts for ``fn``'s local variables.

    A variable assigned twice with disagreeing facts joins to the
    components both agree on, so the result is sound for the check's
    prove-only reporting.
    """
    facts: Dict[str, TensorFact] = {}
    aliases = numpy_aliases(src.tree)

    own = contract_of(fn)
    if own:
        for param, spec in own.items():
            facts[param] = TensorFact(
                ndim=spec.ndim if spec.ndim is not None
                else (len(spec.shape) if spec.shape else None),
                dtype=spec.dtype,
                shape=spec.shape,
            )

    def merge(name: str, fact: TensorFact) -> None:
        if fact.is_bottom():
            return
        known = facts.get(name)
        facts[name] = fact if known is None else known.join(fact)

    for node in ast.walk(fn.node):
        if not isinstance(node, ast.Assign) or len(node.targets) != 1:
            continue
        target = node.targets[0]
        if not isinstance(target, ast.Name):
            continue
        fact = _fact_for_expr(node.value, facts, aliases)
        if fact is not None:
            merge(target.id, fact)
    return facts


def _fact_for_expr(node: ast.expr, facts: Dict[str, TensorFact],
                   aliases) -> Optional[TensorFact]:
    if isinstance(node, ast.Name):
        return facts.get(node.id)
    if not isinstance(node, ast.Call):
        return None
    name = dotted_name(node.func)
    head, _, func = name.rpartition(".")
    # np.zeros((a, b), dtype=...) and friends.
    if head in aliases and func in _SHAPE_CONSTRUCTORS and node.args:
        shape = _const_dims(node.args[0])
        dtype_kw = call_keywords(node).get("dtype")
        dtype = _canon_dtype(dtype_kw) if dtype_kw is not None else None
        if shape is None and dtype is None:
            return None
        return TensorFact(
            ndim=len(shape) if shape is not None else None,
            dtype=dtype,
            shape=shape,
        )
    if not isinstance(node.func, ast.Attribute):
        return None
    receiver = node.func.value
    base = facts.get(receiver.id) if isinstance(receiver, ast.Name) \
        else None
    # x.reshape(2, 3) / x.reshape((2, 3)): new rank, dtype carried over.
    if node.func.attr == "reshape" and node.args:
        if len(node.args) == 1:
            shape = _const_dims(node.args[0])
        else:
            shape = _const_dims(ast.Tuple(elts=list(node.args),
                                          ctx=ast.Load()))
        if shape is None:
            return None
        # -1 entries are size-inference wildcards, not literal sizes.
        shape = tuple(s if s is None or s >= 0 else None for s in shape)
        return TensorFact(
            ndim=len(shape),
            dtype=base.dtype if base is not None else None,
            shape=shape,
        )
    # x.astype(dt): same geometry, new dtype.
    if node.func.attr == "astype" and node.args and base is not None:
        return TensorFact(
            ndim=base.ndim,
            dtype=_canon_dtype(node.args[0]) or None,
            shape=base.shape,
        )
    return None
