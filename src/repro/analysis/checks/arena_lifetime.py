"""``arena-lifetime``: static detection of ScratchArena tag collisions.

:class:`repro.model.scratch.ScratchArena` buffers are keyed by
``(tag, dtype)``, and a view returned by ``take(tag, ...)`` is only valid
until the next ``take`` of the same key.  The runtime sanitizer catches
the resulting aliasing **only on paths a test drives**; this check closes
the class statically by scanning every ``<arena>.take("tag", shape,
dtype)`` call with a constant string tag:

* **rank conflict** — the same ``(arena, tag, dtype)`` key taken with
  shape tuples of different lengths: the runtime raises ``ValueError`` on
  the second take, but only when both paths execute;
* **dtype split** — the same ``(arena, tag)`` taken with two different
  dtypes: legal (the key includes the dtype, so these are distinct
  buffers) but a tag-hygiene hazard — the next reader who sees matching
  tags assumes aliasing where there is none, and worst-case reservations
  double.  Use distinct tags per shape family;
* **overlapping live range** — within one function, a view taken from a
  key is still *used* after a later ``take`` of the same key: the second
  take silently repoints the backing memory, so the first view reads
  whatever the second writer staged.  This is the aliasing bug class the
  runtime sanitizer only sees when the overlap corrupts a checked value.

Arenas are identified by their receiver expression (``self._arena``,
``arena``, ``scratches[b]`` is skipped — no constant identity); tags must
be string literals.  Non-literal tags (e.g. ``MaskScratch``'s per-instance
``self._tag``) are invisible to the check by design: they are already
namespaced per owner.
"""

from __future__ import annotations

import ast
from collections import defaultdict
from typing import Dict, List, Optional, Tuple

from repro.analysis.callgraph import Project
from repro.analysis.core import Finding, ProjectCheck, SourceFile, dotted_name


class TakeSite:
    """One ``<receiver>.take("tag", shape, dtype)`` call site."""

    def __init__(self, node: ast.Call, receiver: str, tag: str,
                 rank: Optional[int], dtype: Optional[str],
                 assigned: Optional[str], function: str):
        self.node = node
        self.receiver = receiver
        self.tag = tag
        self.rank = rank
        self.dtype = dtype
        self.assigned = assigned  # variable the view is bound to, if any
        self.function = function  # enclosing function qualname
        self.line = node.lineno

    def key(self) -> Tuple[str, str, str, str]:
        return (self.function, self.receiver, self.tag, self.dtype or "?")

    @property
    def owner(self) -> str:
        """Scope an arena identity is stable within.

        ``self._arena`` names the same object across every method of one
        class, so it groups by the class; a bare local like ``arena``
        only has a constant identity inside its own function.
        """
        if self.receiver.startswith("self."):
            return self.function.rpartition(".")[0]
        return self.function


def _canon_dtype(node: ast.expr) -> Optional[str]:
    name = dotted_name(node)
    if name:
        tail = name.rpartition(".")[2]
        return "float64" if tail == "float" else tail
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def _shape_rank(node: ast.expr) -> Optional[int]:
    if isinstance(node, ast.Tuple):
        if any(isinstance(e, ast.Starred) for e in node.elts):
            return None
        return len(node.elts)
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Add):
        # (total,) + tail: rank unknowable without tail's length.
        return None
    return None


class ArenaLifetimeCheck(ProjectCheck):
    name = "arena-lifetime"
    tag = "arena"
    description = (
        "ScratchArena tags must not collide: no rank conflicts, no dtype "
        "splits, no views used after the same key is re-taken"
    )
    required_scope = None  # keyed off .take("tag", ...) calls anywhere

    def run_project(self, project: Project) -> List[Finding]:
        findings: List[Finding] = []
        for src in project.sources:
            findings.extend(self._run_file(src))
        return findings

    def _run_file(self, src: SourceFile) -> List[Finding]:
        sites = self._take_sites(src)
        if not sites:
            return []
        findings: List[Finding] = []
        findings.extend(self._rank_conflicts(src, sites))
        findings.extend(self._dtype_splits(src, sites))
        findings.extend(self._live_range_overlaps(src, sites))
        return findings

    # -- site collection -------------------------------------------------------

    def _take_sites(self, src: SourceFile) -> List[TakeSite]:
        sites: List[TakeSite] = []
        assigned_by_call: Dict[int, str] = {}
        for node in ast.walk(src.tree):
            if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                    and isinstance(node.targets[0], ast.Name) \
                    and isinstance(node.value, ast.Call):
                assigned_by_call[id(node.value)] = node.targets[0].id
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.Call):
                continue
            if not (isinstance(node.func, ast.Attribute)
                    and node.func.attr == "take"):
                continue
            receiver = dotted_name(node.func.value)
            if not receiver:
                continue  # scratches[b].take(...): no constant identity
            if not (node.args
                    and isinstance(node.args[0], ast.Constant)
                    and isinstance(node.args[0].value, str)):
                continue  # tag is not a string literal
            tag = node.args[0].value
            rank = _shape_rank(node.args[1]) if len(node.args) > 1 else None
            dtype = _canon_dtype(node.args[2]) if len(node.args) > 2 \
                else None
            sites.append(TakeSite(
                node=node, receiver=receiver, tag=tag, rank=rank,
                dtype=dtype,
                assigned=assigned_by_call.get(id(node)),
                function=src.enclosing_function(node.lineno),
            ))
        return sites

    # -- collision classes -----------------------------------------------------

    def _rank_conflicts(self, src: SourceFile,
                        sites: List[TakeSite]) -> List[Finding]:
        by_key = defaultdict(list)
        for site in sites:
            if site.rank is not None:
                by_key[(site.owner, site.receiver, site.tag,
                        site.dtype)].append(site)
        findings: List[Finding] = []
        for (_owner, receiver, tag, _dtype), group in sorted(
                by_key.items()):
            ranks = sorted({s.rank for s in group})
            if len(ranks) < 2:
                continue
            first = min(group, key=lambda s: s.line)
            for site in group:
                if site.rank != first.rank:
                    findings.append(src.make_finding(
                        self, site.node,
                        f"scratch tag '{tag}' on {receiver} is taken "
                        f"{site.rank}-d here but {first.rank}-d at line "
                        f"{first.line}; one (tag, dtype) key holds one "
                        f"buffer rank — use a distinct tag per shape "
                        f"family, or annotate with '# lint: allow-arena "
                        f"<reason>'",
                    ))
        return findings

    def _dtype_splits(self, src: SourceFile,
                      sites: List[TakeSite]) -> List[Finding]:
        by_key = defaultdict(list)
        for site in sites:
            if site.dtype is not None:
                by_key[(site.owner, site.receiver, site.tag)].append(site)
        findings: List[Finding] = []
        for (_owner, receiver, tag), group in sorted(by_key.items()):
            dtypes = sorted({s.dtype for s in group})
            if len(dtypes) < 2:
                continue
            first = min(group, key=lambda s: s.line)
            for site in group:
                if site.dtype != first.dtype:
                    findings.append(src.make_finding(
                        self, site.node,
                        f"scratch tag '{tag}' on {receiver} is taken as "
                        f"{site.dtype} here but {first.dtype} at line "
                        f"{first.line}; same-tag different-dtype keys "
                        f"are distinct buffers that read as aliases — "
                        f"use one tag per (shape family, dtype), or "
                        f"annotate with '# lint: allow-arena <reason>'",
                    ))
        return findings

    def _live_range_overlaps(self, src: SourceFile,
                             sites: List[TakeSite]) -> List[Finding]:
        last_use = self._last_name_uses(src)
        by_key = defaultdict(list)
        for site in sites:
            by_key[site.key()].append(site)
        findings: List[Finding] = []
        for _key, group in sorted(by_key.items()):
            group.sort(key=lambda s: s.line)
            for earlier, later in zip(group, group[1:]):
                if earlier.line == later.line:
                    continue  # one call site hit in a loop: same view
                if earlier.assigned is None:
                    continue
                used_until = last_use.get(
                    (earlier.function, earlier.assigned), 0
                )
                if used_until > later.line:
                    findings.append(src.make_finding(
                        self, later.node,
                        f"re-taking scratch tag '{later.tag}' on "
                        f"{later.receiver} invalidates the view "
                        f"'{earlier.assigned}' taken at line "
                        f"{earlier.line} but still used at line "
                        f"{used_until}; finish with (or copy out of) the "
                        f"first view before re-taking, or use distinct "
                        f"tags, or annotate with '# lint: allow-arena "
                        f"<reason>'",
                    ))
        return findings

    def _last_name_uses(self, src: SourceFile) -> Dict[Tuple[str, str], int]:
        """Last line each (function, name) is *read* on."""
        last: Dict[Tuple[str, str], int] = {}
        for node in ast.walk(src.tree):
            if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
                key = (src.enclosing_function(node.lineno), node.id)
                last[key] = max(last.get(key, 0), node.lineno)
        return last
