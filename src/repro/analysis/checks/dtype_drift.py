"""``dtype-drift``: the model/engine layers must not pick dtypes implicitly.

The substrate is dtype-parameterized (``ModelConfig.dtype``; the float32
tier in ``tests/model/test_dtype.py`` runs the whole stack at reduced
precision).  Two idioms silently break that:

* allocating with NumPy's *default* dtype — ``np.zeros(n)`` is float64
  regardless of what the model runs at, and the first op that touches both
  upcasts the whole expression;
* hard-coding float64 — ``dtype=np.float64`` / ``.astype(float)`` pins a
  tensor at double precision even when the model is float32.

Both are flagged in files scoped ``model`` or ``engine``.  Intentional
sites (verification probability math is deliberately float64, for example)
carry ``# lint: allow-dtype <reason>``.
"""

from __future__ import annotations

import ast
from typing import List

from repro.analysis.core import (
    Check,
    Finding,
    SourceFile,
    call_keywords,
    dotted_name,
    has_star_kwargs,
    numpy_aliases,
)

#: Constructors that take NumPy's implicit (float64) default dtype.
DEFAULT_DTYPE_CONSTRUCTORS = ("array", "zeros", "ones", "empty", "full")

#: dtype argument position for each constructor (np.array(obj, dtype), ...).
_DTYPE_POSITION = {"array": 1, "zeros": 1, "ones": 1, "empty": 1, "full": 2}


def _is_float64_expr(node: ast.expr) -> bool:
    """Whether an expression names float64 (np.float64, float, "float64")."""
    name = dotted_name(node)
    if name:
        head, _, tail = name.rpartition(".")
        if tail in ("float64", "double") or (not head and name == "float"):
            return True
    if isinstance(node, ast.Constant) and node.value in ("float64", "f8"):
        return True
    return False


class DtypeDriftCheck(Check):
    name = "dtype-drift"
    tag = "dtype"
    description = (
        "model/engine allocations must pass an explicit dtype and must not "
        "hard-code float64"
    )
    required_scope = None  # scoping handled in applies_to (model OR engine)

    def applies_to(self, src: SourceFile) -> bool:
        return bool(src.scopes & {"model", "engine"})

    def run(self, src: SourceFile) -> List[Finding]:
        findings: List[Finding] = []
        aliases = numpy_aliases(src.tree)
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.Call):
                continue
            findings.extend(self._check_constructor(src, node, aliases))
            findings.extend(self._check_astype(src, node))
            findings.extend(self._check_float64_kwarg(src, node))
        return findings

    def _check_constructor(self, src: SourceFile, node: ast.Call,
                           aliases) -> List[Finding]:
        name = dotted_name(node.func)
        head, _, func = name.rpartition(".")
        if head not in aliases or func not in DEFAULT_DTYPE_CONSTRUCTORS:
            return []
        if "dtype" in call_keywords(node) or has_star_kwargs(node):
            return []
        if len(node.args) > _DTYPE_POSITION[func]:  # positional dtype
            return []
        return [src.make_finding(
            self, node,
            f"{name}() without an explicit dtype defaults to float64; "
            f"pass dtype= (model dtype, np.intp, ...) or suppress with "
            f"'# lint: allow-dtype <reason>'",
        )]

    def _check_astype(self, src: SourceFile, node: ast.Call) -> List[Finding]:
        if not (isinstance(node.func, ast.Attribute)
                and node.func.attr == "astype" and node.args):
            return []
        if not _is_float64_expr(node.args[0]):
            return []
        return [src.make_finding(
            self, node,
            "astype(float64) hard-codes double precision; use the model "
            "dtype or suppress with '# lint: allow-dtype <reason>'",
        )]

    def _check_float64_kwarg(self, src: SourceFile,
                             node: ast.Call) -> List[Finding]:
        dtype_arg = call_keywords(node).get("dtype")
        if dtype_arg is None or not _is_float64_expr(dtype_arg):
            return []
        return [src.make_finding(
            self, node,
            "dtype=float64 hard-codes double precision on a "
            "dtype-parameterized path; thread the model dtype or suppress "
            "with '# lint: allow-dtype <reason>'",
        )]
