"""Shared hot-path closure for interprocedural checks.

Hotness has two sources: the ``@hot_path`` decorator
(:func:`repro.analysis.sanitizer.hot_path`) and membership in a hot-path
file (:data:`repro.analysis.core.HOT_PATH_FILES` or a
``# lint: scope hot-path`` pragma).  Both used to stop at the function
boundary; here they seed a taint pass over the project call graph
(:func:`repro.analysis.dataflow.propagate_hot_chains`) so every statically
reachable callee is hot too, each carrying the shortest call chain back to
its root as evidence.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.analysis.callgraph import FunctionInfo, Project
from repro.analysis.core import SourceFile
from repro.analysis.dataflow import Chain, propagate_hot_chains


def _is_hot_root(fn: FunctionInfo, src: SourceFile) -> bool:
    short_decorators = {d.rpartition(".")[2] for d in fn.decorators}
    if "hot_path" in short_decorators:
        return True
    return "hot-path" in src.scopes


def hot_function_chains(project: Project) -> Dict[str, Chain]:
    """Taint chains for every hot function in ``project``.

    Roots (``@hot_path`` functions and every function in a hot-scoped
    file) map to a one-element chain; transitively reached callees map to
    the shortest root-to-callee display chain, e.g.
    ``("DecodePipeline.tick", "DecodePipeline._fit_tree")``.
    """
    graph = project.callgraph
    roots: Dict[str, Chain] = {}
    for qual, fn in graph.functions.items():
        src = project.by_path.get(fn.path)
        if src is not None and _is_hot_root(fn, src):
            roots[qual] = (fn.display,)
    return propagate_hot_chains(graph, roots)


class HotRegions:
    """Per-file view of the hot closure: line spans plus evidence chains."""

    def __init__(self, project: Project, src: SourceFile,
                 chains: Dict[str, Chain]):
        self.file_is_hot = "hot-path" in src.scopes
        #: (first, last, chain) for every hot function defined in ``src``.
        self.spans: List[Tuple[int, int, Chain]] = []
        graph = project.callgraph
        for qual, chain in chains.items():
            fn = graph.functions.get(qual)
            if fn is not None and fn.path == src.path:
                self.spans.append((fn.lineno, fn.end_lineno, chain))
        self.spans.sort()

    def chain_at(self, line: int) -> "Chain | None":
        """Evidence chain for ``line``, or None when the line is cold.

        Returns the innermost enclosing hot function's chain; a whole-file
        hot scope yields an empty chain (hotness needs no evidence there).
        Chains of length one (the line sits in a hot *root*) also collapse
        to the empty chain — the function itself is the root, so there is
        no interprocedural story to tell.
        """
        best: "Chain | None" = () if self.file_is_hot else None
        best_size = None
        for lo, hi, chain in self.spans:
            if lo <= line <= hi and (best_size is None
                                     or hi - lo < best_size):
                best, best_size = chain, hi - lo
        if best is None:
            return None
        return best if len(best) > 1 else ()
