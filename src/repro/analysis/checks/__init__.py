"""Check registry: every lint check the runner knows about."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.analysis.checks.arena_lifetime import ArenaLifetimeCheck
from repro.analysis.checks.dtype_drift import DtypeDriftCheck
from repro.analysis.checks.hot_path_alloc import HotPathAllocCheck
from repro.analysis.checks.mask_contract import MaskContractCheck
from repro.analysis.checks.rng_discipline import RngDisciplineCheck
from repro.analysis.checks.tensor_contracts import TensorContractCheck
from repro.analysis.checks.wall_clock import WallClockCheck
from repro.analysis.core import Check

ALL_CHECKS = (
    DtypeDriftCheck,
    HotPathAllocCheck,
    RngDisciplineCheck,
    MaskContractCheck,
    WallClockCheck,
    TensorContractCheck,
    ArenaLifetimeCheck,
)


def check_registry() -> Dict[str, Check]:
    """Fresh instances of every check, keyed by name."""
    registry = {}
    for cls in ALL_CHECKS:
        check = cls()
        registry[check.name] = check
    return registry


def resolve_checks(names: Optional[Sequence[str]] = None) -> List[Check]:
    """Instances for ``names`` (all checks when ``names`` is falsy)."""
    registry = check_registry()
    if not names:
        return list(registry.values())
    missing = sorted(set(names) - set(registry))
    if missing:
        known = ", ".join(sorted(registry))
        raise ValueError(
            f"unknown check(s) {', '.join(missing)}; known checks: {known}"
        )
    return [registry[name] for name in names]
