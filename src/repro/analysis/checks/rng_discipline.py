"""``rng-discipline``: randomness flows through explicit Generators.

End-to-end reproducibility (same seed -> same speculation -> same
acceptance trace) only holds if every random draw comes from a
:class:`numpy.random.Generator` that the caller seeded and threaded in.
The legacy global API breaks that in ways that are invisible at the call
site: ``np.random.seed`` mutates process-global state, ``np.random.rand``
draws from it, and two modules using both interleave their streams.

Flagged everywhere in the tree:

* calls through the legacy global numpy API (``np.random.rand``,
  ``np.random.choice``, ``np.random.seed``, ... and ``RandomState``);
* ``np.random.default_rng()`` with *no* seed argument — a fresh
  OS-entropy stream, i.e. a run that can never be replayed;
* calls through the stdlib ``random`` module (same global-state problem).

The fix is mechanical: accept ``rng: np.random.Generator`` as a parameter
(seeded ``default_rng(seed)`` at the edge of the program) — the convention
every module in this tree already follows.
"""

from __future__ import annotations

import ast
from typing import List

from repro.analysis.core import (
    Check,
    Finding,
    SourceFile,
    dotted_name,
    numpy_aliases,
)

#: Legacy global-state entry points (non-exhaustive but covers NumPy's
#: commonly used surface; anything not allowlisted below is flagged too).
ALLOWED_RANDOM_ATTRS = ("default_rng", "Generator", "SeedSequence",
                        "BitGenerator", "PCG64", "Philox", "SFC64",
                        "MT19937")


class RngDisciplineCheck(Check):
    name = "rng-discipline"
    tag = "rng"
    description = (
        "no legacy np.random.* / stdlib random global state; thread "
        "explicit seeded numpy Generators"
    )

    def run(self, src: SourceFile) -> List[Finding]:
        findings: List[Finding] = []
        aliases = numpy_aliases(src.tree)
        stdlib_random = self._stdlib_random_aliases(src.tree)
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if not name:
                continue
            parts = name.split(".")
            # np.random.<attr>(...) and numpy.random.<attr>(...)
            if (len(parts) == 3 and parts[0] in aliases
                    and parts[1] == "random"):
                attr = parts[2]
                if attr == "default_rng" and not (node.args or node.keywords):
                    findings.append(src.make_finding(
                        self, node,
                        "default_rng() without a seed draws OS entropy — "
                        "the run cannot be replayed; pass a seed or accept "
                        "an rng parameter ('# lint: allow-rng <reason>' if "
                        "intentional)",
                    ))
                elif attr not in ALLOWED_RANDOM_ATTRS:
                    findings.append(src.make_finding(
                        self, node,
                        f"legacy global-state API {name}(); use an explicit "
                        f"seeded np.random.Generator parameter instead",
                    ))
            # stdlib random module
            elif (len(parts) == 2 and parts[0] in stdlib_random):
                findings.append(src.make_finding(
                    self, node,
                    f"stdlib {name}() uses hidden global state; use an "
                    f"explicit seeded np.random.Generator",
                ))
        return findings

    def _stdlib_random_aliases(self, tree: ast.AST) -> set:
        aliases = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random":
                        aliases.add(alias.asname or "random")
        return aliases
