"""``hot-path-alloc``: the steady-state decode loop must not allocate.

The block-sparse fused decode work removed per-step KV concatenation and
mask allocation (see ``repro.model.perf`` and ``MaskScratch``); this check
keeps them out.  Inside hot-path files (:data:`repro.analysis.core.HOT_PATH_FILES`)
and inside any function decorated ``@hot_path``, calls that materialize new
arrays from existing ones are flagged:

* ``np.concatenate`` / ``np.vstack`` / ``np.hstack`` / ``np.stack`` /
  ``np.append`` / ``np.tile`` — staging copies; prefer preallocated slabs,
  zero-copy views, or ``out=`` buffers;
* ``.copy()`` / ``np.copy`` — defensive copies; prefer in-place edits of a
  reused scratch.

Reference paths and genuinely cold fallbacks stay — annotated with
``# lint: allow-alloc <reason>`` so every remaining copy is a recorded
decision, mirroring how ``perf.add_kv_copy`` charges the dense path.
"""

from __future__ import annotations

import ast
from typing import List, Set

from repro.analysis.core import (
    Check,
    Finding,
    SourceFile,
    decorator_names,
    dotted_name,
    numpy_aliases,
)

ALLOC_FUNCTIONS = ("concatenate", "vstack", "hstack", "stack", "append",
                   "tile", "copy")


class HotPathAllocCheck(Check):
    name = "hot-path-alloc"
    tag = "alloc"
    description = (
        "no array-materializing calls (concatenate/stack/copy) on the "
        "decode hot path"
    )
    required_scope = None  # hot files via scope; @hot_path functions anywhere

    def run(self, src: SourceFile) -> List[Finding]:
        file_is_hot = "hot-path" in src.scopes
        hot_spans = self._hot_function_spans(src)
        aliases = numpy_aliases(src.tree)
        findings: List[Finding] = []
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.Call):
                continue
            line = node.lineno
            if not (file_is_hot
                    or any(lo <= line <= hi for lo, hi in hot_spans)):
                continue
            label = self._alloc_label(node, aliases)
            if label is None:
                continue
            findings.append(src.make_finding(
                self, node,
                f"{label} allocates on the decode hot path; preallocate, "
                f"use a zero-copy view / out= buffer, or annotate with "
                f"'# lint: allow-alloc <reason>'",
            ))
        return findings

    def _hot_function_spans(self, src: SourceFile) -> List[tuple]:
        """(first, last) line ranges of functions decorated ``@hot_path``."""
        spans: List[tuple] = []
        for node in ast.walk(src.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            names: Set[str] = {n.rpartition(".")[2]
                               for n in decorator_names(node)}
            if "hot_path" in names:
                spans.append((node.lineno, max(
                    getattr(node, "end_lineno", node.lineno), node.lineno
                )))
        return spans

    def _alloc_label(self, node: ast.Call, aliases) -> "str | None":
        name = dotted_name(node.func)
        head, _, func = name.rpartition(".")
        if head in aliases and func in ALLOC_FUNCTIONS:
            return f"{name}()"
        # Method-style .copy() on any receiver (arrays are the common case).
        if (isinstance(node.func, ast.Attribute)
                and node.func.attr == "copy" and not node.args):
            return ".copy()"
        return None
