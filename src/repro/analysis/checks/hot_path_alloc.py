"""``hot-path-alloc``: the steady-state decode loop must not allocate.

The block-sparse fused decode work removed per-step KV concatenation and
mask allocation (see ``repro.model.perf`` and ``MaskScratch``); this check
keeps them out.  Calls that materialize new arrays from existing ones are
flagged:

* ``np.concatenate`` / ``np.vstack`` / ``np.hstack`` / ``np.stack`` /
  ``np.append`` / ``np.tile`` — staging copies; prefer preallocated slabs,
  zero-copy views, or ``out=`` buffers;
* ``.copy()`` / ``np.copy`` — defensive copies; prefer in-place edits of a
  reused scratch.

The check is **interprocedural**: hotness taints every function statically
reachable from a hot root (``@hot_path`` functions and hot-path files; see
:mod:`repro.analysis.checks.hotness`), so an allocation two call levels
below ``DecodePipeline.tick`` fires even though its own file is cold.
Transitive findings carry the call chain (``tick → _fit_tree``) as
evidence.

Two refinements keep the check aligned with the scratch-arena pattern
(:class:`repro.model.scratch.ScratchArena`):

* a call that writes into an explicit ``out=`` destination (typically an
  arena ``.take(...)`` view) materializes nothing new and is **clean** —
  ``np.concatenate(parts, out=arena.take(...))`` is the sanctioned way to
  stage data on the hot path;
* an allocating call **inside a comprehension** is flagged with a sharper
  message: the comprehension multiplies the allocation by its iteration
  count, which is how per-batch-slot costs sneak back in.

Reference paths and genuinely cold fallbacks stay — annotated with
``# lint: allow-alloc <reason>`` so every remaining copy is a recorded
decision, mirroring how ``perf.add_kv_copy`` charges the dense path.
"""

from __future__ import annotations

import ast
from typing import List, Set

from repro.analysis.callgraph import Project
from repro.analysis.core import (
    Finding,
    ProjectCheck,
    SourceFile,
    call_keywords,
    dotted_name,
    numpy_aliases,
)
from repro.analysis.checks.hotness import HotRegions, hot_function_chains

ALLOC_FUNCTIONS = ("concatenate", "vstack", "hstack", "stack", "append",
                   "tile", "copy")

_COMPREHENSIONS = (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)


class HotPathAllocCheck(ProjectCheck):
    name = "hot-path-alloc"
    tag = "alloc"
    description = (
        "no array-materializing calls (concatenate/stack/copy) anywhere "
        "statically reachable from the decode hot path"
    )
    required_scope = None  # hotness is computed from the call graph

    def run_project(self, project: Project) -> List[Finding]:
        chains = hot_function_chains(project)
        findings: List[Finding] = []
        for src in project.sources:
            findings.extend(self._run_file(project, src, chains))
        return findings

    def _run_file(self, project: Project, src: SourceFile,
                  chains) -> List[Finding]:
        regions = HotRegions(project, src, chains)
        if not regions.file_is_hot and not regions.spans:
            return []
        comp_calls = self._comprehension_calls(src)
        aliases = numpy_aliases(src.tree)
        findings: List[Finding] = []
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = regions.chain_at(node.lineno)
            if chain is None:
                continue
            label = self._alloc_label(node, aliases)
            if label is None:
                continue
            if id(node) in comp_calls:
                message = (
                    f"{label} inside a comprehension allocates once per "
                    f"item on the decode hot path; hoist a preallocated "
                    f"(scratch-arena) buffer out of the loop and fill "
                    f"slices, or annotate with '# lint: allow-alloc "
                    f"<reason>'"
                )
            else:
                message = (
                    f"{label} allocates on the decode hot path; "
                    f"preallocate, use a zero-copy view / out= buffer, or "
                    f"annotate with '# lint: allow-alloc <reason>'"
                )
            findings.append(src.make_finding(self, node, message,
                                             evidence=chain))
        return findings

    def _comprehension_calls(self, src: SourceFile) -> Set[int]:
        """ids of Call nodes that sit inside a comprehension body."""
        inside: Set[int] = set()
        for comp in ast.walk(src.tree):
            if not isinstance(comp, _COMPREHENSIONS):
                continue
            for node in ast.walk(comp):
                if isinstance(node, ast.Call):
                    inside.add(id(node))
        return inside

    def _alloc_label(self, node: ast.Call, aliases) -> "str | None":
        # A call writing into an explicit out= destination (typically a
        # scratch-arena ``.take(...)`` view) materializes no new array.
        if "out" in call_keywords(node):
            return None
        name = dotted_name(node.func)
        head, _, func = name.rpartition(".")
        if head in aliases and func in ALLOC_FUNCTIONS:
            return f"{name}()"
        # Method-style .copy() on any receiver (arrays are the common case).
        if (isinstance(node.func, ast.Attribute)
                and node.func.attr == "copy" and not node.args):
            return ".copy()"
        return None
