"""``wall-clock``: no ad-hoc clock reads where determinism or tracing live.

The observability layer's core guarantee is that recorded values are
deterministic under seeds: span/event attributes carry logical clocks and
seed-derived counts, and durations are measured *by the span machinery
itself* (``Tracer.span`` observes one ``perf_counter`` delta into a
registry histogram).  Two classes of clock read violate that:

* **wall clocks** — ``time.time()``, ``time.time_ns()``,
  ``datetime.now()`` / ``utcnow()`` / ``date.today()``: absolute,
  non-reproducible values that are never meaningful as duration sources;
* **monotonic clocks** — ``time.perf_counter()``, ``time.monotonic()``
  (and their ``_ns`` variants): deterministic to ignore but still a
  hand-rolled timer; inside an instrumented span they duplicate the
  span's own measurement, and on the hot path every extra clock read is
  per-tick overhead the histograms then mis-attribute.

Both classes are flagged inside hot code — and hotness is
**interprocedural**: any function statically reachable from a
``@hot_path`` root or hot-path file is hot (see
:mod:`repro.analysis.checks.hotness`), with the call chain attached as
evidence — and inside the body of any ``with ...span(...):`` block.  The
fix is a logical clock (iteration / cost-model step) for ordering, or
letting the enclosing span do the timing; the tracer's own
``perf_counter`` reads are the one sanctioned site and carry
``# lint: allow-wall-clock <reason>``.
"""

from __future__ import annotations

import ast
from typing import List, Set, Tuple

from repro.analysis.callgraph import Project
from repro.analysis.core import (
    Finding,
    ProjectCheck,
    SourceFile,
    dotted_name,
)
from repro.analysis.checks.hotness import HotRegions, hot_function_chains

#: ``time``-module attributes that read the wall clock.
WALL_CLOCK_ATTRS = ("time", "time_ns")

#: ``time``-module attributes that read a monotonic/process clock.
MONOTONIC_ATTRS = ("perf_counter", "perf_counter_ns",
                   "monotonic", "monotonic_ns")

#: ``datetime``/``date`` constructors that capture the wall clock.
DATETIME_NOW_ATTRS = ("now", "utcnow", "today")


def _time_module_aliases(tree: ast.AST) -> Set[str]:
    """Names bound to the ``time`` module (``import time [as t]``)."""
    aliases: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "time":
                    aliases.add(alias.asname or "time")
    return aliases


def _datetime_module_aliases(tree: ast.AST) -> Set[str]:
    """Names bound to the ``datetime`` module."""
    aliases: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "datetime":
                    aliases.add(alias.asname or "datetime")
    return aliases


def _datetime_class_names(tree: ast.AST) -> Set[str]:
    """Names bound to the datetime/date classes via ``from datetime import``."""
    names: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module == "datetime":
            for alias in node.names:
                if alias.name in ("datetime", "date"):
                    names.add(alias.asname or alias.name)
    return names


def _from_time_imports(tree: ast.AST, attrs: Tuple[str, ...]) -> Set[str]:
    """Names bound to selected clocks via ``from time import ...``."""
    names: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module == "time":
            for alias in node.names:
                if alias.name in attrs:
                    names.add(alias.asname or alias.name)
    return names


class WallClockCheck(ProjectCheck):
    name = "wall-clock"
    tag = "wall-clock"
    description = (
        "no wall-clock or hand-rolled monotonic clock reads anywhere "
        "statically reachable from the hot path or inside instrumented "
        "spans (use logical clocks; spans time themselves)"
    )
    required_scope = None  # hotness is computed from the call graph

    def run_project(self, project: Project) -> List[Finding]:
        chains = hot_function_chains(project)
        findings: List[Finding] = []
        for src in project.sources:
            findings.extend(self._run_file(project, src, chains))
        return findings

    def _run_file(self, project: Project, src: SourceFile,
                  chains) -> List[Finding]:
        regions = HotRegions(project, src, chains)
        trace_spans = self._traced_with_spans(src)
        if not regions.file_is_hot and not regions.spans \
                and not trace_spans:
            return []
        tree = src.tree
        time_aliases = _time_module_aliases(tree)
        dt_modules = _datetime_module_aliases(tree)
        dt_classes = _datetime_class_names(tree)
        bare_wall = _from_time_imports(tree, WALL_CLOCK_ATTRS)
        bare_mono = _from_time_imports(tree, MONOTONIC_ATTRS)
        findings: List[Finding] = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            label = self._clock_label(node, time_aliases, dt_modules,
                                      dt_classes, bare_wall, bare_mono)
            if label is None:
                continue
            label, monotonic = label
            line = node.lineno
            chain = regions.chain_at(line)
            in_span = any(lo <= line <= hi for lo, hi in trace_spans)
            if chain is None and not in_span:
                continue
            where = ("an instrumented span" if in_span
                     else "the decode hot path")
            if monotonic:
                message = (
                    f"{label} hand-rolls a timer inside {where}; the "
                    f"enclosing span already measures host_seconds — use "
                    f"a logical clock, or annotate with "
                    f"'# lint: allow-wall-clock <reason>'"
                )
            else:
                message = (
                    f"{label} reads the wall clock inside {where}; use "
                    f"a logical clock (iteration / cost-model step), or "
                    f"annotate with '# lint: allow-wall-clock <reason>'"
                )
            findings.append(src.make_finding(self, node, message,
                                             evidence=chain or ()))
        return findings

    def _traced_with_spans(self, src: SourceFile) -> List[Tuple[int, int]]:
        """Line ranges of ``with ...span(...):`` blocks (tracer spans)."""
        spans: List[Tuple[int, int]] = []
        for node in ast.walk(src.tree):
            if not isinstance(node, (ast.With, ast.AsyncWith)):
                continue
            for item in node.items:
                expr = item.context_expr
                if not isinstance(expr, ast.Call):
                    continue
                name = dotted_name(expr.func)
                if name.rpartition(".")[2] == "span":
                    spans.append((node.lineno, max(
                        getattr(node, "end_lineno", node.lineno),
                        node.lineno,
                    )))
                    break
        return spans

    def _clock_label(
        self, node: ast.Call, time_aliases: Set[str],
        dt_modules: Set[str], dt_classes: Set[str],
        bare_wall: Set[str], bare_mono: Set[str],
    ) -> "Tuple[str, bool] | None":
        """(label, is_monotonic) for a clock-reading call, else None."""
        name = dotted_name(node.func)
        if not name:
            return None
        head, _, func = name.rpartition(".")
        if head in time_aliases:
            if func in WALL_CLOCK_ATTRS:
                return f"{name}()", False
            if func in MONOTONIC_ATTRS:
                return f"{name}()", True
        if not head:
            if name in bare_wall:
                return f"{name}()", False
            if name in bare_mono:
                return f"{name}()", True
        if func in DATETIME_NOW_ATTRS:
            first = name.split(".")[0]
            # datetime.datetime.now() / dt.date.today() / datetime.now()
            if first in dt_modules or head in dt_classes:
                return f"{name}()", False
        return None
