"""``wall-clock``: no ``time.time()`` where determinism or tracing live.

The observability layer's core guarantee is that recorded values are
deterministic under seeds: span/event attributes carry logical clocks and
seed-derived counts, and durations are ``time.perf_counter()`` *deltas*
observed into registry histograms.  A stray ``time.time()`` breaks both
properties at once — it is an absolute wall-clock read (never meaningful as
a duration source) and it makes any value derived from it
non-reproducible.  This check flags direct wall-clock reads:

* inside hot-path code — files in
  :data:`repro.analysis.core.HOT_PATH_FILES` or functions decorated
  ``@hot_path`` (the same awareness ``hot-path-alloc`` has), where
  instrumentation runs on every decoding step;
* inside instrumented spans — the body of any ``with ...span(...):``
  block, where a wall-clock value would end up in trace attributes.

Flagged calls: ``time.time()``, ``time.time_ns()``, and bare ``time()``
from ``from time import time``.  The fix is ``time.perf_counter()`` for
durations or a logical clock (iteration / cost-model step) for ordering;
genuinely wall-clock-needing cold paths annotate with
``# lint: allow-wall-clock <reason>``.
"""

from __future__ import annotations

import ast
from typing import List, Set, Tuple

from repro.analysis.core import (
    Check,
    Finding,
    SourceFile,
    decorator_names,
    dotted_name,
)

#: ``time``-module attributes that read the wall clock.
WALL_CLOCK_ATTRS = ("time", "time_ns")


def _time_module_aliases(tree: ast.AST) -> Set[str]:
    """Names bound to the ``time`` module (``import time [as t]``)."""
    aliases: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "time":
                    aliases.add(alias.asname or "time")
    return aliases


def _bare_time_names(tree: ast.AST) -> Set[str]:
    """Names bound to wall-clock functions via ``from time import ...``."""
    names: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module == "time":
            for alias in node.names:
                if alias.name in WALL_CLOCK_ATTRS:
                    names.add(alias.asname or alias.name)
    return names


class WallClockCheck(Check):
    name = "wall-clock"
    tag = "wall-clock"
    description = (
        "no direct time.time() reads on the hot path or inside "
        "instrumented spans (use perf_counter deltas or logical clocks)"
    )
    required_scope = None  # hot files via scope; spans/@hot_path anywhere

    def run(self, src: SourceFile) -> List[Finding]:
        file_is_hot = "hot-path" in src.scopes
        hot_spans = self._decorated_spans(src)
        trace_spans = self._traced_with_spans(src)
        module_aliases = _time_module_aliases(src.tree)
        bare_names = _bare_time_names(src.tree)
        findings: List[Finding] = []
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.Call):
                continue
            label = self._wall_clock_label(node, module_aliases, bare_names)
            if label is None:
                continue
            line = node.lineno
            in_hot = file_is_hot or any(
                lo <= line <= hi for lo, hi in hot_spans
            )
            in_span = any(lo <= line <= hi for lo, hi in trace_spans)
            if not (in_hot or in_span):
                continue
            where = ("an instrumented span" if in_span
                     else "the decode hot path")
            findings.append(src.make_finding(
                self, node,
                f"{label} reads the wall clock inside {where}; use "
                f"time.perf_counter() deltas or a logical clock, or "
                f"annotate with '# lint: allow-wall-clock <reason>'",
            ))
        return findings

    def _decorated_spans(self, src: SourceFile) -> List[Tuple[int, int]]:
        """(first, last) line ranges of functions decorated ``@hot_path``."""
        spans: List[Tuple[int, int]] = []
        for node in ast.walk(src.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            names = {n.rpartition(".")[2] for n in decorator_names(node)}
            if "hot_path" in names:
                spans.append((node.lineno, max(
                    getattr(node, "end_lineno", node.lineno), node.lineno
                )))
        return spans

    def _traced_with_spans(self, src: SourceFile) -> List[Tuple[int, int]]:
        """Line ranges of ``with ...span(...):`` blocks (tracer spans)."""
        spans: List[Tuple[int, int]] = []
        for node in ast.walk(src.tree):
            if not isinstance(node, (ast.With, ast.AsyncWith)):
                continue
            for item in node.items:
                expr = item.context_expr
                if not isinstance(expr, ast.Call):
                    continue
                name = dotted_name(expr.func)
                if name.rpartition(".")[2] == "span":
                    spans.append((node.lineno, max(
                        getattr(node, "end_lineno", node.lineno),
                        node.lineno,
                    )))
                    break
        return spans

    def _wall_clock_label(self, node: ast.Call, module_aliases: Set[str],
                          bare_names: Set[str]) -> "str | None":
        name = dotted_name(node.func)
        head, _, func = name.rpartition(".")
        if head in module_aliases and func in WALL_CLOCK_ATTRS:
            return f"{name}()"
        if not head and name in bare_names:
            return f"{name}()"
        return None
