"""``mask-contract``: ``forward_masked*`` call sites honor the primitive's
signature, and mask constructors carry an explicit dtype.

Tree attention is only correct if every call site agrees with
:meth:`repro.model.transformer.TransformerLM.forward_masked` on what goes
where: ``(tokens, positions, mask, cache)``.  Swapping ``positions`` and
``mask`` produces garbage logits, not an exception — both are arrays, and
broadcasting frequently makes the shapes line up.  Statically, each call is
checked for:

* arity — the exact parameter count of the primitive being called;
* keyword names — only the declared parameter names are accepted;
* slot/name agreement — a positional argument whose *name* says it is a
  mask/position/token must sit in the matching slot (``fm(mask, pos, tok,
  cache)`` is flagged; neutral names like ``seq`` are not guessed at).

Additionally, calls to the mask constructors (``causal_mask``,
``cross_mask``, ``topology_causal_mask``) must pass ``dtype=`` explicitly:
their default is float64, so an implicit call feeds the transformer a mask
that upcasts every score matrix when the model runs at float32.  The
runtime half of this contract (shape/dtype of the actual arrays) lives in
:mod:`repro.analysis.sanitizer`.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.core import (
    Check,
    Finding,
    SourceFile,
    call_keywords,
    dotted_name,
    has_star_kwargs,
)

#: Parameter names, in order, of each decode primitive (self excluded).
PRIMITIVES: Dict[str, Tuple[Tuple[str, ...], int]] = {
    # name -> (parameter names, number of required parameters)
    "forward_masked": (("tokens", "positions", "mask", "cache", "scratch"),
                       4),
    "forward_masked_blocks": (
        ("tokens", "positions", "masks", "caches", "priors", "scratch"), 4,
    ),
}

#: Substrings that positively identify what an argument expression holds.
_ROLE_HINTS = {
    "tokens": ("token", "seq"),
    "positions": ("position", "pos"),
    "mask": ("mask",),
    "masks": ("mask",),
}

MASK_CONSTRUCTORS = ("causal_mask", "cross_mask", "topology_causal_mask")


def _role_of(expr: ast.expr) -> Optional[str]:
    """The role an argument's *name* claims, or None for neutral names."""
    name = dotted_name(expr)
    if not name:
        return None
    leaf = name.rpartition(".")[2].lower()
    for role, hints in _ROLE_HINTS.items():
        if any(hint in leaf for hint in hints):
            # "mask"/"masks" share hints; report the singular role.
            return "mask" if role == "masks" else role
    return None


def _slot_role(param: str) -> Optional[str]:
    if param in ("tokens", "positions"):
        return param
    if param in ("mask", "masks"):
        return "mask"
    return None


class MaskContractCheck(Check):
    name = "mask-contract"
    tag = "mask"
    description = (
        "forward_masked* call sites pass (tokens, positions, mask, cache) "
        "correctly; mask constructors pass an explicit dtype"
    )

    def run(self, src: SourceFile) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.Call):
                continue
            func_name = dotted_name(node.func).rpartition(".")[2]
            if func_name in PRIMITIVES:
                findings.extend(self._check_primitive(src, node, func_name))
            elif func_name in MASK_CONSTRUCTORS:
                findings.extend(self._check_constructor(src, node, func_name))
        return findings

    # -- forward_masked* -------------------------------------------------------

    def _check_primitive(self, src: SourceFile, node: ast.Call,
                         func_name: str) -> List[Finding]:
        params, required = PRIMITIVES[func_name]
        findings: List[Finding] = []
        if any(isinstance(a, ast.Starred) for a in node.args) \
                or has_star_kwargs(node):
            return findings  # dynamic call; runtime sanitizer covers it
        keywords = call_keywords(node)
        unknown = sorted(set(keywords) - set(params))
        if unknown:
            findings.append(src.make_finding(
                self, node,
                f"{func_name}() has no parameter(s) {', '.join(unknown)}; "
                f"expected {params}",
            ))
        supplied = len(node.args) + len(set(keywords) & set(params))
        if supplied < required or len(node.args) > len(params):
            findings.append(src.make_finding(
                self, node,
                f"{func_name}() takes {required} required arguments "
                f"{params[:required]}, got {supplied}",
            ))
        for i, arg in enumerate(node.args[: len(params)]):
            claimed = _role_of(arg)
            expected = _slot_role(params[i])
            if claimed and expected and claimed != expected:
                findings.append(src.make_finding(
                    self, node,
                    f"{func_name}() argument {i + 1} is the "
                    f"'{params[i]}' slot but '{dotted_name(arg)}' looks "
                    f"like {claimed}; arguments are {params}",
                ))
        return findings

    # -- mask constructors -----------------------------------------------------

    def _check_constructor(self, src: SourceFile, node: ast.Call,
                           func_name: str) -> List[Finding]:
        if has_star_kwargs(node):
            return []
        keywords = call_keywords(node)
        if "dtype" in keywords:
            return []
        # Positional dtype: causal_mask(n, dtype), cross_mask(nq, nk, off,
        # dtype), topology_causal_mask(lin, prefix, dtype).
        dtype_pos = {"causal_mask": 1, "cross_mask": 3,
                     "topology_causal_mask": 2}[func_name]
        if len(node.args) > dtype_pos:
            return []
        return [src.make_finding(
            self, node,
            f"{func_name}() without dtype= builds a float64 mask; pass the "
            f"model dtype so attention scores keep the model precision",
        )]
