"""Forward dataflow over the call graph, plus shared abstract-value lattices.

The interprocedural checks all reduce to the same fixpoint shape: seed some
functions with a fact, push facts along call edges through a per-check
*transfer* function, and join at merge points until nothing changes.
:func:`solve_forward` is that worklist; the lattices below are the abstract
values the shipped checks flow through it:

* :data:`HOT_CHAIN_LATTICE` — hot-path taint.  A fact is the shortest call
  chain from a ``@hot_path`` root (ties broken lexicographically so
  evidence is deterministic); joining two chains keeps the better one.
* :class:`TensorFact` — the shape/dtype abstraction the ``tensor-contract``
  check propagates through assignments and calls.  Each component is
  three-valued: ``None`` means *unknown* (top); joining disagreeing known
  values degrades to unknown, so the analysis only reports violations it
  can actually prove.

Both are deliberately small: facts must be immutable, and ``join`` must be
monotone, or the worklist does not terminate on recursive call cycles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (Callable, Dict, Generic, List, Optional, Tuple,
                    TypeVar)

from repro.analysis.callgraph import CallEdge, CallGraph

Fact = TypeVar("Fact")


@dataclass(frozen=True)
class Lattice(Generic[Fact]):
    """A join-semilattice: how one check's facts merge.

    ``join(a, b)`` must be commutative, associative, idempotent, and
    monotone (the result is never *less* defined than either input) —
    termination on call cycles depends on it.
    """

    join: Callable[[Fact, Fact], Fact]


def solve_forward(
    graph: CallGraph,
    seeds: Dict[str, Fact],
    lattice: Lattice,
    transfer: Optional[Callable[[Fact, CallEdge], Optional[Fact]]] = None,
) -> Dict[str, Fact]:
    """Propagate ``seeds`` forward along call edges to a fixpoint.

    Args:
        graph: The project call graph.
        seeds: Initial facts, keyed by function qualname.  Unknown
            qualnames are ignored.
        lattice: How facts merge when several callers reach one callee.
        transfer: Maps (caller's fact, edge) to the fact contributed to
            the callee; return ``None`` to kill propagation along that
            edge.  Defaults to passing the caller's fact through unchanged.

    Returns:
        The fact for every function reached from the seeds (seeds
        included).  Deterministic: the worklist is kept sorted, so runs
        over the same project produce identical results.
    """
    facts: Dict[str, Fact] = {
        qual: fact for qual, fact in seeds.items()
        if qual in graph.functions
    }
    worklist: List[str] = sorted(facts)
    pending = set(worklist)
    while worklist:
        caller = worklist.pop(0)
        pending.discard(caller)
        fact = facts[caller]
        for edge in sorted(graph.callees(caller), key=lambda e: e.callee):
            if edge.callee not in graph.functions:
                continue
            contributed = transfer(fact, edge) if transfer else fact
            if contributed is None:
                continue
            known = facts.get(edge.callee)
            merged = contributed if known is None \
                else lattice.join(known, contributed)
            if merged != known:
                facts[edge.callee] = merged
                if edge.callee not in pending:
                    pending.add(edge.callee)
                    worklist.append(edge.callee)
                    worklist.sort()
    return facts


# -- hot-path taint ------------------------------------------------------------

#: A hot-taint fact: the call chain (display names) from a hot root.
Chain = Tuple[str, ...]


def _better_chain(a: Chain, b: Chain) -> Chain:
    """Shortest chain wins; lexicographic order breaks ties."""
    return min(a, b, key=lambda c: (len(c), c))


HOT_CHAIN_LATTICE: Lattice = Lattice(join=_better_chain)


def propagate_hot_chains(graph: CallGraph,
                         roots: Dict[str, Chain]) -> Dict[str, Chain]:
    """Taint every function reachable from ``roots`` with its best chain.

    ``roots`` maps hot entry qualnames to their seed chain (usually the
    one-element chain of the root's display name).  The transfer appends
    the callee's display name, so the resulting facts read
    ``("tick", "_fit_tree")`` — exactly the evidence interprocedural
    findings attach.
    """

    def transfer(fact: Chain, edge: CallEdge) -> Chain:
        return fact + (graph.functions[edge.callee].display,)

    return solve_forward(graph, roots, HOT_CHAIN_LATTICE, transfer)


# -- tensor shape/dtype facts --------------------------------------------------


@dataclass(frozen=True)
class TensorFact:
    """What the analysis knows statically about one array value.

    ``None`` components are unknown.  ``shape`` entries may individually be
    ``None`` (dimension exists, size unknown); a ``None`` shape with a known
    ``ndim`` means "that many dimensions, sizes unknown".
    """

    ndim: Optional[int] = None
    dtype: Optional[str] = None
    shape: Optional[Tuple[Optional[int], ...]] = None

    def is_bottom(self) -> bool:
        return self.ndim is None and self.dtype is None and self.shape is None

    def join(self, other: "TensorFact") -> "TensorFact":
        """Keep only the components both facts agree on."""
        shape: Optional[Tuple[Optional[int], ...]] = None
        if (self.shape is not None and other.shape is not None
                and len(self.shape) == len(other.shape)):
            shape = tuple(a if a == b else None
                          for a, b in zip(self.shape, other.shape))
        return TensorFact(
            ndim=self.ndim if self.ndim == other.ndim else None,
            dtype=self.dtype if self.dtype == other.dtype else None,
            shape=shape,
        )


TENSOR_FACT_LATTICE: Lattice = Lattice(
    join=lambda a, b: a.join(b)
)
