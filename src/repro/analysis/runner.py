"""Lint driver: discover files, run every check, collect findings.

``run_paths`` is the programmatic entry point (the ``repro lint`` CLI and
the ``lint`` pytest tier both call it); it returns a :class:`LintResult`
whose exit code follows the usual linter convention — 0 clean, 1 findings,
2 operational errors (unreadable/unparseable files).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.analysis.checks import resolve_checks
from repro.analysis.core import Check, FileReport, Finding, SourceFile


@dataclass
class LintResult:
    """Outcome of one lint run over a set of paths."""

    reports: List[FileReport] = field(default_factory=list)
    checks: List[str] = field(default_factory=list)

    @property
    def findings(self) -> List[Finding]:
        return [f for report in self.reports for f in report.findings]

    @property
    def unsuppressed(self) -> List[Finding]:
        return [f for f in self.findings if not f.suppressed]

    @property
    def suppressed(self) -> List[Finding]:
        return [f for f in self.findings if f.suppressed]

    @property
    def errors(self) -> List[FileReport]:
        return [report for report in self.reports if report.error]

    @property
    def files_scanned(self) -> int:
        return len(self.reports)

    @property
    def exit_code(self) -> int:
        if self.errors:
            return 2
        return 1 if self.unsuppressed else 0


def discover_files(paths: Sequence[str]) -> List[str]:
    """Python files under ``paths`` (files kept as-is, dirs walked)."""
    files: List[str] = []
    for path in paths:
        if os.path.isfile(path):
            files.append(path)
        elif os.path.isdir(path):
            for root, dirs, names in os.walk(path):
                dirs[:] = sorted(
                    d for d in dirs
                    if d not in ("__pycache__", ".git", ".pytest_cache")
                )
                for name in sorted(names):
                    if name.endswith(".py"):
                        files.append(os.path.join(root, name))
        else:
            raise FileNotFoundError(f"no such file or directory: {path}")
    return files


def lint_file(path: str, checks: Sequence[Check]) -> FileReport:
    """Run ``checks`` over one file."""
    report = FileReport(path=path)
    try:
        with open(path, "r", encoding="utf-8") as handle:
            source = handle.read()
        src = SourceFile(path, source)
    except (OSError, SyntaxError, ValueError) as exc:
        report.error = f"{type(exc).__name__}: {exc}"
        return report
    for check in checks:
        if check.applies_to(src):
            report.findings.extend(check.run(src))
    report.findings.sort(key=lambda f: (f.line, f.col, f.check))
    return report


def run_paths(
    paths: Sequence[str],
    check_names: Optional[Sequence[str]] = None,
) -> LintResult:
    """Lint every python file under ``paths`` with the selected checks."""
    checks = resolve_checks(check_names)
    result = LintResult(checks=[c.name for c in checks])
    for path in discover_files(paths):
        result.reports.append(lint_file(path, checks))
    return result
