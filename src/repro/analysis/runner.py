"""Lint driver: discover files, run every check, collect findings.

``run_paths`` is the programmatic entry point (the ``repro lint`` CLI and
the ``lint`` pytest tier both call it).  A run now has two phases: every
file is parsed up front into a :class:`~repro.analysis.callgraph.Project`
(so interprocedural checks see the whole call graph), then file-local
checks run per file and :class:`~repro.analysis.core.ProjectCheck`
subclasses run once over the project.  The returned :class:`LintResult`
carries fingerprinted findings, the stale-suppression audit, and any
applied baseline; its exit code follows the usual linter convention —
0 clean, 1 *new* findings (baselined ones don't count), 2 operational
errors (unreadable/unparseable files).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.analysis.baseline import (
    Baseline,
    apply_baseline,
    fingerprint_findings,
    load_baseline,
)
from repro.analysis.callgraph import Project
from repro.analysis.checks import check_registry, resolve_checks
from repro.analysis.core import (
    Check,
    FileReport,
    Finding,
    ProjectCheck,
    SourceFile,
)


@dataclass
class StaleSuppression:
    """A ``# lint: allow-*`` pragma that no longer suppresses anything."""

    path: str
    line: int
    tag: str
    reason: str

    def location(self) -> str:
        return f"{self.path}:{self.line}"


@dataclass
class LintResult:
    """Outcome of one lint run over a set of paths."""

    reports: List[FileReport] = field(default_factory=list)
    checks: List[str] = field(default_factory=list)
    #: Stale-pragma audit (populated only when every check ran — a subset
    #: run cannot tell an unused pragma from one whose check was skipped).
    stale_suppressions: List[StaleSuppression] = field(default_factory=list)
    audited: bool = False
    #: The applied baseline, when ``--baseline`` was given.
    baseline: Optional[Baseline] = None

    @property
    def findings(self) -> List[Finding]:
        return [f for report in self.reports for f in report.findings]

    @property
    def unsuppressed(self) -> List[Finding]:
        return [f for f in self.findings if not f.suppressed]

    @property
    def suppressed(self) -> List[Finding]:
        return [f for f in self.findings if f.suppressed]

    @property
    def baselined(self) -> List[Finding]:
        return [f for f in self.findings if f.baselined]

    @property
    def new_findings(self) -> List[Finding]:
        """Unsuppressed findings not accepted by the baseline."""
        return [f for f in self.findings
                if not f.suppressed and not f.baselined]

    @property
    def errors(self) -> List[FileReport]:
        return [report for report in self.reports if report.error]

    @property
    def files_scanned(self) -> int:
        return len(self.reports)

    @property
    def exit_code(self) -> int:
        if self.errors:
            return 2
        return 1 if self.new_findings else 0


def discover_files(paths: Sequence[str]) -> List[str]:
    """Python files under ``paths`` (files kept as-is, dirs walked)."""
    files: List[str] = []
    for path in paths:
        if os.path.isfile(path):
            files.append(path)
        elif os.path.isdir(path):
            for root, dirs, names in os.walk(path):
                dirs[:] = sorted(
                    d for d in dirs
                    if d not in ("__pycache__", ".git", ".pytest_cache")
                )
                for name in sorted(names):
                    if name.endswith(".py"):
                        files.append(os.path.join(root, name))
        else:
            raise FileNotFoundError(f"no such file or directory: {path}")
    return files


def _parse_files(files: Sequence[str]):
    """Parse every file; returns (sources, per-path error reports)."""
    sources: List[SourceFile] = []
    errors: Dict[str, str] = {}
    for path in files:
        try:
            with open(path, "r", encoding="utf-8") as handle:
                source = handle.read()
            sources.append(SourceFile(path, source))
        except (OSError, SyntaxError, ValueError) as exc:
            errors[path] = f"{type(exc).__name__}: {exc}"
    return sources, errors


def _run_checks(sources: Sequence[SourceFile], checks: Sequence[Check],
                errors: Dict[str, str]) -> List[FileReport]:
    """File-local checks per file, project checks once over the project."""
    project = Project(sources)
    reports: Dict[str, FileReport] = {
        src.path: FileReport(path=src.path) for src in sources
    }
    for path, error in errors.items():
        reports[path] = FileReport(path=path, error=error)
    file_checks = [c for c in checks if not isinstance(c, ProjectCheck)]
    project_checks = [c for c in checks if isinstance(c, ProjectCheck)]
    for src in sources:
        for check in file_checks:
            if check.applies_to(src):
                reports[src.path].findings.extend(check.run(src))
    for check in project_checks:
        for finding in check.run_project(project):
            report = reports.get(finding.path)
            if report is not None:
                report.findings.append(finding)
    ordered = [reports[path] for path in sorted(reports)]
    for report in ordered:
        report.findings.sort(key=lambda f: (f.line, f.col, f.check))
    return ordered


def _audit_suppressions(
    sources: Sequence[SourceFile],
) -> List[StaleSuppression]:
    """Pragmas whose ``used`` flag no check set: dead decisions."""
    stale: List[StaleSuppression] = []
    for src in sources:
        for supp in src.suppressions:
            if not supp.used:
                stale.append(StaleSuppression(
                    path=src.path, line=supp.line,
                    tag=supp.tag, reason=supp.reason,
                ))
    stale.sort(key=lambda s: (s.path, s.line))
    return stale


def _assign_fingerprints(reports: Sequence[FileReport]) -> None:
    for report in reports:
        report.findings = fingerprint_findings(report.findings)


def lint_file(path: str, checks: Sequence[Check]) -> FileReport:
    """Run ``checks`` over one file (a single-file project)."""
    sources, errors = _parse_files([path])
    if errors:
        return FileReport(path=path, error=errors[path])
    reports = _run_checks(sources, checks, errors)
    _assign_fingerprints(reports)
    return reports[0]


def run_paths(
    paths: Sequence[str],
    check_names: Optional[Sequence[str]] = None,
    baseline_path: Optional[str] = None,
) -> LintResult:
    """Lint every python file under ``paths`` with the selected checks.

    When ``baseline_path`` is given the file is loaded and applied:
    matching findings are marked ``baselined`` and do not affect the exit
    code, and :attr:`Baseline.stale_entries` records the ratchet debt.
    """
    checks = resolve_checks(check_names)
    files = discover_files(paths)
    sources, errors = _parse_files(files)
    reports = _run_checks(sources, checks, errors)
    _assign_fingerprints(reports)
    result = LintResult(reports=reports, checks=[c.name for c in checks])
    result.audited = not check_names or set(check_names) == set(
        check_registry()
    )
    if result.audited:
        result.stale_suppressions = _audit_suppressions(sources)
    if baseline_path is not None:
        baseline = load_baseline(baseline_path)
        for report in reports:
            report.findings = apply_baseline(report.findings, baseline)
        result.baseline = baseline
    return result
