"""repro-lint: static invariants + runtime tensor sanitizer.

Two halves, one contract:

* **static** (``repro lint`` / :func:`repro.analysis.runner.run_paths`):
  AST checks over the whole tree for the invariants the paper's speedups
  rest on — explicit dtypes on model/engine tensors (``dtype-drift``),
  an allocation-free decode loop (``hot-path-alloc``), Generator-threaded
  randomness (``rng-discipline``), and signature-faithful tree-attention
  call sites (``mask-contract``);
* **runtime** (:mod:`repro.analysis.sanitizer`): ``REPRO_SANITIZE``-gated
  guards for what only the live tensors can show — NaN/Inf logits,
  off-simplex verifier distributions, overlapping KV-arena row ranges.

See ``docs/static_analysis.md`` for the check catalogue and suppression
syntax.
"""

from __future__ import annotations

from repro.analysis.core import Check, Finding, SourceFile
from repro.analysis.runner import LintResult, run_paths

__all__ = [
    "Check",
    "Finding",
    "LintResult",
    "SourceFile",
    "run_paths",
]
