"""Project-wide call graph: the substrate for interprocedural checks.

Every check in :mod:`repro.analysis.checks` used to be function-local: an
allocation or wall-clock read inside a helper *called from*
``DecodePipeline.tick`` was invisible unless the helper happened to live in
a hot-path file.  This module closes that hole with a static call graph
built from one AST pass over the whole linted file set:

* a :class:`Project` parses every file into a module table (module names
  derived from the ``repro`` package layout, falling back to file stems for
  fixture corpora) and indexes functions, classes, methods, imports, and
  module-level instance bindings;
* :class:`CallGraph` resolves calls **conservatively but first-party
  only**: plain names through local scope and ``from x import y`` (aliased
  or not, following re-export chains), attribute chains through module
  aliases, ``self.``/``cls.`` methods via class-local resolution (walking
  first-party base classes), constructor calls, and one level of cheap type
  inference — ``self.attr = Cls(...)`` in any method, ``VAR = Cls(...)`` at
  module level, and ``var = Cls(...)`` inside the calling function all let
  ``*.method()`` resolve to ``Cls.method``;
* :meth:`CallGraph.reachable_from` runs a deterministic BFS and returns,
  for every reachable function, the *shortest call chain* back to a root —
  the ``tick → _fit_tree`` evidence attached to interprocedural findings.

Unresolvable calls (third-party modules, duck-typed receivers, higher-order
dispatch) produce no edges: the graph under-approximates, so
reachability-based checks can miss dynamic paths but never invent one.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.core import SourceFile, decorator_names, dotted_name


def module_name_for_path(path: str) -> str:
    """Dotted module name for ``path``.

    Paths inside a ``repro`` package tree map to their real dotted name
    (``.../src/repro/engine/pipeline.py`` -> ``repro.engine.pipeline``,
    ``__init__.py`` -> the package); anything else (fixture corpora,
    inline test snippets) maps to its file stem.
    """
    parts = path.replace("\\", "/").rstrip("/").split("/")
    if parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if parts[-1] == "__init__":
        parts = parts[:-1]
    if "repro" in parts:
        idx = parts.index("repro")
        return ".".join(parts[idx:])
    return parts[-1]


@dataclass
class FunctionInfo:
    """One function or method the call graph knows about."""

    qualname: str  # "module:func" or "module:Class.method"
    module: str
    path: str
    name: str  # bare function/method name
    class_name: Optional[str]
    node: ast.AST  # FunctionDef / AsyncFunctionDef
    lineno: int
    end_lineno: int
    decorators: Tuple[str, ...]

    @property
    def display(self) -> str:
        """Short human name used in evidence chains (``Class.method``)."""
        if self.class_name:
            return f"{self.class_name}.{self.name}"
        return self.name


@dataclass
class ClassInfo:
    """A class definition: its methods and base-class names."""

    name: str
    module: str
    bases: Tuple[str, ...]  # dotted names as written
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)
    #: ``self.attr`` -> dotted class name constructed in some method body.
    attr_types: Dict[str, str] = field(default_factory=dict)


@dataclass
class ModuleInfo:
    """Everything indexed about one parsed module."""

    name: str
    src: SourceFile
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    classes: Dict[str, ClassInfo] = field(default_factory=dict)
    #: import alias -> dotted module name (``import numpy as np`` excluded:
    #: only aliases that *might* be first-party are kept for resolution).
    module_aliases: Dict[str, str] = field(default_factory=dict)
    #: ``from pkg import name [as alias]`` -> (pkg, name)
    symbol_imports: Dict[str, Tuple[str, str]] = field(default_factory=dict)
    #: module-level ``NAME = Cls(...)`` -> dotted class name as written
    instance_types: Dict[str, str] = field(default_factory=dict)


@dataclass(frozen=True)
class CallEdge:
    """One resolved call: ``caller`` invokes ``callee`` at ``line``."""

    caller: str
    callee: str
    line: int
    col: int


class Project:
    """The linted file set, parsed and indexed for whole-program passes."""

    def __init__(self, sources: Sequence[SourceFile]):
        self.sources: List[SourceFile] = list(sources)
        self.modules: Dict[str, ModuleInfo] = {}
        self.by_path: Dict[str, SourceFile] = {}
        for src in self.sources:
            name = module_name_for_path(src.path)
            if name in self.modules:
                # Duplicate stems (fixture corpora) are independent files;
                # a disambiguated registry name keeps the later file's
                # functions indexed.  Name-based resolution still prefers
                # the first file — the usual under-approximation.
                n = 2
                while f"{name}~{n}" in self.modules:
                    n += 1
                name = f"{name}~{n}"
            info = _index_module(src, name)
            self.modules[info.name] = info
            self.by_path[src.path] = src
        self._graph: Optional[CallGraph] = None

    @property
    def callgraph(self) -> "CallGraph":
        if self._graph is None:
            self._graph = CallGraph(self)
        return self._graph

    # -- resolution helpers ----------------------------------------------------

    def resolve_module(self, dotted: str) -> Optional[ModuleInfo]:
        """The project module for ``dotted``, exact name or unique suffix."""
        info = self.modules.get(dotted)
        if info is not None:
            return info
        want = dotted.split(".")
        hits = [m for name, m in self.modules.items()
                if name.split(".")[-len(want):] == want]
        return hits[0] if len(hits) == 1 else None

    def resolve_symbol(
        self, module: ModuleInfo, name: str,
        _seen: Optional[Set[Tuple[str, str]]] = None,
    ) -> Optional[Tuple[ModuleInfo, str, str]]:
        """Resolve ``name`` in ``module`` to its defining module.

        Follows ``from x import name`` re-export chains (cycle-guarded).
        Returns ``(defining_module, name, kind)`` with ``kind`` one of
        ``"function"``, ``"class"``, ``"instance"`` — or ``None``.
        """
        _seen = _seen or set()
        key = (module.name, name)
        if key in _seen:
            return None
        _seen.add(key)
        if name in module.functions:
            return module, name, "function"
        if name in module.classes:
            return module, name, "class"
        if name in module.instance_types:
            return module, name, "instance"
        target = module.symbol_imports.get(name)
        if target is not None:
            pkg, orig = target
            target_mod = self.resolve_module(pkg)
            if target_mod is not None:
                return self.resolve_symbol(target_mod, orig, _seen)
        return None

    def resolve_class(self, module: ModuleInfo,
                      dotted: str) -> Optional[ClassInfo]:
        """Resolve a dotted class reference as written inside ``module``."""
        head, _, tail = dotted.rpartition(".")
        if not head:
            hit = self.resolve_symbol(module, dotted)
            if hit is not None and hit[2] == "class":
                return hit[0].classes[hit[1]]
            return None
        target_mod = self._module_for_alias(module, head)
        if target_mod is not None and tail in target_mod.classes:
            return target_mod.classes[tail]
        return None

    def _module_for_alias(self, module: ModuleInfo,
                          dotted_head: str) -> Optional[ModuleInfo]:
        """The module an attribute-chain head refers to, if any."""
        alias = module.module_aliases.get(dotted_head)
        if alias is not None:
            return self.resolve_module(alias)
        # ``from pkg import sub`` where ``sub`` is itself a module.
        target = module.symbol_imports.get(dotted_head)
        if target is not None:
            return self.resolve_module(".".join(target))
        return None

    def method_on(self, cls: ClassInfo,
                  name: str) -> Optional[FunctionInfo]:
        """Class-local method resolution, walking first-party bases."""
        seen: Set[str] = set()
        stack: List[ClassInfo] = [cls]
        while stack:
            current = stack.pop(0)
            key = f"{current.module}:{current.name}"
            if key in seen:
                continue
            seen.add(key)
            if name in current.methods:
                return current.methods[name]
            owner = self.modules.get(current.module)
            if owner is None:
                continue
            for base in current.bases:
                resolved = self.resolve_class(owner, base)
                if resolved is not None:
                    stack.append(resolved)
        return None


class CallGraph:
    """First-party call edges over a :class:`Project`."""

    def __init__(self, project: Project):
        self.project = project
        self.functions: Dict[str, FunctionInfo] = {}
        for mod in project.modules.values():
            self.functions.update(
                {fn.qualname: fn for fn in mod.functions.values()}
            )
            for cls in mod.classes.values():
                self.functions.update(
                    {fn.qualname: fn for fn in cls.methods.values()}
                )
        self.edges: Dict[str, List[CallEdge]] = {
            qual: [] for qual in self.functions
        }
        for mod in project.modules.values():
            self._build_edges(mod)

    # -- construction ----------------------------------------------------------

    def _build_edges(self, mod: ModuleInfo) -> None:
        for fn in mod.functions.values():
            self._edges_for_function(mod, fn, cls=None)
        for cls in mod.classes.values():
            for fn in cls.methods.values():
                self._edges_for_function(mod, fn, cls=cls)

    def _edges_for_function(self, mod: ModuleInfo, fn: FunctionInfo,
                            cls: Optional[ClassInfo]) -> None:
        local_types = _local_instance_types(fn.node, mod, self.project)
        for node in ast.walk(fn.node):
            if not isinstance(node, ast.Call):
                continue
            callee = self._resolve_call(mod, fn, cls, node, local_types)
            if callee is not None:
                self.edges[fn.qualname].append(CallEdge(
                    caller=fn.qualname, callee=callee.qualname,
                    line=node.lineno, col=node.col_offset,
                ))

    def _resolve_call(
        self, mod: ModuleInfo, fn: FunctionInfo, cls: Optional[ClassInfo],
        call: ast.Call, local_types: Dict[str, str],
    ) -> Optional[FunctionInfo]:
        func = call.func
        # Plain name: local function, imported symbol, or constructor.
        if isinstance(func, ast.Name):
            return self._resolve_name(mod, func.id)
        if not isinstance(func, ast.Attribute):
            return None
        dotted = dotted_name(func)
        if not dotted:
            return None
        head, _, method = dotted.rpartition(".")
        # self.method() / cls.method(): class-local resolution.
        if cls is not None and head in ("self", "cls"):
            found = self.project.method_on(cls, method)
            if found is not None:
                return found
            return None
        # self.attr.method(): attribute type inferred from assignments.
        if cls is not None and head.startswith("self."):
            attr = head[len("self."):]
            type_name = cls.attr_types.get(attr)
            if type_name is not None:
                target = self.project.resolve_class(mod, type_name)
                if target is not None:
                    return self.project.method_on(target, method)
            return None
        # var.method() with a locally inferred or module-level instance
        # type; the class name resolves in the module that *wrote* the
        # constructor call (imported instances carry their home module).
        if "." not in head:
            type_name = local_types.get(head) or mod.instance_types.get(head)
            type_home = mod
            if type_name is None:
                hit = self.project.resolve_symbol(mod, head)
                if hit is not None and hit[2] == "instance":
                    type_home = hit[0]
                    type_name = type_home.instance_types[hit[1]]
            if type_name is not None:
                target = self.project.resolve_class(type_home, type_name)
                if target is not None:
                    return self.project.method_on(target, method)
        # module.func() through an import alias (longest prefix wins).
        target_mod, symbol = self._split_module_attr(mod, dotted)
        if target_mod is not None and symbol is not None:
            return self._function_or_init(target_mod, symbol)
        return None

    def _resolve_name(self, mod: ModuleInfo,
                      name: str) -> Optional[FunctionInfo]:
        hit = self.project.resolve_symbol(mod, name)
        if hit is None:
            return None
        target_mod, symbol, kind = hit
        if kind == "function":
            return target_mod.functions[symbol]
        if kind == "class":
            cls = target_mod.classes[symbol]
            return self.project.method_on(cls, "__init__")
        return None

    def _split_module_attr(
        self, mod: ModuleInfo, dotted: str,
    ) -> Tuple[Optional[ModuleInfo], Optional[str]]:
        """Split ``a.b.func`` into (module for ``a.b``, ``func``)."""
        parts = dotted.split(".")
        for cut in range(len(parts) - 1, 0, -1):
            head = ".".join(parts[:cut])
            target = mod.module_aliases.get(head)
            if target is None and head in mod.symbol_imports:
                pkg, orig = mod.symbol_imports[head]
                target = f"{pkg}.{orig}"
            if target is None:
                continue
            target_mod = self.project.resolve_module(target)
            if target_mod is None:
                return None, None
            rest = parts[cut:]
            if len(rest) == 1:
                return target_mod, rest[0]
            return None, None
        return None, None

    def _function_or_init(self, mod: ModuleInfo,
                          symbol: str) -> Optional[FunctionInfo]:
        hit = self.project.resolve_symbol(mod, symbol)
        if hit is None:
            return None
        target_mod, name, kind = hit
        if kind == "function":
            return target_mod.functions[name]
        if kind == "class":
            return self.project.method_on(target_mod.classes[name],
                                          "__init__")
        return None

    # -- queries ---------------------------------------------------------------

    def callees(self, qualname: str) -> List[CallEdge]:
        return self.edges.get(qualname, [])

    def reachable_from(
        self, roots: Iterable[str],
    ) -> Dict[str, Tuple[str, ...]]:
        """Shortest call chain (as display names) to every reachable function.

        BFS from ``roots``; ties broken lexicographically so evidence chains
        are deterministic.  Roots map to a one-element chain.  Recursive and
        mutually-recursive edges are handled by the visited set.
        """
        chains: Dict[str, Tuple[str, ...]] = {}
        frontier = sorted(set(r for r in roots if r in self.functions))
        for root in frontier:
            chains[root] = (self.functions[root].display,)
        while frontier:
            next_frontier: List[str] = []
            for caller in frontier:
                base = chains[caller]
                for edge in sorted(self.edges.get(caller, []),
                                   key=lambda e: e.callee):
                    if edge.callee in chains:
                        continue
                    callee_fn = self.functions.get(edge.callee)
                    if callee_fn is None:
                        continue
                    chains[edge.callee] = base + (callee_fn.display,)
                    next_frontier.append(edge.callee)
            frontier = sorted(next_frontier)
        return chains


# -- module indexing -----------------------------------------------------------


def _index_module(src: SourceFile, name: Optional[str] = None) -> ModuleInfo:
    if name is None:
        name = module_name_for_path(src.path)
    info = ModuleInfo(name=name, src=src)
    for node in src.tree.body:
        _index_statement(info, node, src)
    # Imports and module-level instances can appear below other defs or
    # inside try/if guards; sweep the whole tree for those.
    for node in ast.walk(src.tree):
        _index_import(info, node)
    return info


def _index_statement(info: ModuleInfo, node: ast.AST,
                     src: SourceFile) -> None:
    if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
        info.functions[node.name] = _function_info(info, node, src, None)
    elif isinstance(node, ast.ClassDef):
        cls = ClassInfo(
            name=node.name, module=info.name,
            bases=tuple(n for n in (dotted_name(b) for b in node.bases)
                        if n),
        )
        for item in node.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                cls.methods[item.name] = _function_info(
                    info, item, src, node.name
                )
        _infer_attr_types(cls)
        info.classes[node.name] = cls
    elif isinstance(node, ast.Assign) and len(node.targets) == 1:
        target = node.targets[0]
        if isinstance(target, ast.Name) and isinstance(node.value, ast.Call):
            ctor = dotted_name(node.value.func)
            if ctor:
                info.instance_types[target.id] = ctor
    elif isinstance(node, (ast.If, ast.Try)):
        for child in ast.iter_child_nodes(node):
            _index_statement(info, child, src)


def _index_import(info: ModuleInfo, node: ast.AST) -> None:
    if isinstance(node, ast.Import):
        for alias in node.names:
            info.module_aliases[alias.asname or alias.name] = alias.name
    elif isinstance(node, ast.ImportFrom) and node.module:
        # Relative imports resolve against this module's package.
        pkg = node.module
        if node.level:
            base = info.name.split(".")
            base = base[: len(base) - node.level]
            pkg = ".".join(base + [node.module]) if base else node.module
        for alias in node.names:
            if alias.name == "*":
                continue
            info.symbol_imports[alias.asname or alias.name] = (
                pkg, alias.name
            )


def _function_info(info: ModuleInfo, node: ast.AST, src: SourceFile,
                   class_name: Optional[str]) -> FunctionInfo:
    local = f"{class_name}.{node.name}" if class_name else node.name
    return FunctionInfo(
        qualname=f"{info.name}:{local}",
        module=info.name,
        path=src.path,
        name=node.name,
        class_name=class_name,
        node=node,
        lineno=node.lineno,
        end_lineno=max(getattr(node, "end_lineno", node.lineno),
                       node.lineno),
        decorators=tuple(decorator_names(node)),
    )


def _infer_attr_types(cls: ClassInfo) -> None:
    """``self.attr = Cls(...)`` anywhere in a method body types the attr."""
    for method in cls.methods.values():
        for node in ast.walk(method.node):
            if not isinstance(node, ast.Assign) or len(node.targets) != 1:
                continue
            target = node.targets[0]
            if not (isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"):
                continue
            if isinstance(node.value, ast.Call):
                ctor = dotted_name(node.value.func)
                if ctor:
                    cls.attr_types.setdefault(target.attr, ctor)


def _local_instance_types(fn_node: ast.AST, mod: ModuleInfo,
                          project: Project) -> Dict[str, str]:
    """``var = Cls(...)`` assignments inside one function body."""
    types: Dict[str, str] = {}
    for node in ast.walk(fn_node):
        if not isinstance(node, ast.Assign) or len(node.targets) != 1:
            continue
        target = node.targets[0]
        if not isinstance(target, ast.Name):
            continue
        if isinstance(node.value, ast.Call):
            ctor = dotted_name(node.value.func)
            if ctor and project.resolve_class(mod, ctor) is not None:
                types.setdefault(target.id, ctor)
    return types
