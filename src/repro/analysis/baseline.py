"""Findings baseline: land strict checks without a flag-day.

A baseline file (``.lint-baseline.json``) records *accepted* findings by
stable fingerprint.  ``repro lint --baseline .lint-baseline.json`` marks
any current finding whose fingerprint appears in the file as ``baselined``
— reported, but excluded from the exit code — so CI fails only on **new**
findings.  The ratchet direction is enforced by staleness: a baseline
entry whose finding no longer exists is *stale*, and the CI ratchet step
(``scripts/lint_ratchet.py``) fails until it is deleted, so the file can
only shrink.  Growing it requires an explicit ``--update-baseline`` commit
that reviewers see.

Fingerprints must survive unrelated edits (line drift above the finding,
renames of a helper in the middle of an evidence chain) but change when
the violation itself moves or multiplies.  They hash
``check | path | enclosing-function | message`` plus an occurrence index
that disambiguates identical violations within one context — line and
column numbers are deliberately excluded, and interprocedural evidence
chains live outside ``message`` for exactly this reason.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, replace
from typing import Dict, List, Sequence, Tuple

from repro.analysis.core import Finding

BASELINE_VERSION = 1

#: The conventional baseline path, relative to the repo root.
DEFAULT_BASELINE = ".lint-baseline.json"


def _normalize_path(path: str) -> str:
    """Forward slashes, no leading ``./`` — stable across invocation styles."""
    path = path.replace("\\", "/")
    while path.startswith("./"):
        path = path[2:]
    return path


def fingerprint_findings(findings: Sequence[Finding]) -> List[Finding]:
    """Copies of ``findings`` with stable fingerprints assigned.

    Findings sharing (check, path, context, message) get an occurrence
    index in source order, so two identical violations in one function
    keep distinct identities and deleting one invalidates exactly one
    baseline entry.
    """
    ordered = sorted(range(len(findings)),
                     key=lambda i: (findings[i].path, findings[i].line,
                                    findings[i].col, findings[i].check))
    seen: Dict[Tuple[str, str, str, str], int] = {}
    stamped: List[Finding] = list(findings)
    for i in ordered:
        f = findings[i]
        key = (f.check, _normalize_path(f.path), f.context, f.message)
        index = seen.get(key, 0)
        seen[key] = index + 1
        digest = hashlib.sha1(
            "|".join((*key, str(index))).encode("utf-8")
        ).hexdigest()[:16]
        stamped[i] = replace(f, fingerprint=digest)
    return stamped


@dataclass
class BaselineEntry:
    """One accepted finding, as recorded in the baseline file."""

    fingerprint: str
    check: str
    path: str
    context: str
    message: str


@dataclass
class Baseline:
    """A loaded baseline plus the bookkeeping of one application."""

    path: str
    entries: List[BaselineEntry] = field(default_factory=list)
    #: Fingerprints of entries that matched a current finding.
    matched: List[str] = field(default_factory=list)

    @property
    def fingerprints(self) -> Dict[str, BaselineEntry]:
        return {entry.fingerprint: entry for entry in self.entries}

    @property
    def stale_entries(self) -> List[BaselineEntry]:
        """Entries whose finding no longer exists — the ratchet debt."""
        matched = set(self.matched)
        return [e for e in self.entries if e.fingerprint not in matched]


def load_baseline(path: str) -> Baseline:
    """Parse a baseline file; raises ``ValueError`` on malformed input."""
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if not isinstance(payload, dict) or "entries" not in payload:
        raise ValueError(f"{path}: not a lint baseline (no 'entries' key)")
    version = payload.get("version")
    if version != BASELINE_VERSION:
        raise ValueError(
            f"{path}: baseline version {version!r} != {BASELINE_VERSION}"
        )
    entries = [
        BaselineEntry(
            fingerprint=str(raw["fingerprint"]),
            check=str(raw.get("check", "")),
            path=str(raw.get("path", "")),
            context=str(raw.get("context", "")),
            message=str(raw.get("message", "")),
        )
        for raw in payload["entries"]
    ]
    return Baseline(path=path, entries=entries)


def apply_baseline(findings: Sequence[Finding],
                   baseline: Baseline) -> List[Finding]:
    """Mark fingerprinted ``findings`` accepted by ``baseline``.

    Returns copies with ``baselined=True`` where the fingerprint matches;
    records matches on ``baseline`` so :attr:`Baseline.stale_entries`
    reflects this run.  Suppressed findings never consume a baseline entry
    (a suppression is already an explicit decision).
    """
    known = baseline.fingerprints
    out: List[Finding] = []
    for f in findings:
        if not f.suppressed and f.fingerprint in known:
            baseline.matched.append(f.fingerprint)
            out.append(replace(f, baselined=True))
        else:
            out.append(f)
    return out


def render_baseline(findings: Sequence[Finding]) -> str:
    """Serialize the unsuppressed ``findings`` as a fresh baseline file."""
    entries = [
        {
            "fingerprint": f.fingerprint,
            "check": f.check,
            "path": _normalize_path(f.path),
            "context": f.context,
            "message": f.message,
        }
        for f in sorted(
            (f for f in findings if not f.suppressed),
            key=lambda f: (f.path, f.line, f.col, f.check),
        )
    ]
    payload = {
        "version": BASELINE_VERSION,
        "count": len(entries),
        "entries": entries,
    }
    return json.dumps(payload, indent=2) + "\n"


def write_baseline(findings: Sequence[Finding], path: str) -> int:
    """Write a fresh baseline; returns the number of entries recorded."""
    text = render_baseline(findings)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)
    return json.loads(text)["count"]
