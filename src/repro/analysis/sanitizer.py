"""Runtime tensor sanitizer: env-flagged contract checks for the hot path.

The static checks in :mod:`repro.analysis.checks` catch what is visible in
the source; this module catches what is only visible in the tensors — a
NaN that appeared three matmuls ago, a "probability" vector that drifted
off the simplex, two requests whose KV-arena row ranges overlap.  Guards
are compiled in permanently but *gated*: with the ``REPRO_SANITIZE`` env
var unset (the default) every guard is a single falsy branch, so the hot
path pays nothing.  Set ``REPRO_SANITIZE=1`` (or call :func:`enable` /
use the :func:`sanitized` context manager in tests) to arm them; a
violated contract raises :class:`SanitizerError` at the first operation
that can see it, instead of surfacing as garbage tokens much later.

Two flavours:

* **guard functions** (``guard_finite``, ``guard_simplex``,
  ``guard_disjoint_ranges``) — called inline where the invariant lives;
* **decorators** — :func:`tensor_contract` checks declared
  shape/dtype/contiguity properties of named array arguments on every
  call; :func:`hot_path` is a zero-cost marker that opts a function into
  the static ``hot-path-alloc`` check wherever it is defined.
"""

from __future__ import annotations

import functools
import inspect
import os
from contextlib import contextmanager
from typing import Dict, Iterator, Optional, Sequence, Tuple

import numpy as np

ENV_FLAG = "REPRO_SANITIZE"

#: Tri-state override: None -> follow the env var; True/False -> forced.
_FORCED: Optional[bool] = None


class SanitizerError(RuntimeError):
    """A runtime tensor contract was violated."""


def enabled() -> bool:
    """Whether guards are armed (override first, then ``REPRO_SANITIZE``)."""
    if _FORCED is not None:
        return _FORCED
    return os.environ.get(ENV_FLAG, "").strip() not in ("", "0", "false")


def enable(on: bool = True) -> None:
    """Force the sanitizer on/off for this process (tests, debugging)."""
    global _FORCED
    _FORCED = on


def reset() -> None:
    """Drop any :func:`enable` override; fall back to the env var."""
    global _FORCED
    _FORCED = None


@contextmanager
def sanitized(on: bool = True) -> Iterator[None]:
    """Arm (or disarm) the sanitizer for the duration of a ``with`` block."""
    global _FORCED
    previous = _FORCED
    _FORCED = on
    try:
        yield
    finally:
        _FORCED = previous


# -- markers ------------------------------------------------------------------


def hot_path(fn):
    """Mark ``fn`` as decode-hot-path code.

    Purely declarative at runtime (the function is returned unchanged);
    the static ``hot-path-alloc`` check treats the function body as hot
    regardless of which file it lives in.
    """
    fn.__repro_hot_path__ = True
    return fn


# -- guard functions ----------------------------------------------------------


def guard_finite(name: str, array: np.ndarray) -> None:
    """Raise if ``array`` contains NaN/Inf (armed mode only)."""
    if not enabled():
        return
    if not np.all(np.isfinite(array)):
        bad = int(np.size(array) - np.count_nonzero(np.isfinite(array)))
        raise SanitizerError(
            f"{name}: {bad} non-finite value(s) (NaN/Inf) in array of "
            f"shape {np.shape(array)}"
        )


def guard_simplex(name: str, probs: np.ndarray, atol: float = 1e-6) -> None:
    """Raise unless ``probs`` is a probability vector (armed mode only).

    Checks non-negativity, finiteness, and unit sum (within ``atol``).
    """
    if not enabled():
        return
    probs = np.asarray(probs)
    if not np.all(np.isfinite(probs)):
        raise SanitizerError(f"{name}: non-finite probability entries")
    if np.any(probs < 0.0):
        raise SanitizerError(
            f"{name}: negative probability (min={float(probs.min())!r})"
        )
    total = float(probs.sum())
    if abs(total - 1.0) > atol:
        raise SanitizerError(
            f"{name}: probabilities sum to {total!r}, expected 1 "
            f"(atol={atol})"
        )


def guard_dtype(name: str, array: np.ndarray, dtype) -> None:
    """Raise unless ``array.dtype`` matches ``dtype`` (armed mode only)."""
    if not enabled():
        return
    expected = np.dtype(dtype)
    if np.asarray(array).dtype != expected:
        raise SanitizerError(
            f"{name}: dtype {np.asarray(array).dtype} != expected {expected}"
        )


def guard_contiguous(name: str, array: np.ndarray) -> None:
    """Raise unless ``array`` is C-contiguous (armed mode only)."""
    if not enabled():
        return
    if not np.asarray(array).flags["C_CONTIGUOUS"]:
        raise SanitizerError(f"{name}: array is not C-contiguous")


def guard_disjoint_ranges(
    name: str,
    live: Sequence[Tuple[int, int]],
    new: Tuple[int, int],
) -> None:
    """Raise if half-open range ``new`` overlaps any range in ``live``.

    The KV-arena invariant: every request owns a private row range of the
    shared slab.  An overlap means two requests silently read/write each
    other's keys — the worst kind of cross-request corruption, because
    attention still produces plausible numbers.
    """
    if not enabled():
        return
    start, stop = new
    if start >= stop:
        raise SanitizerError(f"{name}: empty or inverted range [{start}, {stop})")
    for other_start, other_stop in live:
        if start < other_stop and other_start < stop:
            raise SanitizerError(
                f"{name}: range [{start}, {stop}) overlaps live range "
                f"[{other_start}, {other_stop})"
            )


# -- contract decorator -------------------------------------------------------


def tensor_contract(**specs: Dict[str, object]):
    """Declare per-argument tensor contracts, checked when armed.

    Each keyword names a parameter of the decorated function and maps to a
    spec dict with any of:

    * ``ndim``: required number of dimensions;
    * ``dtype``: required dtype (anything ``np.dtype`` accepts);
    * ``shape``: required shape tuple, ``None`` entries matching any size;
    * ``contiguous``: ``True`` to require C-contiguity.

    Example::

        @tensor_contract(mask={"ndim": 2}, positions={"ndim": 1,
                                                      "dtype": np.intp})
        def forward_masked(self, tokens, positions, mask, cache): ...

    Disabled mode costs one branch per call; the signature is bound only
    when armed.
    """

    def decorate(fn):
        signature = inspect.signature(fn)
        unknown = sorted(set(specs) - set(signature.parameters))
        if unknown:
            raise TypeError(
                f"tensor_contract on {fn.__qualname__}: no parameter(s) "
                f"{', '.join(unknown)}"
            )

        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            if enabled():
                bound = signature.bind(*args, **kwargs)
                for arg_name, spec in specs.items():
                    if arg_name not in bound.arguments:
                        continue
                    _check_spec(
                        f"{fn.__qualname__}({arg_name})",
                        bound.arguments[arg_name],
                        spec,
                    )
            return fn(*args, **kwargs)

        wrapper.__repro_contract__ = dict(specs)
        return wrapper

    return decorate


def _check_spec(name: str, value, spec: Dict[str, object]) -> None:
    array = np.asarray(value)
    ndim = spec.get("ndim")
    if ndim is not None and array.ndim != ndim:
        raise SanitizerError(f"{name}: ndim {array.ndim} != expected {ndim}")
    dtype = spec.get("dtype")
    if dtype is not None and array.dtype != np.dtype(dtype):
        raise SanitizerError(
            f"{name}: dtype {array.dtype} != expected {np.dtype(dtype)}"
        )
    shape = spec.get("shape")
    if shape is not None:
        if array.ndim != len(shape) or any(
            want is not None and have != want
            for have, want in zip(array.shape, shape)
        ):
            raise SanitizerError(
                f"{name}: shape {array.shape} != expected {tuple(shape)}"
            )
    if spec.get("contiguous") and not array.flags["C_CONTIGUOUS"]:
        raise SanitizerError(f"{name}: array is not C-contiguous")
