"""Reporters: render a :class:`~repro.analysis.runner.LintResult`.

Two formats:

* ``text`` — one ``path:line:col: [check] message`` per finding (the
  format editors and CI log scrapers already understand), interprocedural
  findings suffixed with their call-chain evidence
  (``[hot via tick → _fit_tree]``), a suppressed section when requested,
  the stale-suppression audit and baseline/ratchet status as warning
  sections, and a one-line summary;
* ``json`` — machine-readable, stable keys (fingerprints, evidence
  chains, baseline bookkeeping included), suitable for CI artifacts or
  diffing two runs.
"""

from __future__ import annotations

import json
from collections import Counter
from typing import List

from repro.analysis.core import Finding
from repro.analysis.runner import LintResult


def _format_finding(finding: Finding) -> str:
    line = f"{finding.location()}: [{finding.check}] {finding.message}"
    if finding.evidence:
        line += f" [hot via {' → '.join(finding.evidence)}]"
    if finding.suppressed:
        reason = finding.suppression_reason or "no reason given"
        line += f" (suppressed: {reason})"
    if finding.baselined:
        line += " (baselined)"
    return line


def render_text(result: LintResult, show_suppressed: bool = False) -> str:
    """Human-readable report."""
    out: List[str] = []
    for report in result.errors:
        out.append(f"{report.path}: error: {report.error}")
    for finding in result.new_findings:
        out.append(_format_finding(finding))
    if result.baselined:
        out.append("")
        out.append(f"baselined ({len(result.baselined)}):")
        for finding in result.baselined:
            out.append("  " + _format_finding(finding))
    if show_suppressed and result.suppressed:
        out.append("")
        out.append(f"suppressed ({len(result.suppressed)}):")
        for finding in result.suppressed:
            out.append("  " + _format_finding(finding))
    if result.stale_suppressions:
        out.append("")
        out.append(
            f"warning: {len(result.stale_suppressions)} stale "
            f"suppression(s) no longer silence any finding "
            f"(delete the pragma):"
        )
        for stale in result.stale_suppressions:
            reason = f" ({stale.reason})" if stale.reason else ""
            out.append(f"  {stale.location()}: # lint: {stale.tag}{reason}")
    if result.baseline is not None and result.baseline.stale_entries:
        out.append("")
        out.append(
            f"warning: {len(result.baseline.stale_entries)} stale "
            f"baseline entry(ies) match no current finding — the ratchet "
            f"requires removing them from {result.baseline.path}:"
        )
        for entry in result.baseline.stale_entries:
            out.append(f"  {entry.fingerprint}: [{entry.check}] "
                       f"{entry.path}: {entry.message}")
    by_check = Counter(f.check for f in result.new_findings)
    breakdown = ", ".join(
        f"{name}: {count}" for name, count in sorted(by_check.items())
    )
    parts = [f"{result.files_scanned} files scanned",
             f"{len(result.new_findings)} findings"]
    if by_check:
        parts[-1] += f" ({breakdown})"
    extras: List[str] = []
    if result.baselined:
        extras.append(f"{len(result.baselined)} baselined")
    if result.suppressed:
        extras.append(f"{len(result.suppressed)} suppressed")
    if extras and not by_check:
        parts[-1] += f" ({', '.join(extras)})"
    elif extras:
        parts.append(", ".join(extras))
    out.append(", ".join(parts))
    return "\n".join(out)


def render_json(result: LintResult) -> str:
    """Machine-readable report (stable key order)."""
    payload = {
        "files_scanned": result.files_scanned,
        "checks": list(result.checks),
        "counts": {
            "findings": len(result.new_findings),
            "baselined": len(result.baselined),
            "suppressed": len(result.suppressed),
            "errors": len(result.errors),
            "stale_suppressions": len(result.stale_suppressions),
        },
        "findings": [
            {
                "check": f.check,
                "path": f.path,
                "line": f.line,
                "col": f.col,
                "message": f.message,
                "context": f.context,
                "evidence": list(f.evidence),
                "fingerprint": f.fingerprint,
                "suppressed": f.suppressed,
                "suppression_reason": f.suppression_reason,
                "baselined": f.baselined,
            }
            for f in result.findings
        ],
        "stale_suppressions": [
            {"path": s.path, "line": s.line, "tag": s.tag,
             "reason": s.reason}
            for s in result.stale_suppressions
        ],
        "errors": [
            {"path": r.path, "error": r.error} for r in result.errors
        ],
        "exit_code": result.exit_code,
    }
    if result.baseline is not None:
        payload["baseline"] = {
            "path": result.baseline.path,
            "entries": len(result.baseline.entries),
            "matched": len(set(result.baseline.matched)),
            "stale": [
                {"fingerprint": e.fingerprint, "check": e.check,
                 "path": e.path, "message": e.message}
                for e in result.baseline.stale_entries
            ],
        }
    return json.dumps(payload, indent=2, sort_keys=False)
