"""Reporters: render a :class:`~repro.analysis.runner.LintResult`.

Two formats:

* ``text`` — one ``path:line:col: [check] message`` per finding (the
  format editors and CI log scrapers already understand), a suppressed
  section when requested, and a one-line summary;
* ``json`` — machine-readable, stable keys, suitable for dashboards or
  diffing two runs.
"""

from __future__ import annotations

import json
from collections import Counter
from typing import List

from repro.analysis.core import Finding
from repro.analysis.runner import LintResult


def _format_finding(finding: Finding) -> str:
    line = f"{finding.location()}: [{finding.check}] {finding.message}"
    if finding.suppressed:
        reason = finding.suppression_reason or "no reason given"
        line += f" (suppressed: {reason})"
    return line


def render_text(result: LintResult, show_suppressed: bool = False) -> str:
    """Human-readable report."""
    out: List[str] = []
    for report in result.errors:
        out.append(f"{report.path}: error: {report.error}")
    for finding in result.unsuppressed:
        out.append(_format_finding(finding))
    if show_suppressed and result.suppressed:
        out.append("")
        out.append(f"suppressed ({len(result.suppressed)}):")
        for finding in result.suppressed:
            out.append("  " + _format_finding(finding))
    by_check = Counter(f.check for f in result.unsuppressed)
    breakdown = ", ".join(
        f"{name}: {count}" for name, count in sorted(by_check.items())
    )
    summary = (
        f"{result.files_scanned} files scanned, "
        f"{len(result.unsuppressed)} findings"
        f" ({breakdown})" if by_check else
        f"{result.files_scanned} files scanned, 0 findings "
        f"({len(result.suppressed)} suppressed)"
    )
    out.append(summary)
    return "\n".join(out)


def render_json(result: LintResult) -> str:
    """Machine-readable report (stable key order)."""
    payload = {
        "files_scanned": result.files_scanned,
        "checks": list(result.checks),
        "counts": {
            "findings": len(result.unsuppressed),
            "suppressed": len(result.suppressed),
            "errors": len(result.errors),
        },
        "findings": [
            {
                "check": f.check,
                "path": f.path,
                "line": f.line,
                "col": f.col,
                "message": f.message,
                "suppressed": f.suppressed,
                "suppression_reason": f.suppression_reason,
            }
            for f in result.findings
        ],
        "errors": [
            {"path": r.path, "error": r.error} for r in result.errors
        ],
        "exit_code": result.exit_code,
    }
    return json.dumps(payload, indent=2, sort_keys=False)
