"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``demo`` — run the three engines on one prompt and compare LLM steps.
* ``tree`` — speculate a token tree and render it, with the verified path.
* ``serve`` — simulate continuous-batching serving under Poisson arrivals;
  ``--gateway`` serves the same workload through the async streaming
  gateway, ``--listen`` additionally exposes it over TCP/JSONL.
* ``chat`` — stream one generation from a gateway (``--local`` spins up an
  in-process stack; ``--connect`` talks to a running ``serve --listen``).
* ``loadgen`` — drive a gateway with concurrent async clients across
  tenants and SLO classes; report admission and latency behavior.
* ``models`` — list the paper-scale model descriptors and placements.
* ``latency`` — query the hardware cost model for a decoding-step latency.
* ``lint`` — run the repro static-analysis checks over source paths.
* ``trace`` — run a seeded workload, export the span/event trace as JSONL.
* ``metrics`` — run a seeded workload, dump the metrics registry.
* ``chaos`` — run a workload under seeded fault injection; report survival.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np


def _build_toy_pair(alignment: float, seed: int):
    """The demo substrate: toy LLM + coupled SSM."""
    from repro.model.config import ModelConfig
    from repro.model.coupled import CoupledSSM
    from repro.model.transformer import TransformerLM

    llm = TransformerLM(
        ModelConfig(vocab_size=96, d_model=48, n_layers=3, n_heads=4,
                    max_seq_len=256, name="cli-llm"),
        seed=seed,
    )
    ssm = CoupledSSM(llm, alignment=alignment, seed=seed + 1,
                     noise_scale=2.0)
    return llm, ssm


def cmd_demo(args: argparse.Namespace) -> int:
    """Compare incremental / sequence-spec / tree-spec on one prompt."""
    from repro.engine.generation import GenerationConfig
    from repro.engine.incremental import IncrementalEngine
    from repro.engine.sequence_spec import make_sequence_spec_engine
    from repro.engine.tree_spec import SpecInferEngine
    from repro.speculate.expansion import ExpansionConfig
    from repro.speculate.speculator import Speculator

    llm, ssm = _build_toy_pair(args.alignment, args.seed)
    rng = np.random.default_rng(args.seed)
    prompt = [int(t) for t in rng.integers(1, 96, size=8)]
    config = GenerationConfig(max_new_tokens=args.tokens, stop_on_eos=False)
    incremental = IncrementalEngine(llm).generate(prompt, config)
    sequence = make_sequence_spec_engine(llm, ssm).generate(prompt, config)
    tree = SpecInferEngine(
        llm,
        Speculator([ssm], ExpansionConfig.paper_default()),
    ).generate(prompt, config)
    lossless = incremental.tokens == sequence.tokens == tree.tokens
    print(f"{'engine':<28} {'LLM steps':>9} {'tokens/step':>12}")
    for name, result in (
        ("incremental decoding", incremental),
        ("sequence-based speculation", sequence),
        ("tree-based SpecInfer", tree),
    ):
        print(f"{name:<28} {result.num_llm_steps:>9} "
              f"{result.mean_tokens_per_step:>12.2f}")
    print(f"outputs identical: {lossless}")
    return 0 if lossless else 1


def cmd_tree(args: argparse.Namespace) -> int:
    """Speculate one token tree, verify it, render both."""
    from repro.model.sampling import SamplingConfig
    from repro.speculate.expansion import ExpansionConfig
    from repro.speculate.speculator import Speculator
    from repro.tree.render import render_tree, tree_stats_line
    from repro.verify.verifier import TokenTreeVerifier

    llm, ssm = _build_toy_pair(args.alignment, args.seed)
    rng = np.random.default_rng(args.seed)
    prompt = rng.integers(1, 96, size=8)
    speculator = Speculator(
        [ssm], ExpansionConfig(tuple(args.widths))
    )
    speculator.prefill(prompt[:-1])
    tree = speculator.speculate(int(prompt[-1]))
    cache = llm.new_cache()
    llm.prefill(prompt[:-1], cache)
    verifier = TokenTreeVerifier(llm, SamplingConfig(greedy=True))
    result = verifier.verify_step(tree, cache)
    print(tree_stats_line(tree))
    print(render_tree(tree, accepted_nodes=result.accepted_nodes))
    print(f"accepted {result.num_accepted_speculated} speculated tokens "
          f"+ bonus {result.bonus_token}")
    return 0


def _serve_stack(args: argparse.Namespace):
    """The serving substrate ``serve`` uses in both modes."""
    from repro.model.coupled import CoupledSSM
    from repro.serving.manager import RequestManager
    from repro.serving.session import SpeculativeSession
    from repro.speculate.expansion import ExpansionConfig
    from repro.speculate.speculator import Speculator
    from repro.workloads.arrival import PoissonArrivals
    from repro.workloads.datasets import make_dataset

    llm, _ = _build_toy_pair(args.alignment, args.seed)

    router = None
    if getattr(args, "pool", 0):
        from repro.serving.session import make_routed_factory
        from repro.speculate.pool import SpeculatorPool
        from repro.speculate.router import RouterConfig, SpeculatorRouter

        if args.pool < 2:
            raise SystemExit("--pool needs at least 2 members")
        sp_pool = SpeculatorPool.coupled_spread(
            llm, args.pool, args.alignment, seed=args.seed + 1,
            config=ExpansionConfig.paper_default(),
        )
        router = SpeculatorRouter(
            sp_pool,
            RouterConfig(policy=getattr(args, "router", "ucb"),
                         seed=args.seed),
        )
        factory = make_routed_factory(llm, sp_pool, router)
    else:
        def factory(request):
            return SpeculativeSession(
                request, llm,
                lambda: Speculator(
                    [CoupledSSM(llm, alignment=args.alignment,
                                seed=args.seed + 1, noise_scale=2.0)],
                    ExpansionConfig.paper_default(),
                ),
            )

    backend = None
    planner = None
    if getattr(args, "planner", False):
        # Per-tick planning needs the batch-wide shared pipeline, so
        # --planner implies fused verification.
        from repro.engine.pipeline import FusedBackend
        from repro.speculate.planner import TreePlanner

        backend = FusedBackend(llm)
        planner = TreePlanner.default()
    manager = RequestManager(factory, max_batch_size=args.batch,
                             backend=backend, planner=planner,
                             router=router)
    dataset = make_dataset(args.dataset, vocab_size=96)
    arrivals = PoissonArrivals(rate=args.rate, dataset=dataset,
                               seed=args.seed,
                               max_prompt_len=16).schedule(args.requests)
    return manager, arrivals


def _print_serve_report(manager, batch: int) -> None:
    from repro.serving.metrics import report_from_manager

    report = report_from_manager(manager)
    print(f"requests           : {report.num_requests}")
    print(f"iterations         : {report.total_iterations}")
    print(f"tokens generated   : {report.total_tokens}")
    print(f"tokens/iteration   : {report.tokens_per_iteration:.2f}")
    print(f"mean TTFT (iters)  : {report.mean_ttft:.2f}")
    print(f"p95 completion     : {report.p95_completion:.2f}")
    print(f"batch occupancy    : {report.mean_batch_occupancy:.2f}"
          f" / {batch}")


async def _serve_gateway(args: argparse.Namespace, manager, arrivals) -> int:
    """Serve the arrival schedule through the streaming gateway.

    Streams every request concurrently (admission order follows the
    canonical ``(iteration, request_id)`` schedule order), optionally
    exposing the gateway over TCP while the workload drains.  Under greedy
    verification the streamed tokens are bit-identical to the replay
    path's — only the iteration-timing metrics differ.
    """
    from repro.engine.generation import GenerationConfig
    from repro.serving.gateway import ServingGateway
    from repro.workloads.arrival import sort_arrivals

    config = GenerationConfig(max_new_tokens=args.tokens, stop_on_eos=False)
    gateway = ServingGateway(manager)
    await gateway.start()
    server = None
    if args.listen:
        from repro.serving.transport import start_gateway_server

        host, _, port = args.listen.rpartition(":")
        server = await start_gateway_server(
            gateway, host=host or "127.0.0.1", port=int(port))
        print(f"gateway listening on {server.host}:{server.port}")
    streams = [
        await gateway.submit(arrival.prompt, config)
        for arrival in sort_arrivals(arrivals)
    ]
    import asyncio

    totals = await asyncio.gather(*[s.collect() for s in streams])
    if server is not None:
        await server.close()
    await gateway.stop()
    _print_serve_report(manager, args.batch)
    print(f"gateway ticks      : {gateway._loop_driver.ticks}")
    print(f"tokens streamed    : {sum(len(t) for t in totals)}")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Serve a Poisson workload: replay simulation or streaming gateway."""
    import asyncio

    from repro.engine.generation import GenerationConfig
    from repro.workloads.arrival import drive_manager

    manager, arrivals = _serve_stack(args)
    if args.gateway or args.listen:
        return asyncio.run(_serve_gateway(args, manager, arrivals))
    drive_manager(
        manager, arrivals,
        GenerationConfig(max_new_tokens=args.tokens, stop_on_eos=False),
    )
    _print_serve_report(manager, args.batch)
    return 0


def cmd_chat(args: argparse.Namespace) -> int:
    """Stream one generation token-by-token from a gateway.

    ``--connect HOST:PORT`` talks to a running ``serve --listen`` gateway;
    ``--local`` spins up an in-process gateway + TCP server and chats with
    it over loopback (the full wire path, no second process needed).
    """
    import asyncio

    from repro.serving.client import GatewayClient

    if not args.connect and not args.local:
        print("repro chat: need --connect HOST:PORT or --local",
              file=sys.stderr)
        return 2
    if args.prompt:
        prompt = [int(t) for t in args.prompt.split()]
    else:
        from repro.workloads.datasets import make_dataset

        dataset = make_dataset(args.dataset, vocab_size=96)
        prompt = [int(t) for t in dataset.sample_prompt(max_len=12)]

    async def chat(host: str, port: int) -> int:
        client = await GatewayClient.connect(host, port)
        print(f"prompt : {' '.join(str(t) for t in prompt)}")
        print("tokens : ", end="", flush=True)
        status, reason, count = "done", None, 0
        async for event in client.generate(
                prompt, max_new_tokens=args.tokens,
                tenant=args.tenant, slo=args.slo, stop_on_eos=False):
            kind = event.get("event")
            if kind == "token":
                print(event["token"], end=" ", flush=True)
                count += 1
            elif kind == "stall":
                print("[stall]", end=" ", flush=True)
            elif kind == "resume":
                print("[resume]", end=" ", flush=True)
            elif kind in ("failed", "rejected", "error"):
                status, reason = str(kind), event.get("reason")
        print()
        await client.close()
        if status != "done":
            print(f"{status}: {reason}")
            return 1
        print(f"done   : {count} tokens")
        return 0

    async def local() -> int:
        from repro.serving.gateway import ServingGateway
        from repro.serving.manager import RequestManager
        from repro.serving.transport import start_gateway_server

        manager, _ = _serve_stack(args)
        gateway = ServingGateway(manager)
        await gateway.start()
        server = await start_gateway_server(gateway)
        try:
            return await chat(server.host, server.port)
        finally:
            await server.close()
            await gateway.stop()

    if args.local:
        return asyncio.run(local())
    host, _, port = args.connect.rpartition(":")
    return asyncio.run(chat(host or "127.0.0.1", int(port)))


def cmd_loadgen(args: argparse.Namespace) -> int:
    """Drive a gateway with concurrent async clients; print the report."""
    import asyncio

    from repro.obs import reset_observability
    from repro.serving.loadgen import LoadgenSpec, run_loadgen

    reset_observability()
    spec = LoadgenSpec(
        clients=args.clients,
        requests_per_client=args.requests_per_client,
        dataset=args.dataset,
        max_new_tokens=args.tokens,
        batch=args.batch,
        seed=args.seed,
        alignment=args.alignment,
        tenants=tuple(args.tenants),
        max_queue_depth=args.queue_depth,
        rate_per_tick=args.rate_limit,
        fault_rate=args.fault_rate,
    )
    report = asyncio.run(run_loadgen(spec))
    print(report.render())
    ok = (report.dropped == 0 and report.failed == 0
          and report.final_queue_depth == 0
          and report.peak_queue_depth <= report.queue_bound)
    return 0 if ok else 1


def cmd_models(args: argparse.Namespace) -> int:
    """List paper-scale model descriptors and default placements."""
    from repro.cluster.hardware import single_node_cluster, two_node_cluster
    from repro.cluster.models import PAPER_MODELS
    from repro.cluster.parallel import ParallelPlan

    print(f"{'model':<12} {'params':>9} {'fp16':>9} {'placement'}")
    for name, config in PAPER_MODELS.items():
        params = config.num_parameters()
        placement = "1 GPU"
        for cluster, label in (
            (single_node_cluster(), "node"),
            (two_node_cluster(), "2 nodes"),
        ):
            try:
                plan = ParallelPlan.for_model(config, cluster)
                placement = (f"tp={plan.tensor_parallel} "
                             f"pp={plan.pipeline_stages} ({label})")
                break
            except ValueError:
                continue
        else:
            placement = "does not fit"
        print(f"{name:<12} {params / 1e9:>8.2f}B {params * 2 / 1e9:>7.1f}GB "
              f"{placement}")
    return 0


def cmd_latency(args: argparse.Namespace) -> int:
    """Query the cost model for one decoding-step latency."""
    from repro.cluster.cost_model import LatencyModel
    from repro.cluster.hardware import single_node_cluster, two_node_cluster
    from repro.cluster.models import paper_model
    from repro.cluster.parallel import ParallelPlan

    cluster = two_node_cluster() if args.pp > 1 else single_node_cluster()
    model = paper_model(args.model)
    plan = ParallelPlan(tensor_parallel=args.tp, pipeline_stages=args.pp)
    latency = LatencyModel(model, plan, cluster)
    scored = args.batch * args.tree_tokens
    context = args.batch * (args.context + args.tree_tokens)
    step = latency.step_latency(scored, context)
    per_token = step / max(args.tokens_per_step, 1e-9)
    print(f"model {args.model}, tp={args.tp} pp={args.pp}, "
          f"batch={args.batch}, tree={args.tree_tokens} tokens")
    print(f"step latency      : {step * 1e3:.2f} ms")
    print(f"per-token latency : {per_token * 1e3:.2f} ms "
          f"(at {args.tokens_per_step} tokens/step)")
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    """Planning sweep: per-token latency vs speculation depth."""
    from repro.cluster.hardware import single_node_cluster, two_node_cluster
    from repro.cluster.models import paper_model
    from repro.cluster.sweep import best_point, sweep_speculation_depth

    cluster = two_node_cluster() if args.model == "llama-65b" \
        else single_node_cluster()
    points = sweep_speculation_depth(
        paper_model(args.model),
        paper_model(args.ssm),
        cluster,
        alpha=args.alpha,
        max_depth=args.max_depth,
    )
    best = best_point(points)
    print(f"speculation-depth sweep: {args.model} + {args.ssm}, "
          f"alpha={args.alpha}")
    for point in points:
        bar = "#" * max(1, int(point.latency * 2e3))
        marker = "  <- best" if point.x == best.x else ""
        print(f"depth {int(point.x):>2}: {point.latency * 1e3:6.2f} ms "
              f"{bar}{marker}")
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    """Run the static-analysis checks; exit 0 clean, 1 findings, 2 errors.

    With ``--baseline``, findings recorded in the baseline file are
    reported but excluded from the exit code (only *new* findings fail);
    ``--update-baseline`` rewrites the file from this run's findings.
    ``--fail-stale`` turns ratchet debt (stale baseline entries or stale
    suppressions) into exit code 1 — the CI ratchet step's mode.
    """
    from repro.analysis.baseline import write_baseline
    from repro.analysis.report import render_json, render_text
    from repro.analysis.runner import run_paths

    # When rewriting the baseline, don't load the old one: the file may
    # not exist yet, and its entries must not mask current findings.
    baseline_path = None if args.update_baseline else args.baseline
    try:
        result = run_paths(args.paths, check_names=args.check,
                           baseline_path=baseline_path)
    except (FileNotFoundError, ValueError) as exc:
        print(f"repro lint: {exc}", file=sys.stderr)
        return 2
    if args.update_baseline:
        target = args.baseline or ".lint-baseline.json"
        count = write_baseline(result.unsuppressed, target)
        print(f"repro lint: wrote {count} finding(s) to {target}")
        return 0
    if args.format == "json":
        print(render_json(result))
    else:
        print(render_text(result, show_suppressed=args.show_suppressed))
    exit_code = result.exit_code
    if args.fail_stale and exit_code == 0:
        stale_baseline = (result.baseline.stale_entries
                          if result.baseline is not None else [])
        if stale_baseline or result.stale_suppressions:
            return 1
    return exit_code


def _workload_spec(args: argparse.Namespace):
    """A :class:`~repro.obs.workload.WorkloadSpec` from shared CLI args."""
    from repro.obs.workload import WorkloadSpec

    return WorkloadSpec(
        dataset=args.workload,
        requests=args.requests,
        max_new_tokens=args.tokens,
        batch=args.batch,
        rate=args.rate,
        seed=args.seed,
        alignment=args.alignment,
        mode=args.mode,
        planner=getattr(args, "planner", False),
        pool=getattr(args, "pool", 0),
        router=getattr(args, "router", "ucb"),
    )


def _add_workload_args(parser: argparse.ArgumentParser,
                       positional: bool) -> None:
    """The seeded-workload knobs ``trace`` and ``metrics`` share."""
    from repro.workloads.datasets import DATASET_NAMES

    if positional:
        parser.add_argument("workload", choices=DATASET_NAMES,
                            help="prompt dataset driving the workload")
    else:
        parser.add_argument("--workload", choices=DATASET_NAMES,
                            default="Alpaca",
                            help="prompt dataset driving the workload")
    parser.add_argument("--requests", type=int, default=4)
    parser.add_argument("--tokens", type=int, default=8)
    parser.add_argument("--batch", type=int, default=4)
    parser.add_argument("--rate", type=float, default=1.0)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--alignment", type=float, default=0.88)
    parser.add_argument("--mode", choices=("block", "dense"),
                        default="block",
                        help="fused verification execution path")
    parser.add_argument("--planner", action="store_true",
                        help="re-solve the speculation budget every tick "
                             "against the hardware cost model")
    _add_pool_args(parser)


def _add_pool_args(parser: argparse.ArgumentParser) -> None:
    """The speculator-pool routing knobs serve/trace/metrics/chaos share."""
    parser.add_argument("--pool", type=int, default=0, metavar="N",
                        help="serve with a heterogeneous pool of N coupled "
                             "speculators routed per request (N >= 2; "
                             "0 keeps the single-SSM path)")
    parser.add_argument("--router",
                        choices=("ucb", "thompson", "round_robin"),
                        default="ucb",
                        help="routing policy over the speculator pool")


def cmd_trace(args: argparse.Namespace) -> int:
    """Run the seeded workload with tracing armed; emit JSONL spans.

    Output is byte-deterministic for a given argument set: records carry
    logical sequence numbers and seed-derived attributes only (host time
    goes to the metrics registry, not the trace).
    """
    from repro.obs import TRACER, reset_observability, tracing
    from repro.obs.workload import run_observed_workload

    reset_observability()
    with tracing():
        run_observed_workload(_workload_spec(args))
        if args.out == "-":
            n = TRACER.export_jsonl(sys.stdout)
        else:
            with open(args.out, "w", encoding="utf-8") as handle:
                n = TRACER.export_jsonl(handle)
            print(f"wrote {n} trace records to {args.out}")
    return 0


def cmd_metrics(args: argparse.Namespace) -> int:
    """Run the seeded workload; dump the metrics registry (text or JSON)."""
    from repro.obs import REGISTRY, reset_observability
    from repro.obs.workload import run_observed_workload
    from repro.reporting import render_metrics

    reset_observability()
    run_observed_workload(_workload_spec(args))
    print(render_metrics(
        REGISTRY.snapshot(), format=args.format,
        title=f"metrics registry after {args.workload} workload "
              f"({args.requests} requests, seed {args.seed})",
    ))
    return 0


def cmd_chaos(args: argparse.Namespace) -> int:
    """Serve a workload twice — clean, then under seeded fault injection —
    and report whether the serving stack survived.

    Survival means every request finished (none FAILED) and, because the
    workload verifies greedily, every finished request's tokens are
    bit-identical to the fault-free run despite preemptions, retries, and
    speculation fallbacks.  Exit 0 on survival, 1 otherwise.
    """
    from dataclasses import replace as dc_replace

    from repro.obs import REGISTRY, reset_observability
    from repro.obs.workload import run_observed_workload

    spec = _workload_spec(args)
    # The cost-model replay contributes nothing to the parity check.
    reset_observability()
    clean = run_observed_workload(dc_replace(spec, simulate=False))
    expected = {o.request_id: o.tokens for o in clean.finished_outputs()}

    reset_observability()
    chaotic = run_observed_workload(
        dc_replace(spec, simulate=False, fault_rate=args.fault_rate)
    )
    actual = {o.request_id: o.tokens for o in chaotic.finished_outputs()}
    failed = chaotic.failed_outputs()

    def metric(name: str) -> int:
        m = REGISTRY.get(name)
        return int(m.value) if m is not None else 0

    parity = actual == expected
    print(f"workload            : {args.workload} ({spec.requests} requests, "
          f"seed {spec.seed})")
    print(f"fault rate          : {args.fault_rate}")
    print(f"faults injected     : {metric('repro.faults.injected')} "
          f"of {metric('repro.faults.checks')} checks")
    print(f"  speculation       : {metric('repro.faults.speculation')}")
    print(f"  verification      : {metric('repro.faults.verification')}")
    print(f"  session           : {metric('repro.faults.session')}")
    print(f"  kv_pressure       : {metric('repro.faults.kv_pressure')}")
    print(f"preemptions         : {metric('repro.serving.preemptions')}")
    print(f"retries             : {metric('repro.serving.retries')}")
    print(f"fallback ticks      : {metric('repro.engine.fallback_ticks')}")
    print(f"requests finished   : {len(actual)} / {spec.requests}")
    print(f"requests failed     : {len(failed)}")
    print(f"token parity        : {parity}")
    survived = parity and not failed and len(actual) == len(expected)
    print(f"survived            : {survived}")
    return 0 if survived else 1


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SpecInfer reproduction command-line interface",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    demo = sub.add_parser("demo", help="compare the three decoding engines")
    demo.add_argument("--tokens", type=int, default=32)
    demo.add_argument("--alignment", type=float, default=0.88)
    demo.add_argument("--seed", type=int, default=7)
    demo.set_defaults(handler=cmd_demo)

    tree = sub.add_parser("tree", help="speculate and render a token tree")
    tree.add_argument("--widths", type=int, nargs="+",
                      default=[1, 1, 3, 1, 1, 1, 1, 1])
    tree.add_argument("--alignment", type=float, default=0.88)
    tree.add_argument("--seed", type=int, default=7)
    tree.set_defaults(handler=cmd_tree)

    serve = sub.add_parser("serve", help="simulate continuous batching")
    serve.add_argument("--requests", type=int, default=8)
    serve.add_argument("--rate", type=float, default=0.5)
    serve.add_argument("--batch", type=int, default=4)
    serve.add_argument("--tokens", type=int, default=16)
    serve.add_argument("--dataset", default="Alpaca")
    serve.add_argument("--alignment", type=float, default=0.88)
    serve.add_argument("--seed", type=int, default=7)
    serve.add_argument("--planner", action="store_true",
                       help="plan speculation budgets per tick against the "
                            "hardware cost model (implies fused verify)")
    _add_pool_args(serve)
    serve.add_argument("--gateway", action="store_true",
                       help="serve through the async streaming gateway "
                            "instead of the replay simulation")
    serve.add_argument("--listen", metavar="HOST:PORT",
                       help="also expose the gateway over TCP/JSONL while "
                            "the workload drains (implies --gateway)")
    serve.set_defaults(handler=cmd_serve)

    chat = sub.add_parser(
        "chat", help="stream one generation from a serving gateway"
    )
    chat.add_argument("--connect", metavar="HOST:PORT",
                      help="address of a running gateway server")
    chat.add_argument("--local", action="store_true",
                      help="spin up an in-process gateway and chat with it "
                           "over loopback TCP")
    chat.add_argument("--prompt", metavar="TOKENS",
                      help="space-separated prompt token ids "
                           "(default: sample from --dataset)")
    chat.add_argument("--tokens", type=int, default=16)
    chat.add_argument("--tenant", default="default")
    chat.add_argument("--slo", choices=("interactive", "batch"),
                      default="interactive")
    chat.add_argument("--dataset", default="Alpaca")
    chat.add_argument("--requests", type=int, default=1,
                      help=argparse.SUPPRESS)  # _serve_stack compatibility
    chat.add_argument("--rate", type=float, default=1.0,
                      help=argparse.SUPPRESS)
    chat.add_argument("--batch", type=int, default=4,
                      help=argparse.SUPPRESS)
    chat.add_argument("--alignment", type=float, default=0.88)
    chat.add_argument("--seed", type=int, default=7)
    chat.set_defaults(handler=cmd_chat)

    loadgen = sub.add_parser(
        "loadgen",
        help="drive a gateway with concurrent async clients",
    )
    loadgen.add_argument("--clients", type=int, default=8)
    loadgen.add_argument("--requests-per-client", type=int, default=2)
    loadgen.add_argument("--tokens", type=int, default=8)
    loadgen.add_argument("--batch", type=int, default=4)
    loadgen.add_argument("--dataset", default="Alpaca")
    loadgen.add_argument("--seed", type=int, default=7)
    loadgen.add_argument("--alignment", type=float, default=0.88)
    loadgen.add_argument("--tenants", nargs="+", default=["alpha", "beta"])
    loadgen.add_argument("--queue-depth", type=int, default=4,
                         help="per-tenant admission queue bound")
    loadgen.add_argument("--rate-limit", type=float, default=None,
                         help="per-tenant admissions per tick")
    loadgen.add_argument("--fault-rate", type=float, default=0.0,
                         help="per-site fault-injection probability")
    loadgen.set_defaults(handler=cmd_loadgen)

    models = sub.add_parser("models", help="list paper model descriptors")
    models.set_defaults(handler=cmd_models)

    latency = sub.add_parser("latency", help="query the cost model")
    latency.add_argument("--model", default="llama-7b")
    latency.add_argument("--tp", type=int, default=1)
    latency.add_argument("--pp", type=int, default=1)
    latency.add_argument("--batch", type=int, default=1)
    latency.add_argument("--tree-tokens", type=int, default=1)
    latency.add_argument("--context", type=int, default=128)
    latency.add_argument("--tokens-per-step", type=float, default=1.0)
    latency.set_defaults(handler=cmd_latency)

    sweep = sub.add_parser("sweep",
                           help="speculation-depth planning sweep")
    sweep.add_argument("--model", default="llama-7b")
    sweep.add_argument("--ssm", default="llama-68m")
    sweep.add_argument("--alpha", type=float, default=0.7)
    sweep.add_argument("--max-depth", type=int, default=12)
    sweep.set_defaults(handler=cmd_sweep)

    lint = sub.add_parser(
        "lint", help="run the repro static-analysis checks"
    )
    lint.add_argument("paths", nargs="+",
                      help="files or directories to lint")
    lint.add_argument("--format", choices=("text", "json"), default="text")
    lint.add_argument("--check", action="append", metavar="NAME",
                      help="run only the named check (repeatable)")
    lint.add_argument("--show-suppressed", action="store_true",
                      help="also list suppressed findings")
    lint.add_argument("--baseline", metavar="PATH",
                      help="accepted-findings file; only new findings "
                           "fail (see .lint-baseline.json)")
    lint.add_argument("--update-baseline", action="store_true",
                      help="rewrite the baseline from this run's "
                           "findings and exit 0")
    lint.add_argument("--fail-stale", action="store_true",
                      help="exit 1 on ratchet debt: stale baseline "
                           "entries or stale suppressions")
    lint.set_defaults(handler=cmd_lint)

    trace = sub.add_parser(
        "trace",
        help="run a seeded workload, export the trace as JSONL",
    )
    _add_workload_args(trace, positional=True)
    trace.add_argument("--out", default="-", metavar="PATH",
                       help="JSONL output path ('-' for stdout)")
    trace.set_defaults(handler=cmd_trace)

    metrics = sub.add_parser(
        "metrics",
        help="run a seeded workload, dump the metrics registry",
    )
    _add_workload_args(metrics, positional=False)
    metrics.add_argument("--format", choices=("text", "json"),
                         default="text")
    metrics.set_defaults(handler=cmd_metrics)

    chaos = sub.add_parser(
        "chaos",
        help="serve a workload under seeded fault injection",
    )
    _add_workload_args(chaos, positional=True)
    chaos.add_argument("--fault-rate", type=float, default=0.05,
                       help="per-site fault-injection probability")
    chaos.set_defaults(handler=cmd_chaos)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
