"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``demo`` — run the three engines on one prompt and compare LLM steps.
* ``tree`` — speculate a token tree and render it, with the verified path.
* ``serve`` — simulate continuous-batching serving under Poisson arrivals.
* ``models`` — list the paper-scale model descriptors and placements.
* ``latency`` — query the hardware cost model for a decoding-step latency.
* ``lint`` — run the repro static-analysis checks over source paths.
* ``trace`` — run a seeded workload, export the span/event trace as JSONL.
* ``metrics`` — run a seeded workload, dump the metrics registry.
* ``chaos`` — run a workload under seeded fault injection; report survival.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np


def _build_toy_pair(alignment: float, seed: int):
    """The demo substrate: toy LLM + coupled SSM."""
    from repro.model.config import ModelConfig
    from repro.model.coupled import CoupledSSM
    from repro.model.transformer import TransformerLM

    llm = TransformerLM(
        ModelConfig(vocab_size=96, d_model=48, n_layers=3, n_heads=4,
                    max_seq_len=256, name="cli-llm"),
        seed=seed,
    )
    ssm = CoupledSSM(llm, alignment=alignment, seed=seed + 1,
                     noise_scale=2.0)
    return llm, ssm


def cmd_demo(args: argparse.Namespace) -> int:
    """Compare incremental / sequence-spec / tree-spec on one prompt."""
    from repro.engine.generation import GenerationConfig
    from repro.engine.incremental import IncrementalEngine
    from repro.engine.sequence_spec import make_sequence_spec_engine
    from repro.engine.tree_spec import SpecInferEngine
    from repro.speculate.expansion import ExpansionConfig
    from repro.speculate.speculator import Speculator

    llm, ssm = _build_toy_pair(args.alignment, args.seed)
    rng = np.random.default_rng(args.seed)
    prompt = [int(t) for t in rng.integers(1, 96, size=8)]
    config = GenerationConfig(max_new_tokens=args.tokens, stop_on_eos=False)
    incremental = IncrementalEngine(llm).generate(prompt, config)
    sequence = make_sequence_spec_engine(llm, ssm).generate(prompt, config)
    tree = SpecInferEngine(
        llm,
        Speculator([ssm], ExpansionConfig.paper_default()),
    ).generate(prompt, config)
    lossless = incremental.tokens == sequence.tokens == tree.tokens
    print(f"{'engine':<28} {'LLM steps':>9} {'tokens/step':>12}")
    for name, result in (
        ("incremental decoding", incremental),
        ("sequence-based speculation", sequence),
        ("tree-based SpecInfer", tree),
    ):
        print(f"{name:<28} {result.num_llm_steps:>9} "
              f"{result.mean_tokens_per_step:>12.2f}")
    print(f"outputs identical: {lossless}")
    return 0 if lossless else 1


def cmd_tree(args: argparse.Namespace) -> int:
    """Speculate one token tree, verify it, render both."""
    from repro.model.sampling import SamplingConfig
    from repro.speculate.expansion import ExpansionConfig
    from repro.speculate.speculator import Speculator
    from repro.tree.render import render_tree, tree_stats_line
    from repro.verify.verifier import TokenTreeVerifier

    llm, ssm = _build_toy_pair(args.alignment, args.seed)
    rng = np.random.default_rng(args.seed)
    prompt = rng.integers(1, 96, size=8)
    speculator = Speculator(
        [ssm], ExpansionConfig(tuple(args.widths))
    )
    speculator.prefill(prompt[:-1])
    tree = speculator.speculate(int(prompt[-1]))
    cache = llm.new_cache()
    llm.prefill(prompt[:-1], cache)
    verifier = TokenTreeVerifier(llm, SamplingConfig(greedy=True))
    result = verifier.verify_step(tree, cache)
    print(tree_stats_line(tree))
    print(render_tree(tree, accepted_nodes=result.accepted_nodes))
    print(f"accepted {result.num_accepted_speculated} speculated tokens "
          f"+ bonus {result.bonus_token}")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Simulate continuous-batching serving under Poisson arrivals."""
    from repro.engine.generation import GenerationConfig
    from repro.serving.manager import RequestManager
    from repro.serving.metrics import report_from_manager
    from repro.serving.session import SpeculativeSession
    from repro.speculate.expansion import ExpansionConfig
    from repro.speculate.speculator import Speculator
    from repro.model.coupled import CoupledSSM
    from repro.workloads.arrival import PoissonArrivals, drive_manager
    from repro.workloads.datasets import make_dataset

    llm, _ = _build_toy_pair(args.alignment, args.seed)

    def factory(request):
        return SpeculativeSession(
            request, llm,
            lambda: Speculator(
                [CoupledSSM(llm, alignment=args.alignment,
                            seed=args.seed + 1, noise_scale=2.0)],
                ExpansionConfig.paper_default(),
            ),
        )

    manager = RequestManager(factory, max_batch_size=args.batch)
    dataset = make_dataset(args.dataset, vocab_size=96)
    arrivals = PoissonArrivals(rate=args.rate, dataset=dataset,
                               seed=args.seed,
                               max_prompt_len=16).schedule(args.requests)
    drive_manager(
        manager, arrivals,
        GenerationConfig(max_new_tokens=args.tokens, stop_on_eos=False),
    )
    report = report_from_manager(manager)
    print(f"requests           : {report.num_requests}")
    print(f"iterations         : {report.total_iterations}")
    print(f"tokens generated   : {report.total_tokens}")
    print(f"tokens/iteration   : {report.tokens_per_iteration:.2f}")
    print(f"mean TTFT (iters)  : {report.mean_ttft:.2f}")
    print(f"p95 completion     : {report.p95_completion:.2f}")
    print(f"batch occupancy    : {report.mean_batch_occupancy:.2f}"
          f" / {args.batch}")
    return 0


def cmd_models(args: argparse.Namespace) -> int:
    """List paper-scale model descriptors and default placements."""
    from repro.cluster.hardware import single_node_cluster, two_node_cluster
    from repro.cluster.models import PAPER_MODELS
    from repro.cluster.parallel import ParallelPlan

    print(f"{'model':<12} {'params':>9} {'fp16':>9} {'placement'}")
    for name, config in PAPER_MODELS.items():
        params = config.num_parameters()
        placement = "1 GPU"
        for cluster, label in (
            (single_node_cluster(), "node"),
            (two_node_cluster(), "2 nodes"),
        ):
            try:
                plan = ParallelPlan.for_model(config, cluster)
                placement = (f"tp={plan.tensor_parallel} "
                             f"pp={plan.pipeline_stages} ({label})")
                break
            except ValueError:
                continue
        else:
            placement = "does not fit"
        print(f"{name:<12} {params / 1e9:>8.2f}B {params * 2 / 1e9:>7.1f}GB "
              f"{placement}")
    return 0


def cmd_latency(args: argparse.Namespace) -> int:
    """Query the cost model for one decoding-step latency."""
    from repro.cluster.cost_model import LatencyModel
    from repro.cluster.hardware import single_node_cluster, two_node_cluster
    from repro.cluster.models import paper_model
    from repro.cluster.parallel import ParallelPlan

    cluster = two_node_cluster() if args.pp > 1 else single_node_cluster()
    model = paper_model(args.model)
    plan = ParallelPlan(tensor_parallel=args.tp, pipeline_stages=args.pp)
    latency = LatencyModel(model, plan, cluster)
    scored = args.batch * args.tree_tokens
    context = args.batch * (args.context + args.tree_tokens)
    step = latency.step_latency(scored, context)
    per_token = step / max(args.tokens_per_step, 1e-9)
    print(f"model {args.model}, tp={args.tp} pp={args.pp}, "
          f"batch={args.batch}, tree={args.tree_tokens} tokens")
    print(f"step latency      : {step * 1e3:.2f} ms")
    print(f"per-token latency : {per_token * 1e3:.2f} ms "
          f"(at {args.tokens_per_step} tokens/step)")
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    """Planning sweep: per-token latency vs speculation depth."""
    from repro.cluster.hardware import single_node_cluster, two_node_cluster
    from repro.cluster.models import paper_model
    from repro.cluster.sweep import best_point, sweep_speculation_depth

    cluster = two_node_cluster() if args.model == "llama-65b" \
        else single_node_cluster()
    points = sweep_speculation_depth(
        paper_model(args.model),
        paper_model(args.ssm),
        cluster,
        alpha=args.alpha,
        max_depth=args.max_depth,
    )
    best = best_point(points)
    print(f"speculation-depth sweep: {args.model} + {args.ssm}, "
          f"alpha={args.alpha}")
    for point in points:
        bar = "#" * max(1, int(point.latency * 2e3))
        marker = "  <- best" if point.x == best.x else ""
        print(f"depth {int(point.x):>2}: {point.latency * 1e3:6.2f} ms "
              f"{bar}{marker}")
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    """Run the static-analysis checks; exit 0 clean, 1 findings, 2 errors.

    With ``--baseline``, findings recorded in the baseline file are
    reported but excluded from the exit code (only *new* findings fail);
    ``--update-baseline`` rewrites the file from this run's findings.
    ``--fail-stale`` turns ratchet debt (stale baseline entries or stale
    suppressions) into exit code 1 — the CI ratchet step's mode.
    """
    from repro.analysis.baseline import write_baseline
    from repro.analysis.report import render_json, render_text
    from repro.analysis.runner import run_paths

    # When rewriting the baseline, don't load the old one: the file may
    # not exist yet, and its entries must not mask current findings.
    baseline_path = None if args.update_baseline else args.baseline
    try:
        result = run_paths(args.paths, check_names=args.check,
                           baseline_path=baseline_path)
    except (FileNotFoundError, ValueError) as exc:
        print(f"repro lint: {exc}", file=sys.stderr)
        return 2
    if args.update_baseline:
        target = args.baseline or ".lint-baseline.json"
        count = write_baseline(result.unsuppressed, target)
        print(f"repro lint: wrote {count} finding(s) to {target}")
        return 0
    if args.format == "json":
        print(render_json(result))
    else:
        print(render_text(result, show_suppressed=args.show_suppressed))
    exit_code = result.exit_code
    if args.fail_stale and exit_code == 0:
        stale_baseline = (result.baseline.stale_entries
                          if result.baseline is not None else [])
        if stale_baseline or result.stale_suppressions:
            return 1
    return exit_code


def _workload_spec(args: argparse.Namespace):
    """A :class:`~repro.obs.workload.WorkloadSpec` from shared CLI args."""
    from repro.obs.workload import WorkloadSpec

    return WorkloadSpec(
        dataset=args.workload,
        requests=args.requests,
        max_new_tokens=args.tokens,
        batch=args.batch,
        rate=args.rate,
        seed=args.seed,
        alignment=args.alignment,
        mode=args.mode,
    )


def _add_workload_args(parser: argparse.ArgumentParser,
                       positional: bool) -> None:
    """The seeded-workload knobs ``trace`` and ``metrics`` share."""
    from repro.workloads.datasets import DATASET_NAMES

    if positional:
        parser.add_argument("workload", choices=DATASET_NAMES,
                            help="prompt dataset driving the workload")
    else:
        parser.add_argument("--workload", choices=DATASET_NAMES,
                            default="Alpaca",
                            help="prompt dataset driving the workload")
    parser.add_argument("--requests", type=int, default=4)
    parser.add_argument("--tokens", type=int, default=8)
    parser.add_argument("--batch", type=int, default=4)
    parser.add_argument("--rate", type=float, default=1.0)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--alignment", type=float, default=0.88)
    parser.add_argument("--mode", choices=("block", "dense"),
                        default="block",
                        help="fused verification execution path")


def cmd_trace(args: argparse.Namespace) -> int:
    """Run the seeded workload with tracing armed; emit JSONL spans.

    Output is byte-deterministic for a given argument set: records carry
    logical sequence numbers and seed-derived attributes only (host time
    goes to the metrics registry, not the trace).
    """
    from repro.obs import TRACER, reset_observability, tracing
    from repro.obs.workload import run_observed_workload

    reset_observability()
    with tracing():
        run_observed_workload(_workload_spec(args))
        if args.out == "-":
            n = TRACER.export_jsonl(sys.stdout)
        else:
            with open(args.out, "w", encoding="utf-8") as handle:
                n = TRACER.export_jsonl(handle)
            print(f"wrote {n} trace records to {args.out}")
    return 0


def cmd_metrics(args: argparse.Namespace) -> int:
    """Run the seeded workload; dump the metrics registry (text or JSON)."""
    from repro.obs import REGISTRY, reset_observability
    from repro.obs.workload import run_observed_workload
    from repro.reporting import render_metrics

    reset_observability()
    run_observed_workload(_workload_spec(args))
    print(render_metrics(
        REGISTRY.snapshot(), format=args.format,
        title=f"metrics registry after {args.workload} workload "
              f"({args.requests} requests, seed {args.seed})",
    ))
    return 0


def cmd_chaos(args: argparse.Namespace) -> int:
    """Serve a workload twice — clean, then under seeded fault injection —
    and report whether the serving stack survived.

    Survival means every request finished (none FAILED) and, because the
    workload verifies greedily, every finished request's tokens are
    bit-identical to the fault-free run despite preemptions, retries, and
    speculation fallbacks.  Exit 0 on survival, 1 otherwise.
    """
    from dataclasses import replace as dc_replace

    from repro.obs import REGISTRY, reset_observability
    from repro.obs.workload import run_observed_workload

    spec = _workload_spec(args)
    # The cost-model replay contributes nothing to the parity check.
    reset_observability()
    clean = run_observed_workload(dc_replace(spec, simulate=False))
    expected = {o.request_id: o.tokens for o in clean.finished_outputs()}

    reset_observability()
    chaotic = run_observed_workload(
        dc_replace(spec, simulate=False, fault_rate=args.fault_rate)
    )
    actual = {o.request_id: o.tokens for o in chaotic.finished_outputs()}
    failed = chaotic.failed_outputs()

    def metric(name: str) -> int:
        m = REGISTRY.get(name)
        return int(m.value) if m is not None else 0

    parity = actual == expected
    print(f"workload            : {args.workload} ({spec.requests} requests, "
          f"seed {spec.seed})")
    print(f"fault rate          : {args.fault_rate}")
    print(f"faults injected     : {metric('repro.faults.injected')} "
          f"of {metric('repro.faults.checks')} checks")
    print(f"  speculation       : {metric('repro.faults.speculation')}")
    print(f"  verification      : {metric('repro.faults.verification')}")
    print(f"  session           : {metric('repro.faults.session')}")
    print(f"  kv_pressure       : {metric('repro.faults.kv_pressure')}")
    print(f"preemptions         : {metric('repro.serving.preemptions')}")
    print(f"retries             : {metric('repro.serving.retries')}")
    print(f"fallback ticks      : {metric('repro.engine.fallback_ticks')}")
    print(f"requests finished   : {len(actual)} / {spec.requests}")
    print(f"requests failed     : {len(failed)}")
    print(f"token parity        : {parity}")
    survived = parity and not failed and len(actual) == len(expected)
    print(f"survived            : {survived}")
    return 0 if survived else 1


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SpecInfer reproduction command-line interface",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    demo = sub.add_parser("demo", help="compare the three decoding engines")
    demo.add_argument("--tokens", type=int, default=32)
    demo.add_argument("--alignment", type=float, default=0.88)
    demo.add_argument("--seed", type=int, default=7)
    demo.set_defaults(handler=cmd_demo)

    tree = sub.add_parser("tree", help="speculate and render a token tree")
    tree.add_argument("--widths", type=int, nargs="+",
                      default=[1, 1, 3, 1, 1, 1, 1, 1])
    tree.add_argument("--alignment", type=float, default=0.88)
    tree.add_argument("--seed", type=int, default=7)
    tree.set_defaults(handler=cmd_tree)

    serve = sub.add_parser("serve", help="simulate continuous batching")
    serve.add_argument("--requests", type=int, default=8)
    serve.add_argument("--rate", type=float, default=0.5)
    serve.add_argument("--batch", type=int, default=4)
    serve.add_argument("--tokens", type=int, default=16)
    serve.add_argument("--dataset", default="Alpaca")
    serve.add_argument("--alignment", type=float, default=0.88)
    serve.add_argument("--seed", type=int, default=7)
    serve.set_defaults(handler=cmd_serve)

    models = sub.add_parser("models", help="list paper model descriptors")
    models.set_defaults(handler=cmd_models)

    latency = sub.add_parser("latency", help="query the cost model")
    latency.add_argument("--model", default="llama-7b")
    latency.add_argument("--tp", type=int, default=1)
    latency.add_argument("--pp", type=int, default=1)
    latency.add_argument("--batch", type=int, default=1)
    latency.add_argument("--tree-tokens", type=int, default=1)
    latency.add_argument("--context", type=int, default=128)
    latency.add_argument("--tokens-per-step", type=float, default=1.0)
    latency.set_defaults(handler=cmd_latency)

    sweep = sub.add_parser("sweep",
                           help="speculation-depth planning sweep")
    sweep.add_argument("--model", default="llama-7b")
    sweep.add_argument("--ssm", default="llama-68m")
    sweep.add_argument("--alpha", type=float, default=0.7)
    sweep.add_argument("--max-depth", type=int, default=12)
    sweep.set_defaults(handler=cmd_sweep)

    lint = sub.add_parser(
        "lint", help="run the repro static-analysis checks"
    )
    lint.add_argument("paths", nargs="+",
                      help="files or directories to lint")
    lint.add_argument("--format", choices=("text", "json"), default="text")
    lint.add_argument("--check", action="append", metavar="NAME",
                      help="run only the named check (repeatable)")
    lint.add_argument("--show-suppressed", action="store_true",
                      help="also list suppressed findings")
    lint.add_argument("--baseline", metavar="PATH",
                      help="accepted-findings file; only new findings "
                           "fail (see .lint-baseline.json)")
    lint.add_argument("--update-baseline", action="store_true",
                      help="rewrite the baseline from this run's "
                           "findings and exit 0")
    lint.add_argument("--fail-stale", action="store_true",
                      help="exit 1 on ratchet debt: stale baseline "
                           "entries or stale suppressions")
    lint.set_defaults(handler=cmd_lint)

    trace = sub.add_parser(
        "trace",
        help="run a seeded workload, export the trace as JSONL",
    )
    _add_workload_args(trace, positional=True)
    trace.add_argument("--out", default="-", metavar="PATH",
                       help="JSONL output path ('-' for stdout)")
    trace.set_defaults(handler=cmd_trace)

    metrics = sub.add_parser(
        "metrics",
        help="run a seeded workload, dump the metrics registry",
    )
    _add_workload_args(metrics, positional=False)
    metrics.add_argument("--format", choices=("text", "json"),
                         default="text")
    metrics.set_defaults(handler=cmd_metrics)

    chaos = sub.add_parser(
        "chaos",
        help="serve a workload under seeded fault injection",
    )
    _add_workload_args(chaos, positional=True)
    chaos.add_argument("--fault-rate", type=float, default=0.05,
                       help="per-site fault-injection probability")
    chaos.set_defaults(handler=cmd_chaos)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
