"""Token trees: the data structure at the heart of SpecInfer.

* :mod:`repro.tree.token_tree` -- :class:`TokenTree` (paper Definition 3.1),
  node bookkeeping, sequence sets, and tree merge (Definition 3.2).
* :mod:`repro.tree.masks` -- DFS linearization, the topology-aware causal
  mask, and depth-based positions for tree-parallel decoding (section 4.2).
"""

from repro.tree.token_tree import TokenTree, TreeNode, merge_trees
from repro.tree.masks import (
    LinearizedTree,
    linearize,
    topology_causal_mask,
    tree_positions,
)

__all__ = [
    "TokenTree",
    "TreeNode",
    "merge_trees",
    "LinearizedTree",
    "linearize",
    "topology_causal_mask",
    "tree_positions",
]
