"""Tree linearization, topology-aware causal masks, and tree positions.

This module implements the machinery of paper section 4.2 (tree-based
parallel decoding):

* tokens of a token tree are laid out in the KV cache in **DFS order**;
* a **topology-aware causal mask** lets a single fused attention pass compute,
  for every node ``u``, exactly the attention it would receive if its
  root-to-``u`` sequence were decoded alone (Definition 4.1, tree attention);
* positions are **depth-based** (``prefix_len + depth``), so shared prefixes
  share position embeddings across branches, exactly as in sequence decoding.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.model.attention import NEG_INF, _mask_buffer
from repro.tree.token_tree import TokenTree


@dataclass(frozen=True)
class LinearizedTree:
    """A token tree flattened to DFS order for tree-parallel decoding.

    Attributes:
        order: ``order[i]`` is the tree-node index occupying linear slot ``i``.
        slot_of: inverse mapping, ``slot_of[node_index] = linear slot``.
        tokens: ``(n,)`` token ids in linear order.
        parents: ``(n,)`` linear slot of each slot's parent (-1 for the root).
        depths: ``(n,)`` node depths in linear order.
    """

    order: List[int]
    slot_of: Dict[int, int]
    tokens: np.ndarray
    parents: np.ndarray
    depths: np.ndarray

    @property
    def num_tokens(self) -> int:
        return len(self.order)


def linearize(tree: TokenTree) -> LinearizedTree:
    """Flatten ``tree`` to DFS order (the KV-cache layout of Figure 4)."""
    order = tree.dfs_order()
    slot_of = {node_idx: slot for slot, node_idx in enumerate(order)}
    tokens = np.array([tree.nodes[i].token for i in order], dtype=np.intp)
    parents = np.array(
        [
            -1 if tree.nodes[i].parent == -1 else slot_of[tree.nodes[i].parent]
            for i in order
        ],
        dtype=np.intp,
    )
    depths = np.array([tree.nodes[i].depth for i in order], dtype=np.intp)
    return LinearizedTree(
        order=order, slot_of=slot_of, tokens=tokens, parents=parents, depths=depths
    )


def topology_causal_mask(
    lin: LinearizedTree, prefix_len: int, dtype: str = "float64",
    out: Optional[np.ndarray] = None,
) -> np.ndarray:
    """The topology-aware causal mask of section 4.2.

    Returns an additive mask of shape ``(n, prefix_len + n)`` where ``n`` is
    the number of tree tokens.  Tree token ``j`` may attend to:

    * every position of the already-verified prefix (columns ``< prefix_len``),
    * itself and its tree ancestors (columns ``prefix_len + k`` where slot
      ``k`` is on the root-to-``j`` path).

    Everything else is ``-inf`` — in particular *siblings and their subtrees*,
    which is what repairs the causality violations that naive batching of
    tree tokens would introduce (the paper's ``t7`` vs ``t5`` example).

    Pass ``out`` (an ``(n, prefix_len + n)`` buffer) to fill in place — the
    steady-state decode loop reuses one scratch buffer across iterations
    instead of allocating a fresh mask every step.
    """
    n = lin.num_tokens
    mask = _mask_buffer((n, prefix_len + n), dtype, out)
    mask[:, :prefix_len] = 0.0
    mask[:, prefix_len:] = NEG_INF
    for j in range(n):
        k = j
        while k != -1:
            mask[j, prefix_len + k] = 0.0
            k = int(lin.parents[k])
    return mask


def tree_positions(lin: LinearizedTree, prefix_len: int) -> np.ndarray:
    """Depth-based absolute positions: ``prefix_len + depth`` per tree token.

    Two tokens at the same depth on different branches occupy the same
    *position* (they are alternative candidates for the same sequence slot)
    even though they occupy different KV-cache rows.
    """
    return prefix_len + lin.depths
