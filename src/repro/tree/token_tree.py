"""Token tree data structure (paper Definitions 3.1 and 3.2).

A token tree's nodes each carry a token; the sequence ``S_u`` identified by a
node ``u`` is the concatenation of the tokens on the root-to-``u`` path.  The
root holds the last generated (but not yet verified-against) token, so a
tree with only a root represents pure incremental decoding.

Nodes additionally record, per small speculative model (SSM), the *full
next-token distribution that SSM assigned at this node* when it proposed
children.  Multi-step speculative sampling (Algorithm 2, ``VerifyStochastic``)
needs these distributions to compute the acceptance ratio
``P(x | u, LLM) / P(x | u, SSM_s)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np


@dataclass
class TreeNode:
    """One node of a :class:`TokenTree`.

    Attributes:
        token: The token this node is labeled with (``t_u``).
        parent: Index of the parent node, or ``-1`` for the root.
        depth: Distance from the root (root has depth 0).
        children: Indices of child nodes, in insertion order.
        ssm_ids: Which SSMs proposed this node (empty for the root).
        proposals: Per-SSM next-token distributions *at* this node,
            ``ssm_id -> (vocab,) probability vector``; populated when an SSM
            expands this node's children.
    """

    token: int
    parent: int
    depth: int
    children: List[int] = field(default_factory=list)
    ssm_ids: Set[int] = field(default_factory=set)
    proposals: Dict[int, np.ndarray] = field(default_factory=dict)


class TokenTree:
    """A speculated token tree (Definition 3.1).

    Node 0 is always the root.  Children of a node are deduplicated by token:
    adding an already-present child merges SSM attribution instead of
    creating a duplicate, which is exactly the tree-merge semantics of
    Definition 3.2 applied incrementally.
    """

    def __init__(self, root_token: int):
        self.nodes: List[TreeNode] = [TreeNode(token=int(root_token), parent=-1,
                                               depth=0)]

    # -- construction ------------------------------------------------------------

    def add_child(self, parent: int, token: int,
                  ssm_id: Optional[int] = 0) -> int:
        """Add (or merge) a child of ``parent`` labeled ``token``.

        Returns the index of the (possibly pre-existing) child node.
        ``ssm_id=None`` adds the node without attributing it to any SSM
        (used when grafting during merge, where attribution is copied
        separately).
        """
        self._check_index(parent)
        token = int(token)
        for child_idx in self.nodes[parent].children:
            if self.nodes[child_idx].token == token:
                if ssm_id is not None:
                    self.nodes[child_idx].ssm_ids.add(ssm_id)
                return child_idx
        idx = len(self.nodes)
        self.nodes.append(
            TreeNode(
                token=token,
                parent=parent,
                depth=self.nodes[parent].depth + 1,
                ssm_ids=set() if ssm_id is None else {ssm_id},
            )
        )
        self.nodes[parent].children.append(idx)
        return idx

    def add_path(self, tokens: Sequence[int], ssm_id: int = 0) -> int:
        """Add a root-anchored path of tokens below the root; returns leaf index."""
        node = 0
        for token in tokens:
            node = self.add_child(node, int(token), ssm_id=ssm_id)
        return node

    def set_proposal(self, node: int, ssm_id: int, probs: np.ndarray) -> None:
        """Record SSM ``ssm_id``'s next-token distribution at ``node``."""
        self._check_index(node)
        self.nodes[node].proposals[ssm_id] = np.asarray(probs, dtype=np.float64)

    # -- queries -------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.nodes)

    @property
    def root(self) -> TreeNode:
        return self.nodes[0]

    def node(self, idx: int) -> TreeNode:
        self._check_index(idx)
        return self.nodes[idx]

    def children(self, idx: int) -> List[int]:
        self._check_index(idx)
        return list(self.nodes[idx].children)

    def is_leaf(self, idx: int) -> bool:
        self._check_index(idx)
        return not self.nodes[idx].children

    def max_depth(self) -> int:
        """Depth of the deepest node (root = 0)."""
        return max(node.depth for node in self.nodes)

    def num_speculated(self) -> int:
        """Number of speculated tokens (all nodes except the root)."""
        return len(self.nodes) - 1

    def path_to(self, idx: int) -> List[int]:
        """Node indices on the root-to-``idx`` path, root first."""
        self._check_index(idx)
        path = []
        while idx != -1:
            path.append(idx)
            idx = self.nodes[idx].parent
        return path[::-1]

    def sequence_of(self, idx: int) -> Tuple[int, ...]:
        """``S_u``: the token sequence identified by node ``idx`` (Def. 3.1)."""
        return tuple(self.nodes[i].token for i in self.path_to(idx))

    def sequences(self) -> FrozenSet[Tuple[int, ...]]:
        """The set of all ``S_u`` — the tree's semantic content (Def. 3.2)."""
        return frozenset(self.sequence_of(i) for i in range(len(self.nodes)))

    def leaf_sequences(self) -> FrozenSet[Tuple[int, ...]]:
        """Root-to-leaf token sequences only."""
        return frozenset(
            self.sequence_of(i) for i in range(len(self.nodes)) if self.is_leaf(i)
        )

    def dfs_order(self) -> List[int]:
        """Node indices in depth-first order (root first, children in
        insertion order) — the KV-cache layout order of section 4.2."""
        order: List[int] = []
        stack = [0]
        while stack:
            idx = stack.pop()
            order.append(idx)
            stack.extend(reversed(self.nodes[idx].children))
        return order

    def ancestor_matrix(self) -> np.ndarray:
        """Boolean ``(n, n)`` matrix: entry ``[u, v]`` is True iff ``v`` is an
        ancestor of ``u`` or ``v == u`` (node indices, not DFS positions)."""
        n = len(self.nodes)
        anc = np.zeros((n, n), dtype=bool)
        for u in range(n):
            for v in self.path_to(u):
                anc[u, v] = True
        return anc

    def validate(self) -> None:
        """Check structural invariants; raises ``ValueError`` on violation."""
        if self.nodes[0].parent != -1:
            raise ValueError("root must have parent -1")
        for idx, node in enumerate(self.nodes):
            if idx == 0:
                continue
            if not 0 <= node.parent < len(self.nodes):
                raise ValueError(f"node {idx} has invalid parent {node.parent}")
            parent = self.nodes[node.parent]
            if idx not in parent.children:
                raise ValueError(f"node {idx} missing from parent's child list")
            if node.depth != parent.depth + 1:
                raise ValueError(f"node {idx} has inconsistent depth")
        seen = [0] * len(self.nodes)
        for idx in self.dfs_order():
            seen[idx] += 1
        if any(count != 1 for count in seen):
            raise ValueError("tree is not connected or has duplicate reachability")

    def _check_index(self, idx: int) -> None:
        if not 0 <= idx < len(self.nodes):
            raise IndexError(f"node index {idx} out of range [0, {len(self.nodes)})")


def merge_trees(trees: Iterable[TokenTree]) -> TokenTree:
    """Merge token trees per Definition 3.2.

    All input trees must share the same root token.  The result contains a
    node for every distinct ``S_u`` across the inputs (and nothing else);
    per-SSM proposals and attributions are unioned.
    """
    trees = list(trees)
    if not trees:
        raise ValueError("cannot merge an empty collection of trees")
    root_tokens = {tree.root.token for tree in trees}
    if len(root_tokens) != 1:
        raise ValueError(
            f"all trees must share a root token; got {sorted(root_tokens)}"
        )
    merged = TokenTree(trees[0].root.token)
    for tree in trees:
        _graft(tree, 0, merged, 0)
    return merged


def _graft(src: TokenTree, src_idx: int, dst: TokenTree, dst_idx: int) -> None:
    """Recursively copy ``src``'s subtree at ``src_idx`` into ``dst``."""
    src_node = src.nodes[src_idx]
    dst_node = dst.nodes[dst_idx]
    for ssm_id, probs in src_node.proposals.items():
        dst_node.proposals.setdefault(ssm_id, probs)
    dst_node.ssm_ids.update(src_node.ssm_ids)
    for child_idx in src_node.children:
        child = src.nodes[child_idx]
        # add_child merges by token; attribution is unioned in the recursion.
        new_idx = dst.add_child(dst_idx, child.token, ssm_id=None)
        _graft(src, child_idx, dst, new_idx)
