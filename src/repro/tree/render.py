"""ASCII rendering of token trees (debugging / example output).

Renders a :class:`~repro.tree.token_tree.TokenTree` as an indented tree,
optionally marking the verifier-accepted path and labeling tokens through a
tokenizer — the textual analogue of the paper's Figure 2/3 diagrams.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, Set

from repro.tree.token_tree import TokenTree


def render_tree(
    tree: TokenTree,
    accepted_nodes: Optional[Iterable[int]] = None,
    label: Optional[Callable[[int], str]] = None,
    show_ssm_ids: bool = False,
) -> str:
    """Render ``tree`` as indented ASCII.

    Args:
        tree: The token tree.
        accepted_nodes: Node indices on the verified path; marked ``*``.
        label: Maps a token id to a display string (default: the id).
        show_ssm_ids: Append each node's proposing-SSM attribution.

    Returns:
        A multi-line string, one node per line, root first.
    """
    accepted: Set[int] = set(accepted_nodes or ())
    label = label or str
    lines: List[str] = []

    def describe(idx: int) -> str:
        node = tree.nodes[idx]
        text = label(node.token)
        mark = " *" if idx in accepted else ""
        ssm = ""
        if show_ssm_ids and node.ssm_ids:
            ssm = f" [ssm {','.join(str(s) for s in sorted(node.ssm_ids))}]"
        return f"{text}{ssm}{mark}"

    def walk(idx: int, prefix: str, is_last: bool) -> None:
        if idx == 0:
            lines.append(describe(idx))
        else:
            connector = "`-- " if is_last else "|-- "
            lines.append(prefix + connector + describe(idx))
        children = tree.nodes[idx].children
        for i, child in enumerate(children):
            if idx == 0:
                child_prefix = ""
            else:
                child_prefix = prefix + ("    " if is_last else "|   ")
            walk(child, child_prefix, i == len(children) - 1)

    walk(0, "", True)
    return "\n".join(lines)


def tree_stats_line(tree: TokenTree) -> str:
    """One-line summary: nodes, depth, leaves (log-friendly)."""
    leaves = sum(1 for i in range(len(tree)) if tree.is_leaf(i))
    return (
        f"tree: {len(tree)} nodes ({tree.num_speculated()} speculated), "
        f"depth {tree.max_depth()}, {leaves} leaves"
    )
